file(REMOVE_RECURSE
  "libtfr_baseline.a"
)
