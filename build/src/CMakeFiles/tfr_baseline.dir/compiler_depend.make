# Empty compiler generated dependencies file for tfr_baseline.
# This may be replaced when dependencies are built.
