file(REMOVE_RECURSE
  "CMakeFiles/tfr_baseline.dir/baseline/unknown_bound_sim.cpp.o"
  "CMakeFiles/tfr_baseline.dir/baseline/unknown_bound_sim.cpp.o.d"
  "libtfr_baseline.a"
  "libtfr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
