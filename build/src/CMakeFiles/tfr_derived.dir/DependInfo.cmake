
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/derived/derived_rt.cpp" "src/CMakeFiles/tfr_derived.dir/derived/derived_rt.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/derived_rt.cpp.o.d"
  "/root/repo/src/derived/election_sim.cpp" "src/CMakeFiles/tfr_derived.dir/derived/election_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/election_sim.cpp.o.d"
  "/root/repo/src/derived/long_lived_tas_sim.cpp" "src/CMakeFiles/tfr_derived.dir/derived/long_lived_tas_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/long_lived_tas_sim.cpp.o.d"
  "/root/repo/src/derived/multivalue_sim.cpp" "src/CMakeFiles/tfr_derived.dir/derived/multivalue_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/multivalue_sim.cpp.o.d"
  "/root/repo/src/derived/renaming_sim.cpp" "src/CMakeFiles/tfr_derived.dir/derived/renaming_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/renaming_sim.cpp.o.d"
  "/root/repo/src/derived/set_consensus_sim.cpp" "src/CMakeFiles/tfr_derived.dir/derived/set_consensus_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/set_consensus_sim.cpp.o.d"
  "/root/repo/src/derived/test_and_set_sim.cpp" "src/CMakeFiles/tfr_derived.dir/derived/test_and_set_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/test_and_set_sim.cpp.o.d"
  "/root/repo/src/derived/universal_sim.cpp" "src/CMakeFiles/tfr_derived.dir/derived/universal_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_derived.dir/derived/universal_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
