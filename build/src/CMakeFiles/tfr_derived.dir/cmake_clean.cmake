file(REMOVE_RECURSE
  "CMakeFiles/tfr_derived.dir/derived/derived_rt.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/derived_rt.cpp.o.d"
  "CMakeFiles/tfr_derived.dir/derived/election_sim.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/election_sim.cpp.o.d"
  "CMakeFiles/tfr_derived.dir/derived/long_lived_tas_sim.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/long_lived_tas_sim.cpp.o.d"
  "CMakeFiles/tfr_derived.dir/derived/multivalue_sim.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/multivalue_sim.cpp.o.d"
  "CMakeFiles/tfr_derived.dir/derived/renaming_sim.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/renaming_sim.cpp.o.d"
  "CMakeFiles/tfr_derived.dir/derived/set_consensus_sim.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/set_consensus_sim.cpp.o.d"
  "CMakeFiles/tfr_derived.dir/derived/test_and_set_sim.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/test_and_set_sim.cpp.o.d"
  "CMakeFiles/tfr_derived.dir/derived/universal_sim.cpp.o"
  "CMakeFiles/tfr_derived.dir/derived/universal_sim.cpp.o.d"
  "libtfr_derived.a"
  "libtfr_derived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_derived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
