file(REMOVE_RECURSE
  "libtfr_derived.a"
)
