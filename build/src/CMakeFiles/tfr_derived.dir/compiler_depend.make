# Empty compiler generated dependencies file for tfr_derived.
# This may be replaced when dependencies are built.
