# Empty compiler generated dependencies file for tfr_spec.
# This may be replaced when dependencies are built.
