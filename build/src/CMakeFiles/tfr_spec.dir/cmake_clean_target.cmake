file(REMOVE_RECURSE
  "libtfr_spec.a"
)
