file(REMOVE_RECURSE
  "CMakeFiles/tfr_spec.dir/spec/history.cpp.o"
  "CMakeFiles/tfr_spec.dir/spec/history.cpp.o.d"
  "CMakeFiles/tfr_spec.dir/spec/linearizability.cpp.o"
  "CMakeFiles/tfr_spec.dir/spec/linearizability.cpp.o.d"
  "libtfr_spec.a"
  "libtfr_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
