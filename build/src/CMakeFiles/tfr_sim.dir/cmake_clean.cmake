file(REMOVE_RECURSE
  "CMakeFiles/tfr_sim.dir/sim/monitor.cpp.o"
  "CMakeFiles/tfr_sim.dir/sim/monitor.cpp.o.d"
  "CMakeFiles/tfr_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/tfr_sim.dir/sim/scheduler.cpp.o.d"
  "CMakeFiles/tfr_sim.dir/sim/timing.cpp.o"
  "CMakeFiles/tfr_sim.dir/sim/timing.cpp.o.d"
  "libtfr_sim.a"
  "libtfr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
