# Empty dependencies file for tfr_sim.
# This may be replaced when dependencies are built.
