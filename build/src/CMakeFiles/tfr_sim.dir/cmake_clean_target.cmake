file(REMOVE_RECURSE
  "libtfr_sim.a"
)
