file(REMOVE_RECURSE
  "libtfr_common.a"
)
