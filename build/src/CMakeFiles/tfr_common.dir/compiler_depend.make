# Empty compiler generated dependencies file for tfr_common.
# This may be replaced when dependencies are built.
