file(REMOVE_RECURSE
  "CMakeFiles/tfr_common.dir/common/rng.cpp.o"
  "CMakeFiles/tfr_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/tfr_common.dir/common/stats.cpp.o"
  "CMakeFiles/tfr_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/tfr_common.dir/common/table.cpp.o"
  "CMakeFiles/tfr_common.dir/common/table.cpp.o.d"
  "libtfr_common.a"
  "libtfr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
