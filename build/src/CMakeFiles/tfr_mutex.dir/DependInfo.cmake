
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mutex/bakery_sim.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/bakery_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/bakery_sim.cpp.o.d"
  "/root/repo/src/mutex/black_white_bakery_sim.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/black_white_bakery_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/black_white_bakery_sim.cpp.o.d"
  "/root/repo/src/mutex/fischer_sim.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/fischer_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/fischer_sim.cpp.o.d"
  "/root/repo/src/mutex/lamport_fast_sim.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/lamport_fast_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/lamport_fast_sim.cpp.o.d"
  "/root/repo/src/mutex/mutex_rt.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/mutex_rt.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/mutex_rt.cpp.o.d"
  "/root/repo/src/mutex/starvation_free_sim.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/starvation_free_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/starvation_free_sim.cpp.o.d"
  "/root/repo/src/mutex/tfr_mutex_sim.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/tfr_mutex_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/tfr_mutex_sim.cpp.o.d"
  "/root/repo/src/mutex/workload_sim.cpp" "src/CMakeFiles/tfr_mutex.dir/mutex/workload_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_mutex.dir/mutex/workload_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
