file(REMOVE_RECURSE
  "CMakeFiles/tfr_mutex.dir/mutex/bakery_sim.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/bakery_sim.cpp.o.d"
  "CMakeFiles/tfr_mutex.dir/mutex/black_white_bakery_sim.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/black_white_bakery_sim.cpp.o.d"
  "CMakeFiles/tfr_mutex.dir/mutex/fischer_sim.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/fischer_sim.cpp.o.d"
  "CMakeFiles/tfr_mutex.dir/mutex/lamport_fast_sim.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/lamport_fast_sim.cpp.o.d"
  "CMakeFiles/tfr_mutex.dir/mutex/mutex_rt.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/mutex_rt.cpp.o.d"
  "CMakeFiles/tfr_mutex.dir/mutex/starvation_free_sim.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/starvation_free_sim.cpp.o.d"
  "CMakeFiles/tfr_mutex.dir/mutex/tfr_mutex_sim.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/tfr_mutex_sim.cpp.o.d"
  "CMakeFiles/tfr_mutex.dir/mutex/workload_sim.cpp.o"
  "CMakeFiles/tfr_mutex.dir/mutex/workload_sim.cpp.o.d"
  "libtfr_mutex.a"
  "libtfr_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
