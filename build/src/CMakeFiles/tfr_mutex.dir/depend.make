# Empty dependencies file for tfr_mutex.
# This may be replaced when dependencies are built.
