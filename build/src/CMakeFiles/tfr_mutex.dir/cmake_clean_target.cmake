file(REMOVE_RECURSE
  "libtfr_mutex.a"
)
