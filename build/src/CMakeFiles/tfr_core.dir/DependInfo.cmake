
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consensus_ablation_sim.cpp" "src/CMakeFiles/tfr_core.dir/core/consensus_ablation_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_core.dir/core/consensus_ablation_sim.cpp.o.d"
  "/root/repo/src/core/consensus_rt.cpp" "src/CMakeFiles/tfr_core.dir/core/consensus_rt.cpp.o" "gcc" "src/CMakeFiles/tfr_core.dir/core/consensus_rt.cpp.o.d"
  "/root/repo/src/core/consensus_sim.cpp" "src/CMakeFiles/tfr_core.dir/core/consensus_sim.cpp.o" "gcc" "src/CMakeFiles/tfr_core.dir/core/consensus_sim.cpp.o.d"
  "/root/repo/src/core/delta.cpp" "src/CMakeFiles/tfr_core.dir/core/delta.cpp.o" "gcc" "src/CMakeFiles/tfr_core.dir/core/delta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
