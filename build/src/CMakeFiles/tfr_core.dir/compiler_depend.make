# Empty compiler generated dependencies file for tfr_core.
# This may be replaced when dependencies are built.
