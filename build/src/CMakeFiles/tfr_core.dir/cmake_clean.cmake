file(REMOVE_RECURSE
  "CMakeFiles/tfr_core.dir/core/consensus_ablation_sim.cpp.o"
  "CMakeFiles/tfr_core.dir/core/consensus_ablation_sim.cpp.o.d"
  "CMakeFiles/tfr_core.dir/core/consensus_rt.cpp.o"
  "CMakeFiles/tfr_core.dir/core/consensus_rt.cpp.o.d"
  "CMakeFiles/tfr_core.dir/core/consensus_sim.cpp.o"
  "CMakeFiles/tfr_core.dir/core/consensus_sim.cpp.o.d"
  "CMakeFiles/tfr_core.dir/core/delta.cpp.o"
  "CMakeFiles/tfr_core.dir/core/delta.cpp.o.d"
  "libtfr_core.a"
  "libtfr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
