file(REMOVE_RECURSE
  "libtfr_core.a"
)
