file(REMOVE_RECURSE
  "CMakeFiles/tfr_msg.dir/msg/abd.cpp.o"
  "CMakeFiles/tfr_msg.dir/msg/abd.cpp.o.d"
  "CMakeFiles/tfr_msg.dir/msg/consensus_msg.cpp.o"
  "CMakeFiles/tfr_msg.dir/msg/consensus_msg.cpp.o.d"
  "CMakeFiles/tfr_msg.dir/msg/election_msg.cpp.o"
  "CMakeFiles/tfr_msg.dir/msg/election_msg.cpp.o.d"
  "CMakeFiles/tfr_msg.dir/msg/network.cpp.o"
  "CMakeFiles/tfr_msg.dir/msg/network.cpp.o.d"
  "libtfr_msg.a"
  "libtfr_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfr_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
