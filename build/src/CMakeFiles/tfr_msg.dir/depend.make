# Empty dependencies file for tfr_msg.
# This may be replaced when dependencies are built.
