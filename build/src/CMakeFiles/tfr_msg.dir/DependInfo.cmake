
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/abd.cpp" "src/CMakeFiles/tfr_msg.dir/msg/abd.cpp.o" "gcc" "src/CMakeFiles/tfr_msg.dir/msg/abd.cpp.o.d"
  "/root/repo/src/msg/consensus_msg.cpp" "src/CMakeFiles/tfr_msg.dir/msg/consensus_msg.cpp.o" "gcc" "src/CMakeFiles/tfr_msg.dir/msg/consensus_msg.cpp.o.d"
  "/root/repo/src/msg/election_msg.cpp" "src/CMakeFiles/tfr_msg.dir/msg/election_msg.cpp.o" "gcc" "src/CMakeFiles/tfr_msg.dir/msg/election_msg.cpp.o.d"
  "/root/repo/src/msg/network.cpp" "src/CMakeFiles/tfr_msg.dir/msg/network.cpp.o" "gcc" "src/CMakeFiles/tfr_msg.dir/msg/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
