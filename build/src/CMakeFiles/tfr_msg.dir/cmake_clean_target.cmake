file(REMOVE_RECURSE
  "libtfr_msg.a"
)
