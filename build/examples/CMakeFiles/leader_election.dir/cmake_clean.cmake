file(REMOVE_RECURSE
  "CMakeFiles/leader_election.dir/leader_election.cpp.o"
  "CMakeFiles/leader_election.dir/leader_election.cpp.o.d"
  "leader_election"
  "leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
