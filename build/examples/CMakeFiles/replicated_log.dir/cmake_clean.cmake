file(REMOVE_RECURSE
  "CMakeFiles/replicated_log.dir/replicated_log.cpp.o"
  "CMakeFiles/replicated_log.dir/replicated_log.cpp.o.d"
  "replicated_log"
  "replicated_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
