file(REMOVE_RECURSE
  "CMakeFiles/config_service.dir/config_service.cpp.o"
  "CMakeFiles/config_service.dir/config_service.cpp.o.d"
  "config_service"
  "config_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
