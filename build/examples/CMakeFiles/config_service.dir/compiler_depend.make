# Empty compiler generated dependencies file for config_service.
# This may be replaced when dependencies are built.
