# Empty dependencies file for config_service.
# This may be replaced when dependencies are built.
