file(REMOVE_RECURSE
  "CMakeFiles/adaptive_delta.dir/adaptive_delta.cpp.o"
  "CMakeFiles/adaptive_delta.dir/adaptive_delta.cpp.o.d"
  "adaptive_delta"
  "adaptive_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
