# Empty dependencies file for adaptive_delta.
# This may be replaced when dependencies are built.
