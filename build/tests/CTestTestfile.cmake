# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_sim_test[1]_include.cmake")
include("/root/repo/build/tests/mutex_sim_test[1]_include.cmake")
include("/root/repo/build/tests/derived_sim_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
