
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/derived_sim_test.cpp" "tests/CMakeFiles/derived_sim_test.dir/derived_sim_test.cpp.o" "gcc" "tests/CMakeFiles/derived_sim_test.dir/derived_sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_derived.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_msg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
