file(REMOVE_RECURSE
  "CMakeFiles/derived_sim_test.dir/derived_sim_test.cpp.o"
  "CMakeFiles/derived_sim_test.dir/derived_sim_test.cpp.o.d"
  "derived_sim_test"
  "derived_sim_test.pdb"
  "derived_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
