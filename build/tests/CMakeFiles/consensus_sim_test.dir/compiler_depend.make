# Empty compiler generated dependencies file for consensus_sim_test.
# This may be replaced when dependencies are built.
