file(REMOVE_RECURSE
  "CMakeFiles/consensus_sim_test.dir/consensus_sim_test.cpp.o"
  "CMakeFiles/consensus_sim_test.dir/consensus_sim_test.cpp.o.d"
  "consensus_sim_test"
  "consensus_sim_test.pdb"
  "consensus_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
