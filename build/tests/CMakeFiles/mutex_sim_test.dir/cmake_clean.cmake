file(REMOVE_RECURSE
  "CMakeFiles/mutex_sim_test.dir/mutex_sim_test.cpp.o"
  "CMakeFiles/mutex_sim_test.dir/mutex_sim_test.cpp.o.d"
  "mutex_sim_test"
  "mutex_sim_test.pdb"
  "mutex_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
