# Empty dependencies file for mutex_sim_test.
# This may be replaced when dependencies are built.
