# Empty dependencies file for bench_mutex_space.
# This may be replaced when dependencies are built.
