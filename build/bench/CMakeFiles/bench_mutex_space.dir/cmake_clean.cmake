file(REMOVE_RECURSE
  "CMakeFiles/bench_mutex_space.dir/bench_mutex_space.cpp.o"
  "CMakeFiles/bench_mutex_space.dir/bench_mutex_space.cpp.o.d"
  "bench_mutex_space"
  "bench_mutex_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutex_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
