file(REMOVE_RECURSE
  "CMakeFiles/bench_consensus_fast_path.dir/bench_consensus_fast_path.cpp.o"
  "CMakeFiles/bench_consensus_fast_path.dir/bench_consensus_fast_path.cpp.o.d"
  "bench_consensus_fast_path"
  "bench_consensus_fast_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consensus_fast_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
