file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_failures.dir/bench_memory_failures.cpp.o"
  "CMakeFiles/bench_memory_failures.dir/bench_memory_failures.cpp.o.d"
  "bench_memory_failures"
  "bench_memory_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
