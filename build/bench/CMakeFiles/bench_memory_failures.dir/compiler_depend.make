# Empty compiler generated dependencies file for bench_memory_failures.
# This may be replaced when dependencies are built.
