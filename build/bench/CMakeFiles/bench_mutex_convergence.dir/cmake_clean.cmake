file(REMOVE_RECURSE
  "CMakeFiles/bench_mutex_convergence.dir/bench_mutex_convergence.cpp.o"
  "CMakeFiles/bench_mutex_convergence.dir/bench_mutex_convergence.cpp.o.d"
  "bench_mutex_convergence"
  "bench_mutex_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutex_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
