# Empty dependencies file for bench_mutex_convergence.
# This may be replaced when dependencies are built.
