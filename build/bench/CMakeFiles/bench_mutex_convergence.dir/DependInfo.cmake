
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_mutex_convergence.cpp" "bench/CMakeFiles/bench_mutex_convergence.dir/bench_mutex_convergence.cpp.o" "gcc" "bench/CMakeFiles/bench_mutex_convergence.dir/bench_mutex_convergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_derived.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tfr_msg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
