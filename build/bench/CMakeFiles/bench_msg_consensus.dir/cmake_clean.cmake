file(REMOVE_RECURSE
  "CMakeFiles/bench_msg_consensus.dir/bench_msg_consensus.cpp.o"
  "CMakeFiles/bench_msg_consensus.dir/bench_msg_consensus.cpp.o.d"
  "bench_msg_consensus"
  "bench_msg_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msg_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
