# Empty dependencies file for bench_rt_consensus.
# This may be replaced when dependencies are built.
