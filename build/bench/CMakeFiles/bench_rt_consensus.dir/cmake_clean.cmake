file(REMOVE_RECURSE
  "CMakeFiles/bench_rt_consensus.dir/bench_rt_consensus.cpp.o"
  "CMakeFiles/bench_rt_consensus.dir/bench_rt_consensus.cpp.o.d"
  "bench_rt_consensus"
  "bench_rt_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rt_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
