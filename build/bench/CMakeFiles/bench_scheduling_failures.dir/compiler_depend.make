# Empty compiler generated dependencies file for bench_scheduling_failures.
# This may be replaced when dependencies are built.
