file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduling_failures.dir/bench_scheduling_failures.cpp.o"
  "CMakeFiles/bench_scheduling_failures.dir/bench_scheduling_failures.cpp.o.d"
  "bench_scheduling_failures"
  "bench_scheduling_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduling_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
