file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_unknown_bound.dir/bench_vs_unknown_bound.cpp.o"
  "CMakeFiles/bench_vs_unknown_bound.dir/bench_vs_unknown_bound.cpp.o.d"
  "bench_vs_unknown_bound"
  "bench_vs_unknown_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_unknown_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
