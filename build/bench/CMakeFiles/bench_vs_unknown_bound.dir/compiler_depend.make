# Empty compiler generated dependencies file for bench_vs_unknown_bound.
# This may be replaced when dependencies are built.
