# Empty compiler generated dependencies file for bench_optimistic_delta.
# This may be replaced when dependencies are built.
