file(REMOVE_RECURSE
  "CMakeFiles/bench_optimistic_delta.dir/bench_optimistic_delta.cpp.o"
  "CMakeFiles/bench_optimistic_delta.dir/bench_optimistic_delta.cpp.o.d"
  "bench_optimistic_delta"
  "bench_optimistic_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimistic_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
