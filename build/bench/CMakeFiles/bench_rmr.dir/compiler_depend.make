# Empty compiler generated dependencies file for bench_rmr.
# This may be replaced when dependencies are built.
