file(REMOVE_RECURSE
  "CMakeFiles/bench_rmr.dir/bench_rmr.cpp.o"
  "CMakeFiles/bench_rmr.dir/bench_rmr.cpp.o.d"
  "bench_rmr"
  "bench_rmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
