# Empty dependencies file for bench_consensus_waitfree.
# This may be replaced when dependencies are built.
