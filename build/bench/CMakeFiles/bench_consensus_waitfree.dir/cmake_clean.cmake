file(REMOVE_RECURSE
  "CMakeFiles/bench_consensus_waitfree.dir/bench_consensus_waitfree.cpp.o"
  "CMakeFiles/bench_consensus_waitfree.dir/bench_consensus_waitfree.cpp.o.d"
  "bench_consensus_waitfree"
  "bench_consensus_waitfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consensus_waitfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
