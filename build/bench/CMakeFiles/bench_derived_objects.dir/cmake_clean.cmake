file(REMOVE_RECURSE
  "CMakeFiles/bench_derived_objects.dir/bench_derived_objects.cpp.o"
  "CMakeFiles/bench_derived_objects.dir/bench_derived_objects.cpp.o.d"
  "bench_derived_objects"
  "bench_derived_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_derived_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
