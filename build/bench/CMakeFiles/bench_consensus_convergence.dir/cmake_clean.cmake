file(REMOVE_RECURSE
  "CMakeFiles/bench_consensus_convergence.dir/bench_consensus_convergence.cpp.o"
  "CMakeFiles/bench_consensus_convergence.dir/bench_consensus_convergence.cpp.o.d"
  "bench_consensus_convergence"
  "bench_consensus_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consensus_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
