# Empty compiler generated dependencies file for bench_consensus_convergence.
# This may be replaced when dependencies are built.
