file(REMOVE_RECURSE
  "CMakeFiles/bench_rt_mutex.dir/bench_rt_mutex.cpp.o"
  "CMakeFiles/bench_rt_mutex.dir/bench_rt_mutex.cpp.o.d"
  "bench_rt_mutex"
  "bench_rt_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rt_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
