# Empty compiler generated dependencies file for bench_rt_mutex.
# This may be replaced when dependencies are built.
