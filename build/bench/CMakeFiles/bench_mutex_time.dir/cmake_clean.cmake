file(REMOVE_RECURSE
  "CMakeFiles/bench_mutex_time.dir/bench_mutex_time.cpp.o"
  "CMakeFiles/bench_mutex_time.dir/bench_mutex_time.cpp.o.d"
  "bench_mutex_time"
  "bench_mutex_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutex_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
