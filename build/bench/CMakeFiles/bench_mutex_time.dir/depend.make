# Empty dependencies file for bench_mutex_time.
# This may be replaced when dependencies are built.
