# Empty compiler generated dependencies file for bench_mutex_safety.
# This may be replaced when dependencies are built.
