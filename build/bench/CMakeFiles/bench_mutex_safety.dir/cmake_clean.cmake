file(REMOVE_RECURSE
  "CMakeFiles/bench_mutex_safety.dir/bench_mutex_safety.cpp.o"
  "CMakeFiles/bench_mutex_safety.dir/bench_mutex_safety.cpp.o.d"
  "bench_mutex_safety"
  "bench_mutex_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutex_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
