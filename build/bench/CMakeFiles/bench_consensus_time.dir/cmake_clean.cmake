file(REMOVE_RECURSE
  "CMakeFiles/bench_consensus_time.dir/bench_consensus_time.cpp.o"
  "CMakeFiles/bench_consensus_time.dir/bench_consensus_time.cpp.o.d"
  "bench_consensus_time"
  "bench_consensus_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consensus_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
