# Empty compiler generated dependencies file for bench_consensus_time.
# This may be replaced when dependencies are built.
