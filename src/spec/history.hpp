// Operation histories for linearizability checking.
//
// A History records invoke/response pairs with timestamps (virtual time in
// the simulator, steady-clock nanoseconds on real threads — the checker
// only needs a consistent total order of instants).  Recording is
// thread-safe so real-thread tests can share one history.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tfr::spec {

/// One completed operation.
struct Operation {
  int thread = 0;
  std::string op;          ///< operation name, e.g. "enqueue"
  std::int64_t arg = 0;
  std::int64_t result = 0;
  std::int64_t invoked_at = 0;
  std::int64_t responded_at = 0;
};

class History {
 public:
  /// Records an invocation; returns a token to pass to respond().
  std::size_t invoke(int thread, std::string op, std::int64_t arg,
                     std::int64_t now);

  /// Completes the operation identified by `token`.
  void respond(std::size_t token, std::int64_t result, std::int64_t now);

  /// All completed operations.  Call after the run (not thread-safe with
  /// concurrent recording).
  std::vector<Operation> completed() const;

  std::size_t size() const;

 private:
  struct Entry {
    Operation op;
    bool done = false;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace tfr::spec
