#include "tfr/spec/history.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::spec {

std::size_t History::invoke(int thread, std::string op, std::int64_t arg,
                            std::int64_t now) {
  std::lock_guard<std::mutex> guard(mutex_);
  Entry entry;
  entry.op.thread = thread;
  entry.op.op = std::move(op);
  entry.op.arg = arg;
  entry.op.invoked_at = now;
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void History::respond(std::size_t token, std::int64_t result,
                      std::int64_t now) {
  std::lock_guard<std::mutex> guard(mutex_);
  TFR_REQUIRE(token < entries_.size());
  Entry& entry = entries_[token];
  TFR_REQUIRE(!entry.done);
  TFR_REQUIRE(now >= entry.op.invoked_at);
  entry.op.result = result;
  entry.op.responded_at = now;
  entry.done = true;
}

std::vector<Operation> History::completed() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<Operation> ops;
  ops.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.done) ops.push_back(e.op);
  }
  return ops;
}

std::size_t History::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return entries_.size();
}

}  // namespace tfr::spec
