#include "tfr/spec/linearizability.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "tfr/common/contracts.hpp"
#include "tfr/common/rng.hpp"

namespace tfr::spec {

namespace {

class Checker {
 public:
  Checker(const std::vector<Operation>& ops, const SequentialModel& model)
      : ops_(ops), chosen_(ops.size(), false) {
    root_ = model.clone();
  }

  LinearizabilityResult run() {
    LinearizabilityResult result;
    result.linearizable = dfs(*root_);
    result.states_explored = explored_;
    if (result.linearizable) result.witness = order_;
    return result;
  }

 private:
  bool dfs(SequentialModel& model) {
    ++explored_;
    if (order_.size() == ops_.size()) return true;

    // Real-time constraint: an operation may be linearized next only if no
    // *unchosen* operation completed before it was invoked.
    std::int64_t min_response = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!chosen_[i]) min_response = std::min(min_response, ops_[i].responded_at);
    }

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (chosen_[i]) continue;
      if (ops_[i].invoked_at > min_response) continue;  // not minimal
      auto next = model.clone();
      const std::int64_t produced = next->apply(ops_[i].op, ops_[i].arg);
      if (produced != ops_[i].result) continue;  // model disagrees
      if (ops_.size() <= 64) {
        const std::uint64_t mask = chosen_mask() | (std::uint64_t{1} << i);
        if (!seen_.insert({mask, next->fingerprint()}).second) continue;
      }
      chosen_[i] = true;
      order_.push_back(i);
      if (dfs(*next)) return true;
      order_.pop_back();
      chosen_[i] = false;
    }
    return false;
  }

  std::uint64_t chosen_mask() const {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < chosen_.size(); ++i)
      if (chosen_[i]) mask |= std::uint64_t{1} << i;
    return mask;
  }

  const std::vector<Operation>& ops_;
  std::unique_ptr<SequentialModel> root_;
  std::vector<bool> chosen_;
  std::vector<std::size_t> order_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_;
  std::uint64_t explored_ = 0;
};

}  // namespace

LinearizabilityResult check_linearizable(const std::vector<Operation>& history,
                                         const SequentialModel& model) {
  Checker checker(history, model);
  return checker.run();
}

// --------------------------------------------------------------------------
// Models

std::unique_ptr<SequentialModel> TasModel::clone() const {
  return std::make_unique<TasModel>(*this);
}

std::int64_t TasModel::apply(const std::string& op, std::int64_t) {
  if (op == "tas") {
    if (bit_) return 1;
    bit_ = true;
    return 0;
  }
  if (op == "read") return bit_ ? 1 : 0;
  TFR_REQUIRE(!"unknown TAS operation");
  return -1;
}

std::unique_ptr<SequentialModel> CounterModel::clone() const {
  return std::make_unique<CounterModel>(*this);
}

std::int64_t CounterModel::apply(const std::string& op, std::int64_t arg) {
  if (op == "add") {
    value_ += arg;
    return value_;
  }
  if (op == "get") return value_;
  TFR_REQUIRE(!"unknown counter operation");
  return -1;
}

std::unique_ptr<SequentialModel> QueueModel::clone() const {
  return std::make_unique<QueueModel>(*this);
}

std::int64_t QueueModel::apply(const std::string& op, std::int64_t arg) {
  if (op == "enqueue") {
    items_.push_back(arg);
    return static_cast<std::int64_t>(items_.size());
  }
  if (op == "dequeue") {
    if (items_.empty()) return -1;
    const std::int64_t front = items_.front();
    items_.erase(items_.begin());
    return front;
  }
  TFR_REQUIRE(!"unknown queue operation");
  return -1;
}

std::uint64_t QueueModel::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::int64_t v : items_) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    h *= 0x100000001b3ULL;
  }
  return h ^ items_.size();
}

std::unique_ptr<SequentialModel> RegisterModel::clone() const {
  return std::make_unique<RegisterModel>(*this);
}

std::int64_t RegisterModel::apply(const std::string& op, std::int64_t arg) {
  if (op == "write") {
    value_ = arg;
    return arg;
  }
  if (op == "read") return value_;
  TFR_REQUIRE(!"unknown register operation");
  return -1;
}

}  // namespace tfr::spec
