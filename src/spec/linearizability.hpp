// Wing–Gong linearizability checker.
//
// Decides whether a completed concurrent history is linearizable with
// respect to a sequential model: is there a total order of the operations,
// consistent with the history's real-time partial order (op A precedes op
// B iff A responded before B was invoked), in which every operation
// returns what the sequential model says it should?
//
// The search is the classic Wing–Gong recursion: repeatedly pick a
// *minimal* pending operation (one invoked before every unchosen
// operation's response), try it against the model, and backtrack on
// mismatch.  Exponential in the worst case; intended for the moderately
// sized histories our tests generate.  A memoization set over (chosen-set,
// model fingerprint) prunes re-exploration.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tfr/spec/history.hpp"

namespace tfr::spec {

/// A sequential specification.  apply() returns the result the operation
/// must produce from the current state, advancing the state.
class SequentialModel {
 public:
  virtual ~SequentialModel() = default;
  virtual std::unique_ptr<SequentialModel> clone() const = 0;
  virtual std::int64_t apply(const std::string& op, std::int64_t arg) = 0;
  /// Cheap state fingerprint for memoization (need not be perfect; it only
  /// prunes, correctness never depends on collisions being absent — a
  /// collision merely risks a false "already explored" prune, so models
  /// should fold their full state in).
  virtual std::uint64_t fingerprint() const = 0;
};

struct LinearizabilityResult {
  bool linearizable = false;
  /// A witness order (indices into the input) when linearizable.
  std::vector<std::size_t> witness;
  std::uint64_t states_explored = 0;
};

/// Checks `history` against `model` (which supplies the initial state).
LinearizabilityResult check_linearizable(const std::vector<Operation>& history,
                                         const SequentialModel& model);

// Ready-made models. ------------------------------------------------------

/// One-shot test-and-set bit: "tas" -> 0 first, 1 afterwards; "read" ->
/// current bit.
class TasModel final : public SequentialModel {
 public:
  std::unique_ptr<SequentialModel> clone() const override;
  std::int64_t apply(const std::string& op, std::int64_t arg) override;
  std::uint64_t fingerprint() const override { return bit_ ? 2 : 1; }

 private:
  bool bit_ = false;
};

/// Counter: "add" -> new value, "get" -> value.
class CounterModel final : public SequentialModel {
 public:
  std::unique_ptr<SequentialModel> clone() const override;
  std::int64_t apply(const std::string& op, std::int64_t arg) override;
  std::uint64_t fingerprint() const override {
    return static_cast<std::uint64_t>(value_) * 0x9e3779b97f4a7c15ULL + 1;
  }

 private:
  std::int64_t value_ = 0;
};

/// FIFO queue: "enqueue" -> size after, "dequeue" -> front or -1 if empty.
class QueueModel final : public SequentialModel {
 public:
  std::unique_ptr<SequentialModel> clone() const override;
  std::int64_t apply(const std::string& op, std::int64_t arg) override;
  std::uint64_t fingerprint() const override;

 private:
  std::vector<std::int64_t> items_;
};

/// Atomic register: "write" -> arg, "read" -> last written (init 0).
class RegisterModel final : public SequentialModel {
 public:
  std::unique_ptr<SequentialModel> clone() const override;
  std::int64_t apply(const std::string& op, std::int64_t arg) override;
  std::uint64_t fingerprint() const override {
    return static_cast<std::uint64_t>(value_) ^ 0xabcdef1234567890ULL;
  }

 private:
  std::int64_t value_ = 0;
};

}  // namespace tfr::spec
