// Ablation variants of Algorithm 1 (E13): each removes one load-bearing
// design element, demonstrating *why* the paper's algorithm is written
// the way it is.  These exist for the experiment harness and for negative
// tests only — never use them as a consensus object.
//
//   YFirstConsensus  — swaps lines 2 and 3: publishes/reads the round
//     proposal y[r] BEFORE raising the flag x[r,v].  The flag-first order
//     is what guarantees that once a process decides v in round r, every
//     process carrying the conflicting preference must observe y[r] = v;
//     with the order swapped, a straggler whose y-write lands after the
//     decision poisons the next round and agreement fails under timing
//     failures.
//
//   NoDelayConsensus — removes line 5's delay(Δ).  Safety is unaffected
//     (it never depends on timing), but the delay is what forces every
//     in-flight y-write to land before preferences are re-read, so
//     without it rounds can keep splitting even in failure-free (legal)
//     executions: the 15·Δ bound of Theorem 2.1 is lost.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/sim/monitor.hpp"
#include "tfr/sim/register.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/task.hpp"

namespace tfr::core {

/// Common chassis for the ablation variants.
class AblationConsensus {
 public:
  AblationConsensus(sim::RegisterSpace& space, sim::Duration delta);
  virtual ~AblationConsensus() = default;

  sim::Process participant(sim::Env env, int input);

  sim::DecisionMonitor& monitor() { return monitor_; }
  std::size_t max_round() const { return max_round_; }

 protected:
  virtual sim::Task<int> propose(sim::Env env, int input) = 0;

  sim::Register<int>& flag(int value, std::size_t round);

  sim::Duration delta_;
  sim::RegisterArray<int> x0_;
  sim::RegisterArray<int> x1_;
  sim::RegisterArray<int> y_;
  sim::Register<int> decide_;
  sim::DecisionMonitor monitor_;
  std::size_t max_round_ = 0;
};

/// Lines 2/3 swapped: y[r] before x[r,v].
class YFirstConsensus final : public AblationConsensus {
 public:
  using AblationConsensus::AblationConsensus;

 protected:
  sim::Task<int> propose(sim::Env env, int input) override;
};

/// Line 5's delay(Δ) removed.
class NoDelayConsensus final : public AblationConsensus {
 public:
  using AblationConsensus::AblationConsensus;

 protected:
  sim::Task<int> propose(sim::Env env, int input) override;
};

/// Runs `variant` participants on the given timing; reports safety and
/// round statistics with violations *counted*, not thrown.
struct AblationOutcome {
  bool all_decided = false;
  std::uint64_t agreement_violations = 0;
  std::size_t max_round = 0;
};

enum class AblationVariant { kFaithful, kYFirst, kNoDelay };

AblationOutcome run_ablation(AblationVariant variant,
                             const std::vector<int>& inputs,
                             sim::Duration delta,
                             std::unique_ptr<sim::TimingModel> timing,
                             std::uint64_t seed, sim::Time limit);

}  // namespace tfr::core
