// Δ and optimistic(Δ).
//
// The paper (§1.2, §3.3) observes that the true bound Δ on shared-memory
// step time must account for preemption, cache misses and contention, and
// is therefore impractically large; because time-resilient algorithms stay
// safe when the bound is violated, they should run with a much smaller
// optimistic(Δ), adapted online "using a technique similar to the one used
// in TCP congestion control (slow start and additive-increase,
// multiplicative-decrease)".  OptimisticDelta implements that estimator.
//
// The mapping of TCP's rate control onto a delay bound inverts the knobs:
// the quantity we want high is speed == 1/estimate, so a suspected timing
// failure (we were too optimistic) grows the estimate multiplicatively,
// while sustained progress shrinks it additively to probe for a faster
// setting.  Safety never depends on the estimate — that is the entire point
// of resilience to timing failures.

#pragma once

#include <cstdint>

#include "tfr/sim/types.hpp"

namespace tfr::core {

using sim::Duration;

/// Online estimator for optimistic(Δ).
class OptimisticDelta {
 public:
  struct Config {
    Duration initial = 1;       ///< starting estimate (slow start from tiny)
    Duration min = 1;           ///< never probe below this
    Duration max = 1 << 20;     ///< cap (the pessimistic true Δ if known)
    double grow_factor = 2.0;   ///< multiplicative increase on failure
    Duration shrink_step = 1;   ///< additive decrease after stable progress
    int stable_threshold = 8;   ///< successes required before shrinking
  };

  explicit OptimisticDelta(Config config);

  /// The current estimate to use for delay(optimistic(Δ)).
  Duration current() const { return estimate_; }

  /// Call when a protocol step succeeded under the current estimate
  /// (e.g. a consensus round decided, a lock was acquired first try).
  void on_progress();

  /// Call when a suspected timing failure occurred relative to the current
  /// estimate (e.g. a consensus round had to retry, Fischer's check failed).
  void on_retry();

  std::uint64_t progress_events() const { return progress_events_; }
  std::uint64_t retry_events() const { return retry_events_; }
  std::uint64_t shrinks() const { return shrinks_; }
  std::uint64_t grows() const { return grows_; }

 private:
  Config config_;
  Duration estimate_;
  int stable_run_ = 0;
  std::uint64_t progress_events_ = 0;
  std::uint64_t retry_events_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace tfr::core
