// Algorithm 1 of the paper: binary consensus resilient to timing failures,
// using atomic registers only — simulator edition.
//
// Round structure (per process p with preference v in round r):
//   1  while decide = ⊥ do
//   2     x[r, v] := 1
//   3     if y[r] = ⊥ then y[r] := v fi
//   4     if x[r, v̄] = 0 then decide := v
//   5     else delay(Δ)
//   6          v := y[r]
//   7          r := r + 1 fi
//   8  od
//   9  decide(decide)
//
// Guarantees (Theorems 2.1–2.4): safety (validity, agreement) holds under
// arbitrary timing behaviour; without timing failures every process decides
// within 15·Δ; a process alone decides after 7 of its own steps with no
// delay statement; the algorithm is wait-free; the number of participants
// is unbounded.
//
// The instance's `delta` is the *assumed* bound the algorithm delays for;
// the simulation's TimingModel decides real step costs.  Real cost > delta
// is exactly a timing failure with respect to this instance.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/sim/monitor.hpp"
#include "tfr/sim/register.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/task.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::core {

/// One instance of the time-resilient binary consensus object.
class SimConsensus {
 public:
  /// Registers are allocated inside `space`; `delta` is the bound used by
  /// the algorithm's delay statements (use a value smaller than the timing
  /// model's worst case to run with optimistic(Δ)).
  ///
  /// `max_rounds` realizes the paper's §2.1 remark: the unbounded register
  /// arrays are only needed because timing failures can last arbitrarily
  /// long; "such an algorithm [with finitely many registers] exists when
  /// there is a known bound on the number of time units during which there
  /// are timing failures."  A nonzero max_rounds preallocates exactly
  /// 3·max_rounds + 1 registers (F time units of failures cost at most
  /// ~F/Δ extra rounds, +2 for the failure-free tail); exceeding the bound
  /// is a contract violation — the environment broke its promise.
  SimConsensus(sim::RegisterSpace& space, sim::Duration delta,
               std::size_t max_rounds = 0);

  SimConsensus(const SimConsensus&) = delete;
  SimConsensus& operator=(const SimConsensus&) = delete;

  /// Composable core: propose `input` (0 or 1), suspend until decided,
  /// co_return the decision.  Usable as a building block from any process
  /// coroutine (the derived objects are built on this).
  sim::Task<int> propose(sim::Env env, int input);

  /// Convenience: a full process that registers its input with the
  /// monitor, proposes, and reports its decision.
  sim::Process participant(sim::Env env, int input);

  sim::DecisionMonitor& monitor() { return monitor_; }
  sim::Duration delta() const { return delta_; }

  /// Attaches an adaptive optimistic(Δ) controller (null = the static
  /// `delta` from construction).  Line 5's delay then waits for
  /// controller->current(), a delay in round >= 1 is reported as a
  /// timing-failure signal (failure-free mixed-input instances need at
  /// most the round-0 delay), and an instance that decided with at most
  /// one delay reports clean.  Purely advisory: agreement and validity
  /// hold for ANY estimate (Theorem 2.1's proof never uses the bound).
  void set_delta_controller(adapt::DeltaController* controller) {
    controller_ = controller;
  }

  /// Highest round index any process has entered so far (0-based).
  std::size_t max_round() const { return max_round_; }
  /// Round in which `pid` decided; requires that it decided.
  std::size_t decision_round(sim::Pid pid) const;
  /// Number of per-round register triples allocated so far (x0, x1, y).
  std::size_t rounds_allocated() const { return y_.size(); }
  /// Untimed view of the decide register (kBot while undecided).
  int decided_value() const {
    return decide_.peek();  // untimed-ok: post-run observer view
  }

  // --- Transient memory-failure injection (paper §4 extension) ----------
  // Instantaneous register corruptions applied between simulation events;
  // cost no time and bypass the access model, exactly like a bit flip in
  // hardware.  E14 charts which classes Algorithm 1 tolerates.

  /// Clears the flag x[round, value] (a 1 -> 0 corruption).
  void fault_reset_flag(int value, std::size_t round);
  /// Spuriously raises the flag x[round, value] (0 -> 1).
  void fault_set_flag(int value, std::size_t round);
  /// Overwrites the round proposal y[round] with `v`.
  void fault_overwrite_proposal(std::size_t round, int v);
  /// Resets the decide register to ⊥.
  void fault_reset_decide();

 private:
  sim::Register<int>& flag(int value, std::size_t round);

  sim::Duration delta_;
  adapt::DeltaController* controller_ = nullptr;
  std::size_t max_rounds_;      ///< 0 = unbounded (the paper's default)
  sim::RegisterArray<int> x0_;  ///< x[·, 0]
  sim::RegisterArray<int> x1_;  ///< x[·, 1]
  sim::RegisterArray<int> y_;   ///< y[·] over {⊥, 0, 1}
  sim::Register<int> decide_;   ///< {⊥, 0, 1}
  sim::DecisionMonitor monitor_;
  std::size_t max_round_ = 0;
  std::vector<std::pair<sim::Pid, std::size_t>> decision_rounds_;
};

/// Aggregate outcome of a scripted consensus run (tests and benches).
struct ConsensusOutcome {
  bool all_decided = false;
  int value = sim::kBot;
  sim::Time first_decision = -1;
  sim::Time last_decision = -1;
  std::vector<std::uint64_t> steps;       ///< shared accesses per process
  std::vector<std::uint64_t> delays;      ///< delay statements per process
  std::vector<std::size_t> decision_rounds;
  std::size_t max_round = 0;
  std::uint64_t registers_allocated = 0;
};

/// Spawns one participant per input, runs to completion (or `limit`), and
/// summarizes.  `algorithm_delta` is the bound the algorithm assumes.
/// When `sink` is given, the run emits structured trace events (accesses,
/// rounds, decisions); attach the sink to the timing model separately if
/// injected failures should appear too.
ConsensusOutcome run_consensus(const std::vector<int>& inputs,
                               sim::Duration algorithm_delta,
                               std::unique_ptr<sim::TimingModel> timing,
                               std::uint64_t seed = 1,
                               sim::Time limit = sim::kTimeNever,
                               obs::TraceSink* sink = nullptr);

}  // namespace tfr::core
