#include "tfr/core/consensus_rt.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::rt {

RtConsensus::RtConsensus(Config config)
    : config_(config), x0_(0), x1_(0), y_(kBot), decide_(kBot) {
  TFR_REQUIRE(config.delta.count() >= 0);
}

RtConsensus::Result RtConsensus::propose(int input) {
  TFR_REQUIRE(input == 0 || input == 1);
  Result result;
  int v = input;
  std::size_t r = 0;
  for (;;) {
    // Line 1: while decide = ⊥ (also completes the 7-step fast path).
    ++result.steps;
    const int decided = decide_.read();
    if (decided != kBot) {
      result.value = decided;
      result.rounds = r + 1;
      return result;
    }
    // Line 2: flag our preference for round r.
    ++result.steps;
    (v == 0 ? x0_ : x1_).at(r).write(1);
    maybe_stall(config_.faults, "consensus.after_flag");
    // Line 3: publish v as the round's proposal if none is there yet.
    ++result.steps;
    const int proposal = y_.at(r).read();
    maybe_stall(config_.faults, "consensus.after_read_y");
    if (proposal == kBot) {
      ++result.steps;
      y_.at(r).write(v);
    }
    // Line 4: if nobody flagged the conflicting preference, decide.
    ++result.steps;
    const int conflicting = (v == 0 ? x1_ : x0_).at(r).read();
    if (conflicting == 0) {
      maybe_stall(config_.faults, "consensus.before_decide");
      ++result.steps;
      decide_.write(v);
    } else {
      // Lines 5-7: wait out the bound, adopt the proposal, retry.
      ++result.delays;
      spin_for(config_.delta);
      ++result.steps;
      v = y_.at(r).read();
      TFR_INVARIANT(v != kBot);
      r += 1;
    }
  }
}

}  // namespace tfr::rt
