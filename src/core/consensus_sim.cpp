#include "tfr/core/consensus_sim.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"

namespace tfr::core {

SimConsensus::SimConsensus(sim::RegisterSpace& space, sim::Duration delta,
                           std::size_t max_rounds)
    : delta_(delta),
      max_rounds_(max_rounds),
      x0_(space, 0, "x0"),
      x1_(space, 0, "x1"),
      y_(space, sim::kBot, "y"),
      decide_(space, sim::kBot, "decide") {
  TFR_REQUIRE(delta >= 1);
  if (max_rounds_ > 0) {
    // Finitely many registers, allocated up front (§2.1 remark).
    x0_.at(max_rounds_ - 1);
    x1_.at(max_rounds_ - 1);
    y_.at(max_rounds_ - 1);
  }
}

sim::Register<int>& SimConsensus::flag(int value, std::size_t round) {
  return value == 0 ? x0_.at(round) : x1_.at(round);
}

sim::Task<int> SimConsensus::propose(sim::Env env, int input) {
  TFR_REQUIRE(input == 0 || input == 1);
  int v = input;
  std::size_t r = 0;
  std::uint64_t delays = 0;
  for (;;) {
    // Line 1: while decide = ⊥.  (Also the step that completes the fast
    // path: after line 4 wrote `decide`, this read observes it.)
    const int decided = co_await env.read(decide_);
    if (decided != sim::kBot) {
      decision_rounds_.emplace_back(env.pid(), r);
      // Adaptive signal: a failure-free instance costs at most one delay
      // per process (round 0 resolves mixed inputs, round 1 decides), so
      // staying within that budget is a clean instance under the current
      // estimate.  Extra delays already reported on_failure() below.
      if (controller_ != nullptr && delays <= 1) controller_->on_clean();
      co_return decided;  // line 9: decide(decide)
    }
    // Bounded-register mode: the environment promised failures shorter
    // than what max_rounds covers; running out of rounds means it lied.
    TFR_REQUIRE(max_rounds_ == 0 || r < max_rounds_);
    max_round_ = std::max(max_round_, r);
    env.sim().emit({env.now(), env.pid(), obs::EventKind::kRound,
                    static_cast<std::int64_t>(r), 0, 0});
    // Line 2: flag our preference for round r.
    co_await env.write(flag(v, r), 1);
    // Line 3: publish v as the round's proposal if none is there yet.
    const int proposal = co_await env.read(y_.at(r));
    if (proposal == sim::kBot) co_await env.write(y_.at(r), v);
    // Line 4: if nobody flagged the conflicting preference, decide.
    const int conflicting = co_await env.read(flag(1 - v, r));
    if (conflicting == 0) {
      co_await env.write(decide_, v);
      // Loop back to line 1, which reads the decision (7 steps total on
      // the contention-free path, no delay executed).
    } else {
      // Lines 5-7: wait out the bound, adopt the round's proposal, retry.
      // With a controller the bound is the live estimate; a delay beyond
      // round 0 means the previous round's adoption failed to converge —
      // the instance-level symptom of a timing failure.
      ++delays;
      if (controller_ != nullptr) {
        if (r >= 1) controller_->on_failure();
        co_await env.delay(controller_->current());
      } else {
        co_await env.delay(delta_);
      }
      v = co_await env.read(y_.at(r));
      // y[r] ≠ ⊥ here: we reached line 5 because x[r, v̄] = 1, and every
      // process writes y[r] (or saw it written) at line 3 before flagging
      // could be observed — in particular this process executed line 3.
      TFR_INVARIANT(v != sim::kBot);
      r += 1;
    }
  }
}

sim::Process SimConsensus::participant(sim::Env env, int input) {
  const int decided = co_await propose(env, input);
  monitor_.on_decide(env.pid(), decided, env.now());
}

void SimConsensus::fault_reset_flag(int value, std::size_t round) {
  flag(value, round).poke(0);  // untimed-ok: memory-failure injection
}

void SimConsensus::fault_set_flag(int value, std::size_t round) {
  flag(value, round).poke(1);  // untimed-ok: memory-failure injection
}

void SimConsensus::fault_overwrite_proposal(std::size_t round, int v) {
  y_.at(round).poke(v);  // untimed-ok: memory-failure injection
}

void SimConsensus::fault_reset_decide() {
  decide_.poke(sim::kBot);  // untimed-ok: memory-failure injection
}

std::size_t SimConsensus::decision_round(sim::Pid pid) const {
  for (const auto& [p, r] : decision_rounds_) {
    if (p == pid) return r;
  }
  TFR_REQUIRE(!"process has not decided");
  return 0;
}

ConsensusOutcome run_consensus(const std::vector<int>& inputs,
                               sim::Duration algorithm_delta,
                               std::unique_ptr<sim::TimingModel> timing,
                               std::uint64_t seed, sim::Time limit,
                               obs::TraceSink* sink) {
  TFR_REQUIRE(!inputs.empty());
  sim::Simulation simulation(std::move(timing), {.seed = seed, .sink = sink});
  SimConsensus consensus(simulation.space(), algorithm_delta);
  consensus.monitor().set_trace_sink(sink);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
    simulation.spawn([&consensus, input = inputs[i]](sim::Env env) {
      return consensus.participant(env, input);
    });
  }
  simulation.run(limit);

  ConsensusOutcome outcome;
  outcome.all_decided = consensus.monitor().all_decided(inputs.size());
  if (consensus.monitor().decided_count() > 0)
    outcome.value = consensus.decided_value();
  outcome.first_decision = consensus.monitor().first_decision_time();
  outcome.last_decision = consensus.monitor().last_decision_time();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& s = simulation.stats(static_cast<sim::Pid>(i));
    outcome.steps.push_back(s.accesses());
    outcome.delays.push_back(s.delays);
    if (consensus.monitor().has_decided(static_cast<sim::Pid>(i)))
      outcome.decision_rounds.push_back(
          consensus.decision_round(static_cast<sim::Pid>(i)));
  }
  outcome.max_round = consensus.max_round();
  outcome.registers_allocated = simulation.space().allocated();
  return outcome;
}

}  // namespace tfr::core
