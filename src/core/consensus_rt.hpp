// Algorithm 1 on real threads: wait-free binary consensus resilient to
// timing failures, built from std::atomic registers only.
//
// Mirrors core/consensus_sim.hpp line for line; see that header for the
// round structure and the theorem list.  Here Δ is wall-clock
// (nanoseconds) and should be an optimistic(Δ) for the host (§3.3): safety
// never depends on it, a too-small value only costs extra rounds.
//
// An optional FaultInjector stalls the caller at named points, emulating
// preemption-induced timing failures:
//   "consensus.after_flag"      — between line 2 and line 3
//   "consensus.after_read_y"    — between reading and writing y[r]
//   "consensus.before_decide"   — before line 4's decide write

#pragma once

#include <chrono>
#include <cstdint>

#include "tfr/registers/atomic_register.hpp"
#include "tfr/registers/fault_injector.hpp"
#include "tfr/registers/register_array.hpp"

namespace tfr::rt {

class RtConsensus {
 public:
  static constexpr int kBot = -1;

  struct Config {
    Nanos delta{1000};               ///< optimistic(Δ) used by delay()
    FaultInjector* faults = nullptr; ///< optional failure injection
  };

  explicit RtConsensus(Config config);

  RtConsensus(const RtConsensus&) = delete;
  RtConsensus& operator=(const RtConsensus&) = delete;

  struct Result {
    int value = kBot;
    std::uint64_t rounds = 0;  ///< rounds entered by this caller (>= 1)
    std::uint64_t steps = 0;   ///< shared accesses by this caller
    std::uint64_t delays = 0;  ///< delay statements executed
  };

  /// Proposes `input` (0/1) on behalf of the calling thread and blocks
  /// until a decision is reached.  Wait-free once timing holds: progress
  /// does not depend on any other thread taking steps.
  Result propose(int input);

  /// Convenience wrapper returning only the decision.
  int propose_value(int input) { return propose(input).value; }

  /// Snapshot of the decide register (kBot while undecided).
  int decided() const { return decide_.read(); }

 private:
  Config config_;
  RegisterArray<int> x0_;
  RegisterArray<int> x1_;
  RegisterArray<int> y_;
  AtomicRegister<int> decide_;
};

}  // namespace tfr::rt
