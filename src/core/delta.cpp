#include "tfr/core/delta.hpp"

#include <algorithm>
#include <cmath>

#include "tfr/common/contracts.hpp"

namespace tfr::core {

OptimisticDelta::OptimisticDelta(Config config)
    : config_(config), estimate_(config.initial) {
  TFR_REQUIRE(config.min >= 1);
  TFR_REQUIRE(config.max >= config.min);
  TFR_REQUIRE(config.initial >= config.min && config.initial <= config.max);
  TFR_REQUIRE(config.grow_factor > 1.0);
  TFR_REQUIRE(config.shrink_step >= 1);
  TFR_REQUIRE(config.stable_threshold >= 1);
}

void OptimisticDelta::on_progress() {
  ++progress_events_;
  if (++stable_run_ >= config_.stable_threshold) {
    stable_run_ = 0;
    const Duration next = estimate_ - config_.shrink_step;
    if (next >= config_.min && next < estimate_) {
      estimate_ = next;
      ++shrinks_;
    }
  }
}

void OptimisticDelta::on_retry() {
  ++retry_events_;
  stable_run_ = 0;
  const auto grown = static_cast<Duration>(
      std::ceil(static_cast<double>(estimate_) * config_.grow_factor));
  const Duration next = std::min(config_.max, std::max(estimate_ + 1, grown));
  if (next > estimate_) {
    estimate_ = next;
    ++grows_;
  }
}

}  // namespace tfr::core
