#include "tfr/core/consensus_ablation_sim.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"
#include "tfr/core/consensus_sim.hpp"

namespace tfr::core {

AblationConsensus::AblationConsensus(sim::RegisterSpace& space,
                                     sim::Duration delta)
    : delta_(delta),
      x0_(space, 0, "abl.x0"),
      x1_(space, 0, "abl.x1"),
      y_(space, sim::kBot, "abl.y"),
      decide_(space, sim::kBot, "abl.decide") {
  TFR_REQUIRE(delta >= 1);
  monitor_.throw_on_violation(false);  // ablations exist to count failures
}

sim::Register<int>& AblationConsensus::flag(int value, std::size_t round) {
  return value == 0 ? x0_.at(round) : x1_.at(round);
}

sim::Process AblationConsensus::participant(sim::Env env, int input) {
  const int decided = co_await propose(env, input);
  monitor_.on_decide(env.pid(), decided, env.now());
}

sim::Task<int> YFirstConsensus::propose(sim::Env env, int input) {
  TFR_REQUIRE(input == 0 || input == 1);
  int v = input;
  std::size_t r = 0;
  for (;;) {
    const int decided = co_await env.read(decide_);
    if (decided != sim::kBot) co_return decided;
    max_round_ = std::max(max_round_, r);
    // ABLATION: proposal before flag (paper's lines 2 and 3 swapped).
    const int proposal = co_await env.read(y_.at(r));
    if (proposal == sim::kBot) co_await env.write(y_.at(r), v);
    co_await env.write(flag(v, r), 1);
    const int conflicting = co_await env.read(flag(1 - v, r));
    if (conflicting == 0) {
      co_await env.write(decide_, v);
    } else {
      co_await env.delay(delta_);
      v = co_await env.read(y_.at(r));
      TFR_INVARIANT(v != sim::kBot);
      r += 1;
    }
  }
}

sim::Task<int> NoDelayConsensus::propose(sim::Env env, int input) {
  TFR_REQUIRE(input == 0 || input == 1);
  int v = input;
  std::size_t r = 0;
  for (;;) {
    const int decided = co_await env.read(decide_);
    if (decided != sim::kBot) co_return decided;
    max_round_ = std::max(max_round_, r);
    co_await env.write(flag(v, r), 1);
    const int proposal = co_await env.read(y_.at(r));
    if (proposal == sim::kBot) co_await env.write(y_.at(r), v);
    const int conflicting = co_await env.read(flag(1 - v, r));
    if (conflicting == 0) {
      co_await env.write(decide_, v);
    } else {
      // ABLATION: no delay(Δ) before re-reading the proposal.
      v = co_await env.read(y_.at(r));
      TFR_INVARIANT(v != sim::kBot);
      r += 1;
    }
  }
}

AblationOutcome run_ablation(AblationVariant variant,
                             const std::vector<int>& inputs,
                             sim::Duration delta,
                             std::unique_ptr<sim::TimingModel> timing,
                             std::uint64_t seed, sim::Time limit) {
  TFR_REQUIRE(!inputs.empty());
  sim::Simulation simulation(std::move(timing), {.seed = seed});

  AblationOutcome outcome;
  if (variant == AblationVariant::kFaithful) {
    SimConsensus consensus(simulation.space(), delta);
    consensus.monitor().throw_on_violation(false);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
      simulation.spawn([&consensus, input = inputs[i]](sim::Env env) {
        return consensus.participant(env, input);
      });
    }
    simulation.run(limit);
    outcome.all_decided = consensus.monitor().all_decided(inputs.size());
    outcome.agreement_violations =
        consensus.monitor().agreement_violations();
    outcome.max_round = consensus.max_round();
    return outcome;
  }

  std::unique_ptr<AblationConsensus> consensus;
  if (variant == AblationVariant::kYFirst) {
    consensus =
        std::make_unique<YFirstConsensus>(simulation.space(), delta);
  } else {
    consensus =
        std::make_unique<NoDelayConsensus>(simulation.space(), delta);
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    consensus->monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
    simulation.spawn([&consensus, input = inputs[i]](sim::Env env) {
      return consensus->participant(env, input);
    });
  }
  simulation.run(limit);
  outcome.all_decided = consensus->monitor().all_decided(inputs.size());
  outcome.agreement_violations = consensus->monitor().agreement_violations();
  outcome.max_round = consensus->max_round();
  return outcome;
}

}  // namespace tfr::core
