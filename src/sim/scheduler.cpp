#include "tfr/sim/simulation.hpp"

#include <algorithm>

namespace tfr::sim {

Simulation::Simulation(std::unique_ptr<TimingModel> timing, Options options)
    : timing_(std::move(timing)), options_(options), rng_(options.seed) {
  TFR_REQUIRE(timing_ != nullptr);
  space_.set_value_capture(options_.capture_state);
}

Simulation::~Simulation() {
  // Drop pending events before coroutines are destroyed (Process dtors run
  // when processes_ is destroyed); never resume a handle after this point.
  queue_.clear();
}

void Simulation::reset(std::uint64_t seed) {
  // Order matters: pending events reference coroutine frames, so the queue
  // is emptied before processes_ destroys them — mirroring the destructor.
  // Every clear() below keeps its vector's capacity; that is the point.
  queue_.clear();
  processes_.clear();
  stats_.clear();
  crash_time_.clear();
  crash_access_limit_.clear();
  callbacks_.clear();
  trace_.clear();
  pending_exception_ = nullptr;
  now_ = 0;
  next_seq_ = 0;
  rng_.reseed(seed);
  space_.reset();
}

bool Simulation::pop_next_event(Event& out, Time limit, bool& over_limit) {
  // Strategy-driven step: every event enabled at the earliest pending
  // instant is a scheduling option; the strategy — not FIFO order —
  // decides which linearizes first.  The losers are re-queued and offered
  // again at the next iteration (same instant, one option fewer).
  over_limit = false;
  std::vector<Event>& ready = ready_scratch_;
  std::vector<EnabledEvent>& options = options_scratch_;
  while (!queue_.empty()) {
    const Time when = queue_.top().when;
    if (when > limit) {
      over_limit = true;
      return false;
    }
    ready.clear();
    while (!queue_.empty() && queue_.top().when == when) {
      Event event = queue_.top();
      queue_.pop();
      if (event.callback >= 0) {
        // Scheduled callbacks are not scheduling options: they run as soon
        // as their instant is reached, before the strategy picks.
        now_ = event.when;
        callbacks_[static_cast<std::size_t>(event.callback)]();
        continue;
      }
      if (crashed_by(event.pid, event.when)) {
        stats_[static_cast<std::size_t>(event.pid)].crashed = true;
        emit({crash_time_[static_cast<std::size_t>(event.pid)], event.pid,
              obs::EventKind::kCrash, 0, 0, 0});
        continue;
      }
      ready.push_back(event);
    }
    if (ready.empty()) continue;  // every gathered event was a crash skip
    std::sort(ready.begin(), ready.end(),
              [](const Event& a, const Event& b) { return a.pid < b.pid; });
    options.clear();
    for (const Event& e : ready)
      options.push_back(EnabledEvent{e.pid, e.kind, e.reg_uid});
    const std::size_t chosen = options_.strategy->pick(when, options);
    TFR_REQUIRE(chosen < ready.size());
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (i != chosen)
        push_event(ready[i].when, ready[i].pid, ready[i].handle,
                   ready[i].kind, ready[i].reg_uid);
    }
    out = ready[chosen];
    return true;
  }
  return false;
}

Simulation::StepOutcome Simulation::run_step(Time limit) {
  Event event{};
  if (options_.strategy == nullptr) {
    // Default path: FIFO tie-break, byte-identical to the pre-seam
    // simulator (golden traces depend on this).
    for (;;) {
      if (queue_.empty()) return StepOutcome::kIdle;
      const Event& top = queue_.top();
      if (top.when > limit) return StepOutcome::kOverLimit;
      event = top;
      queue_.pop();
      if (event.callback >= 0) {
        now_ = event.when;
        callbacks_[static_cast<std::size_t>(event.callback)]();
        // A callback counts as progress: the caller's stop predicate runs.
        return StepOutcome::kProgress;
      }
      if (crashed_by(event.pid, event.when)) {
        // The access would have linearized at or after the crash instant:
        // it never takes effect and the process takes no further steps.
        stats_[static_cast<std::size_t>(event.pid)].crashed = true;
        emit({crash_time_[static_cast<std::size_t>(event.pid)], event.pid,
              obs::EventKind::kCrash, 0, 0, 0});
        continue;  // crash skips observe no stop predicate
      }
      break;
    }
  } else {
    bool over_limit = false;
    if (!pop_next_event(event, limit, over_limit))
      return over_limit ? StepOutcome::kOverLimit : StepOutcome::kIdle;
  }
  TFR_INVARIANT(event.when >= now_);
  now_ = event.when;
  event.handle.resume();
  if (pending_exception_) {
    std::exception_ptr e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
  return StepOutcome::kProgress;
}

Simulation::RunResult Simulation::run(Time limit,
                                      const std::function<bool()>& stop) {
  if (stop) return run_until(limit, [&stop] { return stop(); });
  return run_until(limit, [] { return false; });
}

void Simulation::schedule_callback(Time when, std::function<void()> fn) {
  TFR_REQUIRE(when >= now_);
  TFR_REQUIRE(fn != nullptr);
  callbacks_.push_back(std::move(fn));
  Event event{when, next_seq_++, /*pid=*/-1, /*handle=*/{},
              AccessKind::kStart, /*reg_uid=*/0,
              static_cast<std::int64_t>(callbacks_.size() - 1)};
  queue_.push(event);
}

void Simulation::crash_at(Pid pid, Time t) {
  TFR_REQUIRE(pid >= 0 && static_cast<std::size_t>(pid) < processes_.size());
  TFR_REQUIRE(t >= 0);
  crash_time_[static_cast<std::size_t>(pid)] = t;
}

void Simulation::crash_after_accesses(Pid pid, std::uint64_t k) {
  TFR_REQUIRE(pid >= 0 && static_cast<std::size_t>(pid) < processes_.size());
  crash_access_limit_[static_cast<std::size_t>(pid)] = k;
}

const ProcessStats& Simulation::stats(Pid pid) const {
  TFR_REQUIRE(pid >= 0 && static_cast<std::size_t>(pid) < stats_.size());
  return stats_[static_cast<std::size_t>(pid)];
}

bool Simulation::all_done() const {
  for (const ProcessStats& s : stats_) {
    if (!s.done() && !s.crashed) return false;
  }
  return true;
}

std::vector<std::pair<Time, Pid>> Simulation::pending_events() const {
  std::vector<Event> copy = queue_.raw();
  std::sort(copy.begin(), copy.end(), [](const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  });
  std::vector<std::pair<Time, Pid>> events;
  events.reserve(copy.size());
  for (const Event& e : copy) events.emplace_back(e.when, e.pid);
  return events;
}

std::uint64_t Simulation::state_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  // Pending events, sorted into a layout-independent order (the heap's
  // internal array depends on push/pop history, which equal states reached
  // along different paths need not share).  Due times are folded relative
  // to now so the signature is translation-invariant in absolute time
  // only when the caller mixes `now` in; we keep it absolute here because
  // scenario cutoffs and monitors may be time-dependent.
  std::vector<Event> copy = queue_.raw();
  std::sort(copy.begin(), copy.end(), [](const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.pid != b.pid) return a.pid < b.pid;
    return a.callback < b.callback;
  });
  mix(static_cast<std::uint64_t>(now_));
  mix(copy.size());
  for (const Event& e : copy) {
    mix(static_cast<std::uint64_t>(e.when - now_));
    mix(static_cast<std::uint64_t>(e.pid));
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.reg_uid);
    mix(static_cast<std::uint64_t>(e.callback >= 0 ? 1 : 0));
  }
  // Per-process accounting: the op-count proxy for each coroutine's
  // control state (see the header caveat).
  mix(stats_.size());
  for (const ProcessStats& s : stats_) {
    mix(s.reads);
    mix(s.writes);
    mix(s.delays);
    mix(static_cast<std::uint64_t>(s.delay_time));
    mix(static_cast<std::uint64_t>(s.done_at));
    mix(static_cast<std::uint64_t>(s.crashed ? 1 : 0));
  }
  // Shared-memory contents (capture mode only; otherwise the caller must
  // have checked state_hashable() — without capture the signature simply
  // omits values, which is only safe when the caller tolerates it).
  if (options_.capture_state) mix(space_.values_fingerprint());
  return h;
}

std::uint64_t Simulation::trace_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const TraceEvent& e : trace_) {
    mix(static_cast<std::uint64_t>(e.when));
    mix(static_cast<std::uint64_t>(e.pid));
    mix(static_cast<std::uint64_t>(e.kind));
  }
  return h;
}

void Simulation::schedule_access(Pid pid, std::coroutine_handle<> h,
                                 std::uint64_t reg_uid, bool is_write) {
  auto& limit = crash_access_limit_[static_cast<std::size_t>(pid)];
  if (stats_[static_cast<std::size_t>(pid)].accesses() >= limit) {
    // crash_after_accesses: the process silently stops before this access.
    stats_[static_cast<std::size_t>(pid)].crashed = true;
    crash_time_[static_cast<std::size_t>(pid)] = now_;
    emit({now_, pid, obs::EventKind::kCrash, 0, 0, 0});
    return;  // never schedule; handle stays suspended until teardown
  }
  const Duration cost = timing_->access_cost(pid, now_, rng_);
  TFR_INVARIANT(cost >= 1);
  push_event(now_ + cost, pid, h,
             is_write ? AccessKind::kWrite : AccessKind::kRead, reg_uid);
}

void Simulation::schedule_delay(Pid pid, Duration d, std::coroutine_handle<> h) {
  // delay(d) takes exactly d time units (paper §1.2 accounting).
  push_event(now_ + d, pid, h, AccessKind::kDelay, 0);
}

void Simulation::on_process_done(Pid pid, std::exception_ptr exception) noexcept {
  stats_[static_cast<std::size_t>(pid)].done_at = now_;
  emit({now_, pid, obs::EventKind::kDone, 0, 0, 0});
  if (exception && !pending_exception_) pending_exception_ = exception;
}

void Simulation::note_read(Pid pid, bool remote) {
  auto& s = stats_[static_cast<std::size_t>(pid)];
  ++s.reads;
  if (remote) ++s.rmr;
  note_trace(pid, 'r');
}

void Simulation::note_write(Pid pid) {
  auto& s = stats_[static_cast<std::size_t>(pid)];
  ++s.writes;
  ++s.rmr;  // writes are always remote in the CC accounting
  note_trace(pid, 'w');
}

void Simulation::note_delay(Pid pid, Duration d) {
  auto& s = stats_[static_cast<std::size_t>(pid)];
  ++s.delays;
  s.delay_time += d;
  note_trace(pid, 'd');
}

void Simulation::note_trace(Pid pid, char kind) {
  if (options_.trace) trace_.push_back(TraceEvent{now_, pid, kind});
}

void Simulation::push_event(Time when, Pid pid, std::coroutine_handle<> h,
                            AccessKind kind, std::uint64_t reg_uid) {
  queue_.push(Event{when, next_seq_++, pid, h, kind, reg_uid});
}

}  // namespace tfr::sim
