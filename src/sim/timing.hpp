// Timing models: how long each shared-memory statement takes, and how
// timing failures are injected.
//
// The paper's model (§1.2): there is a known bound Δ such that every
// statement involving a single shared-memory access takes at most Δ time
// units.  A *timing failure* is precisely a statement that takes longer
// than Δ.  A TimingModel assigns a cost to each access; the FailureInjector
// decorator stretches selected accesses past Δ, which is the only way a
// timing failure can occur in the simulator — so experiments control
// failures exactly.

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "tfr/common/rng.hpp"
#include "tfr/obs/trace.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::sim {

class SchedulerStrategy;  // simulation.hpp: the exploration seam

/// Strategy interface: cost of the next shared-memory access of `pid`
/// issued at virtual time `now`.  Deterministic given the Rng stream.
class TimingModel {
 public:
  virtual ~TimingModel() = default;

  /// Returns the duration of the access.  Must be >= 1.
  virtual Duration access_cost(Pid pid, Time now, Rng& rng) = 0;
};

/// Every access costs exactly `cost` ticks.  With cost == Δ this yields the
/// adversary's slowest legal schedule ("lock step at Δ").
class FixedTiming final : public TimingModel {
 public:
  explicit FixedTiming(Duration cost);
  Duration access_cost(Pid, Time, Rng&) override { return cost_; }

 private:
  Duration cost_;
};

/// Access cost uniform in [lo, hi]; with hi <= Δ this is a legal
/// (failure-free) timing-based execution with arbitrary interleaving.
class UniformTiming final : public TimingModel {
 public:
  UniformTiming(Duration lo, Duration hi);
  Duration access_cost(Pid, Time, Rng& rng) override;

 private:
  Duration lo_;
  Duration hi_;
};

/// Fixed per-process speeds: process i's accesses cost speeds[i] (processes
/// beyond the list use `fallback`).  Models persistently fast/slow
/// processes — a legal schedule as long as every speed <= Δ.  Used for the
/// starvation adversaries of E8.
class PerProcessTiming final : public TimingModel {
 public:
  PerProcessTiming(std::vector<Duration> speeds, Duration fallback);
  Duration access_cost(Pid pid, Time, Rng&) override;

 private:
  std::vector<Duration> speeds_;
  Duration fallback_;
};

/// Fully scripted: per-process queue of explicit costs for its successive
/// accesses; once a queue runs dry the base model takes over.  Lets tests
/// construct exact interleavings (e.g. the canonical Fischer violation).
class ScriptedTiming final : public TimingModel {
 public:
  explicit ScriptedTiming(std::unique_ptr<TimingModel> base);

  /// Appends a cost for pid's next unscripted access.
  void push(Pid pid, Duration cost);
  /// Appends a run of identical costs.
  void push(Pid pid, Duration cost, int repeat);

  Duration access_cost(Pid pid, Time now, Rng& rng) override;

 private:
  std::unique_ptr<TimingModel> base_;
  std::vector<std::deque<Duration>> scripts_;
};

/// One regime of a drifting step-time distribution: from `start` on,
/// access cost is uniform in [lo, hi].  With `ramp` set, lo/hi instead
/// interpolate linearly across the phase toward the next phase's bounds —
/// a gradual drift rather than a step change.
struct TimingPhase {
  Time start = 0;    ///< regime applies from this instant (inclusive)
  Duration lo = 1;
  Duration hi = 1;
  bool ramp = false; ///< ramp toward the next phase (ignored on the last)
};

/// Drifting step-time distribution: the environment's speed changes over
/// virtual time through regime switches and ramps.  The true (pessimistic)
/// Δ of such an environment is max over phases of hi; the adaptive
/// optimistic(Δ) controllers (src/adapt/) are benchmarked against exactly
/// this model — converge after each switch, decay back after recovery.
class PhasedTiming final : public TimingModel {
 public:
  /// Phases must be sorted by start, begin at 0, and each have
  /// 1 <= lo <= hi.
  explicit PhasedTiming(std::vector<TimingPhase> phases);

  Duration access_cost(Pid, Time now, Rng& rng) override;

  /// The phase governing instant `now` (bounds already interpolated when
  /// the phase ramps) — the oracle δ an experiment gates estimates against.
  TimingPhase phase_at(Time now) const;

 private:
  std::vector<TimingPhase> phases_;
};

/// A window of real (virtual) time during which selected processes suffer
/// timing failures: their accesses cost `stretched` (> Δ) ticks.
struct FailureWindow {
  Time begin = 0;
  Time end = 0;  // exclusive
  /// Victim pids; empty means every process is a victim.
  std::vector<Pid> victims{};
  Duration stretched = 0;

  bool applies(Pid pid, Time now) const;
};

/// Decorator that injects timing failures on top of a base model, by
/// windows and/or an independent per-access probability.  Records when the
/// last failed access completes, so experiments can measure convergence
/// relative to the true "failures have ceased" instant.
class FailureInjector final : public TimingModel {
 public:
  /// `delta` is the model's Δ; injected costs must exceed it (checked).
  FailureInjector(std::unique_ptr<TimingModel> base, Duration delta);

  void add_window(FailureWindow window);

  /// Each access (of any process) independently fails with probability `p`,
  /// costing a uniform duration in [Δ+1, stretch_max].
  void set_random_failures(double p, Duration stretch_max);

  Duration access_cost(Pid pid, Time now, Rng& rng) override;

  /// Emits a kTimingFailure event for every injected failure; null = off.
  void set_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  /// Routes the random-failure coin through the exploration seam: with a
  /// strategy attached, each random-failure site becomes an explicit
  /// inject-or-not choice point (options: base cost, stretched cost)
  /// decided by SchedulerStrategy::pick_cost instead of the Rng.  Windowed
  /// failures stay deterministic.  Null restores Rng behaviour.
  void set_strategy(SchedulerStrategy* strategy) { strategy_ = strategy; }

  /// Completion time of the latest failed access so far; kTimeNever never
  /// means "none yet" (returns -1 when no failure has been injected).
  Time last_failure_completion() const { return last_failure_completion_; }
  std::uint64_t failures_injected() const { return failures_injected_; }
  Duration delta() const { return delta_; }

 private:
  void note_failure(Pid pid, Time now, Duration cost);

  std::unique_ptr<TimingModel> base_;
  Duration delta_;
  obs::TraceSink* sink_ = nullptr;
  SchedulerStrategy* strategy_ = nullptr;
  std::vector<FailureWindow> windows_;
  double random_p_ = 0.0;
  Duration random_stretch_max_ = 0;
  Time last_failure_completion_ = -1;
  std::uint64_t failures_injected_ = 0;
};

/// Quantum-based scheduling (paper §4 "scheduling failures"; cf. the
/// quantum/priority scheduling of Anderson-Moir [9, 10]): virtual time is
/// sliced into quanta of length `quantum`, slot q belongs to process
/// (q mod n), and a process's access runs only inside its own quantum
/// (costing `step` <= quantum).  An access issued outside the owner's
/// quantum waits for the next one — so the model guarantees every process
/// a step within n·quantum, which plays the role of Δ.
///
/// A *scheduling failure* confiscates a victim's quanta inside a window
/// (priority inversion, a misbehaving scheduler): its steps are postponed
/// beyond the model's promise.  Time-resilient algorithms must stay safe
/// through confiscation and resume their guarantees afterwards —
/// "resiliency in the presence of scheduling failures is defined in the
/// obvious way" (§4).
class QuantumTiming final : public TimingModel {
 public:
  QuantumTiming(int n, Duration quantum, Duration step);

  /// Confiscates victim's quanta whose start lies in [begin, end).
  void confiscate(Pid victim, Time begin, Time end);

  Duration access_cost(Pid pid, Time now, Rng&) override;

  /// The bound the model promises between a process's consecutive
  /// scheduling opportunities (absent scheduling failures).
  Duration delta_equivalent() const {
    return static_cast<Duration>(n_) * quantum_;
  }
  std::uint64_t postponements() const { return postponements_; }

 private:
  bool confiscated(Pid pid, Time quantum_start) const;

  int n_;
  Duration quantum_;
  Duration step_;
  struct Window {
    Pid victim;
    Time begin;
    Time end;
  };
  std::vector<Window> windows_;
  std::uint64_t postponements_ = 0;
};

/// Convenience factories for the common models.
std::unique_ptr<TimingModel> make_fixed_timing(Duration cost);
std::unique_ptr<TimingModel> make_uniform_timing(Duration lo, Duration hi);
std::unique_ptr<TimingModel> make_phased_timing(
    std::vector<TimingPhase> phases);

}  // namespace tfr::sim
