#include "tfr/sim/timing.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"
#include "tfr/sim/simulation.hpp"

namespace tfr::sim {

FixedTiming::FixedTiming(Duration cost) : cost_(cost) {
  TFR_REQUIRE(cost >= 1);
}

UniformTiming::UniformTiming(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
  TFR_REQUIRE(lo >= 1);
  TFR_REQUIRE(hi >= lo);
}

Duration UniformTiming::access_cost(Pid, Time, Rng& rng) {
  return rng.uniform(lo_, hi_);
}

PerProcessTiming::PerProcessTiming(std::vector<Duration> speeds,
                                   Duration fallback)
    : speeds_(std::move(speeds)), fallback_(fallback) {
  TFR_REQUIRE(fallback >= 1);
  for (Duration s : speeds_) TFR_REQUIRE(s >= 1);
}

Duration PerProcessTiming::access_cost(Pid pid, Time, Rng&) {
  if (pid >= 0 && static_cast<std::size_t>(pid) < speeds_.size())
    return speeds_[static_cast<std::size_t>(pid)];
  return fallback_;
}

ScriptedTiming::ScriptedTiming(std::unique_ptr<TimingModel> base)
    : base_(std::move(base)) {
  TFR_REQUIRE(base_ != nullptr);
}

void ScriptedTiming::push(Pid pid, Duration cost) {
  TFR_REQUIRE(pid >= 0);
  TFR_REQUIRE(cost >= 1);
  if (static_cast<std::size_t>(pid) >= scripts_.size())
    scripts_.resize(static_cast<std::size_t>(pid) + 1);
  scripts_[static_cast<std::size_t>(pid)].push_back(cost);
}

void ScriptedTiming::push(Pid pid, Duration cost, int repeat) {
  TFR_REQUIRE(repeat >= 0);
  for (int i = 0; i < repeat; ++i) push(pid, cost);
}

Duration ScriptedTiming::access_cost(Pid pid, Time now, Rng& rng) {
  if (pid >= 0 && static_cast<std::size_t>(pid) < scripts_.size()) {
    auto& queue = scripts_[static_cast<std::size_t>(pid)];
    if (!queue.empty()) {
      const Duration cost = queue.front();
      queue.pop_front();
      return cost;
    }
  }
  return base_->access_cost(pid, now, rng);
}

PhasedTiming::PhasedTiming(std::vector<TimingPhase> phases)
    : phases_(std::move(phases)) {
  TFR_REQUIRE(!phases_.empty());
  TFR_REQUIRE(phases_.front().start == 0);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    TFR_REQUIRE(phases_[i].lo >= 1);
    TFR_REQUIRE(phases_[i].hi >= phases_[i].lo);
    if (i > 0) TFR_REQUIRE(phases_[i].start > phases_[i - 1].start);
  }
}

TimingPhase PhasedTiming::phase_at(Time now) const {
  TFR_REQUIRE(now >= 0);
  // Last phase whose start is <= now.
  std::size_t i = phases_.size() - 1;
  while (phases_[i].start > now) --i;
  TimingPhase phase = phases_[i];
  if (phase.ramp && i + 1 < phases_.size()) {
    // Linear interpolation toward the next phase's bounds over this
    // phase's span (integer arithmetic keeps replay exact).
    const TimingPhase& next = phases_[i + 1];
    const Time span = next.start - phase.start;
    const Time into = now - phase.start;
    phase.lo += (next.lo - phase.lo) * into / span;
    phase.hi += (next.hi - phase.hi) * into / span;
    if (phase.hi < phase.lo) phase.hi = phase.lo;
  }
  return phase;
}

Duration PhasedTiming::access_cost(Pid, Time now, Rng& rng) {
  const TimingPhase phase = phase_at(now);
  return rng.uniform(phase.lo, phase.hi);
}

bool FailureWindow::applies(Pid pid, Time now) const {
  if (now < begin || now >= end) return false;
  if (victims.empty()) return true;
  return std::find(victims.begin(), victims.end(), pid) != victims.end();
}

FailureInjector::FailureInjector(std::unique_ptr<TimingModel> base,
                                 Duration delta)
    : base_(std::move(base)), delta_(delta) {
  TFR_REQUIRE(base_ != nullptr);
  TFR_REQUIRE(delta >= 1);
}

void FailureInjector::add_window(FailureWindow window) {
  TFR_REQUIRE(window.begin <= window.end);
  TFR_REQUIRE(window.stretched > delta_);
  windows_.push_back(std::move(window));
}

void FailureInjector::set_random_failures(double p, Duration stretch_max) {
  TFR_REQUIRE(p >= 0.0 && p <= 1.0);
  if (p > 0.0) TFR_REQUIRE(stretch_max > delta_);
  random_p_ = p;
  random_stretch_max_ = stretch_max;
}

Duration FailureInjector::access_cost(Pid pid, Time now, Rng& rng) {
  for (const FailureWindow& w : windows_) {
    if (w.applies(pid, now)) {
      note_failure(pid, now, w.stretched);
      return w.stretched;
    }
  }
  if (random_p_ > 0.0) {
    if (strategy_ != nullptr) {
      // Exploration seam: the probabilistic site becomes an explicit
      // inject-or-not choice point driven by the strategy.
      const Duration base_cost = base_->access_cost(pid, now, rng);
      const std::vector<Duration> choices{base_cost, random_stretch_max_};
      const std::size_t pick = strategy_->pick_cost(pid, choices);
      TFR_REQUIRE(pick < choices.size());
      if (pick == 1) {
        note_failure(pid, now, random_stretch_max_);
        return random_stretch_max_;
      }
      return base_cost;
    }
    if (rng.bernoulli(random_p_)) {
      const Duration cost = rng.uniform(delta_ + 1, random_stretch_max_);
      note_failure(pid, now, cost);
      return cost;
    }
  }
  return base_->access_cost(pid, now, rng);
}

void FailureInjector::note_failure(Pid pid, Time now, Duration cost) {
  ++failures_injected_;
  last_failure_completion_ = std::max(last_failure_completion_, now + cost);
  if (sink_ != nullptr) {
    sink_->append({now, pid, obs::EventKind::kTimingFailure, cost, delta_, 0});
  }
}

QuantumTiming::QuantumTiming(int n, Duration quantum, Duration step)
    : n_(n), quantum_(quantum), step_(step) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(quantum >= 1);
  TFR_REQUIRE(step >= 1 && step <= quantum);
}

void QuantumTiming::confiscate(Pid victim, Time begin, Time end) {
  TFR_REQUIRE(begin <= end);
  windows_.push_back(Window{victim, begin, end});
}

bool QuantumTiming::confiscated(Pid pid, Time quantum_start) const {
  for (const Window& w : windows_) {
    if (w.victim == pid && quantum_start >= w.begin && quantum_start < w.end)
      return true;
  }
  return false;
}

Duration QuantumTiming::access_cost(Pid pid, Time now, Rng&) {
  const auto owner_of = [this](Time t) {
    return static_cast<Pid>((t / quantum_) % n_);
  };
  // Fast path: we own the current quantum, it is not confiscated, and the
  // step completes before the quantum ends.
  const Time quantum_start = (now / quantum_) * quantum_;
  if (owner_of(now) == pid && !confiscated(pid, quantum_start) &&
      now + step_ <= quantum_start + quantum_) {
    return step_;
  }
  // Otherwise wait for our next usable quantum.
  Time start = quantum_start + quantum_;
  while (owner_of(start) != pid || confiscated(pid, start)) {
    if (confiscated(pid, start) && owner_of(start) == pid) ++postponements_;
    start += quantum_;
  }
  return (start - now) + step_;
}

std::unique_ptr<TimingModel> make_fixed_timing(Duration cost) {
  return std::make_unique<FixedTiming>(cost);
}

std::unique_ptr<TimingModel> make_uniform_timing(Duration lo, Duration hi) {
  return std::make_unique<UniformTiming>(lo, hi);
}

std::unique_ptr<TimingModel> make_phased_timing(
    std::vector<TimingPhase> phases) {
  return std::make_unique<PhasedTiming>(std::move(phases));
}

}  // namespace tfr::sim
