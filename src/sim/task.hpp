// Task<T>: a lazy, move-only coroutine used to compose simulated process
// logic (e.g. a mutex algorithm's entry section awaited from a workload
// loop).  Awaiting a Task starts it via symmetric transfer and resumes the
// awaiter when the task completes; the whole chain suspends to the
// simulator whenever the innermost coroutine awaits a shared-memory access
// or a delay.
//
// Tasks are single-consumer and must be awaited at most once.
//
// PORTABILITY NOTE (GCC 12): co_await expressions must appear as full
// statements or as the initializer of a declaration, e.g.
//     const int v = co_await env.read(reg);
// Embedding them in larger expressions — `while (co_await ... != 0)`,
// `if (co_await ... == x)`, `f(co_await ...)` — is miscompiled by GCC 12's
// coroutine frame layout (silently corrupts the awaiting frame).  All
// algorithm code in this repository follows the hoisted style; keep new
// code that way.

#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "tfr/common/contracts.hpp"

namespace tfr::sim {

template <class T>
class Task;

namespace detail {

struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    // Resume whoever co_awaited us; if nobody did (detached task, which we
    // do not use) park on a no-op coroutine.
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  TaskFinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <class T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> result;

  Task<T> get_return_object();
  void return_value(T value) { result.emplace(std::move(value)); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}
};

}  // namespace detail

template <class T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  /// Awaiter: starts the task on suspend, yields its result on resume.
  struct Awaiter {
    Handle handle;

    bool await_ready() const noexcept { return !handle || handle.done(); }

    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> continuation) noexcept {
      handle.promise().continuation = continuation;
      return handle;  // symmetric transfer: start running the task
    }

    T await_resume() {
      TFR_INVARIANT(handle && handle.done());
      auto& promise = handle.promise();
      if (promise.exception) std::rethrow_exception(promise.exception);
      if constexpr (!std::is_void_v<T>) {
        TFR_INVARIANT(promise.result.has_value());
        return std::move(*promise.result);
      }
    }
  };

  Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

namespace detail {

template <class T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace tfr::sim
