// Basic vocabulary types of the timing-based shared-memory simulator.
//
// The simulator realises the paper's model (§1.2): virtual time advances in
// abstract ticks; every statement that accesses shared memory takes at most
// Δ ticks unless a *timing failure* stretches it; an explicit delay(d)
// statement takes exactly d ticks.  Time is virtual and deterministic, so
// the paper's bounds ("decides within 15·Δ") can be checked exactly.

#pragma once

#include <cstdint>
#include <limits>

namespace tfr::sim {

/// Virtual time, in abstract ticks.
using Time = std::int64_t;

/// A span of virtual time, in abstract ticks.
using Duration = std::int64_t;

/// Process identifier; processes are numbered 0..n-1 by spawn order.
using Pid = int;

/// Sentinel for "never".
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/// The ⊥ (bottom / unset) value used by registers holding {⊥, 0, 1} and
/// similar domains throughout the paper's algorithms.
inline constexpr int kBot = -1;

}  // namespace tfr::sim
