#include "tfr/sim/monitor.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"

namespace tfr::sim {

void DecisionMonitor::set_input(Pid pid, int input) {
  inputs_[pid] = input;
  input_values_.insert(input);
}

void DecisionMonitor::on_decide(Pid pid, int value, Time now) {
  // One decision per process.
  if (decisions_.count(pid)) {
    ++agreement_violations_;
    note_violation(pid, now, "decided-twice");
    if (throw_on_violation_) TFR_INVARIANT(!"process decided twice");
    return;
  }
  // Validity: the decision must be some process's input.
  if (!input_values_.empty() && input_values_.count(value) == 0) {
    ++validity_violations_;
    note_violation(pid, now, "validity");
    if (throw_on_violation_) TFR_INVARIANT(!"decided a non-input value");
  }
  // Agreement: all decisions equal.
  if (!decisions_.empty() && decisions_.begin()->second != value) {
    ++agreement_violations_;
    note_violation(pid, now, "agreement");
    if (throw_on_violation_) TFR_INVARIANT(!"conflicting decisions");
  }
  decisions_[pid] = value;
  if (first_decision_time_ < 0) first_decision_time_ = now;
  last_decision_time_ = now;
  if (sink_ != nullptr)
    sink_->append({now, pid, obs::EventKind::kDecide, value, 0, 0});
}

void DecisionMonitor::note_violation(Pid pid, Time now, const char* what) {
  if (sink_ != nullptr)
    sink_->append(
        {now, pid, obs::EventKind::kViolation, 0, 0, sink_->intern(what)});
}

int DecisionMonitor::decision(Pid pid) const {
  auto it = decisions_.find(pid);
  TFR_REQUIRE(it != decisions_.end());
  return it->second;
}

void MutexMonitor::enter_entry(Pid pid, Time now) {
  TFR_REQUIRE(in_entry_.count(pid) == 0);
  TFR_REQUIRE(in_cs_.count(pid) == 0);
  in_entry_.insert(pid);
  entry_since_[pid] = now;
  emit(pid, now, obs::EventKind::kEntry);
  update_starved(now);
}

void MutexMonitor::enter_cs(Pid pid, Time now) {
  TFR_REQUIRE(in_entry_.count(pid) == 1);
  if (!in_cs_.empty()) {
    ++violations_;
    if (sink_ != nullptr)
      sink_->append({now, pid, obs::EventKind::kViolation, 0, 0,
                     sink_->intern("mutual-exclusion")});
    if (throw_on_violation_)
      TFR_INVARIANT(!"mutual exclusion violated: two processes in the CS");
  }
  in_entry_.erase(pid);
  in_cs_.insert(pid);
  ++cs_entries_;
  ++entries_by_pid_[pid];
  const Duration wait = now - entry_since_[pid];
  auto& mw = max_wait_[pid];
  mw = std::max(mw, wait);
  waits_.push_back(Wait{pid, entry_since_[pid], wait});
  emit(pid, now, obs::EventKind::kCsEnter, wait);
  update_starved(now);
}

void MutexMonitor::exit_cs(Pid pid, Time now) {
  TFR_REQUIRE(in_cs_.count(pid) == 1);
  in_cs_.erase(pid);
  emit(pid, now, obs::EventKind::kCsExit);
  update_starved(now);
}

void MutexMonitor::leave_exit(Pid pid, Time now) {
  // Exit code runs outside both entry and CS; nothing to track beyond the
  // starvation metric, which only depends on entry/CS occupancy.
  emit(pid, now, obs::EventKind::kExitDone);
  update_starved(now);
}

void MutexMonitor::emit(Pid pid, Time now, obs::EventKind kind,
                        std::int64_t a) {
  if (sink_ != nullptr) sink_->append({now, pid, kind, a, 0, 0});
}

std::uint64_t MutexMonitor::cs_entries(Pid pid) const {
  auto it = entries_by_pid_.find(pid);
  return it == entries_by_pid_.end() ? 0 : it->second;
}

Duration MutexMonitor::time_complexity(Time from) const {
  Duration longest = 0;
  for (const StarvedInterval& iv : intervals_) {
    if (iv.begin >= from) longest = std::max(longest, iv.length());
  }
  // An interval still open at the end of the run is not closed here; callers
  // measuring live deadlock should inspect currently_in_entry()/in_cs().
  return longest;
}

Duration MutexMonitor::max_wait(Pid pid) const {
  auto it = max_wait_.find(pid);
  return it == max_wait_.end() ? 0 : it->second;
}

Duration MutexMonitor::max_wait() const {
  Duration longest = 0;
  for (const auto& [pid, w] : max_wait_) longest = std::max(longest, w);
  return longest;
}

Duration MutexMonitor::max_wait_starting_at(Time from) const {
  Duration longest = 0;
  for (const Wait& w : waits_) {
    if (w.begin >= from) longest = std::max(longest, w.length);
  }
  return longest;
}

Duration MutexMonitor::longest_pending_wait(Time now) const {
  Duration longest = 0;
  for (Pid pid : in_entry_) {
    const auto it = entry_since_.find(pid);
    if (it != entry_since_.end())
      longest = std::max(longest, now - it->second);
  }
  return longest;
}

void MutexMonitor::update_starved(Time now) {
  const bool starving_now = in_cs_.empty() && !in_entry_.empty();
  if (starving_now && !starving_) {
    starving_ = true;
    starved_begin_ = now;
  } else if (!starving_now && starving_) {
    starving_ = false;
    intervals_.push_back(StarvedInterval{starved_begin_, now});
  }
}

}  // namespace tfr::sim
