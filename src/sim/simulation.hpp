// The discrete-event simulator for timing-based shared-memory systems.
//
// Model (paper §1.2): processes are sequential programs whose statements
// access at most one shared register.  Each access issued at time t
// linearizes at t + cost, where cost is chosen by the TimingModel; a
// failure-free model keeps cost <= Δ, a FailureInjector may exceed Δ (that
// *is* a timing failure).  delay(d) completes after exactly d ticks.  Local
// computation is free, matching the paper's time-complexity accounting
// (only shared accesses and delays cost time).
//
// Processes are C++20 coroutines: algorithm code reads like the paper's
// pseudocode, with `co_await env.read(reg)` / `co_await env.write(reg, v)`
// / `co_await env.delay(d)` at each numbered statement.  The simulator is
// single-threaded and, given (timing model, seed), fully deterministic.

#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/common/rng.hpp"
#include "tfr/obs/trace.hpp"
#include "tfr/sim/register.hpp"
#include "tfr/sim/timing.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::sim {

class Simulation;

/// What a pending simulator event will do when it linearizes — the
/// metadata a SchedulerStrategy needs to reason about conflicts.
enum class AccessKind : std::uint8_t {
  kStart = 0,  ///< first step of a spawned process (no shared access)
  kRead = 1,   ///< a register read linearizes
  kWrite = 2,  ///< a register write linearizes
  kDelay = 3,  ///< a delay(d) completes (no shared access)
};

/// One event that is enabled (due to linearize at the current instant).
struct EnabledEvent {
  Pid pid = -1;
  AccessKind kind = AccessKind::kStart;
  /// Stable register uid (RegisterSpace allocation order) for
  /// kRead/kWrite; 0 for kStart/kDelay.
  std::uint64_t reg = 0;
};

/// Two enabled events are *dependent* iff they touch the same register
/// and at least one writes it — the register-conflict independence
/// relation used by mcheck's partial-order reduction.
inline bool events_dependent(const EnabledEvent& a, const EnabledEvent& b) {
  const bool a_access =
      a.kind == AccessKind::kRead || a.kind == AccessKind::kWrite;
  const bool b_access =
      b.kind == AccessKind::kRead || b.kind == AccessKind::kWrite;
  if (!a_access || !b_access || a.reg != b.reg) return false;
  return a.kind == AccessKind::kWrite || b.kind == AccessKind::kWrite;
}

/// The scheduler seam: when several events are enabled at the same
/// instant, a strategy — not the FIFO tie-break — decides which
/// linearizes next, and timing models may route per-access cost choices
/// (inject a failure or not, run fast or slow) through it instead of the
/// Rng.  The default simulator behaviour (no strategy) is unchanged:
/// FIFO tie-breaks, Rng-driven costs.
class SchedulerStrategy {
 public:
  virtual ~SchedulerStrategy() = default;

  /// Picks which of the simultaneously-enabled `options` (sorted by pid,
  /// never empty) linearizes next.  Must return an index < options.size().
  virtual std::size_t pick(Time now,
                           const std::vector<EnabledEvent>& options) = 0;

  /// Timing choice seam: picks among candidate costs for pid's next
  /// access (all >= 1, ascending).  FailureInjector routes its
  /// inject-or-not coin here when a strategy is attached; mcheck's
  /// explorer enumerates every branch.  Default: the first (cheapest).
  virtual std::size_t pick_cost(Pid pid,
                                const std::vector<Duration>& choices) {
    (void)pid;
    (void)choices;
    return 0;
  }

  /// True once a replaying strategy has consumed its whole script — used
  /// as a stop predicate when re-running a recorded counterexample.
  virtual bool exhausted() const { return false; }
};

/// The outermost coroutine of one simulated process.  Created by a spawn
/// factory; owned and driven by the Simulation.
class Process {
 public:
  struct promise_type {
    Simulation* sim = nullptr;
    Pid pid = -1;
    std::exception_ptr exception{};

    Process get_return_object() {
      return Process(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  Handle handle() const { return handle_; }

 private:
  explicit Process(Handle handle) : handle_(handle) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

/// Per-process accounting: how many shared-memory steps and delays the
/// process took — the quantities the paper's theorems bound (e.g. "decides
/// after 7 steps").
struct ProcessStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t delays = 0;
  /// Remote memory references (cache-coherent model; see Register RMR
  /// notes): reads that missed the cache plus all writes.
  std::uint64_t rmr = 0;
  Duration delay_time = 0;
  Time done_at = -1;     ///< completion time; -1 while running
  bool crashed = false;  ///< killed by fault injection

  std::uint64_t accesses() const { return reads + writes; }
  bool done() const { return done_at >= 0; }
};

/// Handle through which a simulated process touches the world.  Cheap to
/// copy; passed by value into process coroutines.
class Env {
 public:
  Env() = default;

  Pid pid() const { return pid_; }
  Time now() const;
  Rng& rng() const;
  Simulation& sim() const { return *sim_; }

  /// Awaitable timed read of a shared register.
  template <class T>
  auto read(const Register<T>& reg) const;

  /// Awaitable timed write of a shared register.
  template <class T>
  auto write(Register<T>& reg, T value) const;

  /// Awaitable delay(d) statement: completes after exactly d ticks.
  auto delay(Duration d) const;

 private:
  friend class Simulation;
  Env(Simulation* sim, Pid pid) : sim_(sim), pid_(pid) {}

  Simulation* sim_ = nullptr;
  Pid pid_ = -1;
};

struct SimulationOptions {
  std::uint64_t seed = 1;
  bool trace = false;  ///< record a linearization trace (determinism tests)
  /// Structured event sink (observability layer); null = no tracing.
  /// Register accesses, delays, crashes and completions are emitted by the
  /// simulator itself; timing models and monitors attach separately.
  obs::TraceSink* sink = nullptr;
  /// Scheduler seam: when set, same-instant tie-breaks are decided by the
  /// strategy instead of FIFO order (mcheck exploration / replay).  Must
  /// outlive the simulation.
  SchedulerStrategy* strategy = nullptr;
  /// When true, registers announce value-hash thunks to the RegisterSpace
  /// so state_fingerprint() can fold shared-memory contents in — mcheck's
  /// frontier state hashing.  Off by default: capture costs one registry
  /// append per register construction.
  bool capture_state = false;
};

class Simulation {
 public:
  using Options = SimulationOptions;

  explicit Simulation(std::unique_ptr<TimingModel> timing,
                      Options options = Options{});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Spawns a process.  `factory` is invoked with the process's Env and
  /// must return its Process coroutine.  The process takes its first step
  /// at time `start`.  Returns the new pid (dense, from 0).
  template <class Factory>
  Pid spawn(Factory&& factory, Time start = 0) {
    const Pid pid = static_cast<Pid>(processes_.size());
    stats_.emplace_back();
    crash_time_.push_back(kTimeNever);
    crash_access_limit_.push_back(std::uint64_t(-1));
    Env env(this, pid);
    processes_.push_back(std::forward<Factory>(factory)(env));
    Process::Handle h = processes_.back().handle();
    TFR_REQUIRE(h);
    h.promise().sim = this;
    h.promise().pid = pid;
    push_event(start, pid, h, AccessKind::kStart, 0);
    return pid;
  }

  /// Rewinds the simulation to its just-constructed state while *keeping*
  /// every heap buffer at capacity: the event heap's backing vector, the
  /// per-process stat/crash vectors, the linearization trace and the
  /// callback list are cleared but not freed.  This is the re-execution
  /// fast path for stateless exploration (mcheck runs the same scenario
  /// hundreds of thousands of times): reconstructing a Simulation per run
  /// pays allocation and teardown on every execution, reset() pays it
  /// once.  The timing model, options (sink/strategy/trace flag) and all
  /// buffer capacities survive; processes, pending events, callbacks,
  /// stats, register accounting and the Rng do not.  Callers must drop
  /// any objects referencing the previous run's registers first.
  void reset(std::uint64_t seed);

  Time now() const { return now_; }
  Rng& rng() { return rng_; }
  TimingModel& timing() { return *timing_; }
  RegisterSpace& space() { return space_; }
  /// The scheduler strategy, or null when tie-breaks are FIFO.
  SchedulerStrategy* strategy() const { return options_.strategy; }

  /// The structured trace sink, or null when event tracing is off.
  obs::TraceSink* trace_sink() const { return options_.sink; }
  /// Appends to the sink when one is attached; no-op otherwise.
  void emit(const obs::Event& event) {
    if (options_.sink != nullptr) options_.sink->append(event);
  }
  /// Interns a label in the attached sink (0 when tracing is off).
  std::uint32_t trace_label(std::string_view name) {
    return options_.sink != nullptr ? options_.sink->intern(name) : 0;
  }

  enum class RunResult {
    Idle,       ///< no events left: every process finished or crashed
    TimeLimit,  ///< next event lies beyond the limit; run() may be re-invoked
    Stopped,    ///< the stop predicate fired
  };

  /// Drives the event loop.  Processes events with time <= limit; after
  /// each event evaluates `stop` (if given).  Exceptions escaping a process
  /// (including contract violations in algorithm code) are rethrown here.
  RunResult run(Time limit = kTimeNever,
                const std::function<bool()>& stop = {});

  /// Statically-dispatched twin of run(): the stop predicate is a template
  /// parameter, so a lambda inlines into the event loop instead of paying
  /// a std::function indirection per event.  This is the hot path for
  /// mcheck's re-execution engine, which evaluates its stop condition
  /// after every scheduler pick.
  template <class Stop>
  RunResult run_until(Time limit, Stop&& stop) {
    for (;;) {
      const StepOutcome outcome = run_step(limit);
      if (outcome == StepOutcome::kIdle) return RunResult::Idle;
      if (outcome == StepOutcome::kOverLimit) return RunResult::TimeLimit;
      if (stop()) return RunResult::Stopped;
    }
  }

  /// Schedules `fn` to run at virtual time `when` (>= now), outside any
  /// process — the channel-level interception seam: network adversaries
  /// use it to mark partition begin/heal instants in the trace and to
  /// reconfigure fault schedules deterministically mid-run.  Callbacks at
  /// the same instant run in scheduling order, before process events are
  /// offered to any SchedulerStrategy; they must not co_await.
  void schedule_callback(Time when, std::function<void()> fn);

  /// Kills `pid` at time t: accesses linearizing at or after t never happen.
  void crash_at(Pid pid, Time t);

  /// Kills `pid` after it has performed exactly `k` shared-memory accesses.
  void crash_after_accesses(Pid pid, std::uint64_t k);

  std::size_t process_count() const { return processes_.size(); }
  const ProcessStats& stats(Pid pid) const;
  /// True when every process has finished or crashed.
  bool all_done() const;

  /// Snapshot of pending (time, pid) events — diagnosis and tests.
  std::vector<std::pair<Time, Pid>> pending_events() const;

  /// FNV-1a signature of the *current* simulation state: pending events
  /// (relative due times, pid, kind, register), per-process accounting
  /// (reads/writes/delays/done/crashed — a proxy for each coroutine's
  /// control state) and, with Options::capture_state, every live
  /// register's value.  Two runs reaching an equal true state hash equal;
  /// the converse is probabilistic (64-bit) and the process-state proxy is
  /// not exact — callers using this to prune exploration accept that
  /// caveat (see mcheck::Reduction::kSourceDpor).
  std::uint64_t state_fingerprint() const;

  /// False when some live register's value type cannot be byte-hashed;
  /// state_fingerprint() is then blind to register contents and pruning
  /// on it would be unsound.
  bool state_hashable() const {
    return !options_.capture_state || space_.values_hashable();
  }

  /// FNV-1a hash of the linearization trace (requires Options::trace).
  std::uint64_t trace_hash() const;
  std::size_t trace_length() const { return trace_.size(); }

  // --- internal API used by awaiters and Process (do not call directly) ---
  void schedule_access(Pid pid, std::coroutine_handle<> h,
                       std::uint64_t reg_uid, bool is_write);
  void schedule_delay(Pid pid, Duration d, std::coroutine_handle<> h);
  void on_process_done(Pid pid, std::exception_ptr exception) noexcept;
  void note_read(Pid pid, bool remote);
  void note_write(Pid pid);
  void note_delay(Pid pid, Duration d);

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  ///< FIFO tie-break => full determinism
    Pid pid;
    std::coroutine_handle<> handle;
    AccessKind kind;        ///< what linearizes when this event resumes
    std::uint64_t reg_uid;  ///< register uid for kRead/kWrite; 0 otherwise
    std::int64_t callback = -1;  ///< index into callbacks_; -1 = process event
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Min-heap of pending events over a flat vector that is *pooled*: pop()
  /// and clear() never release storage, so a simulation that is reset()
  /// and re-driven (the mcheck fast path) reaches a steady state with zero
  /// per-push allocations.  Ordering is identical to the
  /// std::priority_queue<Event, vector, EventLater> it replaces.
  class EventHeap {
   public:
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const Event& top() const { return events_.front(); }
    void push(const Event& event) {
      events_.push_back(event);
      std::push_heap(events_.begin(), events_.end(), EventLater{});
    }
    void pop() {
      std::pop_heap(events_.begin(), events_.end(), EventLater{});
      events_.pop_back();
    }
    void clear() { events_.clear(); }
    /// Heap-ordered backing storage (diagnosis: pending_events()).
    const std::vector<Event>& raw() const { return events_; }
    std::size_t capacity() const { return events_.capacity(); }

   private:
    std::vector<Event> events_;
  };

  enum class StepOutcome : std::uint8_t { kIdle, kOverLimit, kProgress };

  /// Executes exactly one callback or process event (skipping crashed
  /// entries, which observe no stop predicate — matching run()'s historic
  /// behaviour).  Factored out of run() so run_until() can template the
  /// stop predicate around it.
  StepOutcome run_step(Time limit);

  void push_event(Time when, Pid pid, std::coroutine_handle<> h,
                  AccessKind kind, std::uint64_t reg_uid);
  /// Strategy-driven variant of the event-loop step: pops every event
  /// enabled at the earliest instant and lets the strategy pick.
  bool pop_next_event(Event& out, Time limit, bool& over_limit);
  bool crashed_by(Pid pid, Time when) const {
    return crash_time_[static_cast<std::size_t>(pid)] <= when;
  }
  void note_trace(Pid pid, char kind);

  std::unique_ptr<TimingModel> timing_;
  Options options_;
  Rng rng_;
  RegisterSpace space_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventHeap queue_;
  /// Scratch for the strategy-driven step (pop_next_event): cleared and
  /// refilled every pick, never shrunk — per-step allocations would
  /// dominate mcheck's replay loop.
  std::vector<Event> ready_scratch_;
  std::vector<EnabledEvent> options_scratch_;
  std::vector<Process> processes_;
  std::vector<ProcessStats> stats_;
  std::vector<Time> crash_time_;
  std::vector<std::uint64_t> crash_access_limit_;
  std::exception_ptr pending_exception_{};
  std::vector<std::function<void()>> callbacks_;
  struct TraceEvent {
    Time when;
    Pid pid;
    char kind;
  };
  std::vector<TraceEvent> trace_;
};

// ---------------------------------------------------------------------------
// Awaiter implementations.

namespace detail {

template <class T>
struct ReadAwaiter {
  Simulation* sim;
  Pid pid;
  const Register<T>* reg;
  mutable Time issued = 0;  ///< issue instant; the access spans to resume

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    issued = sim->now();
    sim->schedule_access(pid, h, reg->uid(), /*is_write=*/false);
  }
  T await_resume() const {
    const bool remote = reg->note_read_rmr(pid);
    sim->note_read(pid, remote);
    if (sim->trace_sink() != nullptr) {
      sim->emit({issued, pid, obs::EventKind::kRead, sim->now() - issued,
                 remote ? 1 : 0, sim->trace_label(reg->name())});
    }
    return reg->load_linearized();
  }
};

template <class T>
struct WriteAwaiter {
  Simulation* sim;
  Pid pid;
  Register<T>* reg;
  T value;
  Time issued = 0;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    issued = sim->now();
    sim->schedule_access(pid, h, reg->uid(), /*is_write=*/true);
  }
  void await_resume() {
    sim->note_write(pid);
    reg->note_write_rmr(pid);
    if (sim->trace_sink() != nullptr) {
      std::int64_t traced = 0;
      if constexpr (std::is_convertible_v<T, std::int64_t>)
        traced = static_cast<std::int64_t>(value);
      sim->emit({issued, pid, obs::EventKind::kWrite, sim->now() - issued,
                 traced, sim->trace_label(reg->name())});
    }
    reg->store_linearized(std::move(value));
  }
};

struct DelayAwaiter {
  Simulation* sim;
  Pid pid;
  Duration d;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim->schedule_delay(pid, d, h);
  }
  void await_resume() const {
    sim->note_delay(pid, d);
    sim->emit({sim->now() - d, pid, obs::EventKind::kDelay, d, 0, 0});
  }
};

}  // namespace detail

template <class T>
auto Env::read(const Register<T>& reg) const {
  TFR_REQUIRE(sim_ != nullptr);
  return detail::ReadAwaiter<T>{sim_, pid_, &reg};
}

template <class T>
auto Env::write(Register<T>& reg, T value) const {
  TFR_REQUIRE(sim_ != nullptr);
  return detail::WriteAwaiter<T>{sim_, pid_, &reg, std::move(value)};
}

inline auto Env::delay(Duration d) const {
  TFR_REQUIRE(sim_ != nullptr);
  TFR_REQUIRE(d >= 0);
  return detail::DelayAwaiter{sim_, pid_, d};
}

inline Time Env::now() const { return sim_->now(); }
inline Rng& Env::rng() const { return sim_->rng(); }

inline void Process::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  promise_type& p = h.promise();
  p.sim->on_process_done(p.pid, p.exception);
}

}  // namespace tfr::sim
