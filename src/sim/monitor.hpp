// Invariant monitors: untimed observers that algorithm code notifies at
// semantically meaningful points (deciding a value, entering the critical
// section, ...).  Monitors check the paper's safety properties online and
// accumulate the quantities its theorems bound.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tfr/obs/trace.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::sim {

/// Observes a consensus execution: validity, agreement, termination times.
class DecisionMonitor {
 public:
  /// Registers pid's input (call before the run).
  void set_input(Pid pid, int input);

  /// Algorithm code calls this when pid decides `value` at time `now`.
  /// Enforces: one decision per process; agreement; validity.
  /// Violations are recorded; they also throw iff throw_on_violation(true).
  void on_decide(Pid pid, int value, Time now);

  void throw_on_violation(bool enabled) { throw_on_violation_ = enabled; }

  /// Emits kDecide / kViolation events; null = off.
  void set_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  std::size_t decided_count() const { return decisions_.size(); }
  bool has_decided(Pid pid) const { return decisions_.count(pid) != 0; }
  int decision(Pid pid) const;
  /// True iff at least `n` processes decided.
  bool all_decided(std::size_t n) const { return decisions_.size() >= n; }

  /// Safety verdicts (over everything observed so far).
  bool agreement_holds() const { return agreement_violations_ == 0; }
  bool validity_holds() const { return validity_violations_ == 0; }
  std::uint64_t agreement_violations() const { return agreement_violations_; }
  std::uint64_t validity_violations() const { return validity_violations_; }

  Time first_decision_time() const { return first_decision_time_; }
  Time last_decision_time() const { return last_decision_time_; }

 private:
  void note_violation(Pid pid, Time now, const char* what);

  std::map<Pid, int> inputs_;
  std::map<Pid, int> decisions_;
  std::set<int> input_values_;
  obs::TraceSink* sink_ = nullptr;
  bool throw_on_violation_ = true;
  std::uint64_t agreement_violations_ = 0;
  std::uint64_t validity_violations_ = 0;
  Time first_decision_time_ = -1;
  Time last_decision_time_ = -1;
};

/// Observes a mutual-exclusion execution.
///
/// Tracks the mutual-exclusion invariant (at most one process in the CS),
/// per-process waiting times, and the paper's time-complexity metric: the
/// longest interval during which some process is in its entry code while no
/// process is in the critical section (§3, "Time complexity").
class MutexMonitor {
 public:
  void enter_entry(Pid pid, Time now);  ///< pid leaves NCS, starts entry code
  void enter_cs(Pid pid, Time now);     ///< pid enters the critical section
  void exit_cs(Pid pid, Time now);      ///< pid leaves the CS, starts exit code
  void leave_exit(Pid pid, Time now);   ///< pid finishes exit code (back to NCS)

  void throw_on_violation(bool enabled) { throw_on_violation_ = enabled; }

  /// Emits kEntry / kCsEnter / kCsExit / kExitDone / kViolation events.
  void set_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  /// Number of times two processes overlapped in the CS (0 == ME held).
  std::uint64_t mutual_exclusion_violations() const { return violations_; }
  bool mutual_exclusion_holds() const { return violations_ == 0; }

  std::uint64_t cs_entries() const { return cs_entries_; }
  std::uint64_t cs_entries(Pid pid) const;

  /// One closed "starvation interval": a maximal span with someone in entry
  /// code and the CS empty.
  struct StarvedInterval {
    Time begin;
    Time end;
    Duration length() const { return end - begin; }
  };
  const std::vector<StarvedInterval>& starved_intervals() const {
    return intervals_;
  }

  /// The paper's time-complexity metric over the whole run (optionally only
  /// counting intervals that begin at or after `from`).
  Duration time_complexity(Time from = 0) const;

  /// Longest entry-code wait (entry -> CS) experienced by pid;
  /// 0 if pid never entered the CS.
  Duration max_wait(Pid pid) const;
  /// Longest entry-code wait over all processes.
  Duration max_wait() const;
  /// Longest wait among waits that *began* at or after `from` — used for
  /// convergence measurements after failures cease.
  Duration max_wait_starting_at(Time from) const;
  /// Longest wait still in progress at `now` (processes in their entry
  /// code that have not reached the CS) — a starved process never shows up
  /// in the completed-wait statistics, only here.
  Duration longest_pending_wait(Time now) const;

  std::size_t currently_in_cs() const { return in_cs_.size(); }
  std::size_t currently_in_entry() const { return in_entry_.size(); }

 private:
  void update_starved(Time now);
  void emit(Pid pid, Time now, obs::EventKind kind, std::int64_t a = 0);

  obs::TraceSink* sink_ = nullptr;
  std::set<Pid> in_entry_;
  std::set<Pid> in_cs_;
  std::map<Pid, Time> entry_since_;
  std::map<Pid, Duration> max_wait_;
  std::map<Pid, std::uint64_t> entries_by_pid_;
  std::vector<StarvedInterval> intervals_;
  struct Wait {
    Pid pid;
    Time begin;
    Duration length;
  };
  std::vector<Wait> waits_;
  bool starving_ = false;   ///< currently in an open starved interval
  Time starved_begin_ = 0;
  bool throw_on_violation_ = true;
  std::uint64_t violations_ = 0;
  std::uint64_t cs_entries_ = 0;
};

}  // namespace tfr::sim
