// Simulated atomic read/write registers.
//
// A Register<T> is a passive cell: the *time* an access takes is charged by
// the simulator when a process co_awaits env.read()/env.write(); the value
// transfer itself happens at the instant the access linearizes (event
// resume), which is trivially atomic because the simulator is
// single-threaded.  peek()/poke() bypass simulated time and are reserved
// for monitors, tests and initialization.
//
// Registers are allocated inside a RegisterSpace, which counts them — this
// is how E9 audits the space lower bound of Theorem 3.1.  RegisterArray<T>
// realizes the paper's infinite arrays (x[1..∞], y[1..∞]) by growing on
// demand; allocation is a local action and costs no simulated time.

#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::sim {

/// Accounting domain for registers: how many shared registers an algorithm
/// instance actually allocated, and how many accesses they served.
class RegisterSpace {
 public:
  RegisterSpace() = default;
  RegisterSpace(const RegisterSpace&) = delete;
  RegisterSpace& operator=(const RegisterSpace&) = delete;

  std::uint64_t allocated() const { return allocated_; }
  std::uint64_t total_reads() const { return reads_; }
  std::uint64_t total_writes() const { return writes_; }

  /// Forgets every allocation and access count, restarting uid assignment
  /// from 1.  Called by Simulation::reset() when a simulation object is
  /// reused for a fresh execution (the mcheck fast path); all registers of
  /// the previous run must already be destroyed, so the re-issued uids
  /// stay unique within each run — which is all the conflict relation
  /// needs.
  void reset() {
    allocated_ = 0;
    reads_ = 0;
    writes_ = 0;
    hashers_.clear();
    hashable_ = true;
  }

  /// Opt-in for state-signature support (mcheck's frontier state hashing):
  /// when enabled, every Register constructed in this space registers a
  /// value-hash thunk.  Off by default so the zero-per-iteration
  /// allocation budget of plain simulations is untouched.
  void set_value_capture(bool on) { capture_ = on; }
  bool value_capture() const { return capture_; }

  /// False when some live register's value type has no unique object
  /// representation (its bytes cannot be hashed portably); callers must
  /// then skip state hashing for the whole space.
  bool values_hashable() const { return hashable_; }

  /// FNV-1a over every live register's (uid, value bytes), in allocation
  /// order.  Only meaningful while the registers of the current run are
  /// alive and values_hashable() holds; requires set_value_capture(true)
  /// before the registers were constructed.
  std::uint64_t values_fingerprint() const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    mix(hashers_.size());
    for (std::size_t i = 0; i < hashers_.size(); ++i) {
      mix(i + 1);
      mix(hashers_[i].second(hashers_[i].first));
    }
    return h;
  }

 private:
  template <class T>
  friend class Register;

  using ValueHasher = std::uint64_t (*)(const void*);

  /// Registers a live register's value-hash thunk (capture mode only).
  /// Entries dangle once their register is destroyed — the next reset()
  /// clears them; values_fingerprint() is only called mid-run.
  void note_hasher(const void* object, ValueHasher hasher) {
    hashers_.emplace_back(object, hasher);
  }
  void mark_unhashable() { hashable_ = false; }

  /// Returns the new register's uid: 1-based allocation order, stable
  /// across identical runs — the conflict key mcheck's independence
  /// relation uses (pointers would not survive re-execution).
  std::uint64_t note_allocated() { return ++allocated_; }
  void note_read() { ++reads_; }
  void note_write() { ++writes_; }

  std::uint64_t allocated_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  bool capture_ = false;
  bool hashable_ = true;
  std::vector<std::pair<const void*, ValueHasher>> hashers_;
};

/// One atomic shared register holding a T.  T must be cheaply copyable
/// (ints, small structs) — exactly what the paper's registers hold.
template <class T>
class Register {
 public:
  Register(RegisterSpace& space, T initial, std::string name = {})
      : space_(&space), value_(std::move(initial)), name_(std::move(name)) {
    uid_ = space_->note_allocated();
    if (space_->value_capture()) {
      if constexpr (std::has_unique_object_representations_v<T>) {
        space_->note_hasher(this, &hash_value);
      } else {
        space_->mark_unhashable();
      }
    }
  }

  Register(const Register&) = delete;
  Register& operator=(const Register&) = delete;
  Register(Register&&) = delete;
  Register& operator=(Register&&) = delete;

  /// Untimed read (monitors / tests / local inspection only).
  const T& peek() const { return value_; }

  /// Untimed write (initialization / tests / fault injection only).
  void poke(T v) { value_ = std::move(v); }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  const std::string& name() const { return name_; }
  /// Stable identity: allocation order within the RegisterSpace (1-based).
  /// Identical runs allocate in identical order, so uids — unlike
  /// addresses — survive re-execution (mcheck's conflict key).
  std::uint64_t uid() const { return uid_; }

  // Remote-memory-reference accounting (cache-coherent model): a read is
  // remote iff the reader holds no valid cached copy (it then acquires
  // one); a write is always remote and invalidates every other copy.
  // Used by the local-spinning analysis (E15); costs no simulated time.
  bool note_read_rmr(Pid pid) const {
    const auto index = static_cast<std::size_t>(pid);
    if (index < cached_.size() && cached_[index]) return false;
    if (index >= cached_.size()) cached_.resize(index + 1, false);
    cached_[index] = true;
    return true;
  }

  void note_write_rmr(Pid pid) {
    cached_.assign(cached_.size(), false);
    const auto index = static_cast<std::size_t>(pid);
    if (index >= cached_.size()) cached_.resize(index + 1, false);
    cached_[index] = true;  // the writer retains a valid copy
  }

  // Internal: the timed accesses, invoked by the simulator's awaiters at
  // the instant the access linearizes.  Algorithm code must go through
  // Env::read/Env::write instead.
  T load_linearized() const {
    ++reads_;
    space_->note_read();
    return value_;
  }

  void store_linearized(T v) {
    ++writes_;
    space_->note_write();
    value_ = std::move(v);
  }

 private:
  /// Value-hash thunk for RegisterSpace::values_fingerprint(): FNV-1a over
  /// the object representation (only instantiated for types with unique
  /// object representations, so padding cannot leak in).
  static std::uint64_t hash_value(const void* object) {
    const T& value = static_cast<const Register*>(object)->value_;
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }

  RegisterSpace* space_;
  T value_;
  std::uint64_t uid_ = 0;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::string name_;
  /// Per-pid "holds a valid cached copy" bits (RMR accounting).
  mutable std::vector<bool> cached_;
};

/// Unbounded register array (the paper's x[1..∞]): grows on first touch of
/// an index.  Indices are 0-based.  Backed by a deque so grown registers
/// never move (registers are pinned: awaiters hold pointers to them).
template <class T>
class RegisterArray {
 public:
  RegisterArray(RegisterSpace& space, T initial, std::string name = {})
      : space_(&space), initial_(std::move(initial)), name_(std::move(name)) {}

  /// Returns the register at `index`, allocating up to it on demand.
  Register<T>& at(std::size_t index) {
    while (cells_.size() <= index) {
      cells_.emplace_back(*space_, initial_,
                          name_ + "[" + std::to_string(cells_.size()) + "]");
    }
    return cells_[index];
  }

  /// Read-only access to an index that must already exist.
  const Register<T>& at(std::size_t index) const {
    TFR_REQUIRE(index < cells_.size());
    return cells_[index];
  }

  std::size_t size() const { return cells_.size(); }

 private:
  RegisterSpace* space_;
  T initial_;
  std::string name_;
  std::deque<Register<T>> cells_;
};

}  // namespace tfr::sim
