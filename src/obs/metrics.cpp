#include "tfr/obs/metrics.hpp"

#include <algorithm>
#include <map>

namespace tfr::obs {

TraceMetrics compute_metrics(const TraceSink& sink) {
  TraceMetrics m;
  // Highest round each pid entered (a decider that never appears here, or
  // only with round 0, took the fast path).
  std::map<std::int32_t, std::int64_t> max_round_of;

  const std::size_t n = sink.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = sink[i];
    switch (e.kind) {
      case EventKind::kRead:
        ++m.reads;
        if (e.b != 0) ++m.rmr;  // b carries the remote flag for reads
        break;
      case EventKind::kWrite:
        ++m.writes;
        ++m.rmr;  // writes are always remote in the CC accounting
        break;
      case EventKind::kDelay:
        ++m.delays;
        m.delay_time += e.a;
        break;
      case EventKind::kTimingFailure:
        ++m.timing_failures;
        m.last_failure_completion =
            std::max(m.last_failure_completion, e.time + e.a);
        break;
      case EventKind::kRound: {
        const auto round = static_cast<std::size_t>(e.a);
        m.max_round = std::max(m.max_round, round);
        if (m.round_entered.size() <= round)
          m.round_entered.resize(round + 1, -1);
        if (m.round_entered[round] < 0) m.round_entered[round] = e.time;
        auto& worst = max_round_of[e.pid];
        worst = std::max(worst, e.a);
        break;
      }
      case EventKind::kDecide:
        ++m.decides;
        if (m.first_decision < 0) m.first_decision = e.time;
        m.last_decision = std::max(m.last_decision, e.time);
        if (max_round_of[e.pid] == 0) ++m.fast_path_decides;
        break;
      case EventKind::kViolation:
        ++m.violations;
        break;
      case EventKind::kCrash:
        ++m.crashes;
        break;
      case EventKind::kStall:
        ++m.stalls;
        break;
      default:
        break;
    }
  }
  return m;
}

}  // namespace tfr::obs
