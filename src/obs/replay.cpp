#include "tfr/obs/replay.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "tfr/common/contracts.hpp"
#include "tfr/obs/export.hpp"

namespace tfr::obs {

namespace {

constexpr char kRunMagic[8] = {'T', 'F', 'R', 'R', 'U', 'N', '0', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u32(std::uint32_t& v) {
    if (bytes_.size() - pos_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (bytes_.size() - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return true;
  }

  bool i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }

  bool str(std::string& s, std::size_t len) {
    if (bytes_.size() - pos_ < len) return false;
    s.assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool byte(unsigned char& v) {
    if (pos_ >= bytes_.size()) return false;
    v = static_cast<unsigned char>(bytes_[pos_++]);
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t ReplaySchedule::pick(sim::Time now,
                                 const std::vector<sim::EnabledEvent>& options) {
  (void)now;
  TFR_REQUIRE(!options.empty());
  if (position_ >= picks_.size()) return 0;
  const sim::Pid want = picks_[position_++];
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (options[i].pid == want) return i;
  }
  // The schedule no longer matches the scenario — a divergence the trace
  // comparison will surface; degrade to the lowest pid.
  return 0;
}

std::unique_ptr<sim::TimingModel> make_timing(const TimingSpec& spec,
                                              TraceSink* sink) {
  std::unique_ptr<sim::TimingModel> base;
  switch (spec.kind) {
    case TimingSpec::Kind::kFixed:
      base = sim::make_fixed_timing(spec.lo);
      break;
    case TimingSpec::Kind::kUniform:
      base = sim::make_uniform_timing(spec.lo, spec.hi);
      break;
    case TimingSpec::Kind::kScripted: {
      auto scripted =
          std::make_unique<sim::ScriptedTiming>(sim::make_fixed_timing(spec.lo));
      for (const auto& [pid, cost] : spec.script) scripted->push(pid, cost);
      base = std::move(scripted);
      break;
    }
    case TimingSpec::Kind::kPhased:
      base = sim::make_phased_timing(spec.phases);
      break;
  }
  TFR_REQUIRE(base != nullptr);
  if (!spec.has_injector()) return base;

  auto injector =
      std::make_unique<sim::FailureInjector>(std::move(base), spec.delta);
  for (const sim::FailureWindow& w : spec.windows) injector->add_window(w);
  if (spec.random_p > 0.0)
    injector->set_random_failures(spec.random_p, spec.random_stretch_max);
  injector->set_trace_sink(sink);
  return injector;
}

std::string RecordedRun::to_bytes() const {
  std::string out;
  out.append(kRunMagic, sizeof kRunMagic);
  put_u64(out, seed);
  out += static_cast<char>(timing.kind);
  put_i64(out, timing.lo);
  put_i64(out, timing.hi);
  put_i64(out, timing.delta);
  put_u32(out, static_cast<std::uint32_t>(timing.windows.size()));
  for (const sim::FailureWindow& w : timing.windows) {
    put_i64(out, w.begin);
    put_i64(out, w.end);
    put_i64(out, w.stretched);
    put_u32(out, static_cast<std::uint32_t>(w.victims.size()));
    for (sim::Pid pid : w.victims)
      put_u32(out, static_cast<std::uint32_t>(pid));
  }
  put_u64(out, std::bit_cast<std::uint64_t>(timing.random_p));
  put_i64(out, timing.random_stretch_max);
  if (timing.kind == TimingSpec::Kind::kScripted) {
    // Scripted executions (mcheck counterexamples) carry their cost script
    // and tie-break schedule; older kinds keep the original layout.
    put_u32(out, static_cast<std::uint32_t>(timing.script.size()));
    for (const auto& [pid, cost] : timing.script) {
      put_u32(out, static_cast<std::uint32_t>(pid));
      put_i64(out, cost);
    }
    put_u32(out, static_cast<std::uint32_t>(timing.schedule.size()));
    for (sim::Pid pid : timing.schedule)
      put_u32(out, static_cast<std::uint32_t>(pid));
  }
  if (timing.kind == TimingSpec::Kind::kPhased) {
    // Drifting distributions carry their regime list; like the scripted
    // extension, the section is conditional so older layouts parse as-is.
    put_u32(out, static_cast<std::uint32_t>(timing.phases.size()));
    for (const sim::TimingPhase& phase : timing.phases) {
      put_i64(out, phase.start);
      put_i64(out, phase.lo);
      put_i64(out, phase.hi);
      out += static_cast<char>(phase.ramp ? 1 : 0);
    }
  }
  put_u64(out, trace.size());
  out += trace;
  return out;
}

std::optional<RecordedRun> RecordedRun::from_bytes(std::string_view bytes) {
  if (bytes.size() < sizeof kRunMagic ||
      std::memcmp(bytes.data(), kRunMagic, sizeof kRunMagic) != 0) {
    return std::nullopt;
  }
  Reader reader(bytes.substr(sizeof kRunMagic));
  RecordedRun run;
  unsigned char kind_byte = 0;
  std::uint32_t window_count = 0;
  if (!reader.u64(run.seed) || !reader.byte(kind_byte) ||
      !reader.i64(run.timing.lo) || !reader.i64(run.timing.hi) ||
      !reader.i64(run.timing.delta) || !reader.u32(window_count)) {
    return std::nullopt;
  }
  run.timing.kind = static_cast<TimingSpec::Kind>(kind_byte);
  for (std::uint32_t i = 0; i < window_count; ++i) {
    sim::FailureWindow w;
    std::uint32_t victim_count = 0;
    if (!reader.i64(w.begin) || !reader.i64(w.end) ||
        !reader.i64(w.stretched) || !reader.u32(victim_count)) {
      return std::nullopt;
    }
    for (std::uint32_t v = 0; v < victim_count; ++v) {
      std::uint32_t pid = 0;
      if (!reader.u32(pid)) return std::nullopt;
      w.victims.push_back(static_cast<sim::Pid>(pid));
    }
    run.timing.windows.push_back(std::move(w));
  }
  std::uint64_t p_bits = 0;
  if (!reader.u64(p_bits) || !reader.i64(run.timing.random_stretch_max)) {
    return std::nullopt;
  }
  run.timing.random_p = std::bit_cast<double>(p_bits);
  if (run.timing.kind == TimingSpec::Kind::kScripted) {
    std::uint32_t script_count = 0;
    if (!reader.u32(script_count)) return std::nullopt;
    for (std::uint32_t i = 0; i < script_count; ++i) {
      std::uint32_t pid = 0;
      std::int64_t cost = 0;
      if (!reader.u32(pid) || !reader.i64(cost)) return std::nullopt;
      run.timing.script.emplace_back(static_cast<sim::Pid>(pid), cost);
    }
    std::uint32_t schedule_count = 0;
    if (!reader.u32(schedule_count)) return std::nullopt;
    for (std::uint32_t i = 0; i < schedule_count; ++i) {
      std::uint32_t pid = 0;
      if (!reader.u32(pid)) return std::nullopt;
      run.timing.schedule.push_back(static_cast<sim::Pid>(pid));
    }
  }
  if (run.timing.kind == TimingSpec::Kind::kPhased) {
    std::uint32_t phase_count = 0;
    if (!reader.u32(phase_count)) return std::nullopt;
    for (std::uint32_t i = 0; i < phase_count; ++i) {
      sim::TimingPhase phase;
      unsigned char ramp_byte = 0;
      if (!reader.i64(phase.start) || !reader.i64(phase.lo) ||
          !reader.i64(phase.hi) || !reader.byte(ramp_byte)) {
        return std::nullopt;
      }
      phase.ramp = ramp_byte != 0;
      run.timing.phases.push_back(phase);
    }
  }
  std::uint64_t trace_len = 0;
  if (!reader.u64(trace_len) || !reader.str(run.trace, trace_len)) {
    return std::nullopt;
  }
  return run;
}

bool RecordedRun::save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string bytes = to_bytes();
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

std::optional<RecordedRun> RecordedRun::load(const std::string& path) {
  std::optional<std::string> bytes = read_file(path);
  if (!bytes) return std::nullopt;
  return from_bytes(*bytes);
}

namespace {

/// One traced execution of `scenario` under (spec, seed); the returned
/// string is the binary trace.
std::string run_traced(std::uint64_t seed, const TimingSpec& spec,
                       const Scenario& scenario, std::size_t trace_capacity) {
  TraceSink sink(trace_capacity);
  std::unique_ptr<sim::TimingModel> timing = make_timing(spec, &sink);
  std::optional<ReplaySchedule> replayer;
  sim::SimulationOptions options{.seed = seed, .sink = &sink};
  if (!spec.schedule.empty()) {
    replayer.emplace(spec.schedule);
    options.strategy = &*replayer;
  }
  sim::Simulation simulation(std::move(timing), options);
  scenario(simulation);
  TFR_REQUIRE(sink.dropped() == 0);  // a lossy trace cannot be golden
  return encode_binary(sink);
}

}  // namespace

RecordedRun record(std::uint64_t seed, const TimingSpec& spec,
                   const Scenario& scenario, std::size_t trace_capacity) {
  RecordedRun run;
  run.seed = seed;
  run.timing = spec;
  run.trace = run_traced(seed, spec, scenario, trace_capacity);
  return run;
}

ReplayResult replay(const RecordedRun& run, const Scenario& scenario,
                    std::size_t trace_capacity) {
  ReplayResult result;
  result.trace = run_traced(run.seed, run.timing, scenario, trace_capacity);
  result.identical = result.trace == run.trace;
  if (!result.identical) {
    // Locate the first diverging *event* for diagnosis.
    TraceSink golden(trace_capacity), replayed(trace_capacity);
    if (decode_binary(run.trace, golden) &&
        decode_binary(result.trace, replayed)) {
      const std::size_t n = std::min(golden.size(), replayed.size());
      std::size_t i = 0;
      while (i < n && golden[i] == replayed[i]) ++i;
      result.first_divergence = i;
    }
  }
  return result;
}

}  // namespace tfr::obs
