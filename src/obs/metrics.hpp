// Derived metrics over a recorded trace: the quantities the paper's
// theorems bound, computed after the fact from the event log instead of
// being hand-threaded through every harness.
//
//   * per-round convergence: when each consensus round was first entered
//     and how long after the last injected failure the last decide landed
//     (in Δ units — Theorem 2.1's "decide by round r+1" is checkable from
//     these two series alone);
//   * fast-path hit rate: fraction of deciders that never left round 0
//     (the contention-free 7-step path of Theorem 2.1, bullet 4);
//   * RMR counts: cache-coherent remote memory references, from the
//     per-access rmr flag the simulator records.

#pragma once

#include <cstdint>
#include <vector>

#include "tfr/obs/trace.hpp"

namespace tfr::obs {

struct TraceMetrics {
  // Access accounting.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t rmr = 0;        ///< remote references among reads + writes
  std::uint64_t delays = 0;
  std::int64_t delay_time = 0;  ///< total time spent in delay() spans

  // Failures observed.
  std::uint64_t timing_failures = 0;
  std::int64_t last_failure_completion = -1;
  std::uint64_t stalls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t violations = 0;

  // Consensus shape.
  std::uint64_t decides = 0;
  std::uint64_t fast_path_decides = 0;  ///< decided without leaving round 0
  std::size_t max_round = 0;
  std::vector<std::int64_t> round_entered;  ///< first entry time per round
  std::int64_t first_decision = -1;
  std::int64_t last_decision = -1;

  /// Fraction of deciders that hit the fast path; 0 when nobody decided.
  double fast_path_hit_rate() const {
    return decides == 0
               ? 0.0
               : static_cast<double>(fast_path_decides) /
                     static_cast<double>(decides);
  }

  /// Time from the completion of the last injected timing failure to the
  /// last decision, in Δ units (the paper's convergence measure).
  /// Negative when decisions precede the last failure; 0 when
  /// inapplicable (no decision, or delta == 0).
  double convergence_after_failures_in_delta(std::int64_t delta) const {
    if (delta <= 0 || last_decision < 0) return 0.0;
    const std::int64_t from =
        last_failure_completion < 0 ? 0 : last_failure_completion;
    return static_cast<double>(last_decision - from) /
           static_cast<double>(delta);
  }
};

/// Single pass over the sink.
TraceMetrics compute_metrics(const TraceSink& sink);

}  // namespace tfr::obs
