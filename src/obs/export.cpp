#include "tfr/obs/export.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

namespace tfr::obs {

namespace {

constexpr char kMagic[8] = {'T', 'F', 'R', 'T', 'R', 'C', '0', '1'};

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

struct KindInfo {
  const char* name;  ///< event name when the label is empty
  const char* cat;
  bool span;  ///< "X" (complete) vs "i" (instant)
};

KindInfo kind_info(EventKind kind) {
  switch (kind) {
    case EventKind::kRead: return {"read", "access", true};
    case EventKind::kWrite: return {"write", "access", true};
    case EventKind::kDelay: return {"delay", "delay", true};
    case EventKind::kTimingFailure: return {"timing-failure", "failure", false};
    case EventKind::kRound: return {"round", "consensus", false};
    case EventKind::kDecide: return {"decide", "consensus", false};
    case EventKind::kEntry: return {"entry", "mutex", false};
    case EventKind::kCsEnter: return {"cs-enter", "mutex", false};
    case EventKind::kCsExit: return {"cs-exit", "mutex", false};
    case EventKind::kExitDone: return {"exit-done", "mutex", false};
    case EventKind::kViolation: return {"violation", "violation", false};
    case EventKind::kCrash: return {"crash", "failure", false};
    case EventKind::kDone: return {"done", "process", false};
    case EventKind::kStall: return {"stall", "failure", false};
    case EventKind::kNetDrop: return {"net-drop", "network", false};
    case EventKind::kNetDuplicate: return {"net-duplicate", "network", false};
    case EventKind::kNetDelay: return {"net-delay", "network", false};
    case EventKind::kNetPartition: return {"net-partition", "network", false};
    case EventKind::kRetry: return {"retry", "recovery", false};
    case EventKind::kTimeout: return {"timeout", "recovery", false};
    case EventKind::kBackoff: return {"backoff", "recovery", false};
    case EventKind::kCounter: return {"counter", "counter", false};
  }
  return {"event", "misc", false};
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out += static_cast<char>((v >> (8 * i)) & 0xff);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u32(std::uint32_t& v) {
    if (bytes_.size() - pos_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (bytes_.size() - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return true;
  }

  bool str(std::string& s, std::size_t len) {
    if (bytes_.size() - pos_ < len) return false;
    s.assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_chrome_json(const TraceSink& sink) {
  const std::vector<Event> events = sink.snapshot();
  const std::vector<std::string> labels = sink.labels();
  auto label_of = [&](std::uint32_t id) -> std::string_view {
    if (id == 0 || id > labels.size()) return {};
    return labels[id - 1];
  };

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[";

  // Thread metadata first: one Perfetto track per simulated process, plus
  // one (-1) for un-attributed events such as rt stalls.
  std::set<std::int32_t> pids;
  for (const Event& e : events) pids.insert(e.pid);
  bool first = true;
  for (std::int32_t pid : pids) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":";
    out += std::to_string(pid);
    out += ",\"args\":{\"name\":\"";
    out += pid < 0 ? "unattributed" : ("p" + std::to_string(pid));
    out += "\"}}";
  }

  for (const Event& e : events) {
    const KindInfo info = kind_info(e.kind);
    if (!first) out += ",";
    first = false;
    if (e.kind == EventKind::kCounter) {
      // Chrome counter track: a/b become two stacked series so stall (or
      // fault) totals plot over time alongside the span/instant events.
      out += "{\"ph\":\"C\",\"name\":\"";
      const std::string_view counter = label_of(e.label);
      if (counter.empty()) {
        out += "counter";
      } else {
        append_json_escaped(out, counter);
      }
      out += "\",\"cat\":\"counter\",\"ts\":";
      out += std::to_string(e.time);
      out += ",\"pid\":0,\"tid\":";
      out += std::to_string(e.pid);
      out += ",\"args\":{\"count\":";
      out += std::to_string(e.a);
      out += ",\"total\":";
      out += std::to_string(e.b);
      out += "}}";
      continue;
    }
    out += "{\"name\":\"";
    const std::string_view label = label_of(e.label);
    if (!label.empty()) {
      append_json_escaped(out, label);
      out += ' ';
    }
    out += info.name;
    out += "\",\"cat\":\"";
    out += info.cat;
    out += "\",\"ph\":\"";
    out += info.span ? "X" : "i";
    out += "\",\"ts\":";
    out += std::to_string(e.time);
    if (info.span) {
      out += ",\"dur\":";
      out += std::to_string(e.a);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(e.pid);
    out += ",\"args\":{\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += "}}";
  }

  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_chrome_json(const TraceSink& sink, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string json = to_chrome_json(sink);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(file);
}

std::string encode_binary(const TraceSink& sink) {
  const std::vector<Event> events = sink.snapshot();
  const std::vector<std::string> labels = sink.labels();

  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, static_cast<std::uint32_t>(labels.size()));
  for (const std::string& s : labels) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
  }
  put_u64(out, events.size());
  for (const Event& e : events) {
    put_u64(out, static_cast<std::uint64_t>(e.time));
    put_u32(out, static_cast<std::uint32_t>(e.pid));
    out += static_cast<char>(e.kind);
    put_u64(out, static_cast<std::uint64_t>(e.a));
    put_u64(out, static_cast<std::uint64_t>(e.b));
    put_u32(out, e.label);
  }
  return out;
}

bool decode_binary(std::string_view bytes, TraceSink& out) {
  if (bytes.size() < sizeof kMagic ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return false;
  }
  Reader reader(bytes.substr(sizeof kMagic));
  std::uint32_t label_count = 0;
  if (!reader.u32(label_count)) return false;
  for (std::uint32_t i = 0; i < label_count; ++i) {
    std::uint32_t len = 0;
    std::string s;
    if (!reader.u32(len) || !reader.str(s, len)) return false;
    out.intern(s);
  }
  std::uint64_t event_count = 0;
  if (!reader.u64(event_count)) return false;
  for (std::uint64_t i = 0; i < event_count; ++i) {
    std::uint64_t time = 0, a = 0, b = 0;
    std::uint32_t pid = 0, label = 0;
    std::string kind_byte;
    if (!reader.u64(time) || !reader.u32(pid) || !reader.str(kind_byte, 1) ||
        !reader.u64(a) || !reader.u64(b) || !reader.u32(label)) {
      return false;
    }
    out.append(Event{static_cast<std::int64_t>(time),
                     static_cast<std::int32_t>(pid),
                     static_cast<EventKind>(kind_byte[0]),
                     static_cast<std::int64_t>(a),
                     static_cast<std::int64_t>(b), label});
  }
  return true;
}

bool write_binary(const TraceSink& sink, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string bytes = encode_binary(sink);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace tfr::obs
