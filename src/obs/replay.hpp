// Deterministic record / replay for simulator runs.
//
// The simulator is a pure function of (timing model, seed, scenario): the
// event queue breaks ties by FIFO sequence and all randomness flows from
// the seeded Rng.  A RecordedRun therefore captures everything needed to
// reproduce an execution: the seed, a serializable TimingSpec describing
// the timing model (base distribution + injected failure schedule), and
// the golden trace the run produced.  replay() rebuilds the model, re-runs
// the scenario and compares traces byte-for-byte — a flaky bench or a
// monitor violation becomes a saveable, re-runnable artifact.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tfr/obs/trace.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::obs {

/// Serializable description of a timing model: a base distribution
/// (fixed, uniform, or phased/drifting access cost) optionally wrapped in
/// a FailureInjector with windowed and/or random timing failures — or,
/// for mcheck counterexamples, a fully scripted execution: per-access
/// costs plus the tie-break schedule the explorer chose.
struct TimingSpec {
  enum class Kind : std::uint8_t {
    kFixed = 0,
    kUniform = 1,
    kScripted = 2,
    kPhased = 3,  ///< drifting distribution: regime switches and ramps
  };

  Kind kind = Kind::kFixed;
  sim::Duration lo = 1;  ///< fixed cost, or uniform lower bound
  sim::Duration hi = 1;  ///< uniform upper bound (ignored for kFixed)

  /// kPhased: the drifting step-time regimes (sim::PhasedTiming).
  std::vector<sim::TimingPhase> phases;

  /// Δ of the FailureInjector wrapper; 0 = no wrapper (failure-free).
  sim::Duration delta = 0;
  std::vector<sim::FailureWindow> windows;
  double random_p = 0.0;
  sim::Duration random_stretch_max = 0;

  /// kScripted: the cost of every access, in global issue order, replayed
  /// per-pid FIFO through sim::ScriptedTiming (base: fixed cost `lo`).
  std::vector<std::pair<sim::Pid, sim::Duration>> script;
  /// kScripted: the pid chosen at each scheduler tie-break query, in
  /// order; replayed by a ReplaySchedule strategy.  An empty schedule
  /// keeps the simulator's FIFO tie-breaks.
  std::vector<sim::Pid> schedule;

  bool has_injector() const {
    return kind != Kind::kScripted && delta > 0 &&
           (!windows.empty() || random_p > 0.0);
  }
};

/// SchedulerStrategy that replays a recorded tie-break schedule: at each
/// query it picks the recorded pid.  Once the schedule is consumed it
/// reports exhausted() — the recorded execution is over — and defaults to
/// the lowest pid, so callers typically stop the run on exhausted().
class ReplaySchedule final : public sim::SchedulerStrategy {
 public:
  explicit ReplaySchedule(std::vector<sim::Pid> picks)
      : picks_(std::move(picks)) {}

  std::size_t pick(sim::Time now,
                   const std::vector<sim::EnabledEvent>& options) override;
  bool exhausted() const override { return position_ >= picks_.size(); }

 private:
  std::vector<sim::Pid> picks_;
  std::size_t position_ = 0;
};

/// Builds the timing model a spec describes.  When the spec carries an
/// injector, injected failures are emitted to `sink` (may be null).
std::unique_ptr<sim::TimingModel> make_timing(const TimingSpec& spec,
                                              TraceSink* sink = nullptr);

/// The scenario body: build algorithm objects inside the simulation, spawn
/// processes, run.  Must derive all randomness from the simulation's Rng
/// so that (spec, seed) fully determine the execution.
using Scenario = std::function<void(sim::Simulation&)>;

/// A reproducible execution: inputs plus the golden trace (binary-encoded).
struct RecordedRun {
  std::uint64_t seed = 1;
  TimingSpec timing;
  std::string trace;  ///< encode_binary() of the recorded trace

  /// Flat serialization of the whole artifact (seed + spec + trace).
  std::string to_bytes() const;
  static std::optional<RecordedRun> from_bytes(std::string_view bytes);
  bool save(const std::string& path) const;
  static std::optional<RecordedRun> load(const std::string& path);
};

/// Runs `scenario` under (spec, seed) with a fresh TraceSink attached and
/// returns the artifact.
RecordedRun record(std::uint64_t seed, const TimingSpec& spec,
                   const Scenario& scenario,
                   std::size_t trace_capacity = 1 << 20);

struct ReplayResult {
  bool identical = false;    ///< replayed trace == recorded trace, bytewise
  std::size_t first_divergence = 0;  ///< event index; meaningful if !identical
  std::string trace;         ///< binary encoding of the replayed trace
};

/// Re-runs the recorded execution and compares traces byte-for-byte.
ReplayResult replay(const RecordedRun& run, const Scenario& scenario,
                    std::size_t trace_capacity = 1 << 20);

}  // namespace tfr::obs
