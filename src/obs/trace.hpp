// Structured event tracing for the simulator and the real-thread harnesses.
//
// A TraceSink is a fixed-capacity, lock-free-append log of small POD
// events.  Emitters (Simulation awaiters, FailureInjector, monitors,
// rt::FaultInjector) push one Event per semantically meaningful instant:
// register accesses with their linearization span, delay(d) spans,
// injected timing failures, round transitions, decide / CS transitions,
// monitor violations, crashes and rt stalls.  Because the simulator is
// deterministic given (timing model, seed), two runs of the same scenario
// produce byte-identical traces — which is what obs/replay.hpp asserts and
// what turns any flaky bench into a reproducible artifact.
//
// Variable-length data (register names, injection-point names) lives in an
// interned string table so Event stays fixed-size; the hot append path is a
// single fetch_add plus a struct store and is safe from multiple threads.
// Interning takes a mutex and is meant for setup / cold paths.
//
// This header is deliberately self-contained (no sim/ includes) so that
// sim, registers and mutex code can emit events without a link-time
// dependency; exporters, metrics and replay live in the tfr_obs library.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tfr::obs {

/// What happened.  Values are part of the binary trace format — append
/// only, never renumber.
enum class EventKind : std::uint8_t {
  kRead = 1,           ///< register read; a = duration, b = remote (RMR),
                       ///< label = register name
  kWrite = 2,          ///< register write; a = duration, b = value, label = reg
  kDelay = 3,          ///< delay(d) span; a = d
  kTimingFailure = 4,  ///< injected failure; a = stretched cost, b = Δ
  kRound = 5,          ///< process entered consensus round; a = round index
  kDecide = 6,         ///< process decided; a = value
  kEntry = 7,          ///< mutex: entry section begins
  kCsEnter = 8,        ///< mutex: critical section entered; a = entry wait
  kCsExit = 9,         ///< mutex: critical section left
  kExitDone = 10,      ///< mutex: exit section finished (back to NCS)
  kViolation = 11,     ///< monitor violation; label = which property
  kCrash = 12,         ///< process killed by fault injection
  kDone = 13,          ///< process coroutine finished
  kStall = 14,         ///< rt injected stall; a = stall ns, b = visit index,
                       ///< label = injection point
  kNetDrop = 15,       ///< adversary dropped a message; a = channel seq,
                       ///< b = receiver endpoint, label = channel
  kNetDuplicate = 16,  ///< adversary duplicated a message; a = channel seq,
                       ///< b = extra copies, label = channel
  kNetDelay = 17,      ///< adversary delayed a message; a = extra delay,
                       ///< b = channel seq, label = channel
  kNetPartition = 18,  ///< partition boundary; a = 0 begin / 1 heal,
                       ///< b = partition index, label = "partition"
  kRetry = 19,         ///< client re-sent a request; a = attempt, b = rid,
                       ///< label = phase
  kTimeout = 20,       ///< client phase timeout expired; a = timeout used,
                       ///< b = rid, label = phase
  kBackoff = 21,       ///< client backoff pause; a = pause length, b = rid,
                       ///< label = phase
  kCounter = 22,       ///< counter sample; a/b = kind-specific running
                       ///< totals (e.g. stall count / stalled ns),
                       ///< label = counter name
};

/// One trace record.  `time` is virtual ticks in the simulator and
/// nanoseconds since the emitter's epoch in the rt harnesses.  For span
/// kinds (kRead/kWrite/kDelay), `time` is the span start and `a` its
/// duration; for instants `a`/`b` are kind-specific payload.  `label` is 0
/// (none) or an id returned by TraceSink::intern().
struct Event {
  std::int64_t time = 0;
  std::int32_t pid = -1;
  EventKind kind{};
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::uint32_t label = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Fixed-capacity append-only event log.  append() is lock-free and
/// wait-free (one fetch_add); events past the capacity are counted in
/// dropped() rather than silently lost.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 1 << 20)
      : events_(capacity) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Appends one event.  Safe from any thread; never allocates.
  void append(const Event& event) noexcept {
    const std::size_t index = count_.fetch_add(1, std::memory_order_relaxed);
    if (index >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[index] = event;
  }

  /// Number of events recorded (excludes dropped ones).
  std::size_t size() const {
    const std::size_t n = count_.load(std::memory_order_acquire);
    return n < events_.size() ? n : events_.size();
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  const Event& operator[](std::size_t i) const { return events_[i]; }

  /// Copy of the recorded prefix, in append order.
  std::vector<Event> snapshot() const {
    return std::vector<Event>(events_.begin(),
                              events_.begin() +
                                  static_cast<std::ptrdiff_t>(size()));
  }

  /// Interns `name`, returning its stable nonzero label id.  Takes a lock;
  /// call from setup or cold paths, not per-event hot loops (emitters cache
  /// the id).  Interning the same string twice returns the same id.
  std::uint32_t intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    labels_.emplace_back(name);
    const auto id = static_cast<std::uint32_t>(labels_.size());
    ids_.emplace(labels_.back(), id);
    return id;
  }

  /// Resolves a label id; id 0 and unknown ids yield "".
  std::string_view label(std::uint32_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == 0 || id > labels_.size()) return {};
    return labels_[id - 1];
  }

  /// All interned labels, in id order (id = index + 1).
  std::vector<std::string> labels() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<std::string>(labels_.begin(), labels_.end());
  }

  /// Forgets all events (labels are kept, so cached ids stay valid).
  void clear() {
    dropped_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_release);
  }

  /// FNV-1a hash over events and labels — a cheap identity for
  /// "same trace?" checks (the binary encoding is the authoritative one).
  std::uint64_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix_byte = [&h](std::uint8_t byte) {
      h ^= byte;
      h *= 0x100000001b3ULL;
    };
    auto mix64 = [&](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) mix_byte((v >> (8 * i)) & 0xff);
    };
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = events_[i];
      mix64(static_cast<std::uint64_t>(e.time));
      mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.pid)));
      mix_byte(static_cast<std::uint8_t>(e.kind));
      mix64(static_cast<std::uint64_t>(e.a));
      mix64(static_cast<std::uint64_t>(e.b));
      mix64(e.label);
    }
    for (const std::string& s : labels()) {
      for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
      mix_byte(0);
    }
    return h;
  }

 private:
  std::vector<Event> events_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mutex_;
  std::deque<std::string> labels_;  ///< deque: stable refs for the id map
  std::map<std::string_view, std::uint32_t> ids_;
};

}  // namespace tfr::obs
