// Trace exporters: Chrome trace_event JSON (opens in Perfetto / chrome://
// tracing) and a compact binary encoding used for byte-identical replay
// comparisons and on-disk artifacts.
//
// Both encoders are deterministic functions of the sink's contents: the
// same event sequence and label table always produce the same bytes, so
// "same trace" can be asserted with a string compare.

#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "tfr/obs/trace.hpp"

namespace tfr::obs {

/// Renders the sink as Chrome trace_event JSON ("JSON Object Format":
/// {"traceEvents": [...]}).  Span kinds become complete ("ph":"X") slices,
/// instants become instant ("ph":"i") events; simulated pids are mapped to
/// tracks via thread metadata.  One virtual tick = one microsecond on the
/// Perfetto timeline.
std::string to_chrome_json(const TraceSink& sink);

/// Writes to_chrome_json(sink) to `path`.  Returns false on I/O failure.
bool write_chrome_json(const TraceSink& sink, const std::string& path);

/// Serializes the sink (label table + events) to the compact binary
/// format, magic "TFRTRC01".  Little-endian, fixed-width fields.
std::string encode_binary(const TraceSink& sink);

/// Parses `bytes` (as produced by encode_binary) into `out`, which must be
/// empty and have sufficient capacity.  Returns false on malformed input.
bool decode_binary(std::string_view bytes, TraceSink& out);

/// File helpers for the binary format.
bool write_binary(const TraceSink& sink, const std::string& path);
std::optional<std::string> read_file(const std::string& path);

}  // namespace tfr::obs
