// Stateless model checking for the timing-based simulator.
//
// The simulator is a pure function of the choices made at its
// nondeterminism points: which of several simultaneously-enabled events
// linearizes first (the SchedulerStrategy seam) and what each shared
// access costs (fast, slow-but-legal, or stretched past Δ — a timing
// failure).  The Explorer drives both seams from a DFS over the resulting
// decision tree, re-executing the scenario from scratch along each branch
// — the CHESS/Verisoft style of systematic exploration, with a
// partial-order reduction keyed on the register-conflict independence
// relation: two enabled events are dependent iff they access the same
// register and at least one writes it.  The default reduction layers
// source-set-style dynamic POR (race-driven backtrack sets, in the
// Flanagan–Godefroid / Abdulla et al. lineage) and a frontier state-hash
// table over the original sleep sets (Godefroid); see Reduction.
//
// Exploration is exhaustive *within declared bounds*: per-access cost
// menus {1, Δ}, a budget on slow (cost Δ) accesses, a budget on injected
// timing failures (cost > Δ), a step bound per execution, plus any
// scenario cutoff (e.g. a consensus round bound).  A violating execution
// is emitted as an obs::RecordedRun — the scripted costs and tie-break
// schedule — which replays byte-identically through obs::record/replay.
//
// With ExploreConfig::jobs > 1 the tree is partitioned at a decision-depth
// frontier and disjoint subtrees are explored by forked worker processes
// (benchkit::fork_map); stats, verdict and counterexample are merged so
// the result is identical to the serial run (see ExploreConfig::jobs).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tfr/obs/replay.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::mcheck {

/// Per-execution facts the engine hands to the verdict predicate.
struct RunInfo {
  bool truncated = false;  ///< step bound or scenario cutoff fired
  std::uint32_t failures_injected = 0;   ///< accesses stretched past Δ
  std::uint32_t slow_accesses = 0;       ///< accesses that cost Δ (legal)
  sim::Time last_failure_completion = -1;
};

/// Verdict of one execution: ok, or a violation description.
struct CheckOutcome {
  bool ok = true;
  std::string what;
};

/// What a scenario hands back after setting up a simulation: an optional
/// extra cutoff (polled after every event) and the post-run safety
/// verdict.  Monitors must be configured with throw_on_violation(false)
/// so the verdict — not an exception — reports violations.
struct RunHarness {
  std::function<bool()> stop;  ///< optional scenario cutoff (round bound)
  std::function<CheckOutcome(const RunInfo&)> verdict;
};

/// Builds the objects under test inside a fresh Simulation and spawns the
/// processes.  Invoked once per explored execution; must be deterministic
/// given the simulation's Rng (the explorer replaces all other
/// randomness).
using CheckScenario = std::function<RunHarness(sim::Simulation&)>;

/// Which partial-order reduction prunes the DFS.
enum class Reduction : std::uint8_t {
  /// Naive DFS: every sibling of every decision node (pruning baseline).
  kNone = 0,
  /// Sleep sets (Godefroid) keyed on the register-conflict independence
  /// relation — the PR 2 baseline semantics.
  kSleepSets = 1,
  /// Sleep sets plus source-set-style dynamic POR: race-driven backtrack
  /// sets decide which siblings of a scheduling node need exploring at
  /// all, and a frontier state-hash table prunes subtrees whose gate
  /// state (registers + pending events + budgets) was already explored
  /// under a subset sleep set.  Both kick in below a fixed decision depth
  /// (the work-sharing frontier), so parallel runs stay byte-identical to
  /// serial ones.  Soundness caveat: the gate signature proxies each
  /// process's control state by its op counters, not its true PC — see
  /// MODEL.md "Systematic exploration".
  kSourceDpor = 2,
};

struct ExploreConfig {
  /// The algorithm's assumed bound Δ.  The per-access menu is {1, delta};
  /// with delta == 2 the menu covers *every* legal integer cost, so the
  /// check is exhaustive over legal timings within the slow budget.
  sim::Duration delta = 2;
  /// Cost of an injected timing failure (must exceed delta).
  sim::Duration failure_cost = 5;
  /// How many accesses per execution may be stretched past Δ.
  std::uint32_t max_failures = 1;
  /// How many accesses per execution may cost Δ instead of 1
  /// (-1 = unbounded).  Bounding this is what makes exhaustive runs
  /// tractable — the analogue of CHESS's preemption bound for timing.
  std::int64_t slow_budget = 1;
  /// Hard per-execution step bound (scheduler picks); exceeding it
  /// truncates the execution (safety is still checked on the prefix).
  std::uint64_t max_steps = 400;
  /// Virtual-time horizon per execution.
  sim::Time time_limit = sim::kTimeNever;
  /// Abort the whole exploration after this many executions.
  std::uint64_t max_executions = 4'000'000;
  /// Partial-order reduction mode.  kSourceDpor (default) layers dynamic
  /// backtrack sets and frontier state hashing over kSleepSets; kNone is
  /// the naive-DFS baseline for the pruning regression tests.
  Reduction reduction = Reduction::kSourceDpor;
  /// Seed for the simulation Rng (unused by explored scenarios, but part
  /// of the replay artifact).
  std::uint64_t seed = 1;
  /// Worker processes for exploration.  1 = serial, in-process.  With
  /// jobs > 1 the decision tree is partitioned at a work-sharing frontier
  /// (see prefix_depth) and disjoint subtrees are explored by forked
  /// workers.  Results are merged deterministically: the reported stats,
  /// verdict and counterexample are identical to a jobs == 1 run — the
  /// first violation is resolved to the lexicographically-least decision
  /// path, not to whichever worker won the race.  Sole deviation:
  /// max_executions is enforced per worker subtree, not globally.
  int jobs = 1;
  /// Decision-tree depth of the work-sharing frontier (parallel mode
  /// only): executions are grouped by their first `prefix_depth` decisions
  /// and each group becomes one worker's subtree.  0 = auto.  Under
  /// kSourceDpor the frontier is pinned to the reduction's fixed gate
  /// depth regardless of this value: backtrack sets and the state-hash
  /// table only operate at-or-below the gate, so pinning the frontier
  /// there is what keeps every parallel counter byte-identical to the
  /// serial run.
  std::uint32_t prefix_depth = 0;
};

struct ExploreStats {
  std::uint64_t executions = 0;        ///< complete re-executions
  std::uint64_t states = 0;            ///< fresh decision nodes created
  std::uint64_t transitions = 0;       ///< scheduler picks across all runs
  std::uint64_t sched_choice_points = 0;  ///< fresh sched nodes, >1 option
  std::uint64_t cost_choice_points = 0;   ///< fresh cost nodes
  std::uint64_t sleep_pruned = 0;      ///< options skipped via sleep sets
  std::uint64_t sleep_blocked = 0;     ///< executions cut as redundant
  std::uint64_t truncated = 0;         ///< executions cut by a bound
  /// kSourceDpor only: dependent-access reversals recorded against a
  /// scheduling node (each may add one pid to that node's backtrack set).
  std::uint64_t races_detected = 0;
  /// kSourceDpor only: scheduling siblings never explored because no race
  /// in any explored sibling subtree required them.
  std::uint64_t source_pruned = 0;
  /// kSourceDpor only: executions cut at the frontier gate because an
  /// identical gate state was already explored under a subset sleep set.
  std::uint64_t state_pruned = 0;
  bool complete = false;  ///< DFS exhausted (vs. max_executions abort)
};

struct CheckResult {
  bool violation = false;
  std::string what;  ///< violation description when violation == true
  ExploreStats stats;
  /// The violating execution as a replayable artifact (scripted costs +
  /// tie-break schedule + golden trace); meaningful iff violation.
  obs::RecordedRun counterexample;
};

/// Explores every execution of `scenario` within `config`'s bounds,
/// stopping at the first safety violation.
CheckResult check(const CheckScenario& scenario, const ExploreConfig& config);

/// Re-runs a recorded counterexample (scripted costs + schedule) against
/// the scenario and returns the reproduced verdict — the programmatic
/// twin of replaying the trace through obs::replay().
CheckOutcome run_recorded(const obs::RecordedRun& run,
                          const CheckScenario& scenario,
                          const ExploreConfig& config);

/// The obs::Scenario adapter for a counterexample: sets up the check
/// scenario and runs until the recorded schedule is exhausted.  Use with
/// obs::record / obs::replay for byte-identical trace comparison.
obs::Scenario counterexample_scenario(const CheckScenario& scenario,
                                      const ExploreConfig& config);

}  // namespace tfr::mcheck
