// Ready-made mcheck scenarios for the paper's algorithms.
//
// Each factory returns a CheckScenario that builds the algorithm and its
// monitor inside the fresh per-execution Simulation, spawns the
// processes, and hands the explorer a cutoff plus a safety verdict wired
// to the existing monitors (DecisionMonitor, MutexMonitor) with
// throw_on_violation(false) — the verdict, not an exception, reports
// violations so the explorer can emit a replayable counterexample.

#pragma once

#include <cstddef>
#include <vector>

#include "tfr/mcheck/explorer.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::mcheck {

/// Algorithm 1 (binary consensus).  Safety — agreement and validity — is
/// checked on every explored execution, truncated or not.  The liveness
/// claim is the round cutoff itself: a failure-free execution that is
/// still undecided when some process enters round `round_cutoff` is
/// reported as a violation (Theorem 2.2's bounded termination); runs
/// with an injected timing failure may legitimately need more rounds and
/// are merely truncated there.
struct ConsensusScenarioConfig {
  std::vector<int> inputs{0, 1};
  /// The bound Δ the algorithm's delay statements assume.
  sim::Duration delta = 2;
  /// Stop an execution once any process enters this round.
  std::size_t round_cutoff = 2;
};

CheckScenario make_consensus_scenario(ConsensusScenarioConfig config = {});

/// Mutual exclusion under exploration: n session loops (one CS each by
/// default) over a chosen algorithm, with the MutexMonitor's
/// mutual-exclusion invariant as the safety predicate.
struct MutexScenarioConfig {
  enum class Algorithm {
    kFischer,              ///< Algorithm 2 alone: ME breaks under failures
    kTfrStarvationFree,    ///< Algorithm 3 over starvation-free A
    kTfrDeadlockFreeOnly,  ///< Algorithm 3 over deadlock-free-only A
  };

  Algorithm algorithm = Algorithm::kFischer;
  int processes = 2;
  sim::Duration delta = 2;
  sim::Duration cs_time = 6;  ///< long enough that a late Fischer write
                              ///< overlaps a critical section in progress
  int sessions = 1;

  /// Attach an adversarially mistuned adaptive controller: the Δ estimate
  /// is pinned at 1 tick (the floor) no matter what failure costs the
  /// explorer injects, so every explored delay(Δ) is maximally optimistic.
  /// With kTfrStarvationFree this machine-verifies the tentpole claim that
  /// Algorithm 3's safety is estimate-independent — the filter admits more
  /// processes, but the inner A still excludes them.  With kFischer it
  /// widens the known unsafety (expect violations).
  bool mistuned_controller = false;
};

CheckScenario make_mutex_scenario(MutexScenarioConfig config = {});

/// ABD atomic-register emulation with a crashed minority: n nodes, one
/// server never spawned (its requests are simply never answered), one
/// writer and one reader client issuing a single operation each.  Safety —
/// every explored interleaving of the completed operations must be
/// linearizable against the atomic-register spec — is checked on every
/// execution, truncated or not; executions stop once both clients finish.
struct AbdScenarioConfig {
  int nodes = 3;
  int crashed_server = 2;  ///< this replica never runs (minority down)
  std::int64_t written = 7;
  /// Register emulation under test.  kPerPeerFastRead explores the
  /// skip-write-back read: interleavings where the read quorum sees
  /// uniform tags take the one-round path, mixed-tag quorums fall back —
  /// both must linearize in every explored schedule.
  msg::RegisterVariant variant = msg::RegisterVariant::kStock;
};

CheckScenario make_abd_scenario(AbdScenarioConfig config = {});

}  // namespace tfr::mcheck
