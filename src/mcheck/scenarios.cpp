#include "tfr/mcheck/scenarios.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/convergence.hpp"
#include "tfr/msg/network.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/sim/monitor.hpp"

namespace tfr::mcheck {

CheckScenario make_consensus_scenario(ConsensusScenarioConfig config) {
  return [config](sim::Simulation& simulation) -> RunHarness {
    auto consensus = std::make_shared<core::SimConsensus>(simulation.space(),
                                                          config.delta);
    consensus->monitor().throw_on_violation(false);
    for (int input : config.inputs) {
      simulation.spawn([consensus, input](sim::Env env) {
        return consensus->participant(env, input);
      });
    }

    RunHarness harness;
    harness.stop = [consensus, cutoff = config.round_cutoff] {
      return consensus->max_round() >= cutoff;
    };
    harness.verdict = [consensus, config](const RunInfo& info) -> CheckOutcome {
      const sim::DecisionMonitor& monitor = consensus->monitor();
      if (!monitor.agreement_holds())
        return {false, "consensus agreement violated"};
      if (!monitor.validity_holds())
        return {false, "consensus validity violated"};
      if (info.failures_injected == 0 &&
          consensus->max_round() >= config.round_cutoff) {
        return {false, "failure-free execution exceeded the round bound"};
      }
      return {};
    };
    return harness;
  };
}

CheckScenario make_mutex_scenario(MutexScenarioConfig config) {
  return [config](sim::Simulation& simulation) -> RunHarness {
    struct State {
      std::unique_ptr<mutex::SimMutex> algorithm;
      sim::MutexMonitor monitor;
      // The mistuned adaptive controller: pinned at the floor, so every
      // explored delay(Δ) waits 1 tick while the explorer injects costs
      // far beyond it.  Per-execution, like the algorithm itself.
      adapt::ManualDelta pinned{1};
    };
    auto state = std::make_shared<State>();
    adapt::DeltaController* controller =
        config.mistuned_controller ? &state->pinned : nullptr;
    switch (config.algorithm) {
      case MutexScenarioConfig::Algorithm::kFischer: {
        auto fischer = std::make_unique<mutex::FischerMutex>(
            simulation.space(), config.delta);
        fischer->set_delta_controller(controller);
        state->algorithm = std::move(fischer);
        break;
      }
      case MutexScenarioConfig::Algorithm::kTfrStarvationFree: {
        auto tfr = mutex::make_tfr_mutex_starvation_free(
            simulation.space(), config.processes, config.delta);
        tfr->set_delta_controller(controller);
        state->algorithm = std::move(tfr);
        break;
      }
      case MutexScenarioConfig::Algorithm::kTfrDeadlockFreeOnly: {
        auto tfr = mutex::make_tfr_mutex_deadlock_free_only(
            simulation.space(), config.processes, config.delta);
        tfr->set_delta_controller(controller);
        state->algorithm = std::move(tfr);
        break;
      }
    }
    state->monitor.throw_on_violation(false);

    mutex::WorkloadConfig workload;
    workload.processes = config.processes;
    workload.sessions = config.sessions;
    workload.cs_time = config.cs_time;
    workload.ncs_time = 0;
    workload.randomize_ncs = false;
    workload.tolerate_violations = true;
    for (int id = 0; id < config.processes; ++id) {
      simulation.spawn([state, id, workload](sim::Env env) {
        return mutex::mutex_sessions(env, *state->algorithm, state->monitor,
                                     id, workload);
      });
    }

    RunHarness harness;
    harness.verdict = [state](const RunInfo&) -> CheckOutcome {
      if (!state->monitor.mutual_exclusion_holds())
        return {false, "mutual exclusion violated"};
      return {};
    };
    return harness;
  };
}

namespace {

struct AbdState {
  std::unique_ptr<msg::Network> net;
  msg::ConvergenceMonitor monitor;
  std::vector<std::unique_ptr<msg::AbdClient>> clients;
  int done = 0;
};

sim::Process abd_write_once(sim::Env env, std::shared_ptr<AbdState> state,
                            std::size_t client, std::int64_t value) {
  co_await state->clients[client]->write(env, /*reg=*/0, value);
  ++state->done;
}

sim::Process abd_read_once(sim::Env env, std::shared_ptr<AbdState> state,
                           std::size_t client) {
  co_await state->clients[client]->read(env, /*reg=*/0);
  ++state->done;
}

}  // namespace

CheckScenario make_abd_scenario(AbdScenarioConfig config) {
  return [config](sim::Simulation& simulation) -> RunHarness {
    const int n = config.nodes;
    auto state = std::make_shared<AbdState>();
    state->net = std::make_unique<msg::Network>(simulation.space(), 2 * n);
    for (int node = 0; node < n; ++node) {
      if (node == config.crashed_server) continue;
      simulation.spawn([state, node, n](sim::Env env) {
        return msg::abd_server(env, *state->net, node, n);
      });
    }
    for (int node : {0, 1}) {
      state->clients.push_back(
          std::make_unique<msg::AbdClient>(*state->net, node, n));
      state->clients.back()->set_monitor(&state->monitor);
      // No controller / no timeout: windows stay the legacy blocking
      // discipline, so the variant only selects the read round structure
      // — exactly the safety-relevant difference the explorer must cover.
      state->clients.back()->set_variant(config.variant);
    }
    simulation.spawn([state, value = config.written](sim::Env env) {
      return abd_write_once(env, state, 0, value);
    });
    simulation.spawn([state](sim::Env env) {
      return abd_read_once(env, state, 1);
    });

    RunHarness harness;
    harness.stop = [state] { return state->done >= 2; };
    harness.verdict = [state](const RunInfo&) -> CheckOutcome {
      // Safety only: the completed prefix must linearize; truncated
      // executions with unfinished operations are fine (the crashed
      // replica's silence may stall an op past the step bound).
      if (!state->monitor.check().linearizable)
        return {false, "ABD history not linearizable"};
      return {};
    };
    return harness;
  };
}

}  // namespace tfr::mcheck
