// mcheck scenarios that drive the *real* rt lock code — the same
// templated sources production compiles against std::atomic — through the
// atomic interposition seam (rt/shim/).  Each factory builds an
// RtExecution inside the fresh per-execution Simulation, spawns the
// algorithm bodies as shim threads, and wires the verdict to the
// execution's critical-section occupancy probe plus a parked-at-idle
// deadlock check (a run that goes idle with threads still parked in
// atomic::wait is exactly a lost wakeup).

#pragma once

#include "tfr/mcheck/explorer.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::mcheck {

/// Mutual exclusion on real-thread lock code under the seam: n shim
/// threads cycling lock → mark_enter → CS dwell → mark_exit → unlock.
struct RtMutexScenarioConfig {
  enum class Algorithm {
    kFischer,            ///< BasicFischerRt: ME breaks under one timing failure
    kTfrStarvationFree,  ///< Algorithm 3 over starvation-free(lamport-fast)
    kAtomicLock,         ///< the futex-class AtomicMutex via its adapter
  };

  Algorithm algorithm = Algorithm::kFischer;
  int threads = 2;
  sim::Duration delta = 2;
  sim::Duration cs_time = 6;  ///< CS dwell; long enough that a late Fischer
                              ///< write lands inside a CS in progress
  int sessions = 1;
};

CheckScenario make_rt_mutex_scenario(RtMutexScenarioConfig config = {});

/// The EventCount publication protocol in isolation: one producer sets a
/// register and bumps the epoch, one consumer awaits the register via
/// wait_until_changed.  With `torn_epoch` the producer advances *before*
/// the register write — the classic torn publication whose lost-wakeup
/// interleaving (consumer snapshots the bumped epoch, sees the stale
/// register, parks forever) the checker must find; with the correct
/// write-then-advance order exploration must complete clean.
struct RtEventCountScenarioConfig {
  bool torn_epoch = true;
};

CheckScenario make_rt_eventcount_scenario(
    RtEventCountScenarioConfig config = {});

}  // namespace tfr::mcheck
