#include "tfr/mcheck/rt_scenarios.hpp"

#include <memory>
#include <utility>

#include "tfr/mutex/lock_adapters.hpp"
#include "tfr/mutex/mutex_rt.hpp"
#include "tfr/registers/atomic_register.hpp"
#include "tfr/rt/atomic_mutex.hpp"
#include "tfr/rt/shim/rt_exec.hpp"
#include "tfr/rt/shim/shim_atomic.hpp"

namespace tfr::mcheck {

namespace {

using ShimAtomics = rtshim::ShimAtomics;

// Ownership protocol (load-bearing — see RtExecution's teardown contract):
// the verdict closure solely owns a Holder, so the RtExecution is
// destroyed exactly when the explorer drops the harness, on the
// simulation thread.  Thread bodies own only the algorithm state (plus a
// raw RtExecution pointer for the occupancy probe); the pool workers drop
// those references before reporting kJobDone, and ~RtExecution
// synchronizes with kJobDone for every slot, so by the time the Holder
// releases its own algorithm-state reference it is always the last one —
// the shared state never gets destroyed from a pool thread.
template <class Algo>
struct Holder {
  std::shared_ptr<Algo> algo;                 // destroyed second
  std::unique_ptr<rtshim::RtExecution> exec;  // destroyed first
};

/// A run that goes idle with unfinished threads means every one of them
/// is parked in atomic::wait with no wakeup in flight: a lost wakeup (or
/// outright deadlock).  Replay-stable — the recorded schedule reaches the
/// same idle state.
CheckOutcome check_parked_at_idle(const sim::Simulation& sim) {
  if (sim.pending_events().empty() && !sim.all_done())
    return {false, "lost wakeup: threads parked with the simulation idle"};
  return {};
}

}  // namespace

CheckScenario make_rt_mutex_scenario(RtMutexScenarioConfig config) {
  return [config](sim::Simulation& simulation) -> RunHarness {
    struct Algo {
      std::unique_ptr<rt::BasicRtMutex<ShimAtomics>> lock;
    };
    auto holder = std::make_shared<Holder<Algo>>();
    holder->exec = std::make_unique<rtshim::RtExecution>(simulation);
    holder->algo = std::make_shared<Algo>();
    switch (config.algorithm) {
      case RtMutexScenarioConfig::Algorithm::kFischer:
        holder->algo->lock =
            std::make_unique<rt::BasicFischerRt<ShimAtomics>>(config.delta);
        break;
      case RtMutexScenarioConfig::Algorithm::kTfrStarvationFree:
        holder->algo->lock =
            rt::make_basic_tfr_mutex<ShimAtomics>(config.threads,
                                                  config.delta);
        break;
      case RtMutexScenarioConfig::Algorithm::kAtomicLock:
        holder->algo->lock =
            std::make_unique<rt::BasicAtomicMutexLock<ShimAtomics>>();
        break;
    }
    for (int id = 0; id < config.threads; ++id) {
      holder->exec->spawn_thread(
          [algo = holder->algo, exec = holder->exec.get(), id, config] {
            for (int s = 0; s < config.sessions; ++s) {
              algo->lock->lock(id);
              exec->mark_enter();
              if (config.cs_time > 0) ShimAtomics::delay(config.cs_time);
              exec->mark_exit();
              algo->lock->unlock(id);
            }
          });
    }

    RunHarness harness;
    harness.verdict = [holder,
                       sim = &simulation](const RunInfo&) -> CheckOutcome {
      if (holder->exec->me_violations() > 0)
        return {false, "mutual exclusion violated (CS occupancy overlap)"};
      return check_parked_at_idle(*sim);
    };
    return harness;
  };
}

CheckScenario make_rt_eventcount_scenario(RtEventCountScenarioConfig config) {
  return [config](sim::Simulation& simulation) -> RunHarness {
    struct Algo {
      std::unique_ptr<rt::BasicAtomicRegister<int, ShimAtomics>> ready;
      std::unique_ptr<rt::BasicEventCount<ShimAtomics>> events;
    };
    auto holder = std::make_shared<Holder<Algo>>();
    holder->exec = std::make_unique<rtshim::RtExecution>(simulation);
    holder->algo = std::make_shared<Algo>();
    holder->algo->ready =
        std::make_unique<rt::BasicAtomicRegister<int, ShimAtomics>>();
    holder->algo->events = std::make_unique<rt::BasicEventCount<ShimAtomics>>();

    holder->exec->spawn_thread(
        [algo = holder->algo, torn = config.torn_epoch] {
          if (torn) {
            // The bug under test: publishing the epoch before the state
            // write lets a waiter snapshot the new epoch, read the old
            // state, and park on an epoch that will never move again.
            algo->events->advance();
            algo->ready->write(1);
          } else {
            algo->ready->write(1);
            algo->events->advance();
          }
        });
    holder->exec->spawn_thread([algo = holder->algo] {
      rt::wait_until_changed(*algo->events,
                             [&] { return algo->ready->read() == 1; });
    });

    RunHarness harness;
    harness.verdict = [holder,
                       sim = &simulation](const RunInfo&) -> CheckOutcome {
      return check_parked_at_idle(*sim);
    };
    return harness;
  };
}

}  // namespace tfr::mcheck
