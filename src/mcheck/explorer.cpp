#include "tfr/mcheck/explorer.hpp"

#include <algorithm>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "tfr/benchkit/forkmap.hpp"
#include "tfr/common/contracts.hpp"

namespace tfr::mcheck {

namespace {

/// One decision node on the current DFS path.  The path is persistent
/// across re-executions: replayed prefixes walk it with a cursor, the
/// first divergence point appends fresh nodes.
struct Node {
  enum class Kind : std::uint8_t { kSched, kCost };

  Kind kind = Kind::kSched;
  std::size_t chosen = 0;
  /// kSched: the enabled events at this instant (sorted by pid).
  std::vector<sim::EnabledEvent> options;
  /// kSched: sleep set — events already covered by sibling subtrees;
  /// picking one here would re-explore an equivalent interleaving.
  std::vector<sim::EnabledEvent> sleep;
  /// kCost: the cost menu offered at this access.
  std::vector<sim::Duration> costs;
  /// A fresh node whose every option was asleep: the whole execution is
  /// redundant; advance() discards it without exploring children.
  bool blocked = false;
  /// kSourceDpor, node at-or-below the gate depth: siblings are explored
  /// only when a detected race demands them (see backtrack).
  bool dpor_managed = false;
  /// Escape hatch of the race-reversal rule: a race wanted a process that
  /// has no enabled event here, so every sibling must be explored (the
  /// conservative sound fallback for the timed model).
  bool explore_all = false;
  /// kSched + dpor_managed: pids whose subtree a race made mandatory.
  std::vector<sim::Pid> backtrack;
  /// kSched + dpor_managed: per-option "its subtree was entered" marks;
  /// at pop time the unexplored remainder is what the reduction saved.
  std::vector<char> explored;
};

bool in_sleep(const std::vector<sim::EnabledEvent>& sleep, sim::Pid pid) {
  return std::any_of(sleep.begin(), sleep.end(),
                     [pid](const sim::EnabledEvent& e) { return e.pid == pid; });
}

bool event_order(const sim::EnabledEvent& a, const sim::EnabledEvent& b) {
  if (a.pid != b.pid) return a.pid < b.pid;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.reg < b.reg;
}

/// Auto frontier depth: deep enough that even modest branching yields many
/// more subtrees than workers (load balance), shallow enough that the
/// enumeration probes stay a negligible fraction of the exploration.
constexpr std::uint32_t kDefaultPrefixDepth = 6;

/// Fixed activation depth of the kSourceDpor machinery: nodes shallower
/// than this keep plain sleep-set semantics (explore every non-sleeping
/// sibling); nodes at-or-below it carry race-driven backtrack sets, and
/// the state-hash table prunes at exactly this depth.  It deliberately
/// equals the work-sharing frontier default — parallel runs pin their
/// frontier here so prefix nodes (owned by the enumerator, never advanced
/// by workers) are exactly the explore-all ones and every counter stays
/// byte-identical to the serial run.
constexpr std::size_t kDporGate = kDefaultPrefixDepth;

std::uint64_t fold64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Explorer;

/// TimingModel that routes every access cost through the explorer's
/// cost-choice seam (menu {1, Δ[, failure]} under the configured budgets).
class ChoiceTiming final : public sim::TimingModel {
 public:
  explicit ChoiceTiming(Explorer* engine) : engine_(engine) {}
  sim::Duration access_cost(sim::Pid pid, sim::Time now, Rng& rng) override;

 private:
  Explorer* engine_;
};

/// Adds the event counters of `from` into `into` (the complete flag is a
/// property of the merged whole and is left to the caller).
void add_counters(ExploreStats& into, const ExploreStats& from) {
  into.executions += from.executions;
  into.states += from.states;
  into.transitions += from.transitions;
  into.sched_choice_points += from.sched_choice_points;
  into.cost_choice_points += from.cost_choice_points;
  into.sleep_pruned += from.sleep_pruned;
  into.sleep_blocked += from.sleep_blocked;
  into.truncated += from.truncated;
  into.races_detected += from.races_detected;
  into.source_pruned += from.source_pruned;
  into.state_pruned += from.state_pruned;
}

/// The DFS engine.  Doubles as the SchedulerStrategy of each explored
/// execution: scheduling and cost queries either replay the stored path
/// (cursor within path_) or create a fresh node and take its first
/// non-sleeping branch.
///
/// One engine instance runs in one of three modes:
///  - kSerial: explore the whole tree (jobs == 1, and the reference
///    semantics every parallel run must reproduce).
///  - kEnumerate: probe executions only up to the frontier depth; each
///    depth-d subtree (or shorter leaf) becomes a WorkItem.  Probe run
///    counters are discarded — the owning worker re-executes and counts —
///    but fresh prefix nodes, prefix-level backtracking and sleep-blocked
///    probe executions are enumerator-owned, exactly as in a serial run.
///  - kWorker: explore one WorkItem's subtree; the path is pre-seeded with
///    the frontier prefix (replayed, never advanced — fixed_depth_).
class Explorer final : public sim::SchedulerStrategy {
 public:
  enum class Mode : std::uint8_t { kSerial, kEnumerate, kWorker };

  /// One unit of parallel work: the frontier prefix identifying a subtree.
  /// Sleep sets are snapshotted as of emission — sound because a prefix
  /// node's sleep set only changes when the DFS backtracks *through* it,
  /// which by construction happens after its subtree is fully explored.
  struct WorkItem {
    std::vector<Node> prefix;
  };

  /// Everything the enumeration pass hands to the merge: the work items in
  /// DFS order, the cumulative enumerator-owned stats at each emission
  /// (the merge cuts here when item k holds the first violation), and the
  /// final enumerator stats (the clean-run contribution).
  struct Frontier {
    std::vector<WorkItem> items;
    std::vector<ExploreStats> stats_at_item;
    ExploreStats final_stats;
  };

  explicit Explorer(const ExploreConfig& config, Mode mode = Mode::kSerial,
                    std::uint32_t frontier_depth = 0)
      : config_(config), mode_(mode), frontier_depth_(frontier_depth) {
    TFR_REQUIRE(config.delta >= 1);
    TFR_REQUIRE(config.failure_cost > config.delta);
    TFR_REQUIRE(config.max_steps >= 1);
    if (mode_ == Mode::kEnumerate) TFR_REQUIRE(frontier_depth_ >= 1);
    // Enumerate probes never detect races: their executions are re-run and
    // race-detected by the owning worker (keeps counters serial-identical).
    race_detect_ = dpor() && mode_ != Mode::kEnumerate;
  }

  CheckResult explore(const CheckScenario& scenario);
  Frontier enumerate(const CheckScenario& scenario);
  CheckResult explore_subtree(const CheckScenario& scenario,
                              const WorkItem& item);

  // --- SchedulerStrategy ---
  std::size_t pick(sim::Time now,
                   const std::vector<sim::EnabledEvent>& options) override {
    (void)now;
    if (aborted()) return 0;
    ++steps_;
    ++stats_.transitions;
    const std::size_t chosen = decide_sched(options);
    if (!aborted()) sched_picks_.push_back(options[chosen].pid);
    return chosen;
  }

  /// External cost seams (e.g. a FailureInjector with an attached
  /// strategy) branch here too, under the same DFS.
  std::size_t pick_cost(sim::Pid pid,
                        const std::vector<sim::Duration>& choices) override {
    (void)pid;
    if (aborted() || choices.size() < 2) return 0;
    return decide_cost(choices.data(), choices.size());
  }

  /// Cost of one shared access, drawn from the bounded menu.  Called by
  /// ChoiceTiming for every access of the execution.  The menu lives on
  /// the stack (at most {1, Δ, failure}) — building a vector here showed
  /// up as the single hottest allocation of the whole exploration.
  sim::Duration draw_cost(sim::Pid pid, sim::Time now) {
    if (aborted()) return 1;
    sim::Duration menu[3];
    std::size_t size = 0;
    menu[size++] = 1;
    if (config_.delta > 1 &&
        (config_.slow_budget < 0 ||
         slow_used_ < static_cast<std::uint32_t>(config_.slow_budget))) {
      menu[size++] = config_.delta;
    }
    if (failures_used_ < config_.max_failures)
      menu[size++] = config_.failure_cost;
    const std::size_t idx = size > 1 ? decide_cost(menu, size) : 0;
    const sim::Duration cost = aborted() ? 1 : menu[idx];
    if (cost > config_.delta) {
      ++failures_used_;
      last_failure_completion_ =
          std::max(last_failure_completion_, now + cost);
    } else if (cost > 1) {
      ++slow_used_;
    }
    cost_draws_.emplace_back(pid, cost);
    return cost;
  }

 private:
  struct RunVerdict {
    CheckOutcome outcome;
    bool truncated = false;
    bool blocked = false;
    bool frontier_hit = false;
  };

  /// The execution was cut short: sleep-blocked, state-pruned, or
  /// (enumerate mode) it reached the work-sharing frontier.  Every later
  /// decision defaults.
  bool aborted() const { return blocked_ || frontier_hit_; }

  bool dpor() const { return config_.reduction == Reduction::kSourceDpor; }
  bool sleepy() const { return config_.reduction != Reduction::kNone; }

  void init_simulation() {
    // Gate-state hashing is only performed by the owner of the gate nodes
    // (serial / enumerate); workers skip the capture cost entirely.
    const bool capture = dpor() && mode_ != Mode::kWorker;
    simulation_ = std::make_unique<sim::Simulation>(
        std::make_unique<ChoiceTiming>(this),
        sim::SimulationOptions{.seed = config_.seed, .strategy = this,
                               .capture_state = capture});
  }

  /// Claims the path slot at path_len_, recycling its heap buffers.  Nodes
  /// are pooled: advance() only ever rewinds path_len_, so a popped node's
  /// options/sleep/costs vectors keep their capacity for the next branch —
  /// after the first few executions the DFS allocates nothing per node.
  Node& fresh_node() {
    if (path_len_ == path_.size()) path_.emplace_back();
    Node& node = path_[path_len_++];
    node.options.clear();
    node.sleep.clear();
    node.costs.clear();
    node.chosen = 0;
    node.blocked = false;
    node.dpor_managed = false;
    node.explore_all = false;
    node.backtrack.clear();
    node.explored.clear();
    return node;
  }

  RunVerdict run_one(const CheckScenario& scenario);
  std::size_t decide_sched(const std::vector<sim::EnabledEvent>& options);
  std::size_t decide_cost(const sim::Duration* menu, std::size_t size);
  bool advance();
  obs::RecordedRun build_counterexample(const CheckScenario& scenario) const;

  // --- source-set DPOR: race detection over the current execution --------
  //
  // Every linearized shared access is one step; vector clocks over step
  // indices track happens-before (conflicting accesses are ordered by
  // linearization, so each access joins the clocks of the conflicting
  // accesses it observes).  A race is a pair of conflicting accesses by
  // different processes not ordered by anything *else* — exactly the
  // reversals whose other order a different tie-break could realize.

  std::vector<std::uint32_t>& clock_for(sim::Pid pid) {
    const auto index = static_cast<std::size_t>(pid);
    if (clocks_.size() <= index) clocks_.resize(index + 1);
    return clocks_[index];
  }

  static std::uint32_t clock_at(const std::vector<std::uint32_t>& clock,
                                sim::Pid pid) {
    const auto index = static_cast<std::size_t>(pid);
    return index < clock.size() ? clock[index] : 0;
  }

  static void clock_set(std::vector<std::uint32_t>& clock, sim::Pid pid,
                        std::uint32_t step) {
    const auto index = static_cast<std::size_t>(pid);
    if (clock.size() <= index) clock.resize(index + 1, 0);
    clock[index] = step;
  }

  static void clock_join(std::vector<std::uint32_t>& into,
                         const std::vector<std::uint32_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i)
      into[i] = std::max(into[i], from[i]);
  }

  /// Records one linearized access at path node `node_index` and reports
  /// every race it closes against earlier conflicting accesses.
  void note_step(const sim::EnabledEvent& event, std::size_t node_index) {
    if (!race_detect_) return;
    const bool is_write = event.kind == sim::AccessKind::kWrite;
    if (!is_write && event.kind != sim::AccessKind::kRead) return;
    steps_dpor_.push_back(
        {event.pid, static_cast<std::uint32_t>(node_index)});
    const auto step = static_cast<std::uint32_t>(steps_dpor_.size());
    std::vector<std::uint32_t>& clock = clock_for(event.pid);
    RegTrack& track = reg_track_[event.reg];
    // Race candidates: the latest conflicting accesses this one is not
    // already ordered after.  (Earlier writes are ordered before the
    // latest write, so checking the latest of each kind suffices.)
    if (track.last_write != 0 && track.last_write_pid != event.pid &&
        clock_at(clock, track.last_write_pid) < track.last_write)
      note_race(track.last_write, event.pid);
    if (is_write) {
      for (const auto& [reader_pid, reader_step] : track.readers) {
        if (reader_pid != event.pid &&
            clock_at(clock, reader_pid) < reader_step)
          note_race(reader_step, event.pid);
      }
    }
    // Happens-before update: this access linearizes after every
    // conflicting access seen so far, raced or not.
    clock_join(clock, track.write_clock);
    if (is_write) clock_join(clock, track.read_clock);
    clock_set(clock, event.pid, step);
    if (is_write) {
      track.write_clock = clock;
      track.read_clock.clear();
      track.readers.clear();
      track.last_write = step;
      track.last_write_pid = event.pid;
    } else {
      clock_join(track.read_clock, clock);
      bool found = false;
      for (auto& [reader_pid, reader_step] : track.readers) {
        if (reader_pid == event.pid) {
          reader_step = step;
          found = true;
          break;
        }
      }
      if (!found) track.readers.emplace_back(event.pid, step);
    }
  }

  /// A race between step `earlier_step` and the current access of
  /// `racer_pid`: request the reversed order at the scheduling node that
  /// committed the earlier access.
  void note_race(std::uint32_t earlier_step, sim::Pid racer_pid) {
    const std::size_t node_index = steps_dpor_[earlier_step - 1].node;
    if (node_index < kDporGate) return;  // shallow region explores all
    ++stats_.races_detected;
    Node& node = path_[node_index];
    TFR_INVARIANT(node.kind == Node::Kind::kSched);
    TFR_INVARIANT(node.dpor_managed);
    if (node.explore_all) return;
    for (const sim::EnabledEvent& option : node.options) {
      if (option.pid != racer_pid) continue;
      // The racer was co-enabled with the earlier access: exploring its
      // subtree at that node realizes the reversal.
      if (!in_sleep(node.sleep, racer_pid) &&
          std::find(node.backtrack.begin(), node.backtrack.end(),
                    racer_pid) == node.backtrack.end())
        node.backtrack.push_back(racer_pid);
      return;
    }
    // The racer was not enabled at that instant (it raced from a later
    // one): the timed model offers no single node realizing the reversal,
    // so fall back to exploring every sibling — sound, never unsound.
    node.explore_all = true;
  }

  /// Frontier state-hash check, performed exactly when the gate node is
  /// about to be created (serial) or the probe is cut (enumerate).  Prunes
  /// the subtree iff an identical gate state was already explored under a
  /// subset sleep set; otherwise records this visit.  Returns true when
  /// pruned (the execution is then cut like a sleep-blocked one).
  bool gate_prune() {
    if (!simulation_->state_hashable()) return false;
    std::uint64_t signature = simulation_->state_fingerprint();
    // Explorer-side budgets shape future cost menus and verdicts: two
    // gate states are only interchangeable if these match too.
    signature = fold64(signature, steps_);
    signature = fold64(signature, slow_used_);
    signature = fold64(signature, failures_used_);
    signature =
        fold64(signature, static_cast<std::uint64_t>(last_failure_completion_));
    std::vector<sim::EnabledEvent> sleep = live_sleep_;
    std::sort(sleep.begin(), sleep.end(), event_order);
    std::vector<std::vector<sim::EnabledEvent>>& visits =
        gate_seen_[signature];
    for (const std::vector<sim::EnabledEvent>& prior : visits) {
      if (std::includes(sleep.begin(), sleep.end(), prior.begin(),
                        prior.end(), event_order)) {
        // Everything this subtree may explore (executions avoiding the
        // current sleep set) was already explored from the equal state
        // under the smaller sleep set.
        ++stats_.state_pruned;
        blocked_ = true;
        return true;
      }
    }
    visits.push_back(std::move(sleep));
    return false;
  }

  /// Keeps only the sleeping events independent of what just ran; the
  /// survivors seed the sleep set of the next fresh node.
  void filter_sleep(const std::vector<sim::EnabledEvent>& sleep,
                    const sim::EnabledEvent& chosen) {
    live_sleep_.clear();
    for (const sim::EnabledEvent& e : sleep) {
      if (!sim::events_dependent(e, chosen)) live_sleep_.push_back(e);
    }
  }

  ExploreConfig config_;
  Mode mode_;
  std::uint32_t frontier_depth_;
  ExploreStats stats_;

  /// The one simulation object, reset() between executions so event-queue
  /// storage, stat vectors and trace buffers are reused (the re-execution
  /// fast path); run_until() gives the stop predicate static dispatch.
  std::unique_ptr<sim::Simulation> simulation_;

  // DFS path, persistent across executions.  path_len_ is the live length;
  // path_.size() is the pool high-water mark.
  std::vector<Node> path_;
  std::size_t path_len_ = 0;
  /// Worker mode: nodes below this depth are the frontier prefix — they
  /// replay but never advance; the subtree above them is this worker's.
  std::size_t fixed_depth_ = 0;

  // Per-execution state.
  std::size_t cursor_ = 0;
  std::vector<sim::EnabledEvent> live_sleep_;
  bool blocked_ = false;
  bool frontier_hit_ = false;
  std::uint64_t steps_ = 0;
  std::uint32_t slow_used_ = 0;
  std::uint32_t failures_used_ = 0;
  sim::Time last_failure_completion_ = -1;
  std::vector<std::pair<sim::Pid, sim::Duration>> cost_draws_;
  std::vector<sim::Pid> sched_picks_;

  // Per-execution race-detection state (kSourceDpor, serial/worker).
  /// One record per linearized shared access: who, and at which path node.
  struct StepRec {
    sim::Pid pid;
    std::uint32_t node;
  };
  /// Last-conflicting-access tracking per register uid.
  struct RegTrack {
    std::uint32_t last_write = 0;  ///< 1-based step index; 0 = none yet
    sim::Pid last_write_pid = -1;
    std::vector<std::uint32_t> write_clock;
    std::vector<std::uint32_t> read_clock;
    /// Per-pid latest read since the last write (the reads a new write
    /// conflicts with individually).
    std::vector<std::pair<sim::Pid, std::uint32_t>> readers;
  };
  bool race_detect_ = false;
  std::vector<StepRec> steps_dpor_;
  std::vector<std::vector<std::uint32_t>> clocks_;  ///< per-pid clocks
  std::unordered_map<std::uint64_t, RegTrack> reg_track_;

  /// Gate-state table (kSourceDpor, serial/enumerate): signature -> the
  /// sorted sleep sets under which that gate state was already explored.
  std::unordered_map<std::uint64_t, std::vector<std::vector<sim::EnabledEvent>>>
      gate_seen_;
};

sim::Duration ChoiceTiming::access_cost(sim::Pid pid, sim::Time now,
                                        Rng& rng) {
  (void)rng;
  return engine_->draw_cost(pid, now);
}

std::size_t Explorer::decide_sched(
    const std::vector<sim::EnabledEvent>& options) {
  TFR_REQUIRE(!options.empty());
  if (cursor_ < path_len_) {
    // Replaying the stored prefix: same scenario + same prior choices
    // must reproduce the same enabled set (the simulator is
    // deterministic), so the stored pick is valid.
    Node& node = path_[cursor_];
    TFR_INVARIANT(node.kind == Node::Kind::kSched);
    TFR_INVARIANT(node.options.size() == options.size());
    TFR_INVARIANT(node.chosen < options.size());
    TFR_INVARIANT(node.options[node.chosen].pid == options[node.chosen].pid);
    const std::size_t node_index = cursor_;
    ++cursor_;
    filter_sleep(node.sleep, options[node.chosen]);
    note_step(options[node.chosen], node_index);
    return node.chosen;
  }

  if (mode_ == Mode::kEnumerate && path_len_ >= frontier_depth_) {
    // The execution is about to leave the shared prefix region: everything
    // below is one worker's subtree.  Under kSourceDpor the frontier is
    // the reduction gate: consult the state table before emitting — a
    // pruned probe is cut exactly like a sleep-blocked one.
    if (dpor() && gate_prune()) return 0;
    frontier_hit_ = true;
    return 0;
  }

  if (dpor() && mode_ == Mode::kSerial && path_len_ == kDporGate &&
      gate_prune())
    return 0;

  // Divergence point: create a fresh node whose sleep set is inherited
  // from the path so far.
  Node& node = fresh_node();
  node.kind = Node::Kind::kSched;
  node.options = options;
  if (sleepy()) node.sleep = live_sleep_;
  std::size_t chosen = 0;
  if (sleepy()) {
    chosen = options.size();
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (!in_sleep(node.sleep, options[i].pid)) {
        chosen = i;
        break;
      }
    }
    if (chosen == options.size()) {
      // Every enabled event is asleep: this execution only permutes
      // independent events of ones already explored.  Cut it.
      node.blocked = true;
      blocked_ = true;
      ++stats_.sleep_blocked;
      ++cursor_;
      return 0;
    }
  }
  node.chosen = chosen;
  const std::size_t node_index = path_len_ - 1;
  if (dpor() && node_index >= kDporGate) {
    // Source-set discipline: only the first branch plus race-demanded
    // siblings get explored (advance() consumes backtrack/explored).
    node.dpor_managed = true;
    node.backtrack.push_back(options[chosen].pid);
    node.explored.assign(options.size(), 0);
    node.explored[chosen] = 1;
  }
  ++stats_.states;
  if (options.size() > 1) ++stats_.sched_choice_points;
  ++cursor_;
  filter_sleep(node.sleep, options[chosen]);
  note_step(options[chosen], node_index);
  return chosen;
}

std::size_t Explorer::decide_cost(const sim::Duration* menu,
                                  std::size_t size) {
  if (cursor_ < path_len_) {
    Node& node = path_[cursor_];
    TFR_INVARIANT(node.kind == Node::Kind::kCost);
    TFR_INVARIANT(node.costs.size() == size);
    ++cursor_;
    return node.chosen;
  }
  if (mode_ == Mode::kEnumerate && path_len_ >= frontier_depth_) {
    if (dpor() && gate_prune()) return 0;
    frontier_hit_ = true;
    return 0;
  }
  if (dpor() && mode_ == Mode::kSerial && path_len_ == kDporGate &&
      gate_prune())
    return 0;
  Node& node = fresh_node();
  node.kind = Node::Kind::kCost;
  node.costs.assign(menu, menu + size);
  ++stats_.states;
  ++stats_.cost_choice_points;
  ++cursor_;
  return 0;
}

Explorer::RunVerdict Explorer::run_one(const CheckScenario& scenario) {
  cursor_ = 0;
  live_sleep_.clear();
  blocked_ = false;
  frontier_hit_ = false;
  steps_ = 0;
  slow_used_ = 0;
  failures_used_ = 0;
  last_failure_completion_ = -1;
  cost_draws_.clear();
  sched_picks_.clear();
  if (race_detect_) {
    steps_dpor_.clear();
    for (std::vector<std::uint32_t>& clock : clocks_) clock.clear();
    // Register uids are identical across runs (allocation-order keys), so
    // entries are reset in place — the map stops allocating after run one.
    for (auto& [uid, track] : reg_track_) {
      (void)uid;
      track.last_write = 0;
      track.last_write_pid = -1;
      track.write_clock.clear();
      track.read_clock.clear();
      track.readers.clear();
    }
  }

  simulation_->reset(config_.seed);
  RunHarness harness = scenario(*simulation_);

  bool cutoff = false;
  const auto result =
      simulation_->run_until(config_.time_limit, [this, &harness, &cutoff] {
        if (aborted()) return true;
        if (steps_ >= config_.max_steps) {
          cutoff = true;
          return true;
        }
        if (harness.stop && harness.stop()) {
          cutoff = true;
          return true;
        }
        return false;
      });

  RunVerdict verdict;
  verdict.blocked = blocked_;
  verdict.frontier_hit = frontier_hit_;
  verdict.truncated =
      cutoff || result == sim::Simulation::RunResult::TimeLimit;
  if (!aborted() && harness.verdict) {
    RunInfo info;
    info.truncated = verdict.truncated;
    info.failures_injected = failures_used_;
    info.slow_accesses = slow_used_;
    info.last_failure_completion = last_failure_completion_;
    verdict.outcome = harness.verdict(info);
  }
  return verdict;
}

bool Explorer::advance() {
  while (path_len_ > fixed_depth_) {
    Node& node = path_[path_len_ - 1];
    if (node.blocked) {
      --path_len_;
      continue;
    }
    if (node.kind == Node::Kind::kSched) {
      if (node.dpor_managed) {
        // Source-set discipline: a sibling is entered only if some race in
        // an explored subtree demanded it (backtrack) — or every sibling,
        // once the conservative fallback fired.  The scan restarts from 0
        // because races may demand siblings at lower indices than chosen.
        node.sleep.push_back(node.options[node.chosen]);
        std::size_t next = node.options.size();
        for (std::size_t i = 0; i < node.options.size(); ++i) {
          if (node.explored[i]) continue;
          if (in_sleep(node.sleep, node.options[i].pid)) continue;
          if (!node.explore_all &&
              std::find(node.backtrack.begin(), node.backtrack.end(),
                        node.options[i].pid) == node.backtrack.end())
            continue;
          next = i;
          break;
        }
        if (next < node.options.size()) {
          node.chosen = next;
          node.explored[next] = 1;
          return true;
        }
        // Pop: attribute every never-entered sibling to its pruning cause.
        for (std::size_t i = 0; i < node.options.size(); ++i) {
          if (node.explored[i]) continue;
          if (in_sleep(node.sleep, node.options[i].pid))
            ++stats_.sleep_pruned;
          else
            ++stats_.source_pruned;
        }
      } else if (sleepy()) {
        // The subtree under `chosen` is fully explored; any sibling that
        // commutes with it would reach the same states — put it to sleep.
        node.sleep.push_back(node.options[node.chosen]);
        std::size_t next = node.chosen + 1;
        while (next < node.options.size() &&
               in_sleep(node.sleep, node.options[next].pid)) {
          ++stats_.sleep_pruned;
          ++next;
        }
        if (next < node.options.size()) {
          node.chosen = next;
          return true;
        }
      } else if (node.chosen + 1 < node.options.size()) {
        ++node.chosen;
        return true;
      }
    } else if (node.chosen + 1 < node.costs.size()) {
      ++node.chosen;
      return true;
    }
    --path_len_;
  }
  return false;
}

obs::RecordedRun Explorer::build_counterexample(
    const CheckScenario& scenario) const {
  obs::TimingSpec spec;
  spec.kind = obs::TimingSpec::Kind::kScripted;
  spec.lo = 1;
  spec.delta = config_.delta;
  spec.script = cost_draws_;
  spec.schedule = sched_picks_;
  return obs::record(config_.seed, spec,
                     counterexample_scenario(scenario, config_));
}

CheckResult Explorer::explore(const CheckScenario& scenario) {
  init_simulation();
  CheckResult result;
  for (;;) {
    ++stats_.executions;
    const RunVerdict verdict = run_one(scenario);
    if (verdict.truncated) ++stats_.truncated;
    if (!verdict.blocked && !verdict.outcome.ok) {
      result.violation = true;
      result.what = verdict.outcome.what;
      result.counterexample = build_counterexample(scenario);
      stats_.complete = false;
      break;
    }
    if (stats_.executions >= config_.max_executions) {
      stats_.complete = false;
      break;
    }
    if (!advance()) {
      stats_.complete = true;
      break;
    }
  }
  result.stats = stats_;
  return result;
}

Explorer::Frontier Explorer::enumerate(const CheckScenario& scenario) {
  init_simulation();
  Frontier frontier;
  for (;;) {
    const std::uint64_t transitions_before = stats_.transitions;
    const RunVerdict verdict = run_one(scenario);
    if (verdict.blocked) {
      // A sleep-blocked probe *is* a full execution in serial terms (the
      // cut happens before the frontier): enumerator-owned.
      ++stats_.executions;
      if (verdict.truncated) ++stats_.truncated;
    } else {
      // Frontier hit (a depth-d subtree) or a leaf shorter than the
      // frontier (a one-execution subtree): the owning worker re-executes
      // and counts the run, so the probe's transition count is discarded.
      // Fresh prefix nodes stay counted here — serial creates them once,
      // and workers only ever replay them.
      stats_.transitions = transitions_before;
      WorkItem item;
      item.prefix.assign(path_.begin(),
                         path_.begin() + static_cast<std::ptrdiff_t>(path_len_));
      frontier.items.push_back(std::move(item));
      frontier.stats_at_item.push_back(stats_);
    }
    if (!advance()) break;
  }
  frontier.final_stats = stats_;
  return frontier;
}

CheckResult Explorer::explore_subtree(const CheckScenario& scenario,
                                      const WorkItem& item) {
  path_.assign(item.prefix.begin(), item.prefix.end());
  path_len_ = path_.size();
  fixed_depth_ = path_len_;
  return explore(scenario);
}

// --- worker result wire format (fork_map payload) ------------------------

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_blob(std::string& out, const std::string& bytes) {
  put_u64(out, bytes.size());
  out += bytes;
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    TFR_REQUIRE(pos_ < bytes_.size());
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint64_t u64() {
    TFR_REQUIRE(pos_ + 8 <= bytes_.size());
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  std::string blob() {
    const std::uint64_t size = u64();
    TFR_REQUIRE(size <= bytes_.size() - pos_);
    std::string out(bytes_.substr(pos_, size));
    pos_ += size;
    return out;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::string encode_result(const CheckResult& result) {
  std::string out;
  out.push_back(result.violation ? 1 : 0);
  out.push_back(result.stats.complete ? 1 : 0);
  put_u64(out, result.stats.executions);
  put_u64(out, result.stats.states);
  put_u64(out, result.stats.transitions);
  put_u64(out, result.stats.sched_choice_points);
  put_u64(out, result.stats.cost_choice_points);
  put_u64(out, result.stats.sleep_pruned);
  put_u64(out, result.stats.sleep_blocked);
  put_u64(out, result.stats.truncated);
  put_u64(out, result.stats.races_detected);
  put_u64(out, result.stats.source_pruned);
  put_u64(out, result.stats.state_pruned);
  put_blob(out, result.what);
  put_blob(out,
           result.violation ? result.counterexample.to_bytes() : std::string());
  return out;
}

CheckResult decode_result(std::string_view bytes) {
  ByteReader reader(bytes);
  CheckResult result;
  result.violation = reader.u8() != 0;
  result.stats.complete = reader.u8() != 0;
  result.stats.executions = reader.u64();
  result.stats.states = reader.u64();
  result.stats.transitions = reader.u64();
  result.stats.sched_choice_points = reader.u64();
  result.stats.cost_choice_points = reader.u64();
  result.stats.sleep_pruned = reader.u64();
  result.stats.sleep_blocked = reader.u64();
  result.stats.truncated = reader.u64();
  result.stats.races_detected = reader.u64();
  result.stats.source_pruned = reader.u64();
  result.stats.state_pruned = reader.u64();
  result.what = reader.blob();
  const std::string cex = reader.blob();
  if (result.violation) {
    auto run = obs::RecordedRun::from_bytes(cex);
    TFR_REQUIRE(run.has_value());
    result.counterexample = std::move(*run);
  }
  return result;
}

/// True iff a worker payload reports a violation — cheap peek used by the
/// fork_map result hook to cancel subtrees past the first violating one.
bool payload_has_violation(const std::string& payload) {
  return !payload.empty() && payload[0] != 0;
}

// --- parallel driver -----------------------------------------------------

CheckResult check_parallel(const CheckScenario& scenario,
                           const ExploreConfig& config) {
  // Under kSourceDpor the frontier must coincide with the reduction gate:
  // backtrack sets and state hashing operate only at-or-below the gate, so
  // prefix nodes are exactly the explore-all ones and every counter stays
  // byte-identical to the serial run (see kDporGate).
  const std::uint32_t depth =
      config.reduction == Reduction::kSourceDpor
          ? static_cast<std::uint32_t>(kDporGate)
          : (config.prefix_depth != 0 ? config.prefix_depth
                                      : kDefaultPrefixDepth);

  // Phase 1 (in-process): partition the tree at the frontier.
  Explorer enumerator(config, Explorer::Mode::kEnumerate, depth);
  const Explorer::Frontier frontier = enumerator.enumerate(scenario);

  if (frontier.items.empty()) {
    // Degenerate: every probe was sleep-blocked; the enumerator's stats
    // are the whole exploration.
    CheckResult result;
    result.stats = frontier.final_stats;
    result.stats.complete = true;
    return result;
  }

  // Phase 2: one forked worker per subtree.  The child inherits the
  // scenario and its work item by memory image; only results cross back.
  // A reported violation cancels every *later* subtree — earlier ones
  // must still finish so the merged result is cut at the DFS-least
  // (lexicographically-least decision path) violation, independent of
  // which worker reported first.
  const std::vector<benchkit::ForkResult> raw = benchkit::fork_map(
      frontier.items.size(), config.jobs,
      [&scenario, &config, &frontier, depth](std::size_t index) {
        Explorer worker(config, Explorer::Mode::kWorker, depth);
        return encode_result(
            worker.explore_subtree(scenario, frontier.items[index]));
      },
      [](std::size_t index, const benchkit::ForkResult& result,
         benchkit::ForkMapControl& control) {
        if (result.completed && payload_has_violation(result.payload))
          control.skip_after(index);
      });

  // Phase 3: deterministic merge, in frontier (= DFS) order.
  std::vector<CheckResult> decoded;
  decoded.reserve(raw.size());
  for (const benchkit::ForkResult& result : raw) {
    if (result.skipped) break;  // beyond the violation cut, by construction
    TFR_REQUIRE(result.completed);
    decoded.push_back(decode_result(result.payload));
  }

  CheckResult merged;
  for (std::size_t v = 0; v < decoded.size(); ++v) {
    if (!decoded[v].violation) continue;
    // Serial state at this violation: enumerator work up to item v's
    // emission, the full subtrees before it, and subtree v's partial run.
    ExploreStats total = frontier.stats_at_item[v];
    for (std::size_t j = 0; j < v; ++j) add_counters(total, decoded[j].stats);
    add_counters(total, decoded[v].stats);
    total.complete = false;
    merged.violation = true;
    merged.what = decoded[v].what;
    merged.counterexample = decoded[v].counterexample;
    merged.stats = total;
    return merged;
  }

  ExploreStats total = frontier.final_stats;
  bool complete = true;
  for (const CheckResult& result : decoded) {
    add_counters(total, result.stats);
    complete = complete && result.stats.complete;
  }
  total.complete = complete;
  merged.stats = total;
  return merged;
}

}  // namespace

CheckResult check(const CheckScenario& scenario, const ExploreConfig& config) {
  if (config.jobs > 1) return check_parallel(scenario, config);
  Explorer explorer(config);
  return explorer.explore(scenario);
}

CheckOutcome run_recorded(const obs::RecordedRun& run,
                          const CheckScenario& scenario,
                          const ExploreConfig& config) {
  std::unique_ptr<sim::TimingModel> timing = obs::make_timing(run.timing);
  obs::ReplaySchedule replayer(run.timing.schedule);
  sim::Simulation simulation(
      std::move(timing),
      sim::SimulationOptions{.seed = run.seed, .strategy = &replayer});
  RunHarness harness = scenario(simulation);
  simulation.run(config.time_limit,
                 [&replayer] { return replayer.exhausted(); });

  RunInfo info;
  // A recorded counterexample is by construction a prefix of a longer
  // execution; report it as truncated so liveness-flavoured verdict
  // clauses stay out of the way and only safety is judged.
  info.truncated = true;
  for (const auto& [pid, cost] : run.timing.script) {
    (void)pid;
    if (cost > config.delta) {
      ++info.failures_injected;
    } else if (cost > 1) {
      ++info.slow_accesses;
    }
  }
  info.last_failure_completion = -1;
  return harness.verdict ? harness.verdict(info) : CheckOutcome{};
}

obs::Scenario counterexample_scenario(const CheckScenario& scenario,
                                      const ExploreConfig& config) {
  return [scenario, limit = config.time_limit](sim::Simulation& simulation) {
    RunHarness harness = scenario(simulation);
    simulation.run(limit, [&simulation] {
      const sim::SchedulerStrategy* strategy = simulation.strategy();
      return strategy != nullptr && strategy->exhausted();
    });
  };
}

}  // namespace tfr::mcheck
