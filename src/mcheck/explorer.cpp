#include "tfr/mcheck/explorer.hpp"

#include <algorithm>
#include <memory>

#include "tfr/common/contracts.hpp"

namespace tfr::mcheck {

namespace {

/// One decision node on the current DFS path.  The path is persistent
/// across re-executions: replayed prefixes walk it with a cursor, the
/// first divergence point appends fresh nodes.
struct Node {
  enum class Kind : std::uint8_t { kSched, kCost };

  Kind kind = Kind::kSched;
  std::size_t chosen = 0;
  /// kSched: the enabled events at this instant (sorted by pid).
  std::vector<sim::EnabledEvent> options;
  /// kSched: sleep set — events already covered by sibling subtrees;
  /// picking one here would re-explore an equivalent interleaving.
  std::vector<sim::EnabledEvent> sleep;
  /// kCost: the cost menu offered at this access.
  std::vector<sim::Duration> costs;
  /// A fresh node whose every option was asleep: the whole execution is
  /// redundant; advance() discards it without exploring children.
  bool blocked = false;
};

bool in_sleep(const std::vector<sim::EnabledEvent>& sleep, sim::Pid pid) {
  return std::any_of(sleep.begin(), sleep.end(),
                     [pid](const sim::EnabledEvent& e) { return e.pid == pid; });
}

class Explorer;

/// TimingModel that routes every access cost through the explorer's
/// cost-choice seam (menu {1, Δ[, failure]} under the configured budgets).
class ChoiceTiming final : public sim::TimingModel {
 public:
  explicit ChoiceTiming(Explorer* engine) : engine_(engine) {}
  sim::Duration access_cost(sim::Pid pid, sim::Time now, Rng& rng) override;

 private:
  Explorer* engine_;
};

/// The DFS engine.  Doubles as the SchedulerStrategy of each explored
/// execution: scheduling and cost queries either replay the stored path
/// (cursor within path_) or create a fresh node and take its first
/// non-sleeping branch.
class Explorer final : public sim::SchedulerStrategy {
 public:
  explicit Explorer(const ExploreConfig& config) : config_(config) {
    TFR_REQUIRE(config.delta >= 1);
    TFR_REQUIRE(config.failure_cost > config.delta);
    TFR_REQUIRE(config.max_steps >= 1);
  }

  CheckResult explore(const CheckScenario& scenario);

  // --- SchedulerStrategy ---
  std::size_t pick(sim::Time now,
                   const std::vector<sim::EnabledEvent>& options) override {
    (void)now;
    if (blocked_) return 0;
    ++steps_;
    ++stats_.transitions;
    const std::size_t chosen = decide_sched(options);
    if (!blocked_) sched_picks_.push_back(options[chosen].pid);
    return chosen;
  }

  /// External cost seams (e.g. a FailureInjector with an attached
  /// strategy) branch here too, under the same DFS.
  std::size_t pick_cost(sim::Pid pid,
                        const std::vector<sim::Duration>& choices) override {
    (void)pid;
    if (blocked_ || choices.size() < 2) return 0;
    return decide_cost(choices);
  }

  /// Cost of one shared access, drawn from the bounded menu.  Called by
  /// ChoiceTiming for every access of the execution.
  sim::Duration draw_cost(sim::Pid pid, sim::Time now) {
    if (blocked_) return 1;
    std::vector<sim::Duration> menu{1};
    if (config_.delta > 1 &&
        (config_.slow_budget < 0 ||
         slow_used_ < static_cast<std::uint32_t>(config_.slow_budget))) {
      menu.push_back(config_.delta);
    }
    if (failures_used_ < config_.max_failures)
      menu.push_back(config_.failure_cost);
    const std::size_t idx = menu.size() > 1 ? decide_cost(menu) : 0;
    const sim::Duration cost = blocked_ ? 1 : menu[idx];
    if (cost > config_.delta) {
      ++failures_used_;
      last_failure_completion_ =
          std::max(last_failure_completion_, now + cost);
    } else if (cost > 1) {
      ++slow_used_;
    }
    cost_draws_.emplace_back(pid, cost);
    return cost;
  }

 private:
  struct RunVerdict {
    CheckOutcome outcome;
    bool truncated = false;
    bool blocked = false;
  };

  RunVerdict run_one(const CheckScenario& scenario);
  std::size_t decide_sched(const std::vector<sim::EnabledEvent>& options);
  std::size_t decide_cost(const std::vector<sim::Duration>& menu);
  bool advance();
  obs::RecordedRun build_counterexample(const CheckScenario& scenario) const;

  /// Keeps only the sleeping events independent of what just ran; the
  /// survivors seed the sleep set of the next fresh node.
  void filter_sleep(const std::vector<sim::EnabledEvent>& sleep,
                    const sim::EnabledEvent& chosen) {
    live_sleep_.clear();
    for (const sim::EnabledEvent& e : sleep) {
      if (!sim::events_dependent(e, chosen)) live_sleep_.push_back(e);
    }
  }

  ExploreConfig config_;
  ExploreStats stats_;

  // DFS path, persistent across executions.
  std::vector<Node> path_;

  // Per-execution state.
  std::size_t cursor_ = 0;
  std::vector<sim::EnabledEvent> live_sleep_;
  bool blocked_ = false;
  std::uint64_t steps_ = 0;
  std::uint32_t slow_used_ = 0;
  std::uint32_t failures_used_ = 0;
  sim::Time last_failure_completion_ = -1;
  std::vector<std::pair<sim::Pid, sim::Duration>> cost_draws_;
  std::vector<sim::Pid> sched_picks_;
};

sim::Duration ChoiceTiming::access_cost(sim::Pid pid, sim::Time now,
                                        Rng& rng) {
  (void)rng;
  return engine_->draw_cost(pid, now);
}

std::size_t Explorer::decide_sched(
    const std::vector<sim::EnabledEvent>& options) {
  TFR_REQUIRE(!options.empty());
  if (cursor_ < path_.size()) {
    // Replaying the stored prefix: same scenario + same prior choices
    // must reproduce the same enabled set (the simulator is
    // deterministic), so the stored pick is valid.
    Node& node = path_[cursor_];
    TFR_INVARIANT(node.kind == Node::Kind::kSched);
    TFR_INVARIANT(node.options.size() == options.size());
    TFR_INVARIANT(node.chosen < options.size());
    TFR_INVARIANT(node.options[node.chosen].pid == options[node.chosen].pid);
    ++cursor_;
    filter_sleep(node.sleep, options[node.chosen]);
    return node.chosen;
  }

  // Divergence point: create a fresh node whose sleep set is inherited
  // from the path so far.
  Node node;
  node.kind = Node::Kind::kSched;
  node.options = options;
  if (config_.por) node.sleep = live_sleep_;
  std::size_t chosen = 0;
  if (config_.por) {
    chosen = options.size();
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (!in_sleep(node.sleep, options[i].pid)) {
        chosen = i;
        break;
      }
    }
    if (chosen == options.size()) {
      // Every enabled event is asleep: this execution only permutes
      // independent events of ones already explored.  Cut it.
      node.blocked = true;
      node.chosen = 0;
      blocked_ = true;
      ++stats_.sleep_blocked;
      path_.push_back(std::move(node));
      ++cursor_;
      return 0;
    }
  }
  node.chosen = chosen;
  ++stats_.states;
  if (options.size() > 1) ++stats_.sched_choice_points;
  path_.push_back(std::move(node));
  ++cursor_;
  filter_sleep(path_.back().sleep, options[chosen]);
  return chosen;
}

std::size_t Explorer::decide_cost(const std::vector<sim::Duration>& menu) {
  if (cursor_ < path_.size()) {
    Node& node = path_[cursor_];
    TFR_INVARIANT(node.kind == Node::Kind::kCost);
    TFR_INVARIANT(node.costs.size() == menu.size());
    ++cursor_;
    return node.chosen;
  }
  Node node;
  node.kind = Node::Kind::kCost;
  node.costs = menu;
  node.chosen = 0;
  ++stats_.states;
  ++stats_.cost_choice_points;
  path_.push_back(std::move(node));
  ++cursor_;
  return 0;
}

Explorer::RunVerdict Explorer::run_one(const CheckScenario& scenario) {
  cursor_ = 0;
  live_sleep_.clear();
  blocked_ = false;
  steps_ = 0;
  slow_used_ = 0;
  failures_used_ = 0;
  last_failure_completion_ = -1;
  cost_draws_.clear();
  sched_picks_.clear();

  sim::Simulation simulation(
      std::make_unique<ChoiceTiming>(this),
      sim::SimulationOptions{.seed = config_.seed, .strategy = this});
  RunHarness harness = scenario(simulation);

  bool cutoff = false;
  const auto stop = [&] {
    if (blocked_) return true;
    if (steps_ >= config_.max_steps) {
      cutoff = true;
      return true;
    }
    if (harness.stop && harness.stop()) {
      cutoff = true;
      return true;
    }
    return false;
  };
  const auto result = simulation.run(config_.time_limit, stop);

  RunVerdict verdict;
  verdict.blocked = blocked_;
  verdict.truncated =
      cutoff || result == sim::Simulation::RunResult::TimeLimit;
  if (!blocked_ && harness.verdict) {
    RunInfo info;
    info.truncated = verdict.truncated;
    info.failures_injected = failures_used_;
    info.slow_accesses = slow_used_;
    info.last_failure_completion = last_failure_completion_;
    verdict.outcome = harness.verdict(info);
  }
  return verdict;
}

bool Explorer::advance() {
  while (!path_.empty()) {
    Node& node = path_.back();
    if (node.blocked) {
      path_.pop_back();
      continue;
    }
    if (node.kind == Node::Kind::kSched) {
      if (config_.por) {
        // The subtree under `chosen` is fully explored; any sibling that
        // commutes with it would reach the same states — put it to sleep.
        node.sleep.push_back(node.options[node.chosen]);
        std::size_t next = node.chosen + 1;
        while (next < node.options.size() &&
               in_sleep(node.sleep, node.options[next].pid)) {
          ++stats_.sleep_pruned;
          ++next;
        }
        if (next < node.options.size()) {
          node.chosen = next;
          return true;
        }
      } else if (node.chosen + 1 < node.options.size()) {
        ++node.chosen;
        return true;
      }
    } else if (node.chosen + 1 < node.costs.size()) {
      ++node.chosen;
      return true;
    }
    path_.pop_back();
  }
  return false;
}

obs::RecordedRun Explorer::build_counterexample(
    const CheckScenario& scenario) const {
  obs::TimingSpec spec;
  spec.kind = obs::TimingSpec::Kind::kScripted;
  spec.lo = 1;
  spec.delta = config_.delta;
  spec.script = cost_draws_;
  spec.schedule = sched_picks_;
  return obs::record(config_.seed, spec,
                     counterexample_scenario(scenario, config_));
}

CheckResult Explorer::explore(const CheckScenario& scenario) {
  CheckResult result;
  for (;;) {
    ++stats_.executions;
    const RunVerdict verdict = run_one(scenario);
    if (verdict.truncated) ++stats_.truncated;
    if (!verdict.blocked && !verdict.outcome.ok) {
      result.violation = true;
      result.what = verdict.outcome.what;
      result.counterexample = build_counterexample(scenario);
      stats_.complete = false;
      break;
    }
    if (stats_.executions >= config_.max_executions) {
      stats_.complete = false;
      break;
    }
    if (!advance()) {
      stats_.complete = true;
      break;
    }
  }
  result.stats = stats_;
  return result;
}

}  // namespace

CheckResult check(const CheckScenario& scenario, const ExploreConfig& config) {
  Explorer explorer(config);
  return explorer.explore(scenario);
}

CheckOutcome run_recorded(const obs::RecordedRun& run,
                          const CheckScenario& scenario,
                          const ExploreConfig& config) {
  std::unique_ptr<sim::TimingModel> timing = obs::make_timing(run.timing);
  obs::ReplaySchedule replayer(run.timing.schedule);
  sim::Simulation simulation(
      std::move(timing),
      sim::SimulationOptions{.seed = run.seed, .strategy = &replayer});
  RunHarness harness = scenario(simulation);
  simulation.run(config.time_limit,
                 [&replayer] { return replayer.exhausted(); });

  RunInfo info;
  // A recorded counterexample is by construction a prefix of a longer
  // execution; report it as truncated so liveness-flavoured verdict
  // clauses stay out of the way and only safety is judged.
  info.truncated = true;
  for (const auto& [pid, cost] : run.timing.script) {
    (void)pid;
    if (cost > config.delta) {
      ++info.failures_injected;
    } else if (cost > 1) {
      ++info.slow_accesses;
    }
  }
  info.last_failure_completion = -1;
  return harness.verdict ? harness.verdict(info) : CheckOutcome{};
}

obs::Scenario counterexample_scenario(const CheckScenario& scenario,
                                      const ExploreConfig& config) {
  return [scenario, limit = config.time_limit](sim::Simulation& simulation) {
    RunHarness harness = scenario(simulation);
    simulation.run(limit, [&simulation] {
      const sim::SchedulerStrategy* strategy = simulation.strategy();
      return strategy != nullptr && strategy->exhausted();
    });
  };
}

}  // namespace tfr::mcheck
