// tfr_mcheck — systematic schedule exploration for small configurations.
//
//   $ tfr_mcheck --all              # every built-in check, with expectations
//   $ tfr_mcheck --consensus       # Algorithm 1, n=2, round bound 2
//   $ tfr_mcheck --fischer         # bare Fischer: must find an ME violation
//   $ tfr_mcheck --tfr-mutex      # Algorithm 3 (starvation-free A), n=2
//   $ tfr_mcheck --fischer --save fischer.run   # save the counterexample
//   $ tfr_mcheck --fischer --replay fischer.run # re-check a saved run
//   $ tfr_mcheck --rt               # the real-thread code through the shim
//
// Options: --naive (naive DFS, no reduction), --sleep-sets (sleep sets
// only, no source-set DPOR / state hashing), --seed N,
// --max-executions N, --jobs N (forked parallel exploration — verdicts,
// stats and counterexamples are identical to --jobs 1), --prefix-depth N
// (work-sharing frontier depth; 0 = auto).  Exit status 0 iff every
// executed check matched its expectation (violation found / not found,
// counterexample replays byte-identically).  Multi-check runs end with a
// per-check wall-time summary table.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "tfr/common/table.hpp"
#include "tfr/mcheck/explorer.hpp"
#include "tfr/mcheck/rt_scenarios.hpp"
#include "tfr/mcheck/scenarios.hpp"
#include "tfr/obs/replay.hpp"

namespace {

using namespace tfr;

struct NamedCheck {
  std::string name;
  std::string description;
  mcheck::CheckScenario scenario;
  mcheck::ExploreConfig config;
  bool expect_violation = false;
};

mcheck::ExploreConfig base_config() {
  mcheck::ExploreConfig config;
  config.delta = 2;
  config.failure_cost = 5;
  config.max_failures = 1;
  config.slow_budget = 1;
  return config;
}

NamedCheck consensus_check() {
  NamedCheck check;
  check.name = "consensus-n2";
  check.description = "Algorithm 1, n=2, inputs {0,1}, round bound 2";
  check.scenario = mcheck::make_consensus_scenario({});
  check.config = base_config();
  check.expect_violation = false;
  return check;
}

NamedCheck fischer_check() {
  NamedCheck check;
  check.name = "fischer-n2";
  check.description =
      "bare Fischer (Algorithm 2), n=2, one timing failure allowed";
  mcheck::MutexScenarioConfig scenario;
  scenario.algorithm = mcheck::MutexScenarioConfig::Algorithm::kFischer;
  check.scenario = mcheck::make_mutex_scenario(scenario);
  check.config = base_config();
  check.config.slow_budget = -1;  // few accesses: afford the full menu
  check.expect_violation = true;
  return check;
}

NamedCheck abd_check() {
  NamedCheck check;
  check.name = "abd-n3-minority-down";
  check.description =
      "ABD register, n=3, one server crashed: reads/writes linearize";
  check.scenario = mcheck::make_abd_scenario({});
  check.config = base_config();
  // The crash is the fault under exploration; timing stays minimal so the
  // schedule space (many channel registers) remains tractable.
  check.config.max_failures = 0;
  check.config.slow_budget = 0;
  check.config.max_steps = 600;
  check.expect_violation = false;
  return check;
}

NamedCheck abd_fast_check() {
  NamedCheck check;
  check.name = "abd-fast-n3-minority-down";
  check.description =
      "ABD fast-read register (write-back skipped on uniform tags), n=3, "
      "one server crashed: reads/writes linearize";
  mcheck::AbdScenarioConfig scenario;
  scenario.variant = msg::RegisterVariant::kPerPeerFastRead;
  check.scenario = mcheck::make_abd_scenario(scenario);
  check.config = base_config();
  // Same budget as the stock check: the crash is the fault under
  // exploration; the fast read must stay linearizable in every schedule,
  // including the mixed-tag quorums that force the write-back fallback.
  check.config.max_failures = 0;
  check.config.slow_budget = 0;
  check.config.max_steps = 600;
  check.expect_violation = false;
  return check;
}

NamedCheck tfr_mutex_check() {
  NamedCheck check;
  check.name = "tfr-mutex-n2";
  check.description =
      "Algorithm 3 over starvation-free A, n=2, one timing failure allowed";
  mcheck::MutexScenarioConfig scenario;
  scenario.algorithm =
      mcheck::MutexScenarioConfig::Algorithm::kTfrStarvationFree;
  check.scenario = mcheck::make_mutex_scenario(scenario);
  check.config = base_config();
  check.expect_violation = false;
  return check;
}

NamedCheck mistuned_controller_check() {
  NamedCheck check;
  check.name = "tfr-mutex-mistuned-n2";
  check.description =
      "Algorithm 3 with the adaptive Δ estimate pinned at the floor: "
      "safety must not depend on the estimate";
  mcheck::MutexScenarioConfig scenario;
  scenario.algorithm =
      mcheck::MutexScenarioConfig::Algorithm::kTfrStarvationFree;
  scenario.mistuned_controller = true;
  check.scenario = mcheck::make_mutex_scenario(scenario);
  check.config = base_config();
  check.expect_violation = false;
  return check;
}

// ---------------------------------------------------------------------------
// Real-thread checks: the production lock code (mutex_rt.hpp,
// atomic_mutex.hpp) instantiated with ShimAtomics and driven through the
// interposition seam — the checker explores the same source production
// runs, not a transcription.

NamedCheck fischer_rt_check() {
  NamedCheck check;
  check.name = "fischer-rt-n2";
  check.description =
      "real-thread Fischer through the shim: one timing failure breaks ME";
  mcheck::RtMutexScenarioConfig scenario;
  scenario.algorithm = mcheck::RtMutexScenarioConfig::Algorithm::kFischer;
  check.scenario = mcheck::make_rt_mutex_scenario(scenario);
  check.config = base_config();
  check.expect_violation = true;
  return check;
}

NamedCheck tfr_mutex_rt_check() {
  NamedCheck check;
  check.name = "tfr-mutex-rt-n2";
  check.description =
      "real-thread Algorithm 3 (starvation-free A) through the shim";
  mcheck::RtMutexScenarioConfig scenario;
  scenario.algorithm =
      mcheck::RtMutexScenarioConfig::Algorithm::kTfrStarvationFree;
  check.scenario = mcheck::make_rt_mutex_scenario(scenario);
  check.config = base_config();
  check.expect_violation = false;
  return check;
}

NamedCheck atomic_lock_rt_check() {
  NamedCheck check;
  check.name = "atomic-lock-rt-n2";
  check.description =
      "futex-class AtomicMutex through the shim: wait/notify protocol";
  mcheck::RtMutexScenarioConfig scenario;
  scenario.algorithm = mcheck::RtMutexScenarioConfig::Algorithm::kAtomicLock;
  check.scenario = mcheck::make_rt_mutex_scenario(scenario);
  check.config = base_config();
  check.expect_violation = false;
  return check;
}

NamedCheck eventcount_torn_check() {
  NamedCheck check;
  check.name = "eventcount-torn-epoch";
  check.description =
      "EventCount with advance() before the state write: lost wakeup";
  check.scenario = mcheck::make_rt_eventcount_scenario({.torn_epoch = true});
  check.config = base_config();
  // The bug is a pure ordering race; no timing failures needed to find it.
  check.config.max_failures = 0;
  check.config.slow_budget = 0;
  check.expect_violation = true;
  return check;
}

NamedCheck eventcount_correct_check() {
  NamedCheck check;
  check.name = "eventcount-write-then-advance";
  check.description =
      "EventCount with the documented publication order: no lost wakeup";
  check.scenario = mcheck::make_rt_eventcount_scenario({.torn_epoch = false});
  check.config = base_config();
  check.config.max_failures = 0;
  check.config.slow_budget = 0;
  check.expect_violation = false;
  return check;
}

std::vector<NamedCheck> rt_checks() {
  std::vector<NamedCheck> checks;
  checks.push_back(fischer_rt_check());
  checks.push_back(tfr_mutex_rt_check());
  checks.push_back(atomic_lock_rt_check());
  checks.push_back(eventcount_torn_check());
  checks.push_back(eventcount_correct_check());
  return checks;
}

void print_stats(const mcheck::ExploreStats& stats) {
  std::printf(
      "  executions=%llu states=%llu transitions=%llu sched-points=%llu "
      "cost-points=%llu\n",
      static_cast<unsigned long long>(stats.executions),
      static_cast<unsigned long long>(stats.states),
      static_cast<unsigned long long>(stats.transitions),
      static_cast<unsigned long long>(stats.sched_choice_points),
      static_cast<unsigned long long>(stats.cost_choice_points));
  std::printf(
      "  sleep-pruned=%llu sleep-blocked=%llu truncated=%llu complete=%s\n",
      static_cast<unsigned long long>(stats.sleep_pruned),
      static_cast<unsigned long long>(stats.sleep_blocked),
      static_cast<unsigned long long>(stats.truncated),
      stats.complete ? "yes" : "no");
  std::printf(
      "  races=%llu source-pruned=%llu state-pruned=%llu\n",
      static_cast<unsigned long long>(stats.races_detected),
      static_cast<unsigned long long>(stats.source_pruned),
      static_cast<unsigned long long>(stats.state_pruned));
}

/// One executed check, as reported in the end-of-run summary table.
struct CheckReport {
  std::string name;
  bool ok = false;
  bool violation = false;
  double wall_ms = 0;
  mcheck::ExploreStats stats;
};

/// Runs one check and compares against its expectation; on violation the
/// counterexample is replayed through the obs trace layer and must match
/// byte-for-byte.  Returns true iff everything matched.
bool run_check(const NamedCheck& check, const std::string& save_path,
               CheckReport& report) {
  std::printf("[mcheck] %s — %s\n", check.name.c_str(),
              check.description.c_str());
  const auto begin = std::chrono::steady_clock::now();
  const mcheck::CheckResult result = mcheck::check(check.scenario,
                                                   check.config);
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
  report.name = check.name;
  report.violation = result.violation;
  report.stats = result.stats;
  print_stats(result.stats);
  std::printf("  wall: %.1f ms (jobs=%d)\n", report.wall_ms,
              check.config.jobs);

  bool ok = true;
  if (result.violation != check.expect_violation) {
    std::printf("  verdict: %s but expected %s — FAIL\n",
                result.violation ? "violation" : "no violation",
                check.expect_violation ? "a violation" : "none");
    ok = false;
  }
  if (result.violation) {
    std::printf("  violation: %s\n", result.what.c_str());
    const obs::ReplayResult replayed =
        obs::replay(result.counterexample,
                    mcheck::counterexample_scenario(check.scenario,
                                                    check.config));
    std::printf("  counterexample: %zu scripted costs, %zu scheduled picks, "
                "replay %s\n",
                result.counterexample.timing.script.size(),
                result.counterexample.timing.schedule.size(),
                replayed.identical ? "byte-identical" : "DIVERGED");
    if (!replayed.identical) ok = false;
    const mcheck::CheckOutcome reproduced = mcheck::run_recorded(
        result.counterexample, check.scenario, check.config);
    if (reproduced.ok) {
      std::printf("  counterexample replay did NOT reproduce the violation"
                  " — FAIL\n");
      ok = false;
    }
    if (!save_path.empty()) {
      if (result.counterexample.save(save_path)) {
        std::printf("  counterexample saved to %s\n", save_path.c_str());
      } else {
        std::printf("  could not save counterexample to %s\n",
                    save_path.c_str());
        ok = false;
      }
    }
  } else if (!result.stats.complete) {
    std::printf("  verdict: exploration aborted at max-executions — FAIL\n");
    ok = false;
  }
  if (ok) std::printf("  verdict: as expected\n");
  report.ok = ok;
  return ok;
}

/// Wall-time summary for multi-check runs (--all or the default set).
void print_summary(const std::vector<CheckReport>& reports) {
  tfr::Table table("mcheck summary");
  table.header({"check", "verdict", "executions", "states", "sleep-pruned",
                "wall ms", "status"});
  double total_ms = 0;
  for (const CheckReport& report : reports) {
    total_ms += report.wall_ms;
    table.row({report.name, report.violation ? "violation" : "clean",
               tfr::Table::fmt(
                   static_cast<unsigned long long>(report.stats.executions)),
               tfr::Table::fmt(
                   static_cast<unsigned long long>(report.stats.states)),
               tfr::Table::fmt(static_cast<unsigned long long>(
                   report.stats.sleep_pruned)),
               tfr::Table::fmt(report.wall_ms, 1),
               report.ok ? "ok" : "FAIL"});
  }
  table.print(std::cout);
  std::printf("total wall: %.1f ms\n", total_ms);
}

bool replay_saved(const NamedCheck& check, const std::string& path) {
  const std::optional<obs::RecordedRun> run = obs::RecordedRun::load(path);
  if (!run) {
    std::printf("[mcheck] could not load a recorded run from %s\n",
                path.c_str());
    return false;
  }
  const obs::ReplayResult replayed = obs::replay(
      *run, mcheck::counterexample_scenario(check.scenario, check.config));
  const mcheck::CheckOutcome outcome =
      mcheck::run_recorded(*run, check.scenario, check.config);
  std::printf("[mcheck] replay of %s against %s: trace %s, verdict: %s\n",
              path.c_str(), check.name.c_str(),
              replayed.identical ? "byte-identical" : "DIVERGED",
              outcome.ok ? "no violation" : outcome.what.c_str());
  return replayed.identical;
}

int usage() {
  std::printf(
      "usage: tfr_mcheck [--all] [--consensus] [--fischer] [--tfr-mutex]\n"
      "                  [--mistuned] [--abd] [--rt] [--fischer-rt]\n"
      "                  [--eventcount]\n"
      "                  [--naive] [--sleep-sets] [--seed N]\n"
      "                  [--max-executions N] [--jobs N] [--prefix-depth N]\n"
      "                  [--save FILE] [--replay FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<NamedCheck> selected;
  bool naive = false;
  bool sleep_sets = false;
  std::uint64_t seed = 1;
  std::uint64_t max_executions = 0;
  int jobs = 1;
  std::uint32_t prefix_depth = 0;
  std::string save_path;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      selected.push_back(consensus_check());
      selected.push_back(fischer_check());
      selected.push_back(tfr_mutex_check());
      selected.push_back(mistuned_controller_check());
      selected.push_back(abd_check());
      selected.push_back(abd_fast_check());
    } else if (arg == "--consensus") {
      selected.push_back(consensus_check());
    } else if (arg == "--fischer") {
      selected.push_back(fischer_check());
    } else if (arg == "--tfr-mutex") {
      selected.push_back(tfr_mutex_check());
    } else if (arg == "--mistuned") {
      selected.push_back(mistuned_controller_check());
    } else if (arg == "--abd") {
      selected.push_back(abd_check());
      selected.push_back(abd_fast_check());
    } else if (arg == "--rt") {
      for (NamedCheck& check : rt_checks())
        selected.push_back(std::move(check));
    } else if (arg == "--fischer-rt") {
      selected.push_back(fischer_rt_check());
    } else if (arg == "--eventcount") {
      selected.push_back(eventcount_torn_check());
      selected.push_back(eventcount_correct_check());
    } else if (arg == "--naive") {
      naive = true;
    } else if (arg == "--sleep-sets") {
      sleep_sets = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-executions" && i + 1 < argc) {
      max_executions = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (jobs < 1) return usage();
    } else if (arg == "--prefix-depth" && i + 1 < argc) {
      prefix_depth =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (selected.empty()) {
    selected.push_back(consensus_check());
    selected.push_back(fischer_check());
    selected.push_back(tfr_mutex_check());
    selected.push_back(abd_check());
    selected.push_back(abd_fast_check());
  }

  bool ok = true;
  std::vector<CheckReport> reports;
  for (NamedCheck& check : selected) {
    if (naive) check.config.reduction = mcheck::Reduction::kNone;
    else if (sleep_sets) check.config.reduction = mcheck::Reduction::kSleepSets;
    check.config.seed = seed;
    if (max_executions > 0) check.config.max_executions = max_executions;
    check.config.jobs = jobs;
    check.config.prefix_depth = prefix_depth;
    if (!replay_path.empty()) {
      ok = replay_saved(check, replay_path) && ok;
      continue;
    }
    CheckReport report;
    ok = run_check(check, save_path, report) && ok;
    reports.push_back(std::move(report));
  }
  if (reports.size() > 1) print_summary(reports);
  std::printf("[mcheck] %s\n", ok ? "all checks as expected"
                                  : "EXPECTATION MISMATCH");
  return ok ? 0 : 1;
}
