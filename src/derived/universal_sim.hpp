// Universal construction: a wait-free, timing-failure-resilient
// implementation of ANY object with a sequential specification, from
// atomic registers (§1.4, via Herlihy's universality of consensus [24]).
//
// Construction (state-machine replication over a consensus log, with
// Herlihy-style helping):
//   * an unbounded log of multi-valued consensus instances, one per slot;
//   * a process announces its (uniquely tagged) operation in announce[i],
//     then proposes for successive slots until its operation lands in the
//     log.  At slot s it proposes the *announced, not yet applied*
//     operation of process (s mod n) if any — itself otherwise — so a slow
//     announcer wins a slot within ~2n decisions (wait-freedom even under
//     adversarial slot contention);
//   * every process applies the log in slot order to a private replica of
//     the object; an operation's result is what the replica returned when
//     the operation's slot was applied.
//
// Operations are 62-bit integers; OpCodec packs (pid, per-process sequence
// number, opcode, argument) so every invocation is unique — required,
// since the log decides operations, not (operation, result) pairs.  A
// process's operations enter the log in sequence order, so "not yet
// applied" is a per-pid high-water mark.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tfr/derived/multivalue_sim.hpp"

namespace tfr::derived {

/// A sequential object: deterministically applies encoded operations.
class Replica {
 public:
  virtual ~Replica() = default;
  virtual std::int64_t apply(std::int64_t op) = 0;
};

/// Operation encoding shared by the sim and rt universal constructions:
///   bits 48..61 pid (14 bits), 32..47 per-process sequence + 1 (16 bits),
///   bits 24..31 opcode (8 bits), bits 0..23 argument (24 bits).
struct OpCodec {
  static constexpr int kBits = 62;

  static std::int64_t encode(int pid, int seq, int opcode, int arg);
  static int pid(std::int64_t op) {
    return static_cast<int>((op >> 48) & 0x3fff);
  }
  /// 1-based so that 0 means "nothing applied yet".
  static int seq(std::int64_t op) {
    return static_cast<int>((op >> 32) & 0xffff);
  }
  static int opcode(std::int64_t op) {
    return static_cast<int>((op >> 24) & 0xff);
  }
  static int arg(std::int64_t op) {
    return static_cast<int>(op & 0xffffff);
  }
};

class SimUniversal {
 public:
  /// `n` is the number of participating processes (pids 0..n-1).
  /// `make_replica` constructs one private replica per process; replicas
  /// must be deterministic and start in the same state.
  SimUniversal(sim::RegisterSpace& space, sim::Duration delta, int n,
               std::function<std::unique_ptr<Replica>()> make_replica);

  /// Invokes opcode(arg) on behalf of env.pid(); co_returns the result.
  /// Wait-free once timing holds; linearizable always.
  sim::Task<std::int64_t> invoke(sim::Env env, int opcode, int arg);

  /// Log slots applied by the fastest replica so far (untimed).
  std::size_t log_length() const;

 private:
  struct PerProcess {
    std::unique_ptr<Replica> replica;
    std::size_t applied_slots = 0;   ///< next log slot this replica applies
    std::vector<int> applied_seq;    ///< per-pid applied high-water marks
    int next_seq = 1;                ///< own sequence numbers (1-based)
  };

  SimMultiConsensus& slot(std::size_t index);

  int n_;
  sim::RegisterSpace* space_;
  sim::Duration delta_;
  std::function<std::unique_ptr<Replica>()> make_replica_;
  sim::RegisterArray<std::int64_t> announce_;  ///< -1 = nothing announced
  std::vector<std::unique_ptr<SimMultiConsensus>> slots_;
  std::vector<std::unique_ptr<PerProcess>> per_process_;
};

// Two ready-made replicas used by tests, benches and examples.

/// Counter: opcode 1 = add(arg) -> new value; 2 = get() -> value.
class CounterReplica final : public Replica {
 public:
  std::int64_t apply(std::int64_t op) override;
  static constexpr int kAdd = 1;
  static constexpr int kGet = 2;

 private:
  std::int64_t value_ = 0;
};

/// FIFO queue of ints: opcode 1 = enqueue(arg) -> size; 2 = dequeue() ->
/// front or -1 when empty.
class QueueReplica final : public Replica {
 public:
  std::int64_t apply(std::int64_t op) override;
  static constexpr int kEnqueue = 1;
  static constexpr int kDequeue = 2;

 private:
  std::vector<int> items_;
  std::size_t head_ = 0;
};

}  // namespace tfr::derived
