// Wait-free leader election from consensus (§1.4): every participant
// proposes its own pid; the consensus decision is the leader.  Inherits
// wait-freedom and resilience to timing failures from Algorithm 1.

#pragma once

#include "tfr/derived/multivalue_sim.hpp"

namespace tfr::derived {

class SimElection {
 public:
  SimElection(sim::RegisterSpace& space, sim::Duration delta);

  /// Participates in the election; co_returns the elected pid.
  sim::Task<int> elect(sim::Env env);

  /// The leader if elected, -1 otherwise (untimed snapshot).
  int leader() const;

 private:
  SimMultiConsensus agreement_;
};

}  // namespace tfr::derived
