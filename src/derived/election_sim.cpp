#include "tfr/derived/election_sim.hpp"

namespace tfr::derived {

namespace {
// Pids are small; 24 bits of id space keeps the bitwise reduction short.
constexpr int kPidBits = 24;
}  // namespace

SimElection::SimElection(sim::RegisterSpace& space, sim::Duration delta)
    : agreement_(space, delta, kPidBits) {}

sim::Task<int> SimElection::elect(sim::Env env) {
  const std::int64_t winner =
      co_await agreement_.propose(env, static_cast<std::int64_t>(env.pid()));
  co_return static_cast<int>(winner);
}

int SimElection::leader() const {
  const std::int64_t value = agreement_.decided_value();
  return value < 0 ? -1 : static_cast<int>(value);
}

}  // namespace tfr::derived
