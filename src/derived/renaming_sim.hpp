// Wait-free n-renaming from consensus (§1.4): participants acquire unique
// names from the tight namespace {0, .., n-1}.
//
// Construction: one multi-valued consensus instance per name slot; a
// participant proposes its pid for slot 0, 1, 2, ... until it wins one.
// Each slot is won by exactly one pid (agreement), a participant stops at
// its first win (uniqueness), and since each lost slot is won by a
// *different* competing pid, a participant loses at most n-1 slots
// (namespace tightness + wait-freedom).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/derived/multivalue_sim.hpp"

namespace tfr::derived {

class SimRenaming {
 public:
  /// `max_names` bounds the namespace (use the number of participants n
  /// for tight renaming).
  SimRenaming(sim::RegisterSpace& space, sim::Duration delta, int max_names);

  /// Acquires a name in [0, max_names); one-shot per process.
  sim::Task<int> acquire(sim::Env env);

  /// Winner of slot `name`, or -1 (untimed snapshot).
  int owner(int name) const;

 private:
  sim::RegisterSpace* space_;
  sim::Duration delta_;
  std::vector<std::unique_ptr<SimMultiConsensus>> slots_;
};

}  // namespace tfr::derived
