// k-set consensus from consensus (§2.1: "other problems that have no
// fault-tolerant solutions using atomic registers in a completely
// asynchronous system such as election, set-consensus and renaming").
//
// k-set agreement relaxes agreement to "at most k distinct decisions".
// Given full consensus it has a direct solution: partition the proposers
// across k independent consensus instances (by pid mod k); each process
// decides its instance's value.  At most k instances exist, so at most k
// values are decided; validity and wait-freedom are inherited per
// instance, and so is resilience to timing failures.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/derived/multivalue_sim.hpp"

namespace tfr::derived {

class SimSetConsensus {
 public:
  /// Decisions take at most `k` distinct values.
  SimSetConsensus(sim::RegisterSpace& space, sim::Duration delta, int k,
                  int bits = 31);

  /// Proposes `value`; co_returns a decision (some proposer's input; at
  /// most k distinct values across all processes).
  sim::Task<std::int64_t> propose(sim::Env env, std::int64_t value);

  int k() const { return k_; }

 private:
  int k_;
  std::vector<std::unique_ptr<SimMultiConsensus>> groups_;
};

}  // namespace tfr::derived
