// Wait-free one-shot test-and-set from atomic registers (§1.4).
//
// The paper notes that a wait-free, timing-failure-resilient implementation
// of test-and-set follows from the consensus building block: the processes
// elect a winner; the winner's test_and_set returns 0 (it "got" the bit),
// everyone else returns 1.  This is the canonical consensus→TAS reduction.

#pragma once

#include "tfr/derived/election_sim.hpp"

namespace tfr::derived {

class SimTestAndSet {
 public:
  SimTestAndSet(sim::RegisterSpace& space, sim::Duration delta);

  /// One-shot TAS: co_returns 0 for exactly one caller, 1 for the rest.
  /// At most one call per process.
  sim::Task<int> test_and_set(sim::Env env);

  /// Untimed read of the abstract bit (1 once someone has won).
  int peek() const { return election_.leader() >= 0 ? 1 : 0; }

 private:
  SimElection election_;
};

}  // namespace tfr::derived
