#include "tfr/derived/set_consensus_sim.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::derived {

SimSetConsensus::SimSetConsensus(sim::RegisterSpace& space,
                                 sim::Duration delta, int k, int bits)
    : k_(k) {
  TFR_REQUIRE(k >= 1);
  groups_.reserve(static_cast<std::size_t>(k));
  for (int g = 0; g < k; ++g)
    groups_.push_back(std::make_unique<SimMultiConsensus>(space, delta, bits));
}

sim::Task<std::int64_t> SimSetConsensus::propose(sim::Env env,
                                                 std::int64_t value) {
  const auto group =
      static_cast<std::size_t>(env.pid() % k_);
  const std::int64_t decided = co_await groups_[group]->propose(env, value);
  co_return decided;
}

}  // namespace tfr::derived
