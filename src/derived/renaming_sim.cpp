#include "tfr/derived/renaming_sim.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::derived {

namespace {
constexpr int kPidBits = 24;
}  // namespace

SimRenaming::SimRenaming(sim::RegisterSpace& space, sim::Duration delta,
                         int max_names)
    : space_(&space), delta_(delta) {
  TFR_REQUIRE(max_names >= 1);
  slots_.reserve(static_cast<std::size_t>(max_names));
  for (int k = 0; k < max_names; ++k)
    slots_.push_back(
        std::make_unique<SimMultiConsensus>(space, delta, kPidBits));
}

sim::Task<int> SimRenaming::acquire(sim::Env env) {
  const auto me = static_cast<std::int64_t>(env.pid());
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    const std::int64_t winner = co_await slots_[k]->propose(env, me);
    if (winner == me) co_return static_cast<int>(k);
  }
  // More participants than names: a precondition violation of n-renaming.
  TFR_REQUIRE(!"renaming namespace exhausted: more participants than names");
  co_return -1;
}

int SimRenaming::owner(int name) const {
  TFR_REQUIRE(name >= 0 &&
              static_cast<std::size_t>(name) < slots_.size());
  const std::int64_t v =
      slots_[static_cast<std::size_t>(name)]->decided_value();
  return v < 0 ? -1 : static_cast<int>(v);
}

}  // namespace tfr::derived
