#include "tfr/derived/test_and_set_sim.hpp"

namespace tfr::derived {

SimTestAndSet::SimTestAndSet(sim::RegisterSpace& space, sim::Duration delta)
    : election_(space, delta) {}

sim::Task<int> SimTestAndSet::test_and_set(sim::Env env) {
  const int winner = co_await election_.elect(env);
  co_return winner == env.pid() ? 0 : 1;
}

}  // namespace tfr::derived
