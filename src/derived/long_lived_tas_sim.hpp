// Long-lived (resettable) test-and-set from atomic registers, built on
// the one-shot consensus-based TAS of §1.4.
//
// The object proceeds in *generations*: generation g is a one-shot leader
// election; test_and_set() reads the current generation and plays its
// election — the election's winner gets 0, everybody else (including
// stragglers who join generation g after it was decided) gets 1.  Only
// the current generation's winner may call reset(), which opens
// generation g+1.  Per generation exactly one caller wins, which makes
// the object a correct lock:  loop { if (tas() == 0) { CS; reset(); } }
// is a mutual-exclusion algorithm resilient to timing failures.
//
// Elections are allocated lazily, one per generation, mirroring the
// unbounded round registers of Algorithm 1 (a known bound on failure
// duration would bound them, per the paper's remark in §2.1).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/derived/election_sim.hpp"

namespace tfr::derived {

class SimLongLivedTestAndSet {
 public:
  SimLongLivedTestAndSet(sim::RegisterSpace& space, sim::Duration delta);

  /// 0 for exactly one caller per generation, 1 for the rest.
  sim::Task<int> test_and_set(sim::Env env);

  /// Releases the bit; caller must be the current generation's winner.
  sim::Task<void> reset(sim::Env env);

  /// Generations opened so far (untimed).
  std::size_t generations() const { return elections_.size(); }

 private:
  SimElection& election(std::size_t generation);

  sim::RegisterSpace* space_;
  sim::Duration delta_;
  sim::Register<int> generation_;
  std::vector<std::unique_ptr<SimElection>> elections_;
  std::vector<int> won_generation_;  ///< per-pid local memory (last win)
};

}  // namespace tfr::derived
