#include "tfr/derived/long_lived_tas_sim.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::derived {

SimLongLivedTestAndSet::SimLongLivedTestAndSet(sim::RegisterSpace& space,
                                               sim::Duration delta)
    : space_(&space), delta_(delta), generation_(space, 0, "lltas.gen") {}

SimElection& SimLongLivedTestAndSet::election(std::size_t generation) {
  while (elections_.size() <= generation)
    elections_.push_back(std::make_unique<SimElection>(*space_, delta_));
  return *elections_[generation];
}

sim::Task<int> SimLongLivedTestAndSet::test_and_set(sim::Env env) {
  const int g = co_await env.read(generation_);
  TFR_INVARIANT(g >= 0);
  const int winner = co_await election(static_cast<std::size_t>(g)).elect(env);
  if (winner != env.pid()) co_return 1;
  // Winning generation g implies g is still current: only g's (unique)
  // winner can advance the generation register, and that is us.
  const auto pid = static_cast<std::size_t>(env.pid());
  if (won_generation_.size() <= pid) won_generation_.resize(pid + 1, -1);
  won_generation_[pid] = g;
  co_return 0;
}

sim::Task<void> SimLongLivedTestAndSet::reset(sim::Env env) {
  const int g = co_await env.read(generation_);
  const auto pid = static_cast<std::size_t>(env.pid());
  TFR_REQUIRE(pid < won_generation_.size() && won_generation_[pid] == g);
  co_await env.write(generation_, g + 1);
}

}  // namespace tfr::derived
