#include "tfr/derived/derived_rt.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::rt {

namespace {
constexpr int kPidBits = 24;
constexpr std::size_t kMaxUniversalSlots = 65536;
}  // namespace

RtMultiConsensus::RtMultiConsensus(Config config)
    : config_(config),
      x0_(0),
      x1_(0),
      y_(-1),
      decide_(-1),
      witness0_(-1),
      witness1_(-1) {
  TFR_REQUIRE(config.bits >= 1 && config.bits <= 62);
}

int RtMultiConsensus::propose_bit(int bit, int input) {
  TFR_REQUIRE(input == 0 || input == 1);
  int v = input;
  std::size_t r = 0;
  for (;;) {
    const std::int64_t decided =
        decide_.at(static_cast<std::size_t>(bit)).read();
    if (decided != -1) return static_cast<int>(decided);
    const std::size_t lane = cell(bit, r);
    (v == 0 ? x0_ : x1_).at(lane).write(1);
    const int proposal = y_.at(lane).read();
    if (proposal == -1) y_.at(lane).write(v);
    const int conflicting = (v == 0 ? x1_ : x0_).at(lane).read();
    if (conflicting == 0) {
      decide_.at(static_cast<std::size_t>(bit))
          .write(static_cast<std::int64_t>(v));
    } else {
      spin_for(config_.delta);
      v = y_.at(lane).read();
      TFR_INVARIANT(v != -1);
      r += 1;
    }
  }
}

std::int64_t RtMultiConsensus::propose(std::int64_t value) {
  TFR_REQUIRE(value >= 0);
  TFR_REQUIRE(config_.bits >= 62 ||
              value < (std::int64_t{1} << config_.bits));
  std::int64_t candidate = value;
  for (int k = 0; k < config_.bits; ++k) {
    const int b = static_cast<int>((candidate >> k) & 1);
    (b == 0 ? witness0_ : witness1_)
        .at(static_cast<std::size_t>(k))
        .write(candidate);
    const int decided = propose_bit(k, b);
    if (decided != b) {
      const std::int64_t adopted = (decided == 0 ? witness0_ : witness1_)
                                       .at(static_cast<std::size_t>(k))
                                       .read();
      TFR_INVARIANT(adopted >= 0);
      TFR_INVARIANT(((adopted ^ candidate) & ((std::int64_t{1} << k) - 1)) ==
                    0);
      TFR_INVARIANT(((adopted >> k) & 1) == decided);
      candidate = adopted;
    }
  }
  return candidate;
}

std::int64_t RtMultiConsensus::decided() const {
  std::int64_t value = 0;
  for (int k = 0; k < config_.bits; ++k) {
    const std::int64_t d = decide_.peek(static_cast<std::size_t>(k), -1);
    if (d == -1) return -1;
    value |= d << k;
  }
  return value;
}

RtElection::RtElection(Nanos delta)
    : agreement_({.delta = delta, .bits = kPidBits}) {}

int RtElection::elect(int id) {
  TFR_REQUIRE(id >= 0);
  return static_cast<int>(agreement_.propose(static_cast<std::int64_t>(id)));
}

int RtElection::leader() const {
  const std::int64_t v = agreement_.decided();
  return v < 0 ? -1 : static_cast<int>(v);
}

RtTestAndSet::RtTestAndSet(Nanos delta) : election_(delta) {}

int RtTestAndSet::test_and_set(int id) {
  return election_.elect(id) == id ? 0 : 1;
}

RtRenaming::RtRenaming(Nanos delta, int max_names) : max_names_(max_names) {
  TFR_REQUIRE(max_names >= 1);
  slots_.reserve(static_cast<std::size_t>(max_names));
  for (int k = 0; k < max_names; ++k)
    slots_.push_back(std::make_unique<RtMultiConsensus>(
        RtMultiConsensus::Config{.delta = delta, .bits = kPidBits}));
}

int RtRenaming::acquire(int id) {
  TFR_REQUIRE(id >= 0);
  for (int k = 0; k < max_names_; ++k) {
    const std::int64_t winner =
        slots_[static_cast<std::size_t>(k)]->propose(id);
    if (winner == id) return k;
  }
  TFR_REQUIRE(!"renaming namespace exhausted: more participants than names");
  return -1;
}

RtSetConsensus::RtSetConsensus(Nanos delta, int k, int bits) : k_(k) {
  TFR_REQUIRE(k >= 1);
  groups_.reserve(static_cast<std::size_t>(k));
  for (int g = 0; g < k; ++g)
    groups_.push_back(std::make_unique<RtMultiConsensus>(
        RtMultiConsensus::Config{.delta = delta, .bits = bits}));
}

std::int64_t RtSetConsensus::propose(int id, std::int64_t value) {
  TFR_REQUIRE(id >= 0);
  return groups_[static_cast<std::size_t>(id % k_)]->propose(value);
}

namespace {
constexpr std::size_t kMaxGenerations = 1 << 18;
}  // namespace

RtLongLivedTestAndSet::RtLongLivedTestAndSet(Nanos delta, int n)
    : delta_(delta), n_(n), won_generation_(static_cast<std::size_t>(n), -1) {
  TFR_REQUIRE(n >= 1);
  elections_.reserve(kMaxGenerations);  // stable spine for lock-free readers
}

RtElection& RtLongLivedTestAndSet::election(std::size_t generation) {
  TFR_REQUIRE(generation < kMaxGenerations);
  if (generation < elections_ready_.load(std::memory_order_acquire))
    return *elections_[generation];
  std::lock_guard<std::mutex> guard(grow_mutex_);
  while (elections_.size() <= generation)
    elections_.push_back(std::make_unique<RtElection>(delta_));
  elections_ready_.store(elections_.size(), std::memory_order_release);
  return *elections_[generation];
}

int RtLongLivedTestAndSet::test_and_set(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  const int g = generation_.read();
  TFR_INVARIANT(g >= 0);
  const int winner = election(static_cast<std::size_t>(g)).elect(id);
  if (winner != id) return 1;
  // Winning generation g implies g is still current: only its unique
  // winner can advance the generation register, and that is us.
  won_generation_[static_cast<std::size_t>(id)] = g;
  return 0;
}

void RtLongLivedTestAndSet::reset(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  const int g = generation_.read();
  TFR_REQUIRE(won_generation_[static_cast<std::size_t>(id)] == g);
  generation_.write(g + 1);
}

RtUniversal::RtUniversal(
    Nanos delta, int n,
    std::function<std::unique_ptr<derived::Replica>()> make_replica)
    : delta_(delta),
      n_(n),
      make_replica_(std::move(make_replica)),
      announce_(std::make_unique<AtomicRegister<std::int64_t>[]>(
          static_cast<std::size_t>(n))) {
  TFR_REQUIRE(n >= 1 && n < (1 << 14));
  TFR_REQUIRE(make_replica_ != nullptr);
  for (int i = 0; i < n; ++i)
    announce_[static_cast<std::size_t>(i)].write(-1);
  per_process_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto pp = std::make_unique<PerProcess>();
    pp->replica = make_replica_();
    pp->applied_seq.assign(static_cast<std::size_t>(n), 0);
    per_process_.push_back(std::move(pp));
  }
  // Reserve the slot spine once so readers can index the vector without
  // racing a reallocation (slots_ready_ guards the initialized prefix).
  slots_.reserve(kMaxUniversalSlots);
}

RtMultiConsensus& RtUniversal::slot(std::size_t index) {
  TFR_REQUIRE(index < kMaxUniversalSlots);
  if (index < slots_ready_.load(std::memory_order_acquire))
    return *slots_[index];
  std::lock_guard<std::mutex> guard(grow_mutex_);
  while (slots_.size() <= index) {
    slots_.push_back(std::make_unique<RtMultiConsensus>(
        RtMultiConsensus::Config{.delta = delta_,
                                 .bits = derived::OpCodec::kBits}));
  }
  slots_ready_.store(slots_.size(), std::memory_order_release);
  return *slots_[index];
}

std::int64_t RtUniversal::invoke(int id, int opcode, int arg) {
  TFR_REQUIRE(id >= 0 && id < n_);
  PerProcess& mine = *per_process_[static_cast<std::size_t>(id)];
  const std::int64_t op =
      derived::OpCodec::encode(id, mine.next_seq++, opcode, arg);

  announce_[static_cast<std::size_t>(id)].write(op);

  std::int64_t my_result = -1;
  bool applied_mine = false;
  while (!applied_mine) {
    const std::size_t index = mine.applied_slots;
    const int beneficiary =
        static_cast<int>(index % static_cast<std::size_t>(n_));
    std::int64_t proposal = op;
    if (beneficiary != id) {
      const std::int64_t announced =
          announce_[static_cast<std::size_t>(beneficiary)].read();
      if (announced >= 0 &&
          derived::OpCodec::seq(announced) >
              mine.applied_seq[static_cast<std::size_t>(beneficiary)]) {
        proposal = announced;
      }
    }
    const std::int64_t winner = slot(index).propose(proposal);
    const std::int64_t result = mine.replica->apply(winner);
    const int winner_pid = derived::OpCodec::pid(winner);
    TFR_INVARIANT(winner_pid >= 0 && winner_pid < n_);
    TFR_INVARIANT(derived::OpCodec::seq(winner) >
                  mine.applied_seq[static_cast<std::size_t>(winner_pid)]);
    mine.applied_seq[static_cast<std::size_t>(winner_pid)] =
        derived::OpCodec::seq(winner);
    mine.applied_slots = index + 1;
    if (winner == op) {
      my_result = result;
      applied_mine = true;
    }
  }
  announce_[static_cast<std::size_t>(id)].write(-1);
  return my_result;
}

std::size_t RtUniversal::log_length() const {
  std::size_t longest = 0;
  for (const auto& pp : per_process_)
    if (pp && pp->applied_slots > longest) longest = pp->applied_slots;
  return longest;
}

}  // namespace tfr::rt
