#include "tfr/derived/multivalue_sim.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::derived {

SimMultiConsensus::SimMultiConsensus(sim::RegisterSpace& space,
                                     sim::Duration delta, int bits)
    : bits_(bits),
      witness0_(space, -1, "mv.witness0"),
      witness1_(space, -1, "mv.witness1") {
  TFR_REQUIRE(bits >= 1 && bits <= 62);
  bit_.reserve(static_cast<std::size_t>(bits));
  for (int k = 0; k < bits; ++k)
    bit_.push_back(std::make_unique<core::SimConsensus>(space, delta));
}

sim::RegisterArray<std::int64_t>& SimMultiConsensus::witness(int bit_value) {
  return bit_value == 0 ? witness0_ : witness1_;
}

sim::Task<std::int64_t> SimMultiConsensus::propose(sim::Env env,
                                                   std::int64_t value) {
  TFR_REQUIRE(value >= 0);
  TFR_REQUIRE(bits_ >= 62 || value < (std::int64_t{1} << bits_));
  std::int64_t candidate = value;
  for (int k = 0; k < bits_; ++k) {
    const int b = static_cast<int>((candidate >> k) & 1);
    // Publish the full candidate before proposing its bit: if bit b wins,
    // some witness with that bit (and the agreed prefix) exists.
    co_await env.write(witness(b).at(static_cast<std::size_t>(k)), candidate);
    const int decided =
        co_await bit_[static_cast<std::size_t>(k)]->propose(env, b);
    if (decided != b) {
      const std::int64_t adopted = co_await env.read(
          witness(decided).at(static_cast<std::size_t>(k)));
      TFR_INVARIANT(adopted >= 0);
      // The adopted witness agrees with our candidate on bits 0..k-1 (both
      // match the agreed prefix) and carries the winning bit at k.
      TFR_INVARIANT(((adopted ^ candidate) & ((std::int64_t{1} << k) - 1)) ==
                    0);
      TFR_INVARIANT(((adopted >> k) & 1) == decided);
      candidate = adopted;
    }
  }
  co_return candidate;
}

std::int64_t SimMultiConsensus::decided_value() const {
  std::int64_t value = 0;
  for (int k = 0; k < bits_; ++k) {
    const int d = bit_[static_cast<std::size_t>(k)]->decided_value();
    if (d == sim::kBot) return -1;
    value |= static_cast<std::int64_t>(d) << k;
  }
  return value;
}

}  // namespace tfr::derived
