// Derived wait-free objects — real-thread edition.
//
// Mirrors the sim-side constructions (see the sibling *_sim.hpp headers
// for the algorithms and correctness arguments):
//
//   RtMultiConsensus — bitwise prefix-agreement over per-bit instances of
//                      Algorithm 1.  The per-bit binary protocol is
//                      inlined over shared register arrays (indexed by
//                      round*bits + bit) to keep one instance's footprint
//                      a few KB, so the universal construction can afford
//                      one instance per log slot.
//   RtElection       — propose own id, decision is the leader.
//   RtTestAndSet     — winner of the election reads 0, the rest read 1.
//   RtUniversal      — consensus-log state-machine replication with
//                      announce-array helping (wait-free).
//
// All of these inherit Algorithm 1's headline property: safety holds under
// arbitrary timing behaviour, progress resumes as soon as steps fit inside
// the instance's (optimistic) Δ.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "tfr/core/consensus_rt.hpp"
#include "tfr/derived/universal_sim.hpp"  // OpCodec, Replica
#include "tfr/registers/register_array.hpp"

namespace tfr::rt {

/// Multi-valued consensus on values in [0, 2^bits), bits <= 62.
class RtMultiConsensus {
 public:
  struct Config {
    Nanos delta{1000};
    int bits = 31;
  };

  explicit RtMultiConsensus(Config config);

  RtMultiConsensus(const RtMultiConsensus&) = delete;
  RtMultiConsensus& operator=(const RtMultiConsensus&) = delete;

  /// Proposes `value`; blocks until the agreed value is known.
  std::int64_t propose(std::int64_t value);

  /// Agreed value if every bit decided, else -1.
  std::int64_t decided() const;

 private:
  static constexpr std::size_t kSeg = 256;
  static constexpr std::size_t kMaxSeg = 64;
  using Array = RegisterArray<int, kSeg, kMaxSeg>;
  using Array64 = RegisterArray<std::int64_t, 64, 16>;

  std::size_t cell(int bit, std::size_t round) const {
    return round * static_cast<std::size_t>(config_.bits) +
           static_cast<std::size_t>(bit);
  }

  /// One-bit Algorithm 1 over the shared arrays (bit selects the lane).
  int propose_bit(int bit, int input);

  Config config_;
  Array x0_;
  Array x1_;
  Array y_;
  Array64 decide_;    ///< per-bit decide registers
  Array64 witness0_;  ///< per-bit witnesses for bit value 0
  Array64 witness1_;
};

/// Wait-free leader election among threads with ids 0..n-1.
class RtElection {
 public:
  explicit RtElection(Nanos delta);

  /// Participates with identity `id`; returns the elected id.
  int elect(int id);

  /// Elected id, or -1 (snapshot).
  int leader() const;

 private:
  RtMultiConsensus agreement_;
};

/// Wait-free one-shot test-and-set (0 for exactly one caller).
class RtTestAndSet {
 public:
  explicit RtTestAndSet(Nanos delta);

  int test_and_set(int id);
  int peek() const { return election_.leader() >= 0 ? 1 : 0; }

 private:
  RtElection election_;
};

/// Wait-free one-shot n-renaming: participants acquire unique names from
/// {0..max_names-1} (see derived/renaming_sim.hpp for the slot argument).
class RtRenaming {
 public:
  RtRenaming(Nanos delta, int max_names);

  /// Acquires a name; one call per thread identity.
  int acquire(int id);

 private:
  int max_names_;
  std::vector<std::unique_ptr<RtMultiConsensus>> slots_;
};

/// k-set agreement: at most k distinct values decided (proposers are
/// partitioned across k consensus instances by id mod k).
class RtSetConsensus {
 public:
  RtSetConsensus(Nanos delta, int k, int bits = 31);

  std::int64_t propose(int id, std::int64_t value);

  int k() const { return k_; }

 private:
  int k_;
  std::vector<std::unique_ptr<RtMultiConsensus>> groups_;
};

/// Long-lived (resettable) test-and-set: generations of one-shot
/// elections (see derived/long_lived_tas_sim.hpp for the argument).  Per
/// generation exactly one caller wins; only the current winner may
/// reset().  `loop { if (tas()==0) { CS; reset(); } }` is a
/// timing-failure-resilient lock.
class RtLongLivedTestAndSet {
 public:
  /// `n` = number of thread identities (ids 0..n-1).
  RtLongLivedTestAndSet(Nanos delta, int n);

  /// 0 for exactly one caller per generation, 1 for the rest.
  int test_and_set(int id);

  /// Releases the bit; caller must be the current generation's winner.
  void reset(int id);

  std::size_t generations() const {
    return elections_ready_.load(std::memory_order_acquire);
  }

 private:
  RtElection& election(std::size_t generation);

  Nanos delta_;
  int n_;
  AtomicRegister<int> generation_{0};
  std::vector<int> won_generation_;  ///< [id]: written only by thread id

  mutable std::mutex grow_mutex_;
  std::atomic<std::size_t> elections_ready_{0};
  std::vector<std::unique_ptr<RtElection>> elections_;
};

/// Wait-free linearizable universal object (see universal_sim.hpp for the
/// construction; `Replica` and `OpCodec` are shared with the sim side).
class RtUniversal {
 public:
  RtUniversal(Nanos delta, int n,
              std::function<std::unique_ptr<derived::Replica>()> make_replica);

  /// Invokes opcode(arg) on behalf of thread `id`; returns the result.
  std::int64_t invoke(int id, int opcode, int arg);

  /// Log slots applied by the fastest replica so far.
  std::size_t log_length() const;

 private:
  struct PerProcess {
    std::unique_ptr<derived::Replica> replica;
    std::size_t applied_slots = 0;
    std::vector<int> applied_seq;
    int next_seq = 1;
  };

  RtMultiConsensus& slot(std::size_t index);

  Nanos delta_;
  int n_;
  std::function<std::unique_ptr<derived::Replica>()> make_replica_;
  std::unique_ptr<AtomicRegister<std::int64_t>[]> announce_;
  std::vector<std::unique_ptr<PerProcess>> per_process_;

  // The slot vector grows on demand.  Publication is lock-free for readers
  // (an atomic count guards the initialized prefix); growth itself is
  // serialized by a mutex — growth is bookkeeping of the *implementation
  // of the experiment harness*, not a shared register of the algorithm.
  mutable std::mutex grow_mutex_;
  std::atomic<std::size_t> slots_ready_{0};
  std::vector<std::unique_ptr<RtMultiConsensus>> slots_;
};

}  // namespace tfr::rt
