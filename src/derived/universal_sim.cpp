#include "tfr/derived/universal_sim.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::derived {

std::int64_t OpCodec::encode(int pid, int seq, int opcode, int arg) {
  TFR_REQUIRE(pid >= 0 && pid < (1 << 14));
  TFR_REQUIRE(seq >= 1 && seq < (1 << 16));
  TFR_REQUIRE(opcode >= 0 && opcode < (1 << 8));
  TFR_REQUIRE(arg >= 0 && arg < (1 << 24));
  return (static_cast<std::int64_t>(pid) << 48) |
         (static_cast<std::int64_t>(seq) << 32) |
         (static_cast<std::int64_t>(opcode) << 24) |
         static_cast<std::int64_t>(arg);
}

SimUniversal::SimUniversal(
    sim::RegisterSpace& space, sim::Duration delta, int n,
    std::function<std::unique_ptr<Replica>()> make_replica)
    : n_(n),
      space_(&space),
      delta_(delta),
      make_replica_(std::move(make_replica)),
      announce_(space, -1, "universal.announce") {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(make_replica_ != nullptr);
  announce_.at(static_cast<std::size_t>(n - 1));
  per_process_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto pp = std::make_unique<PerProcess>();
    pp->replica = make_replica_();
    pp->applied_seq.assign(static_cast<std::size_t>(n), 0);
    per_process_.push_back(std::move(pp));
  }
}

SimMultiConsensus& SimUniversal::slot(std::size_t index) {
  while (slots_.size() <= index)
    slots_.push_back(
        std::make_unique<SimMultiConsensus>(*space_, delta_, OpCodec::kBits));
  return *slots_[index];
}

sim::Task<std::int64_t> SimUniversal::invoke(sim::Env env, int opcode,
                                             int arg) {
  const int me = env.pid();
  TFR_REQUIRE(me >= 0 && me < n_);
  PerProcess& mine = *per_process_[static_cast<std::size_t>(me)];
  const std::int64_t op = OpCodec::encode(me, mine.next_seq++, opcode, arg);

  // Announce, so that other processes help us into the log even if we lose
  // every direct race (wait-freedom under contention).
  co_await env.write(announce_.at(static_cast<std::size_t>(me)), op);

  std::int64_t my_result = -1;
  bool applied_mine = false;
  while (!applied_mine) {
    const std::size_t index = mine.applied_slots;
    // Helping rule: slot s belongs to process (s mod n); propose its
    // announced-but-unapplied operation if there is one, else our own.
    const int beneficiary = static_cast<int>(index % static_cast<std::size_t>(n_));
    std::int64_t proposal = op;
    if (beneficiary != me) {
      const std::int64_t announced = co_await env.read(
          announce_.at(static_cast<std::size_t>(beneficiary)));
      if (announced >= 0 &&
          OpCodec::seq(announced) >
              mine.applied_seq[static_cast<std::size_t>(beneficiary)]) {
        proposal = announced;
      }
    }
    const std::int64_t winner = co_await slot(index).propose(env, proposal);
    // Apply the slot's winner to our replica regardless of who won: the
    // replica stays in lockstep with the decided prefix of the log.
    const std::int64_t result = mine.replica->apply(winner);
    const int winner_pid = OpCodec::pid(winner);
    TFR_INVARIANT(winner_pid >= 0 && winner_pid < n_);
    // Sequence numbers of one pid enter the log in order.
    TFR_INVARIANT(OpCodec::seq(winner) >
                  mine.applied_seq[static_cast<std::size_t>(winner_pid)]);
    mine.applied_seq[static_cast<std::size_t>(winner_pid)] =
        OpCodec::seq(winner);
    mine.applied_slots = index + 1;
    if (winner == op) {
      my_result = result;
      applied_mine = true;
    }
  }
  // Retire the announcement (latecomers see it as already applied via the
  // sequence high-water mark, so this write is an optimization, not a
  // correctness requirement).
  co_await env.write(announce_.at(static_cast<std::size_t>(me)),
                     std::int64_t{-1});
  co_return my_result;
}

std::size_t SimUniversal::log_length() const {
  std::size_t longest = 0;
  for (const auto& pp : per_process_)
    if (pp && pp->applied_slots > longest) longest = pp->applied_slots;
  return longest;
}

std::int64_t CounterReplica::apply(std::int64_t op) {
  switch (OpCodec::opcode(op)) {
    case kAdd:
      value_ += OpCodec::arg(op);
      return value_;
    case kGet:
      return value_;
    default:
      TFR_REQUIRE(!"unknown counter opcode");
      return -1;
  }
}

std::int64_t QueueReplica::apply(std::int64_t op) {
  switch (OpCodec::opcode(op)) {
    case kEnqueue:
      items_.push_back(OpCodec::arg(op));
      return static_cast<std::int64_t>(items_.size() - head_);
    case kDequeue:
      if (head_ == items_.size()) return -1;
      return items_[head_++];
    default:
      TFR_REQUIRE(!"unknown queue opcode");
      return -1;
  }
}

}  // namespace tfr::derived
