// Multi-valued consensus from the paper's binary consensus.
//
// §1.4 uses Algorithm 1 as a building block for election, renaming, etc.,
// which need agreement on values larger than one bit.  This is the classic
// bitwise prefix-agreement reduction: agree on the value bit by bit using
// one binary instance per position.  Before proposing bit b at position k,
// a process publishes its full current candidate in witness[k][b]; a
// process whose bit loses adopts the witness for the winning bit, which is
// guaranteed (a) to have been written before that bit could win, (b) to
// match the agreed prefix through position k, and (c) to be some process's
// input (inductively).  After all positions the agreed bit string *is* the
// decided value, so agreement and validity follow, and every property of
// the underlying instances (wait-freedom, resilience to timing failures,
// unbounded participation) is inherited.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/core/consensus_sim.hpp"

namespace tfr::derived {

class SimMultiConsensus {
 public:
  /// Values must be non-negative and fit in `bits` bits (max 62).
  SimMultiConsensus(sim::RegisterSpace& space, sim::Duration delta,
                    int bits = 31);

  SimMultiConsensus(const SimMultiConsensus&) = delete;
  SimMultiConsensus& operator=(const SimMultiConsensus&) = delete;

  /// Proposes `value`; co_returns the agreed value (some process's input).
  sim::Task<std::int64_t> propose(sim::Env env, std::int64_t value);

  int bits() const { return bits_; }
  /// Decided value if every bit instance has decided, else -1 (untimed).
  std::int64_t decided_value() const;

 private:
  sim::RegisterArray<std::int64_t>& witness(int bit_value);

  int bits_;
  std::vector<std::unique_ptr<core::SimConsensus>> bit_;
  sim::RegisterArray<std::int64_t> witness0_;
  sim::RegisterArray<std::int64_t> witness1_;
};

}  // namespace tfr::derived
