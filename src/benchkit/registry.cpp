#include "tfr/benchkit/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace tfr::benchkit {

namespace {

/// Numeric suffix of "E<k>" ids for natural ordering; non-conforming ids
/// sort after all E-ids, lexically.
long id_rank(const std::string& id) {
  if (id.size() < 2 || id[0] != 'E') return -1;
  for (std::size_t i = 1; i < id.size(); ++i)
    if (id[i] < '0' || id[i] > '9') return -1;
  return std::strtol(id.c_str() + 1, nullptr, 10);
}

bool id_before(const std::string& a, const std::string& b) {
  const long ra = id_rank(a);
  const long rb = id_rank(b);
  if (ra >= 0 && rb >= 0) return ra < rb;
  if (ra >= 0) return true;
  if (rb >= 0) return false;
  return a < b;
}

}  // namespace

const char* tier_name(Tier tier) {
  return tier == Tier::kSmoke ? "smoke" : "full";
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(Experiment experiment) {
  if (find(experiment.id) != nullptr) {
    std::fprintf(stderr, "benchkit: duplicate experiment id %s\n",
                 experiment.id.c_str());
    std::abort();
  }
  experiments_.push_back(std::move(experiment));
}

const Experiment* Registry::find(const std::string& id) const {
  for (const Experiment& e : experiments_)
    if (e.id == id) return &e;
  return nullptr;
}

std::vector<const Experiment*> Registry::select(Tier tier) const {
  std::vector<const Experiment*> out;
  for (const Experiment& e : experiments_)
    if (tier == Tier::kFull || e.tier == Tier::kSmoke) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return id_before(a->id, b->id);
            });
  return out;
}

std::vector<const Experiment*> Registry::all() const {
  return select(Tier::kFull);
}

Registrar::Registrar(Experiment experiment) {
  Registry::instance().add(std::move(experiment));
}

}  // namespace tfr::benchkit
