// Static experiment registry: the 18 free-standing bench main()s become
// Experiments registered at load time and run by the single `tfr_bench`
// driver (bench/tfr_bench_main.cpp).
//
// An experiment declares, once: its id ("E1"…), the paper claim it
// reproduces ("Theorem 2.1"), its tier, and a run function taking the
// per-experiment Recorder.  The driver selects by tier / id, forks a
// worker per experiment, prints the captured tables in id order, and
// emits the structured BENCH_*.json.
//
//   TFR_BENCH_EXPERIMENT(E1, "Theorem 2.1", ::tfr::benchkit::Tier::kSmoke,
//                        "consensus decision time without failures") {
//     rec.expect(...);   // `rec` is the experiment's Recorder
//   }

#pragma once

#include <string>
#include <vector>

#include "tfr/benchkit/recorder.hpp"

namespace tfr::benchkit {

/// kSmoke experiments form the fast CI gate (whole tier < 60 s wall);
/// kFull adds the long-running ones (`--tier full` runs both).
enum class Tier { kSmoke, kFull };

const char* tier_name(Tier tier);

struct Experiment {
  std::string id;     ///< "E1" … "E18"; unique.
  std::string title;  ///< Section banner text.
  std::string claim;  ///< Paper claim reference, e.g. "Theorem 2.1".
  Tier tier = Tier::kSmoke;
  void (*run)(Recorder&) = nullptr;
};

class Registry {
 public:
  static Registry& instance();

  /// Registers an experiment; aborts on a duplicate id (a programming
  /// error caught at process start).
  void add(Experiment experiment);

  /// nullptr when no experiment has this id.
  const Experiment* find(const std::string& id) const;

  /// Experiments of the given tier selection ordered by numeric id
  /// (E2 before E10).  kSmoke selects the smoke tier only; kFull selects
  /// everything.
  std::vector<const Experiment*> select(Tier tier) const;

  std::vector<const Experiment*> all() const;

 private:
  std::vector<Experiment> experiments_;
};

struct Registrar {
  explicit Registrar(Experiment experiment);
};

}  // namespace tfr::benchkit

/// Defines and registers an experiment run function.  The body sees the
/// experiment's Recorder as `rec`.
#define TFR_BENCH_EXPERIMENT(ID, CLAIM, TIER, TITLE)                    \
  static void tfr_bench_run_##ID(::tfr::benchkit::Recorder& rec);       \
  static const ::tfr::benchkit::Registrar tfr_bench_registrar_##ID{     \
      ::tfr::benchkit::Experiment{#ID, TITLE, CLAIM, TIER,              \
                                  &tfr_bench_run_##ID}};                \
  static void tfr_bench_run_##ID(::tfr::benchkit::Recorder& rec)
