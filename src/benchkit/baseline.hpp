// Baseline regression gating: diff the metrics of a fresh BENCH_*.json
// run against a committed baseline (bench/baseline.json) under
// per-metric tolerance bands, so every paper claim is a tracked time
// series and CI fails when a headline quantity drifts.
//
// Tolerance model — first matching rule wins, keyed on the fully
// qualified metric name "<experiment id>.<metric>":
//   * |current - base| <= abs + rel * |base|        -> pass
//   * |current - base| <= 2 * (abs + rel * |base|)  -> warn (reported,
//     not fatal: the band's grey zone)
//   * otherwise                                      -> fail
//   * rule with gate=false                           -> reported only
// A metric present in the baseline but absent from the current run of
// the same experiment is a fail (lost coverage); new metrics and
// experiments absent from the baseline are informational.
//
// Rules come from the baseline document's "tolerances" array (emitted
// with every report, hand-tunable) with built-in defaults appended, so a
// freshly regenerated baseline gates sensibly out of the box.

#pragma once

#include <string>
#include <vector>

#include "tfr/benchkit/json.hpp"

namespace tfr::benchkit {

struct Tolerance {
  double rel = 0.05;
  double abs = 1e-9;
  bool gate = true;
};

struct ToleranceRule {
  std::string pattern;  ///< Glob over "<id>.<metric>": '*' any run, '?' one char.
  Tolerance tolerance;
};

enum class DiffVerdict {
  kPass,
  kWarn,      ///< Within twice the band — reported, not fatal.
  kFail,      ///< Outside twice the band.
  kMissing,   ///< In the baseline, absent from the current run: fatal.
  kNew,       ///< Not in the baseline: informational.
  kUngated,   ///< Matched a gate=false rule: informational.
};

const char* diff_verdict_name(DiffVerdict verdict);

struct DiffEntry {
  std::string key;  ///< "<experiment id>.<metric name>".
  double base = 0;
  double current = 0;
  double allowed = 0;  ///< The band half-width (abs + rel * |base|).
  DiffVerdict verdict = DiffVerdict::kPass;
};

struct DiffReport {
  std::vector<DiffEntry> entries;
  int failures = 0;
  int warnings = 0;
  bool ok() const { return failures == 0; }
};

/// '*' / '?' glob match, anchored at both ends.
bool glob_match(const std::string& pattern, const std::string& text);

/// Built-in rules appended after any document-supplied ones: throughput
/// metrics (*.exec_per_sec) are ungated, everything else gets the default
/// Tolerance band.
std::vector<ToleranceRule> default_tolerance_rules();

/// Document rules ("tolerances" array) followed by the defaults.
std::vector<ToleranceRule> tolerance_rules(const Json& baseline_doc);

/// First matching rule's tolerance (the rule list always matches: the
/// defaults end with a "*" rule).
Tolerance tolerance_for(const std::vector<ToleranceRule>& rules,
                        const std::string& key);

/// Diffs every experiment of `current_doc` that also exists in
/// `baseline_doc`.  Both documents use the BENCH_*.json schema.
DiffReport diff_reports(const Json& baseline_doc, const Json& current_doc,
                        const std::vector<ToleranceRule>& rules);

}  // namespace tfr::benchkit
