// The experiment runner behind `tfr_bench`.
//
// Runs selected experiments in parallel worker processes (fork per
// experiment, at most `jobs` in flight).  Process isolation keeps one
// crashing or wedged experiment from taking the driver down, and keeps
// the per-experiment Recorder state trivially race-free.  Each worker
// serializes its Outcome (expect verdicts, metrics, captured table text,
// wall time) as JSON into a per-experiment handoff file; the parent
// collects them, prints the classic paper-style output in id order, and
// assembles the structured BENCH report.

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "tfr/benchkit/baseline.hpp"
#include "tfr/benchkit/json.hpp"
#include "tfr/benchkit/recorder.hpp"
#include "tfr/benchkit/registry.hpp"

namespace tfr::benchkit {

struct Outcome {
  std::string id;
  std::string title;
  std::string claim;
  Tier tier = Tier::kSmoke;
  std::vector<ExpectResult> expects;
  std::vector<MetricResult> metrics;
  std::string text;       ///< Captured tables + EXPECT/METRIC lines.
  double wall_ms = 0;
  bool completed = false; ///< Worker produced a result (no crash/timeout).
  int failures() const;
};

/// Runs one experiment in the current process: prints the section banner
/// into the recorder's stream, times the run, and converts a thrown
/// exception into a failing "completed without throwing" expect.
Outcome run_experiment(const Experiment& experiment);

/// {"id", "claim", "tier", "wall_ms", "expects", "metrics"} — one entry of
/// the report's "experiments" array (plus "text" when include_text).
Json outcome_to_json(const Outcome& outcome, bool include_text);
Outcome outcome_from_json(const Json& value);

/// Forks one worker per experiment with at most `jobs` in flight and
/// returns outcomes in the given order.  A worker that dies without a
/// handoff file yields completed=false with a synthetic failing expect.
std::vector<Outcome> run_parallel(
    const std::vector<const Experiment*>& experiments, int jobs);

/// Assembles the BENCH_*.json document: schema tag, host/commit/timestamp
/// metadata, the default tolerance rules, and one entry per outcome.
Json make_report(const std::vector<Outcome>& outcomes,
                 const std::string& tier_label);

/// Prints each outcome's captured text, then the run summary table.
void print_outcomes(std::ostream& os, const std::vector<Outcome>& outcomes);

/// Prints the baseline diff (every non-pass entry plus a count line).
void print_diff(std::ostream& os, const DiffReport& report);

}  // namespace tfr::benchkit
