#include "tfr/benchkit/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tfr::benchkit {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t offset) {
  throw std::runtime_error("json: " + what + " at offset " +
                           std::to_string(offset));
}

/// Numbers print as integers when they are integral and exactly
/// representable, otherwise with up to 10 significant digits — enough for
/// every metric the harness records while staying byte-stable.
std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::abs(v) < 9.0e15)
    return std::to_string(static_cast<long long>(v));
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_utf8(std::string& out, unsigned code) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return value;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        fail(std::string("expected '") + lit + "'", pos_);
    }
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case 'n': expect_literal("null"); return Json();
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case '"': return Json(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Json parse_number() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == begin) fail("expected a value", pos_);
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number", begin);
    return Json(v);
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("malformed \\u escape", pos_);
          }
          append_utf8(out, code);  // BMP only; ample for harness output
          break;
        }
        default: fail("unknown escape", pos_);
      }
    }
  }

  Json parse_array() {
    ++pos_;  // '['
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return out; }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return out; }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected a member key", pos_);
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':'", pos_);
      ++pos_;
      out.set(key, parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }
};

void dump_value(const Json& v, std::string& out, int depth) {
  const std::string pad(2 * static_cast<std::size_t>(depth), ' ');
  const std::string inner_pad(2 * static_cast<std::size_t>(depth + 1), ' ');
  switch (v.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += v.bool_or(false) ? "true" : "false"; break;
    case Json::Type::kNumber: out += format_number(v.number_or(0)); break;
    case Json::Type::kString: append_escaped(out, v.str()); break;
    case Json::Type::kArray: {
      if (v.items().empty()) { out += "[]"; break; }
      out += "[\n";
      for (std::size_t i = 0; i < v.items().size(); ++i) {
        out += inner_pad;
        dump_value(v.items()[i], out, depth + 1);
        if (i + 1 < v.items().size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      break;
    }
    case Json::Type::kObject: {
      if (v.members().empty()) { out += "{}"; break; }
      out += "{\n";
      for (std::size_t i = 0; i < v.members().size(); ++i) {
        out += inner_pad;
        append_escaped(out, v.members()[i].first);
        out += ": ";
        dump_value(v.members()[i].second, out, depth + 1);
        if (i + 1 < v.members().size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      break;
    }
  }
}

}  // namespace

bool Json::bool_or(bool fallback) const {
  const bool* b = std::get_if<bool>(&value_);
  return b != nullptr ? *b : fallback;
}

double Json::number_or(double fallback) const {
  const double* d = std::get_if<double>(&value_);
  return d != nullptr ? *d : fallback;
}

std::string Json::string_or(const std::string& fallback) const {
  const std::string* s = std::get_if<std::string>(&value_);
  return s != nullptr ? *s : fallback;
}

const std::string& Json::str() const {
  const std::string* s = std::get_if<std::string>(&value_);
  if (s == nullptr) throw std::runtime_error("json: not a string");
  return *s;
}

const Json::Array& Json::items() const {
  const Array* a = std::get_if<Array>(&value_);
  if (a == nullptr) throw std::runtime_error("json: not an array");
  return *a;
}

const Json::Object& Json::members() const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) throw std::runtime_error("json: not an object");
  return *o;
}

Json& Json::set(const std::string& key, Json value) {
  Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) throw std::runtime_error("json: not an object");
  for (Member& member : *o) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  o->emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) return nullptr;
  for (const Member& member : *o)
    if (member.first == key) return &member.second;
  return nullptr;
}

Json& Json::push_back(Json value) {
  Array* a = std::get_if<Array>(&value_);
  if (a == nullptr) throw std::runtime_error("json: not an array");
  a->push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (const Array* a = std::get_if<Array>(&value_)) return a->size();
  if (const Object* o = std::get_if<Object>(&value_)) return o->size();
  return 0;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return Json::parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void save_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("json: cannot write " + path);
  out << value.dump() << "\n";
  if (!out) throw std::runtime_error("json: write failed for " + path);
}

}  // namespace tfr::benchkit
