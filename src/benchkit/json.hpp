// Minimal JSON value, parser and emitter for the experiment harness.
//
// Scope: exactly what the BENCH_*.json schema and the baseline-diff
// machinery need — objects with stable (insertion) member order, arrays,
// strings, numbers, booleans and null.  The emitter is byte-stable for a
// given value (golden-file tests rely on this); the parser accepts any
// standard JSON document produced by this emitter or by hand.

#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace tfr::benchkit {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  /// Members keep insertion order so dumps are deterministic.
  using Object = std::vector<Member>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : value_(b) {}                // NOLINT(google-explicit-constructor)
  Json(double v) : value_(v) {}              // NOLINT(google-explicit-constructor)
  Json(int v) : value_(static_cast<double>(v)) {}  // NOLINT(google-explicit-constructor)
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor)

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Value accessors with fallbacks; the strict str()/items()/members()
  /// accessors throw std::runtime_error on a type mismatch.
  bool bool_or(bool fallback) const;
  double number_or(double fallback) const;
  std::string string_or(const std::string& fallback) const;
  const std::string& str() const;
  const Array& items() const;
  const Object& members() const;

  /// Object: appends the member, or replaces the value if the key exists.
  Json& set(const std::string& key, Json value);
  /// Object: the member's value, or nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;

  /// Array: appends an element.
  Json& push_back(Json value);

  /// Element / member count (0 for scalars).
  std::size_t size() const;

  /// Serializes with 2-space indentation and "key": value member layout.
  /// No trailing newline; callers writing files append one.
  std::string dump() const;

  /// Parses a document.  Throws std::runtime_error with an offset on
  /// malformed input.
  static Json parse(const std::string& text);

 private:
  explicit Json(Array a) : value_(std::move(a)) {}
  explicit Json(Object o) : value_(std::move(o)) {}

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Reads a whole file and parses it.  Throws std::runtime_error (with the
/// path in the message) when the file is unreadable or malformed.
Json load_json_file(const std::string& path);

/// Writes `value.dump()` plus a trailing newline.  Throws on I/O failure.
void save_json_file(const std::string& path, const Json& value);

}  // namespace tfr::benchkit
