#include "tfr/benchkit/runner.hpp"

#include <sys/utsname.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <stdexcept>
#include <thread>

#include "tfr/benchkit/forkmap.hpp"
#include "tfr/common/table.hpp"

namespace tfr::benchkit {

namespace {

Tier tier_from_name(const std::string& name) {
  return name == "full" ? Tier::kFull : Tier::kSmoke;
}

std::string run_command_line(const char* command) {
  FILE* pipe = popen(command, "r");
  if (pipe == nullptr) return std::string();
  char buf[256];
  std::string out;
  while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out;
}

Json host_metadata() {
  Json host = Json::object();
  utsname names{};
  if (uname(&names) == 0) {
    host.set("os", std::string(names.sysname) + " " + names.release);
    host.set("machine", names.machine);
  }
  host.set("cores",
           static_cast<double>(std::thread::hardware_concurrency()));
  return host;
}

std::string utc_timestamp(std::time_t now) {
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Outcome synthetic_failure(const Experiment& experiment,
                          const std::string& why) {
  Outcome outcome;
  outcome.id = experiment.id;
  outcome.title = experiment.title;
  outcome.claim = experiment.claim;
  outcome.tier = experiment.tier;
  outcome.expects.push_back({why, false});
  outcome.text = "EXPECT " + why + ": FAIL\n";
  return outcome;
}

}  // namespace

int Outcome::failures() const {
  int n = 0;
  for (const ExpectResult& e : expects) n += !e.pass;
  return n;
}

Outcome run_experiment(const Experiment& experiment) {
  Outcome outcome;
  outcome.id = experiment.id;
  outcome.title = experiment.title;
  outcome.claim = experiment.claim;
  outcome.tier = experiment.tier;

  Recorder recorder;
  const auto begin = std::chrono::steady_clock::now();
  {
    Section section(recorder.out(), experiment.id, experiment.title);
    try {
      experiment.run(recorder);
    } catch (const std::exception& e) {
      recorder.expect(false, std::string("experiment completed without "
                                         "throwing (got: ") + e.what() + ")");
    } catch (...) {
      recorder.expect(false, "experiment completed without throwing");
    }
  }
  outcome.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - begin)
          .count();
  outcome.expects = recorder.expects();
  outcome.metrics = recorder.metrics();
  outcome.text = recorder.text();
  outcome.completed = true;
  return outcome;
}

Json outcome_to_json(const Outcome& outcome, bool include_text) {
  Json out = Json::object();
  out.set("id", outcome.id);
  out.set("title", outcome.title);
  out.set("claim", outcome.claim);
  out.set("tier", tier_name(outcome.tier));
  out.set("wall_ms", outcome.wall_ms);
  Json expects = Json::array();
  for (const ExpectResult& e : outcome.expects) {
    Json entry = Json::object();
    entry.set("what", e.what);
    entry.set("pass", e.pass);
    expects.push_back(std::move(entry));
  }
  out.set("expects", std::move(expects));
  Json metrics = Json::array();
  for (const MetricResult& m : outcome.metrics) {
    Json entry = Json::object();
    entry.set("name", m.name);
    entry.set("value", m.value);
    if (!m.unit.empty()) entry.set("unit", m.unit);
    metrics.push_back(std::move(entry));
  }
  out.set("metrics", std::move(metrics));
  if (include_text) out.set("text", outcome.text);
  return out;
}

Outcome outcome_from_json(const Json& value) {
  Outcome outcome;
  if (const Json* id = value.find("id")) outcome.id = id->string_or("");
  if (const Json* title = value.find("title"))
    outcome.title = title->string_or("");
  if (const Json* claim = value.find("claim"))
    outcome.claim = claim->string_or("");
  if (const Json* tier = value.find("tier"))
    outcome.tier = tier_from_name(tier->string_or("smoke"));
  if (const Json* wall = value.find("wall_ms"))
    outcome.wall_ms = wall->number_or(0);
  if (const Json* expects = value.find("expects"); expects != nullptr &&
                                                   expects->is_array()) {
    for (const Json& entry : expects->items()) {
      ExpectResult e;
      if (const Json* what = entry.find("what")) e.what = what->string_or("");
      if (const Json* pass = entry.find("pass")) e.pass = pass->bool_or(false);
      outcome.expects.push_back(std::move(e));
    }
  }
  if (const Json* metrics = value.find("metrics"); metrics != nullptr &&
                                                   metrics->is_array()) {
    for (const Json& entry : metrics->items()) {
      MetricResult m;
      if (const Json* name = entry.find("name")) m.name = name->string_or("");
      if (const Json* v = entry.find("value")) m.value = v->number_or(0);
      if (const Json* unit = entry.find("unit")) m.unit = unit->string_or("");
      outcome.metrics.push_back(std::move(m));
    }
  }
  if (const Json* text = value.find("text")) outcome.text = text->string_or("");
  outcome.completed = true;
  return outcome;
}

std::vector<Outcome> run_parallel(
    const std::vector<const Experiment*>& experiments, int jobs) {
  // One forked worker per experiment over the shared fork_map seam (also
  // used by mcheck's parallel exploration); the handoff payload is the
  // outcome's JSON document.
  const std::vector<ForkResult> results = fork_map(
      experiments.size(), jobs,
      [&experiments](std::size_t index) {
        return outcome_to_json(run_experiment(*experiments[index]),
                               /*include_text=*/true)
            .dump();
      });

  std::vector<Outcome> outcomes(experiments.size());
  for (std::size_t index = 0; index < experiments.size(); ++index) {
    const Experiment& experiment = *experiments[index];
    const ForkResult& result = results[index];
    try {
      if (!result.completed) throw std::runtime_error("no result payload");
      outcomes[index] = outcome_from_json(Json::parse(result.payload));
    } catch (...) {
      outcomes[index] = synthetic_failure(
          experiment, "experiment worker exited cleanly (status " +
                          std::to_string(result.status) +
                          ", no result file)");
    }
  }
  return outcomes;
}

Json make_report(const std::vector<Outcome>& outcomes,
                 const std::string& tier_label) {
  Json report = Json::object();
  report.set("schema", "tfr-bench-v1");
  const std::time_t now = std::time(nullptr);
  report.set("created", utc_timestamp(now));
  report.set("created_unix", static_cast<double>(now));
  report.set("tier", tier_label);
  report.set("commit",
             run_command_line("git rev-parse HEAD 2>/dev/null"));
  report.set("host", host_metadata());
  Json tolerances = Json::array();
  for (const ToleranceRule& rule : default_tolerance_rules()) {
    Json entry = Json::object();
    entry.set("pattern", rule.pattern);
    if (rule.tolerance.gate) {
      entry.set("rel", rule.tolerance.rel);
      entry.set("abs", rule.tolerance.abs);
    } else {
      entry.set("gate", false);
    }
    tolerances.push_back(std::move(entry));
  }
  report.set("tolerances", std::move(tolerances));
  Json experiments = Json::array();
  for (const Outcome& outcome : outcomes)
    experiments.push_back(outcome_to_json(outcome, /*include_text=*/false));
  report.set("experiments", std::move(experiments));
  return report;
}

void print_outcomes(std::ostream& os, const std::vector<Outcome>& outcomes) {
  for (const Outcome& outcome : outcomes) os << outcome.text;

  Table summary("run summary");
  summary.header({"id", "tier", "claim", "expects", "metrics", "wall ms",
                  "status"});
  int total_failures = 0;
  for (const Outcome& outcome : outcomes) {
    const int failures = outcome.failures();
    total_failures += failures;
    const std::size_t passed = outcome.expects.size() -
                               static_cast<std::size_t>(failures);
    summary.row({outcome.id, tier_name(outcome.tier), outcome.claim,
                 Table::fmt(static_cast<unsigned long long>(passed)) + "/" +
                     Table::fmt(static_cast<unsigned long long>(
                         outcome.expects.size())),
                 Table::fmt(static_cast<unsigned long long>(
                     outcome.metrics.size())),
                 Table::fmt(outcome.wall_ms, 1),
                 failures == 0 && outcome.completed ? "ok" : "FAIL"});
  }
  summary.print(os);
  if (total_failures > 0)
    os << "\n" << total_failures << " expectation(s) FAILED\n";
}

void print_diff(std::ostream& os, const DiffReport& report) {
  Table table("baseline diff");
  table.header({"metric", "baseline", "current", "band", "verdict"});
  for (const DiffEntry& entry : report.entries) {
    if (entry.verdict == DiffVerdict::kPass) continue;
    table.row({entry.key, Table::fmt(entry.base, 4),
               entry.verdict == DiffVerdict::kMissing
                   ? "-"
                   : Table::fmt(entry.current, 4),
               Table::fmt(entry.allowed, 4),
               diff_verdict_name(entry.verdict)});
  }
  if (table.rows() > 0) table.print(os);
  os << "baseline: " << report.entries.size() << " metric(s) compared, "
     << report.failures << " regression(s), " << report.warnings
     << " warning(s)\n";
}

}  // namespace tfr::benchkit
