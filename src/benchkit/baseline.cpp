#include "tfr/benchkit/baseline.hpp"

#include <cmath>
#include <map>

namespace tfr::benchkit {

namespace {

/// Flattens one report's experiments into "<id>.<metric>" -> value,
/// remembering which experiments the report ran (for the missing-metric
/// rule, which only applies to experiments present in both documents).
struct Flat {
  std::map<std::string, double> metrics;  // ordered for stable diffs
  std::vector<std::string> experiment_ids;
};

Flat flatten(const Json& doc) {
  Flat flat;
  const Json* experiments = doc.find("experiments");
  if (experiments == nullptr || !experiments->is_array()) return flat;
  for (const Json& experiment : experiments->items()) {
    const Json* id = experiment.find("id");
    const Json* metrics = experiment.find("metrics");
    if (id == nullptr || !id->is_string()) continue;
    flat.experiment_ids.push_back(id->str());
    if (metrics == nullptr || !metrics->is_array()) continue;
    for (const Json& metric : metrics->items()) {
      const Json* name = metric.find("name");
      const Json* value = metric.find("value");
      if (name == nullptr || !name->is_string() || value == nullptr ||
          !value->is_number())
        continue;
      flat.metrics[id->str() + "." + name->str()] = value->number_or(0);
    }
  }
  return flat;
}

bool has_id(const Flat& flat, const std::string& id) {
  for (const std::string& have : flat.experiment_ids)
    if (have == id) return true;
  return false;
}

std::string id_of(const std::string& key) {
  return key.substr(0, key.find('.'));
}

}  // namespace

const char* diff_verdict_name(DiffVerdict verdict) {
  switch (verdict) {
    case DiffVerdict::kPass: return "pass";
    case DiffVerdict::kWarn: return "WARN";
    case DiffVerdict::kFail: return "FAIL";
    case DiffVerdict::kMissing: return "MISSING";
    case DiffVerdict::kNew: return "new";
    case DiffVerdict::kUngated: return "ungated";
  }
  return "?";
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative star-backtracking matcher.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<ToleranceRule> default_tolerance_rules() {
  return {
      // Wall-clock throughput depends on the host; track, never gate.
      {"*.exec_per_sec", {0.0, 0.0, false}},
      // Parallel scaling (wall seconds, speedup) is host-dependent too.
      {"E18.parallel.*", {0.0, 0.0, false}},
      // Exploration completeness counters are exactly reproducible: any
      // drift means the search itself changed, so gate with zero slack.
      {"E18.*.executions*", {0.0, 0.0, true}},
      {"E18.*.states", {0.0, 0.0, true}},
      {"E18.*.sleep_blocked", {0.0, 0.0, true}},
      // Simulator metrics are deterministic in virtual time; 5% headroom
      // absorbs intentional small reworkings without masking regressions.
      {"*", {0.05, 1e-9, true}},
  };
}

std::vector<ToleranceRule> tolerance_rules(const Json& baseline_doc) {
  std::vector<ToleranceRule> rules;
  const Json* doc_rules = baseline_doc.find("tolerances");
  if (doc_rules != nullptr && doc_rules->is_array()) {
    for (const Json& rule : doc_rules->items()) {
      const Json* pattern = rule.find("pattern");
      if (pattern == nullptr || !pattern->is_string()) continue;
      Tolerance tolerance;
      if (const Json* rel = rule.find("rel")) tolerance.rel = rel->number_or(tolerance.rel);
      if (const Json* abs = rule.find("abs")) tolerance.abs = abs->number_or(tolerance.abs);
      if (const Json* gate = rule.find("gate")) tolerance.gate = gate->bool_or(true);
      rules.push_back({pattern->str(), tolerance});
    }
  }
  for (ToleranceRule& rule : default_tolerance_rules())
    rules.push_back(std::move(rule));
  return rules;
}

Tolerance tolerance_for(const std::vector<ToleranceRule>& rules,
                        const std::string& key) {
  for (const ToleranceRule& rule : rules)
    if (glob_match(rule.pattern, key)) return rule.tolerance;
  return Tolerance{};
}

DiffReport diff_reports(const Json& baseline_doc, const Json& current_doc,
                        const std::vector<ToleranceRule>& rules) {
  const Flat base = flatten(baseline_doc);
  const Flat current = flatten(current_doc);
  DiffReport report;

  for (const auto& [key, base_value] : base.metrics) {
    if (!has_id(current, id_of(key)))
      continue;  // experiment not run this time (e.g. smoke vs full tier)
    const Tolerance tolerance = tolerance_for(rules, key);
    DiffEntry entry;
    entry.key = key;
    entry.base = base_value;
    entry.allowed = tolerance.abs + tolerance.rel * std::abs(base_value);
    const auto found = current.metrics.find(key);
    if (found == current.metrics.end()) {
      entry.verdict = DiffVerdict::kMissing;
      ++report.failures;
    } else {
      entry.current = found->second;
      const double drift = std::abs(entry.current - entry.base);
      if (!tolerance.gate) {
        entry.verdict = DiffVerdict::kUngated;
      } else if (drift <= entry.allowed) {
        entry.verdict = DiffVerdict::kPass;
      } else if (drift <= 2 * entry.allowed) {
        entry.verdict = DiffVerdict::kWarn;
        ++report.warnings;
      } else {
        entry.verdict = DiffVerdict::kFail;
        ++report.failures;
      }
    }
    report.entries.push_back(std::move(entry));
  }

  for (const auto& [key, value] : current.metrics) {
    if (base.metrics.count(key) != 0 || !has_id(base, id_of(key))) continue;
    DiffEntry entry;
    entry.key = key;
    entry.current = value;
    entry.verdict = DiffVerdict::kNew;
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace tfr::benchkit
