#include "tfr/benchkit/recorder.hpp"

#include <algorithm>

#include "tfr/common/table.hpp"

namespace tfr::benchkit {

void Recorder::expect(bool ok, const std::string& what) {
  expects_.push_back({what, ok});
  text_ << "EXPECT " << what << ": " << (ok ? "PASS" : "FAIL") << "\n";
}

void Recorder::metric(const std::string& name, double value,
                      const std::string& unit) {
  metrics_.push_back({name, value, unit});
  text_ << "METRIC " << name << " = " << Table::fmt(value, 4);
  if (!unit.empty()) text_ << " " << unit;
  text_ << "\n";
}

int Recorder::failures() const {
  return static_cast<int>(
      std::count_if(expects_.begin(), expects_.end(),
                    [](const ExpectResult& e) { return !e.pass; }));
}

Json Recorder::to_json(bool include_text) const {
  Json out = Json::object();
  Json expects = Json::array();
  for (const ExpectResult& e : expects_) {
    Json entry = Json::object();
    entry.set("what", e.what);
    entry.set("pass", e.pass);
    expects.push_back(std::move(entry));
  }
  out.set("expects", std::move(expects));
  Json metrics = Json::array();
  for (const MetricResult& m : metrics_) {
    Json entry = Json::object();
    entry.set("name", m.name);
    entry.set("value", m.value);
    if (!m.unit.empty()) entry.set("unit", m.unit);
    metrics.push_back(std::move(entry));
  }
  out.set("metrics", std::move(metrics));
  if (include_text) out.set("text", text());
  return out;
}

}  // namespace tfr::benchkit
