// Per-experiment result recorder.
//
// Replaces the old bench_util.hpp mutable global (`g_failures`): every
// EXPECT verdict and METRIC sample of one experiment lands in the
// Recorder the registry hands to its run function, so experiments can run
// concurrently (one Recorder per worker) and the driver can serialize the
// structured results into BENCH_*.json instead of scraping stdout.
//
// The human-readable side is preserved: expect()/metric() still echo the
// classic greppable "EXPECT …: PASS|FAIL" / "METRIC <name> = <value>"
// lines, and out() gives the experiment body a stream for its
// paper-style tables; the driver prints the captured text per experiment
// in registry order.

#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "tfr/benchkit/json.hpp"

namespace tfr::benchkit {

struct ExpectResult {
  std::string what;
  bool pass = false;
};

struct MetricResult {
  std::string name;  ///< Experiment-relative, e.g. "solo.rmr" (no "E15." prefix).
  double value = 0;
  std::string unit;  ///< Empty for dimensionless counts/ratios.
};

class Recorder {
 public:
  /// Records a shape check and echoes the EXPECT line.
  void expect(bool ok, const std::string& what);

  /// Records a headline quantity and echoes the METRIC line.
  void metric(const std::string& name, double value,
              const std::string& unit = std::string());

  /// Stream for the experiment's paper-style tables and notes.
  std::ostream& out() { return text_; }

  int failures() const;
  const std::vector<ExpectResult>& expects() const { return expects_; }
  const std::vector<MetricResult>& metrics() const { return metrics_; }
  /// Everything written to out() plus the echoed EXPECT/METRIC lines.
  std::string text() const { return text_.str(); }

  /// {"expects": [...], "metrics": [...]} (+ "text" when requested) — the
  /// schema fragment embedded per experiment in BENCH_*.json.
  Json to_json(bool include_text) const;

 private:
  std::ostringstream text_;
  std::vector<ExpectResult> expects_;
  std::vector<MetricResult> metrics_;
};

}  // namespace tfr::benchkit
