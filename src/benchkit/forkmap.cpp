#include "tfr/benchkit/forkmap.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tfr::benchkit {

namespace {

std::string make_handoff_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string templ =
      std::string(base != nullptr ? base : "/tmp") + "/tfr_forkmap.XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr)
    throw std::runtime_error("fork_map: mkdtemp failed");
  return std::string(buf.data());
}

std::string task_path(const std::string& dir, std::size_t index) {
  return dir + "/" + std::to_string(index) + ".bin";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

std::vector<ForkResult> fork_map(std::size_t count, int jobs,
                                 const ForkTask& task,
                                 const ForkResultHook& on_result) {
  if (jobs < 1) jobs = 1;
  std::vector<ForkResult> results(count);
  if (count == 0) return results;
  const std::string dir = make_handoff_dir();

  std::map<pid_t, std::size_t> running;
  ForkMapControl control;
  std::size_t next = 0;

  const auto spawn_one = [&](std::size_t index) {
    std::fflush(nullptr);  // don't duplicate parent stdio buffers
    const pid_t pid = fork();
    if (pid < 0) throw std::runtime_error("fork_map: fork failed");
    if (pid == 0) {
      int status = 1;
      try {
        if (write_file(task_path(dir, index), task(index))) status = 0;
      } catch (...) {
        status = 2;
      }
      _exit(status);
    }
    running.emplace(pid, index);
  };

  const auto kill_cancelled = [&] {
    for (const auto& [pid, index] : running) {
      if (index > control.cutoff()) kill(pid, SIGKILL);
    }
  };

  while (next < count || !running.empty()) {
    while (next < count && running.size() < static_cast<std::size_t>(jobs)) {
      const std::size_t index = next++;
      if (index > control.cutoff()) {
        results[index].skipped = true;
        continue;
      }
      spawn_one(index);
    }
    if (running.empty()) continue;  // everything left was skipped
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) throw std::runtime_error("fork_map: waitpid failed");
    const auto found = running.find(pid);
    if (found == running.end()) continue;
    const std::size_t index = found->second;
    running.erase(found);
    ForkResult& result = results[index];
    result.status = status;
    if (index > control.cutoff()) {
      result.skipped = true;  // cancelled while running (possibly killed)
    } else {
      result.completed = read_file(task_path(dir, index), result.payload);
    }
    std::remove(task_path(dir, index).c_str());
    if (on_result && !result.skipped) {
      const std::size_t before = control.cutoff();
      on_result(index, result, control);
      if (control.cutoff() < before) kill_cancelled();
    }
  }
  rmdir(dir.c_str());
  return results;
}

}  // namespace tfr::benchkit
