// Fork-based parallel map: the process-isolation seam shared by the
// tfr_bench experiment runner and mcheck's parallel exploration.
//
// fork_map() runs `count` tasks in forked child processes with at most
// `jobs` in flight.  Each child executes task(index) and hands its result
// bytes back to the parent through a per-task file in a private temp
// directory (pipes would deadlock past the kernel buffer on large
// payloads such as counterexample traces).  Process isolation keeps one
// crashing or wedged task from taking the driver down and makes task
// state trivially race-free — the child inherits the parent's memory
// image, so tasks need no input serialization at all.
//
// The parent may react to results as they arrive (on_result) and cancel
// still-pending work: ForkMapControl::skip_after(k) stops tasks with
// index > k from ever starting and kills the ones already running.
// mcheck uses this to stop exploring subtrees that lie beyond the
// first violating one in DFS order.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace tfr::benchkit {

/// What one forked task produced.
struct ForkResult {
  /// The child wrote a payload and exited; `payload` is meaningful.
  bool completed = false;
  /// The task was cancelled (never started, or killed) via skip_after().
  bool skipped = false;
  /// Raw waitpid status of the child (0 when skipped before starting).
  int status = 0;
  std::string payload;
};

/// Handed to the on_result callback; lets the parent cancel pending work.
class ForkMapControl {
 public:
  /// Tasks with index > `index` will not be started; running ones are
  /// killed and reported as skipped.  Calls only ever tighten the bound.
  void skip_after(std::size_t index) {
    if (index < cutoff_) cutoff_ = index;
  }
  std::size_t cutoff() const { return cutoff_; }

 private:
  std::size_t cutoff_ = static_cast<std::size_t>(-1);
};

/// The child-side body: produce the result bytes for task `index`.
/// Runs in a forked process; must not rely on being able to mutate
/// parent state.  A thrown exception marks the task completed=false.
using ForkTask = std::function<std::string(std::size_t)>;

/// Parent-side hook invoked as each result is reaped (in completion
/// order, not index order).  May call control.skip_after() to cancel
/// tasks that are no longer needed.
using ForkResultHook =
    std::function<void(std::size_t, const ForkResult&, ForkMapControl&)>;

/// Runs tasks 0..count-1 in forked children, at most `jobs` (>= 1) in
/// flight, spawning in index order.  Returns one ForkResult per task,
/// in index order.
std::vector<ForkResult> fork_map(std::size_t count, int jobs,
                                 const ForkTask& task,
                                 const ForkResultHook& on_result = {});

}  // namespace tfr::benchkit
