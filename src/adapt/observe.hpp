// ObservingTiming: the bridge from the simulator's timing model to a
// TimelinessEstimator.
//
// In a deployment the timeliness samples come from instrumented code
// (cycle counters around shared accesses, RTT clocks around quorum
// phases).  In the simulator the access costs ARE the ground truth, so the
// cheapest faithful instrumentation is a TimingModel decorator: every
// access cost the base model charges is also reported to the controller as
// an observation on the issuing process's channel — exactly the per-edge
// samples a timeliness graph accumulates.  The decorator never alters the
// cost, so wrapping a model leaves the execution byte-identical.

#pragma once

#include <memory>
#include <utility>

#include "tfr/adapt/controller.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::adapt {

class ObservingTiming final : public sim::TimingModel {
 public:
  /// Reports every access cost of `base` to `controller` (channel = pid).
  /// The controller must outlive the simulation using this model.
  /// `channels` > 0 folds pids into that many channels (pid % channels):
  /// a workload that keeps spawning short-lived processes would otherwise
  /// grow one window per dead pid, and a stale window never sees fresh
  /// samples — so a past slow regime would pin the estimator's max
  /// forever.  Folding keeps every window live, the way a deployment
  /// would key samples by CPU or thread-pool lane rather than by task.
  ObservingTiming(std::unique_ptr<sim::TimingModel> base,
                  DeltaController* controller, int channels = 0)
      : base_(std::move(base)), controller_(controller), channels_(channels) {}

  sim::Duration access_cost(sim::Pid pid, sim::Time now,
                            Rng& rng) override {
    const sim::Duration cost = base_->access_cost(pid, now, rng);
    if (controller_ != nullptr) {
      const int channel =
          channels_ > 0 ? static_cast<int>(pid % channels_) : pid;
      controller_->observe(channel, cost);
    }
    return cost;
  }

 private:
  std::unique_ptr<sim::TimingModel> base_;
  DeltaController* controller_;
  int channels_;
};

}  // namespace tfr::adapt
