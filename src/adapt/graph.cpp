#include "tfr/adapt/graph.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"

namespace tfr::adapt {

TimelinessGraph::TimelinessGraph(const TimelinessEstimator& estimator,
                                 TimelinessGraphConfig config)
    : config_(config) {
  TFR_REQUIRE(config.straggler_factor >= 1.0);
  for (const auto& [channel, quantile] : estimator.channel_quantiles()) {
    (void)quantile;
    edges_.emplace_back(channel, estimator.estimate_for(channel));
  }
  if (edges_.empty()) return;
  // Lower median: with an even count the smaller middle element, so a
  // straggly half cannot pull the reference to its own side (two peers,
  // one slow: the fast one is the reference and the slow one classifies
  // as the straggler, not vice versa).
  std::vector<Duration> sorted;
  sorted.reserve(edges_.size());
  for (const auto& [channel, estimate] : edges_) {
    (void)channel;
    sorted.push_back(estimate);
  }
  std::sort(sorted.begin(), sorted.end());
  reference_ = sorted[(sorted.size() - 1) / 2];
}

Duration TimelinessGraph::estimate(int channel) const {
  for (const auto& [id, estimate] : edges_) {
    if (id == channel) return estimate;
  }
  return 0;
}

PeerClass TimelinessGraph::classify(int channel) const {
  const Duration est = estimate(channel);
  if (est == 0) return PeerClass::kUnknown;
  const auto cutoff = static_cast<double>(reference_) * config_.straggler_factor;
  return static_cast<double>(est) > cutoff ? PeerClass::kStraggler
                                           : PeerClass::kTimely;
}

std::size_t TimelinessGraph::stragglers() const {
  std::size_t count = 0;
  for (const auto& [channel, estimate] : edges_) {
    (void)estimate;
    if (classify(channel) == PeerClass::kStraggler) ++count;
  }
  return count;
}

}  // namespace tfr::adapt
