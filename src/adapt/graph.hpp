// Timeliness graphs (after Delporte-Gallet et al., "Algorithms For
// Extracting Timeliness Graphs"): a classification view over the
// per-channel estimates a TimelinessEstimator maintains.
//
// The estimator answers "how long should I wait on channel c?"
// (estimate_for); the graph answers the qualitative question on top:
// "which peers are currently timely, and which are stragglers?".  A peer
// is a straggler when its margined estimate exceeds straggler_factor x
// the lower median of all known peers' estimates — the median, not the
// mean, so one extreme straggler cannot drag the reference up and
// classify itself timely.  Peers with no samples yet are kUnknown and
// treated as timely by consumers (optimism is safe: every use is
// advisory, a misclassified peer costs a retry, never correctness).
//
// The graph is a cheap immutable snapshot: construct one when a
// classification is needed (per phase, per report), query it, drop it.
// Reclassification latency is therefore bounded by the estimator's
// window: once a degrading peer's slow samples fill its ring, the next
// snapshot sees the new quantile.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "tfr/adapt/controller.hpp"

namespace tfr::adapt {

/// How far above the peer-group reference a margined estimate may sit
/// before the peer counts as a straggler.
struct TimelinessGraphConfig {
  double straggler_factor = 4.0;
};

enum class PeerClass {
  kUnknown,    ///< no samples on this channel yet
  kTimely,     ///< within straggler_factor x the group reference
  kStraggler,  ///< beyond it — do not let this peer size a quorum wait
};

class TimelinessGraph {
 public:
  /// Snapshots the estimator's per-channel margined estimates and
  /// computes the group reference (lower median of the known estimates).
  explicit TimelinessGraph(const TimelinessEstimator& estimator,
                           TimelinessGraphConfig config = {});

  PeerClass classify(int channel) const;

  /// kTimely or kUnknown — unknown peers are optimistically timely.
  bool timely(int channel) const {
    return classify(channel) != PeerClass::kStraggler;
  }

  /// The group reference: lower median of the known margined estimates
  /// (0 when no channel has samples).
  Duration reference() const { return reference_; }

  /// The margined estimate snapshotted for `channel` (0 when unknown).
  Duration estimate(int channel) const;

  std::size_t known() const { return edges_.size(); }
  std::size_t stragglers() const;

 private:
  TimelinessGraphConfig config_;
  std::vector<std::pair<int, Duration>> edges_;  ///< (channel, margined est)
  Duration reference_ = 0;
};

}  // namespace tfr::adapt
