// Adaptive optimistic(Δ): the DeltaController seam and its policies.
//
// The paper (§1.2, §3.3) observes that the true bound Δ on shared-memory
// step time must account for preemption, cache misses and contention, and
// is therefore impractically large; because time-resilient algorithms stay
// safe when the bound is violated, they should run with a much smaller
// optimistic(Δ), adapted online "using a technique similar to the one used
// in TCP congestion control (slow start and additive-increase,
// multiplicative-decrease)".  This header turns that remark into a
// first-class component: everything that waits on a Δ today — the sim
// consensus/mutex delay(Δ) statements, the ABD client's retry windows, the
// rt locks' busy-wait delays, the service shards' batch deadlines — can be
// pointed at one DeltaController and share a single online estimate.
//
// The controller contract is deliberately advisory: current() is the
// estimate to wait for, on_failure()/on_clean() are performance signals,
// and NOTHING about safety may depend on any of them.  Algorithm 1 and
// Algorithm 3 keep agreement/mutual exclusion under arbitrary timing
// behaviour, ABD keeps linearizability under arbitrary message delay; a
// mistuned controller can only cost time.  tfr_mcheck's mistuned-controller
// scenario machine-verifies exactly that (estimate pinned at the floor
// while the explorer injects spikes past it).
//
// Policies:
//   Aimd                — the TCP-style estimator (the mapping inverts the
//                         knobs: the quantity we want high is speed ==
//                         1/estimate, so a suspected timing failure grows
//                         the estimate multiplicatively and sustained clean
//                         progress decays it additively to probe faster
//                         settings).  Single-threaded; the sim/service
//                         policy.
//   AtomicAimd          — the same discipline on lock-free atomics, for
//                         controllers shared by real rt threads.
//   TimelinessEstimator — per-channel step/RTT observations feeding a
//                         windowed quantile (timeliness-graph style, after
//                         Delporte-Gallet et al.): the estimate tracks what
//                         the environment actually delivers instead of
//                         reacting only to failures.
//   ManualDelta         — an externally pinned estimate: static baseline
//                         rows and oracle rows in benches, an operator
//                         override knob in a deployment.

#pragma once

#include <atomic>  // raw-atomic-ok: controller state is advisory (never safety-bearing)
#include <cstdint>
#include <map>
#include <vector>

#include "tfr/sim/types.hpp"

namespace tfr::adapt {

using sim::Duration;

/// The seam every Δ-consumer talks to.  Event counters live here so every
/// policy reports the same statistics surface; they are relaxed atomics so
/// one controller instance may be shared by real threads (AtomicAimd).
class DeltaController {
 public:
  virtual ~DeltaController() = default;

  DeltaController() = default;
  DeltaController(const DeltaController&) = delete;
  DeltaController& operator=(const DeltaController&) = delete;

  /// The current optimistic(Δ) estimate — what delay(Δ), a retry window or
  /// a batch deadline should be derived from.  Always >= 1.
  virtual Duration current() const = 0;

  /// The per-channel optimistic(Δ) view: what a wait that only involves
  /// `channel` (one replica's ack, one peer's step) should be derived
  /// from.  Policies without per-channel state fall back to the global
  /// estimate, so consumers may call this unconditionally.  Advisory like
  /// current(): safety must never depend on it.
  virtual Duration estimate_for(int channel) const {
    (void)channel;
    return current();
  }

  /// Reports a suspected timing failure under the current estimate (a
  /// Fischer check failed, a consensus round retried, an ack window
  /// expired).  The signal means "we were too optimistic".
  void on_failure() {
    failure_events_.fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistic
    handle_failure();
  }

  /// Reports a protocol instance that completed cleanly under the current
  /// estimate (first-try admission, a decide with no retry, a quorum
  /// inside the first window) — license to probe a faster setting.
  void on_clean() {
    clean_events_.fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistic
    handle_clean();
  }

  /// Feeds a timeliness observation: `observed` is a measured step or
  /// round-trip duration on `channel` (a pid, a replica id, a shard id —
  /// any stable stream key).  Policies that do not estimate from
  /// observations ignore it.
  void observe(int channel, Duration observed) {
    observations_.fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistic
    handle_observation(channel, observed);
  }

  std::uint64_t failure_events() const {
    return failure_events_.load(std::memory_order_relaxed);  // mo-ok: statistic
  }
  std::uint64_t clean_events() const {
    return clean_events_.load(std::memory_order_relaxed);  // mo-ok: statistic
  }
  std::uint64_t observations() const {
    return observations_.load(std::memory_order_relaxed);  // mo-ok: statistic
  }

 protected:
  virtual void handle_failure() = 0;
  virtual void handle_clean() = 0;
  virtual void handle_observation(int channel, Duration observed) {
    (void)channel;
    (void)observed;
  }

 private:
  std::atomic<std::uint64_t> failure_events_{0};  // raw-atomic-ok: statistics
  std::atomic<std::uint64_t> clean_events_{0};    // raw-atomic-ok: statistics
  std::atomic<std::uint64_t> observations_{0};    // raw-atomic-ok: statistics
};

/// Shared AIMD tuning knobs (Aimd and AtomicAimd).
struct AimdConfig {
  Duration initial = 1;     ///< starting estimate (slow start from tiny)
  Duration floor = 1;       ///< never probe below this
  Duration ceiling = 1 << 20;  ///< cap (the pessimistic true Δ if known)
  double grow_factor = 2.0;    ///< multiplicative increase on failure
  Duration decay_step = 1;     ///< additive decrease after stable progress
  int clean_threshold = 8;     ///< clean instances required before decaying
};

/// The TCP-style estimator, single-threaded (sim algorithms, the service
/// frontend — everything on one virtual clock).
class Aimd final : public DeltaController {
 public:
  using Config = AimdConfig;

  explicit Aimd(Config config);

  Duration current() const override { return estimate_; }

  std::uint64_t grows() const { return grows_; }
  std::uint64_t decays() const { return decays_; }

 protected:
  void handle_failure() override;
  void handle_clean() override;

 private:
  Config config_;
  Duration estimate_;
  int clean_run_ = 0;
  std::uint64_t grows_ = 0;
  std::uint64_t decays_ = 0;
};

/// The same AIMD discipline on lock-free atomics: one instance may be
/// shared by every thread contending an rt lock.  Under no contention the
/// update sequence is identical to Aimd's; concurrent updates race only
/// over which signal lands first, and every intermediate estimate stays in
/// [floor, ceiling] — races cost tuning accuracy, never safety.
class AtomicAimd final : public DeltaController {
 public:
  using Config = AimdConfig;

  explicit AtomicAimd(Config config);

  Duration current() const override {
    return estimate_.load(std::memory_order_relaxed);  // mo-ok: advisory estimate
  }

  std::uint64_t grows() const {
    return grows_.load(std::memory_order_relaxed);  // mo-ok: statistic
  }
  std::uint64_t decays() const {
    return decays_.load(std::memory_order_relaxed);  // mo-ok: statistic
  }

 protected:
  void handle_failure() override;
  void handle_clean() override;

 private:
  Config config_;
  std::atomic<Duration> estimate_;       // raw-atomic-ok: advisory estimate
  std::atomic<int> clean_run_{0};        // raw-atomic-ok: advisory estimate
  std::atomic<std::uint64_t> grows_{0};  // raw-atomic-ok: statistics
  std::atomic<std::uint64_t> decays_{0};  // raw-atomic-ok: statistics
};

/// Timeliness-graph style estimation (after Delporte-Gallet et al.): keep
/// the last `window` observed durations per channel, estimate
/// headroom x the windowed quantile, maxed over channels.  A timing
/// failure additionally raises an AIMD-managed boost floor (observations
/// alone cannot see a delay the window has already forgotten), which clean
/// progress decays back so the observation-driven part takes over again.
/// Single-threaded.
class TimelinessEstimator final : public DeltaController {
 public:
  struct Config {
    Duration initial = 1;        ///< estimate before any observation
    Duration floor = 1;
    Duration ceiling = 1 << 20;
    std::size_t window = 64;     ///< samples kept per channel
    double quantile = 1.0;       ///< windowed quantile per channel (0, 1]
    double headroom = 2.0;       ///< safety margin over the quantile
    double grow_factor = 2.0;    ///< boost multiplier on failure
    Duration decay_step = 1;     ///< boost decay after stable progress
    int clean_threshold = 4;     ///< clean instances per decay step
    /// Caps the failure boost at boost_cap x the margined quantile once
    /// observations exist (0 = uncapped).  On lossy channels an expiry
    /// is often a lost message, not a slow one; uncapped, repeated
    /// expiries grow the boost multiplicatively into the ceiling while
    /// every *measured* round trip stays small.
    double boost_cap = 0.0;
    /// Evicts a channel once it has seen no observation for more than
    /// evict_after_windows * window observations overall (0 = never
    /// evict).  Long service runs fold thousands of transient pids into
    /// channels; without eviction the channel map grows without bound.
    std::size_t evict_after_windows = 0;
  };

  explicit TimelinessEstimator(Config config);

  Duration current() const override { return estimate_; }

  /// The per-channel view: headroom x the channel's own windowed quantile
  /// (clamped to [floor, ceiling]).  A channel with no samples inherits
  /// the global estimate — cold channels start from the shared picture
  /// until they have a history of their own.  The failure boost stays
  /// global on purpose: an expiry cannot name a culprit peer, and
  /// stragglers teach their own channel through (late) observations.
  Duration estimate_for(int channel) const override;

  /// The windowed quantile of one channel (0 when it has no samples) — the
  /// per-edge weight a timeliness graph would carry.
  Duration channel_quantile(int channel) const;

  /// All (channel, windowed quantile) edges — the raw material a
  /// TimelinessGraph classifies.  Channels with no samples yet are
  /// skipped.
  std::vector<std::pair<int, Duration>> channel_quantiles() const;

  std::size_t channels() const { return channels_.size(); }
  Duration boost() const { return boost_; }
  std::uint64_t evictions() const { return evictions_; }

 protected:
  void handle_failure() override;
  void handle_clean() override;
  void handle_observation(int channel, Duration observed) override;

 private:
  struct Channel {
    std::vector<Duration> samples;  ///< ring buffer of the last N durations
    std::size_t next = 0;           ///< ring cursor
    Duration quantile = 0;          ///< cached windowed quantile
    std::uint64_t last_seen = 0;    ///< observation count at last sample
  };

  Duration clamped(Duration value) const;
  Duration quantile_of(const Channel& ring) const;
  void recompute();
  void evict_idle();

  Config config_;
  std::map<int, Channel> channels_;
  Duration worst_ = 0;  ///< cached max of channel quantiles (an observation
                        ///< touches one channel; rescanning all of them
                        ///< would make estimation quadratic in channels)
  Duration boost_;      ///< failure-driven lower bound on the estimate
  Duration estimate_;   ///< cached: recomputed on every signal/observation
  int clean_run_ = 0;
  std::uint64_t observed_ = 0;   ///< total observations (eviction clock)
  std::uint64_t evictions_ = 0;
};

/// An externally pinned estimate: no adaptation, signals only counted.
/// The static and oracle rows of E21, and the operator override a
/// deployment would keep next to the adaptive path.
class ManualDelta final : public DeltaController {
 public:
  explicit ManualDelta(Duration value);

  Duration current() const override { return value_; }

  /// Re-pins the estimate (the E21 oracle row tracks the drifting regime
  /// with this).  Must be >= 1.
  void set(Duration value);

 protected:
  void handle_failure() override {}
  void handle_clean() override {}

 private:
  Duration value_;
};

}  // namespace tfr::adapt
