#include "tfr/adapt/controller.hpp"

#include <algorithm>
#include <cmath>

#include "tfr/common/contracts.hpp"

namespace tfr::adapt {

TimelinessEstimator::TimelinessEstimator(Config config)
    : config_(config), boost_(config.initial), estimate_(config.initial) {
  TFR_REQUIRE(config.floor >= 1);
  TFR_REQUIRE(config.ceiling >= config.floor);
  TFR_REQUIRE(config.initial >= config.floor &&
              config.initial <= config.ceiling);
  TFR_REQUIRE(config.window >= 1);
  TFR_REQUIRE(config.quantile > 0.0 && config.quantile <= 1.0);
  TFR_REQUIRE(config.headroom >= 1.0);
  TFR_REQUIRE(config.grow_factor > 1.0);
  TFR_REQUIRE(config.decay_step >= 1);
  TFR_REQUIRE(config.clean_threshold >= 1);
  TFR_REQUIRE(config.boost_cap >= 0.0);
}

Duration TimelinessEstimator::clamped(Duration value) const {
  return std::clamp(value, config_.floor, config_.ceiling);
}

Duration TimelinessEstimator::channel_quantile(int channel) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return 0;
  return it->second.quantile;
}

Duration TimelinessEstimator::estimate_for(int channel) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.samples.empty()) return estimate_;
  const auto margined = static_cast<Duration>(std::ceil(
      static_cast<double>(it->second.quantile) * config_.headroom));
  return clamped(margined);
}

std::vector<std::pair<int, Duration>> TimelinessEstimator::channel_quantiles()
    const {
  std::vector<std::pair<int, Duration>> edges;
  edges.reserve(channels_.size());
  for (const auto& [id, ring] : channels_) {
    if (!ring.samples.empty()) edges.emplace_back(id, ring.quantile);
  }
  return edges;
}

Duration TimelinessEstimator::quantile_of(const Channel& ring) const {
  if (ring.samples.empty()) return 0;
  std::vector<Duration> sorted = ring.samples;
  std::sort(sorted.begin(), sorted.end());
  // Index of the q-th order statistic of `count` samples: for q == 1 the
  // maximum; a single sample is every quantile of itself.
  const auto count = sorted.size();
  std::size_t index;
  if (config_.quantile >= 1.0) {
    index = count - 1;
  } else {
    index = static_cast<std::size_t>(config_.quantile *
                                     static_cast<double>(count));
    index = std::min(index, count - 1);
  }
  return sorted[index];
}

void TimelinessEstimator::recompute() {
  const auto margined = static_cast<Duration>(
      std::ceil(static_cast<double>(worst_) * config_.headroom));
  estimate_ = clamped(std::max(margined, boost_));
}

void TimelinessEstimator::evict_idle() {
  const std::uint64_t horizon =
      static_cast<std::uint64_t>(config_.evict_after_windows) * config_.window;
  bool lost_worst = false;
  for (auto it = channels_.begin(); it != channels_.end();) {
    if (observed_ - it->second.last_seen > horizon) {
      lost_worst = lost_worst || it->second.quantile == worst_;
      it = channels_.erase(it);
      ++evictions_;
    } else {
      ++it;
    }
  }
  if (lost_worst) {
    worst_ = 0;
    for (const auto& [id, other] : channels_) {
      (void)id;
      worst_ = std::max(worst_, other.quantile);
    }
    recompute();
  }
}

void TimelinessEstimator::handle_observation(int channel, Duration observed) {
  TFR_REQUIRE(observed >= 0);
  ++observed_;
  // Amortised eviction sweep: once per window of observations, so the
  // per-observation cost stays O(log channels) even with eviction on.
  if (config_.evict_after_windows > 0 && observed_ % config_.window == 0)
    evict_idle();
  Channel& ring = channels_[channel];
  ring.last_seen = observed_;
  if (ring.samples.size() < config_.window) {
    ring.samples.push_back(observed);
  } else {
    ring.samples[ring.next] = observed;
    ring.next = (ring.next + 1) % config_.window;
  }
  const Duration before = ring.quantile;
  ring.quantile = quantile_of(ring);
  if (ring.quantile >= worst_) {
    worst_ = ring.quantile;
  } else if (before == worst_) {
    // The worst channel improved; rescan for the new max (rare path).
    worst_ = 0;
    for (const auto& [id, other] : channels_) {
      (void)id;
      worst_ = std::max(worst_, other.quantile);
    }
  }
  recompute();
}

void TimelinessEstimator::handle_failure() {
  clean_run_ = 0;
  // Observations alone cannot model a delay that never completed inside a
  // window; grow a boost floor off the *current* estimate, AIMD-style.
  Duration grown = static_cast<Duration>(
      std::ceil(static_cast<double>(estimate_) * config_.grow_factor));
  grown = std::max(estimate_ + 1, grown);
  const auto margined = static_cast<Duration>(
      std::ceil(static_cast<double>(worst_) * config_.headroom));
  if (config_.boost_cap > 0.0 && margined > 0) {
    const auto cap = static_cast<Duration>(
        std::ceil(static_cast<double>(margined) * config_.boost_cap));
    grown = std::min(grown, cap);
  }
  boost_ = clamped(grown);
  recompute();
}

void TimelinessEstimator::handle_clean() {
  if (++clean_run_ < config_.clean_threshold) return;
  clean_run_ = 0;
  if (boost_ <= config_.floor) return;
  boost_ = std::max(config_.floor, boost_ - config_.decay_step);
  recompute();
}

}  // namespace tfr::adapt
