#include "tfr/adapt/controller.hpp"

#include <algorithm>
#include <cmath>

#include "tfr/common/contracts.hpp"

namespace tfr::adapt {

namespace {

void check_config(const AimdConfig& config) {
  TFR_REQUIRE(config.floor >= 1);
  TFR_REQUIRE(config.ceiling >= config.floor);
  TFR_REQUIRE(config.initial >= config.floor &&
              config.initial <= config.ceiling);
  TFR_REQUIRE(config.grow_factor > 1.0);
  TFR_REQUIRE(config.decay_step >= 1);
  TFR_REQUIRE(config.clean_threshold >= 1);
}

/// The multiplicative-increase step: ceil(estimate * grow_factor), at
/// least estimate + 1, capped at the ceiling.
Duration grown_estimate(Duration estimate, const AimdConfig& config) {
  const auto grown = static_cast<Duration>(
      std::ceil(static_cast<double>(estimate) * config.grow_factor));
  return std::min(config.ceiling, std::max(estimate + 1, grown));
}

}  // namespace

// ---------------------------------------------------------------------------
// Aimd

Aimd::Aimd(Config config) : config_(config), estimate_(config.initial) {
  check_config(config);
}

void Aimd::handle_failure() {
  clean_run_ = 0;
  const Duration next = grown_estimate(estimate_, config_);
  if (next > estimate_) {
    estimate_ = next;
    ++grows_;
  }
}

void Aimd::handle_clean() {
  if (++clean_run_ < config_.clean_threshold) return;
  clean_run_ = 0;
  const Duration next = estimate_ - config_.decay_step;
  if (next >= config_.floor && next < estimate_) {
    estimate_ = next;
    ++decays_;
  }
}

// ---------------------------------------------------------------------------
// AtomicAimd
//
// Same update rules, CAS loops instead of plain stores.  All orders are
// relaxed: the estimate is advisory, so the only requirement is that each
// cell is itself untorn — no cross-cell ordering carries meaning.

AtomicAimd::AtomicAimd(Config config)
    : config_(config), estimate_(config.initial) {
  check_config(config);
}

void AtomicAimd::handle_failure() {
  clean_run_.store(0, std::memory_order_relaxed);  // mo-ok: advisory estimate
  Duration estimate =
      estimate_.load(std::memory_order_relaxed);  // mo-ok: advisory estimate
  for (;;) {
    const Duration next = grown_estimate(estimate, config_);
    if (next <= estimate) return;  // already at the ceiling
    if (estimate_.compare_exchange_weak(
            estimate, next,
            std::memory_order_relaxed)) {  // mo-ok: advisory estimate
      grows_.fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistic
      return;
    }
  }
}

void AtomicAimd::handle_clean() {
  const int run =
      clean_run_.fetch_add(1, std::memory_order_relaxed) + 1;  // mo-ok: advisory
  if (run < config_.clean_threshold) return;
  clean_run_.store(0, std::memory_order_relaxed);  // mo-ok: advisory estimate
  Duration estimate =
      estimate_.load(std::memory_order_relaxed);  // mo-ok: advisory estimate
  for (;;) {
    const Duration next = estimate - config_.decay_step;
    if (next < config_.floor || next >= estimate) return;
    if (estimate_.compare_exchange_weak(
            estimate, next,
            std::memory_order_relaxed)) {  // mo-ok: advisory estimate
      decays_.fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistic
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// ManualDelta

ManualDelta::ManualDelta(Duration value) : value_(value) {
  TFR_REQUIRE(value >= 1);
}

void ManualDelta::set(Duration value) {
  TFR_REQUIRE(value >= 1);
  value_ = value;
}

}  // namespace tfr::adapt
