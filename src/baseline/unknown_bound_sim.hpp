// Baseline: consensus for the *unknown-bound* model, after Alur, Attiya
// and Taubenfeld, "Time-adaptive algorithms for synchronization" (SIAM J.
// Comput. 1997) — the comparator the paper's §1.5 discusses.
//
// Same round structure as Algorithm 1, but the algorithm does not know Δ:
// round r waits estimate·2^r instead of Δ.  Once the inflated estimate
// reaches the system's true bound, a round behaves failure-free and the
// protocol decides.  The lower bound proved in [3] says no algorithm in
// this model can achieve c·Δ time complexity — which is exactly what the
// paper's known-bound, timing-failure-resilient Algorithm 1 achieves.
// Experiment E5 measures the gap.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/sim/monitor.hpp"
#include "tfr/sim/register.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/task.hpp"

namespace tfr::baseline {

class SimUnknownBoundConsensus {
 public:
  /// `initial_estimate` is the starting guess for the unknown bound.
  SimUnknownBoundConsensus(sim::RegisterSpace& space,
                           sim::Duration initial_estimate);

  /// Proposes `input` (0/1); co_returns the decision.
  sim::Task<int> propose(sim::Env env, int input);

  sim::Process participant(sim::Env env, int input);

  sim::DecisionMonitor& monitor() { return monitor_; }
  std::size_t max_round() const { return max_round_; }
  int decided_value() const { return decide_.peek(); }
  /// The delay a process waits in round r.
  sim::Duration round_delay(std::size_t r) const;

 private:
  sim::Register<int>& flag(int value, std::size_t round);

  sim::Duration initial_estimate_;
  sim::RegisterArray<int> x0_;
  sim::RegisterArray<int> x1_;
  sim::RegisterArray<int> y_;
  sim::Register<int> decide_;
  sim::DecisionMonitor monitor_;
  std::size_t max_round_ = 0;
};

/// Outcome summary mirroring core::run_consensus for comparisons.
struct UnknownBoundOutcome {
  bool all_decided = false;
  int value = sim::kBot;
  sim::Time last_decision = -1;
  std::size_t max_round = 0;
  std::vector<std::uint64_t> steps;
};

UnknownBoundOutcome run_unknown_bound_consensus(
    const std::vector<int>& inputs, sim::Duration initial_estimate,
    std::unique_ptr<sim::TimingModel> timing, std::uint64_t seed = 1,
    sim::Time limit = sim::kTimeNever);

}  // namespace tfr::baseline
