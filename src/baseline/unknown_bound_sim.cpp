#include "tfr/baseline/unknown_bound_sim.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"

namespace tfr::baseline {

SimUnknownBoundConsensus::SimUnknownBoundConsensus(
    sim::RegisterSpace& space, sim::Duration initial_estimate)
    : initial_estimate_(initial_estimate),
      x0_(space, 0, "aat.x0"),
      x1_(space, 0, "aat.x1"),
      y_(space, sim::kBot, "aat.y"),
      decide_(space, sim::kBot, "aat.decide") {
  TFR_REQUIRE(initial_estimate >= 1);
}

sim::Register<int>& SimUnknownBoundConsensus::flag(int value,
                                                   std::size_t round) {
  return value == 0 ? x0_.at(round) : x1_.at(round);
}

sim::Duration SimUnknownBoundConsensus::round_delay(std::size_t r) const {
  // Exponential back-off of the estimate; saturate rather than overflow.
  constexpr sim::Duration kCap = sim::Duration{1} << 40;
  sim::Duration d = initial_estimate_;
  for (std::size_t i = 0; i < r && d < kCap; ++i) d *= 2;
  return std::min(d, kCap);
}

sim::Task<int> SimUnknownBoundConsensus::propose(sim::Env env, int input) {
  TFR_REQUIRE(input == 0 || input == 1);
  int v = input;
  std::size_t r = 0;
  for (;;) {
    const int decided = co_await env.read(decide_);
    if (decided != sim::kBot) co_return decided;
    max_round_ = std::max(max_round_, r);
    co_await env.write(flag(v, r), 1);
    const int proposal = co_await env.read(y_.at(r));
    if (proposal == sim::kBot) co_await env.write(y_.at(r), v);
    const int conflicting = co_await env.read(flag(1 - v, r));
    if (conflicting == 0) {
      co_await env.write(decide_, v);
    } else {
      // The only difference from Algorithm 1: the delay uses the current
      // estimate of the unknown bound, doubled every round.
      co_await env.delay(round_delay(r));
      v = co_await env.read(y_.at(r));
      TFR_INVARIANT(v != sim::kBot);
      r += 1;
    }
  }
}

sim::Process SimUnknownBoundConsensus::participant(sim::Env env, int input) {
  const int decided = co_await propose(env, input);
  monitor_.on_decide(env.pid(), decided, env.now());
}

UnknownBoundOutcome run_unknown_bound_consensus(
    const std::vector<int>& inputs, sim::Duration initial_estimate,
    std::unique_ptr<sim::TimingModel> timing, std::uint64_t seed,
    sim::Time limit) {
  TFR_REQUIRE(!inputs.empty());
  sim::Simulation simulation(std::move(timing), {.seed = seed});
  SimUnknownBoundConsensus consensus(simulation.space(), initial_estimate);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
    simulation.spawn([&consensus, input = inputs[i]](sim::Env env) {
      return consensus.participant(env, input);
    });
  }
  simulation.run(limit);

  UnknownBoundOutcome outcome;
  outcome.all_decided = consensus.monitor().all_decided(inputs.size());
  if (consensus.monitor().decided_count() > 0)
    outcome.value = consensus.decided_value();
  outcome.last_decision = consensus.monitor().last_decision_time();
  outcome.max_round = consensus.max_round();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    outcome.steps.push_back(
        simulation.stats(static_cast<sim::Pid>(i)).accesses());
  return outcome;
}

}  // namespace tfr::baseline
