// Leader election over message passing: the timing-dependent baseline and
// the time-resilient construction, side by side (§4 extension; the
// message-passing twins of Fischer vs Algorithm 3).
//
// TimedElection — the classic timing-based protocol: broadcast your id,
// wait out the assumed delivery bound W, elect the smallest id heard
// (including your own).  Fast and correct while every message arrives
// within W; a single late HELLO splits the leadership — the exact
// message-passing analogue of Fischer's gate failure.  Violations are the
// point: E16 measures them.
//
// MsgElection — resilient: agree on the leader id with the bitwise
// multi-valued construction over MsgConsensus instances (one per id bit,
// witnesses in ABD registers).  Safety never depends on delivery times;
// late messages only delay the outcome.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/msg/consensus_msg.hpp"

namespace tfr::msg {

/// Message type used by TimedElection's announcements.
inline constexpr std::int32_t kHello = 100;

class TimedElection {
 public:
  /// `wait` is the assumed bound W on announcement delivery.
  TimedElection(Network& net, int n, sim::Duration wait);

  /// Announce, wait W, elect min id heard.  Reports to the monitor (which
  /// records an agreement violation when leaders split).
  sim::Process participant(sim::Env env, int node);

  sim::DecisionMonitor& monitor() { return monitor_; }

 private:
  Network* net_;
  int n_;
  sim::Duration wait_;
  sim::DecisionMonitor monitor_;
};

/// Resilient election: bitwise agreement on the leader id over
/// MsgConsensus instances sharing one ABD register space.
class MsgElection {
 public:
  static constexpr int kIdBits = 10;  ///< up to 1024 node ids

  /// `policy` is handed to the AbdClients of participant() and to the
  /// per-bit MsgConsensus instances (legacy blocking by default).
  MsgElection(Network& net, int n, sim::Duration delta,
              RetryPolicy policy = {});

  /// Full participant: elect and report to the monitor.  The node's
  /// abd_server must be running.
  sim::Process participant(sim::Env env, int node);

  /// Composable core.
  sim::Task<int> elect(sim::Env env, AbdClient& client, int id);

  sim::DecisionMonitor& monitor() { return monitor_; }

 private:
  // Register-id layout inside the shared ABD space:
  //   [0, 2*kIdBits)                      witness registers (bit, value)
  //   bit k's MsgConsensus: base 2*kIdBits + k*kRegsPerBit
  static constexpr int kRegsPerBit = 1 << 14;  // ~5400 rounds per bit
  int witness_reg(int bit, int b) const { return 2 * bit + b; }
  int bit_base(int bit) const { return 2 * kIdBits + bit * kRegsPerBit; }

  Network* net_;
  int n_;
  sim::Duration delta_;
  RetryPolicy policy_;
  std::vector<std::unique_ptr<MsgConsensus>> bits_;
  sim::DecisionMonitor monitor_;
};

}  // namespace tfr::msg
