// Convergence + safety monitor for message-passing executions.
//
// Under a NetAdversary the interesting questions are (a) did the protocol
// stay safe while messages were dropped, duplicated and reordered, and
// (b) once the adversary went quiet, how quickly did the system converge
// back to completing operations?  The ConvergenceMonitor answers both:
//
//  * Safety — ALWAYS checked, faults or not: every recorded ABD operation
//    history must be linearizable against the atomic-register spec
//    (Wing–Gong, spec::RegisterModel), one history per logical register.
//
//  * Convergence — every operation that completes after the adversary's
//    last fault must do so within `bound` ticks of max(its invocation, the
//    last fault instant), and no operation may be left unfinished.  With
//    no adversary attached the reference instant is 0, which makes the
//    bound a plain per-operation latency ceiling.
//
// Clients record through on_invoke()/on_response(); AbdClient does this
// automatically when a monitor is attached.  check() runs both verdicts,
// bumps safety_violations() and emits obs kViolation events (labels
// "linearizability" / "convergence" / "unfinished-op") when a simulation
// is attached, so violations land in the same trace as the faults that
// caused them.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "tfr/sim/simulation.hpp"
#include "tfr/sim/types.hpp"
#include "tfr/spec/history.hpp"

namespace tfr::msg {

class NetAdversary;

class ConvergenceMonitor {
 public:
  ConvergenceMonitor() = default;

  ConvergenceMonitor(const ConvergenceMonitor&) = delete;
  ConvergenceMonitor& operator=(const ConvergenceMonitor&) = delete;

  /// The adversary whose last_fault_time() anchors the convergence check
  /// (null: anchor at 0, i.e. plain latency ceiling).
  void set_adversary(const NetAdversary* adversary) { adversary_ = adversary; }

  /// Max ticks an operation may take beyond max(invocation, last fault).
  void set_bound(sim::Duration bound) { bound_ = bound; }
  sim::Duration bound() const { return bound_; }

  /// Simulation used for kViolation emission during check() (optional).
  void set_simulation(sim::Simulation* simulation) { simulation_ = simulation; }

  /// Records the invocation of a read (is_write=false) or write on logical
  /// register `reg` by `node`; returns a token for on_response().
  std::size_t on_invoke(int node, int reg, bool is_write, std::int64_t value,
                        sim::Time now);

  /// Completes the operation `token`; `value` is the read result (ignored
  /// for writes, pass 0).
  void on_response(std::size_t token, std::int64_t value, sim::Time now);

  struct Report {
    bool linearizable = true;
    bool converged = true;
    std::uint64_t operations = 0;    ///< completed operations checked
    std::uint64_t unfinished = 0;    ///< invoked but never completed
    sim::Duration worst_lag = 0;     ///< max completion lag vs anchor
    sim::Time anchor = 0;            ///< adversary last-fault instant used
    bool ok() const { return linearizable && converged && unfinished == 0; }
  };

  /// Runs both verdicts over everything recorded so far.  Violations
  /// accumulate in safety_violations() and emit kViolation events when a
  /// simulation is attached.  Idempotent over the same data (violation
  /// counts reflect the latest check only).
  Report check();

  std::uint64_t safety_violations() const { return safety_violations_; }
  std::uint64_t operations_recorded() const { return tokens_.size(); }

 private:
  void violation(const char* what);

  const NetAdversary* adversary_ = nullptr;
  sim::Simulation* simulation_ = nullptr;
  sim::Duration bound_ = 0;  ///< 0 = convergence check disabled

  std::map<int, spec::History> histories_;  ///< per logical register
  struct TokenEntry {
    int reg = 0;
    std::size_t inner = 0;  ///< token inside histories_[reg]
    bool done = false;
  };
  std::vector<TokenEntry> tokens_;
  std::uint64_t safety_violations_ = 0;
};

}  // namespace tfr::msg
