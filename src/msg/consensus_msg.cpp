#include "tfr/msg/consensus_msg.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"

namespace tfr::msg {

MsgConsensus::MsgConsensus(Network& net, int n, sim::Duration delta,
                           int reg_base, RetryPolicy policy)
    : net_(&net), n_(n), delta_(delta), reg_base_(reg_base),
      policy_(policy) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(delta >= 1);
  TFR_REQUIRE(reg_base >= 0);
  TFR_REQUIRE(net.endpoints() >= 2 * n);
}

sim::Task<int> MsgConsensus::propose(sim::Env env, AbdClient& client,
                                     int input) {
  TFR_REQUIRE(input == 0 || input == 1);
  int v = input;
  std::size_t r = 0;
  for (;;) {
    // Line 1: while decide = ⊥.
    const std::int64_t decided = co_await client.read(env, reg_decide());
    if (decided != 0) co_return static_cast<int>(decided - 1);
    max_round_ = std::max(max_round_, r);
    // Line 2: flag our preference for round r.
    co_await client.write(env, reg_flag(r, v), 1);
    // Line 3: publish the round proposal if absent.
    const std::int64_t proposal = co_await client.read(env, reg_y(r));
    if (proposal == 0) co_await client.write(env, reg_y(r), v + 1);
    // Line 4: decide if the conflicting flag is down.
    const std::int64_t conflicting =
        co_await client.read(env, reg_flag(r, 1 - v));
    if (conflicting == 0) {
      co_await client.write(env, reg_decide(), v + 1);
    } else {
      // Lines 5-7: wait out the bound, adopt the proposal, next round.
      co_await env.delay(delta_);
      const std::int64_t adopted = co_await client.read(env, reg_y(r));
      TFR_INVARIANT(adopted != 0);
      v = static_cast<int>(adopted - 1);
      r += 1;
    }
  }
}

sim::Process MsgConsensus::participant(sim::Env env, int node, int input) {
  AbdClient client(*net_, node, n_, policy_);
  const int decided = co_await propose(env, client, input);
  monitor_.on_decide(node, decided, env.now());
}

}  // namespace tfr::msg
