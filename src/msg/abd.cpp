#include "tfr/msg/abd.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"

namespace tfr::msg {

sim::Process abd_server(sim::Env env, Network& net, int node, int n) {
  TFR_REQUIRE(node >= 0 && node < n);
  const int self = n + node;
  std::map<int, std::pair<std::int64_t, std::int64_t>> store;  // reg -> (tag, value)
  for (;;) {
    const Message m = co_await net.recv(env, self);
    auto& cell = store[m.reg];  // default (0, 0)
    switch (m.type) {
      case kTagReq: {
        Message ack;
        ack.type = kTagAck;
        ack.reg = m.reg;
        ack.rid = m.rid;
        ack.tag = cell.first;
        ack.value = cell.second;
        co_await net.send(env, self, m.from, ack);
        break;
      }
      case kReadReq: {
        Message ack;
        ack.type = kReadAck;
        ack.reg = m.reg;
        ack.rid = m.rid;
        ack.tag = cell.first;
        ack.value = cell.second;
        co_await net.send(env, self, m.from, ack);
        break;
      }
      case kWriteReq: {
        if (m.tag > cell.first) cell = {m.tag, m.value};
        Message ack;
        ack.type = kWriteAck;
        ack.reg = m.reg;
        ack.rid = m.rid;
        co_await net.send(env, self, m.from, ack);
        break;
      }
      default:
        TFR_UNREACHABLE("unknown ABD message type");
    }
  }
}

AbdClient::AbdClient(Network& net, int node, int n)
    : net_(&net), node_(node), n_(n) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(node >= 0 && node < n);
  TFR_REQUIRE(net.endpoints() >= 2 * n);
}

sim::Task<AbdClient::Quorum> AbdClient::majority(sim::Env env,
                                                 Message request,
                                                 std::int32_t ack_type) {
  const std::int64_t rid = next_rid_++;
  request.rid = rid;
  co_await net_->multicast(env, node_, n_, 2 * n_, request);
  Quorum quorum;
  int acks = 0;
  const int needed = n_ / 2 + 1;
  while (acks < needed) {
    const Message m = co_await net_->recv(env, node_);
    if (m.rid != rid || m.type != ack_type) continue;  // stale/other ack
    ++acks;
    if (m.tag > quorum.max_tag) {
      quorum.max_tag = m.tag;
      quorum.value_of_max = m.value;
    }
  }
  co_return quorum;
}

sim::Task<void> AbdClient::write(sim::Env env, int reg, std::int64_t value) {
  // Phase 1: learn the highest tag at a majority.
  Message query;
  query.type = kTagReq;
  query.reg = reg;
  const Quorum seen = co_await majority(env, query, kTagAck);
  // Phase 2: store with a strictly higher, writer-unique tag.
  Message store;
  store.type = kWriteReq;
  store.reg = reg;
  store.tag = make_tag(tag_counter(seen.max_tag) + 1, node_);
  store.value = value;
  co_await majority(env, store, kWriteAck);
  ++operations_;
}

sim::Task<std::int64_t> AbdClient::read(sim::Env env, int reg) {
  // Phase 1: collect a majority of (tag, value); adopt the maximum.
  Message query;
  query.type = kReadReq;
  query.reg = reg;
  const Quorum seen = co_await majority(env, query, kReadAck);
  // Phase 2 (write-back): install the adopted pair at a majority so every
  // later read sees at least this tag — atomicity, not just regularity.
  Message store;
  store.type = kWriteReq;
  store.reg = reg;
  store.tag = seen.max_tag;
  store.value = seen.value_of_max;
  co_await majority(env, store, kWriteAck);
  ++operations_;
  co_return seen.value_of_max;
}

}  // namespace tfr::msg
