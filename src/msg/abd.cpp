#include "tfr/msg/abd.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "tfr/common/contracts.hpp"
#include "tfr/common/rng.hpp"
#include "tfr/msg/convergence.hpp"

namespace tfr::msg {

const char* register_variant_name(RegisterVariant variant) {
  switch (variant) {
    case RegisterVariant::kStock: return "stock";
    case RegisterVariant::kPerPeer: return "per_peer";
    case RegisterVariant::kPerPeerFastRead: return "per_peer_fast";
  }
  TFR_UNREACHABLE("unknown register variant");
}

sim::Duration per_peer_window(const adapt::DeltaController& controller, int n,
                              double per_delta, sim::Duration max_timeout,
                              std::vector<sim::Duration>& scratch) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(per_delta > 0);
  scratch.clear();
  for (int s = 0; s < n; ++s) {
    auto w = static_cast<sim::Duration>(std::ceil(
        static_cast<double>(controller.estimate_for(s)) * per_delta));
    w = std::max<sim::Duration>(1, w);
    if (max_timeout > 0 && w > max_timeout) w = max_timeout;
    scratch.push_back(w);
  }
  // The majority-th smallest (0-based index n/2): long enough for the
  // fastest majority to answer, indifferent to every straggler above it.
  const auto k = static_cast<std::size_t>(n / 2);
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(k),
                   scratch.end());
  return scratch[k];
}

sim::Duration grow_saturating(sim::Duration value, double growth,
                              sim::Duration cap) {
  TFR_REQUIRE(value >= 0);
  // The saturation point when no cap is configured: far below the
  // Duration overflow the double -> int64 cast would hit (that cast is
  // UB out of range), yet far above any meaningful wait.
  constexpr auto kSaturated = static_cast<sim::Duration>(1) << 62;
  const sim::Duration limit = cap > 0 ? cap : kSaturated;
  const double grown = static_cast<double>(value) * growth;
  // The negated comparison also routes a NaN (growth abuse) to the limit.
  if (!(grown < static_cast<double>(limit))) return limit;
  return static_cast<sim::Duration>(grown);
}

sim::Process abd_server(sim::Env env, Network& net, int node, int n) {
  TFR_REQUIRE(node >= 0 && node < n);
  const int self = n + node;
  std::map<int, std::pair<std::int64_t, std::int64_t>> store;  // reg -> (tag, value)
  for (;;) {
    const Message m = co_await net.recv(env, self);
    auto& cell = store[m.reg];  // default (0, 0)
    switch (m.type) {
      case kTagReq: {
        Message ack;
        ack.type = kTagAck;
        ack.reg = m.reg;
        ack.rid = m.rid;
        ack.tag = cell.first;
        ack.value = cell.second;
        co_await net.send(env, self, m.from, ack);
        break;
      }
      case kReadReq: {
        Message ack;
        ack.type = kReadAck;
        ack.reg = m.reg;
        ack.rid = m.rid;
        ack.tag = cell.first;
        ack.value = cell.second;
        co_await net.send(env, self, m.from, ack);
        break;
      }
      case kWriteReq: {
        if (m.tag > cell.first) cell = {m.tag, m.value};
        Message ack;
        ack.type = kWriteAck;
        ack.reg = m.reg;
        ack.rid = m.rid;
        co_await net.send(env, self, m.from, ack);
        break;
      }
      default:
        TFR_UNREACHABLE("unknown ABD message type");
    }
  }
}

AbdClient::AbdClient(Network& net, int node, int n, RetryPolicy policy)
    : net_(&net), node_(node), n_(n), policy_(policy) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(node >= 0 && node < n);
  TFR_REQUIRE(net.endpoints() >= 2 * n);
  TFR_REQUIRE(policy_.timeout >= 0 && policy_.poll_every >= 1);
}

sim::Duration AbdClient::jitter_for(std::int64_t rid, int attempt) const {
  if (policy_.jitter <= 0) return 0;
  std::uint64_t s = static_cast<std::uint64_t>(node_) ^
                    static_cast<std::uint64_t>(rid) * 0x9e3779b97f4a7c15ULL ^
                    static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ULL;
  return static_cast<sim::Duration>(
      splitmix64(s) % static_cast<std::uint64_t>(policy_.jitter + 1));
}

const char* AbdClient::phase_name(std::int32_t ack_type) const {
  switch (ack_type) {
    case kTagAck: return "abd.tag";
    case kReadAck: return "abd.read";
    case kWriteAck: return "abd.store";
    default: return "abd";
  }
}

void AbdClient::note_late_ack(const Message& m, sim::Time now) {
  if (!per_peer_windows()) return;
  const int server = m.from - n_;
  if (server < 0 || server >= n_ || server >= 31) return;
  const std::uint32_t bit = 1u << static_cast<unsigned>(server);
  for (auto& phase : recent_) {
    if (phase.rid != m.rid || phase.ack_type != m.type) continue;
    if ((phase.observed & bit) != 0) return;  // already counted or observed
    phase.observed |= bit;
    // The ack answers that phase's first multicast (or a retry of it, in
    // which case this overestimates — conservative for a straggler), so
    // now - started is the server's effective round-trip time.  This is
    // how a straggler's channel learns its true slowness even though it
    // never makes a quorum.
    controller_->observe(server, now - phase.started);
    ++late_observations_;
    return;
  }
}

void AbdClient::emit_estimates(sim::Env& env) {
  if (controller_ == nullptr) return;
  if (est_labels_.empty()) {
    est_labels_.reserve(static_cast<std::size_t>(n_));
    for (int s = 0; s < n_; ++s) {
      est_labels_.push_back(
          env.sim().trace_label("abd.est." + std::to_string(s)));
    }
  }
  for (int s = 0; s < n_; ++s) {
    env.sim().emit({env.now(), env.pid(), obs::EventKind::kCounter,
                    controller_->estimate_for(s), 0,
                    est_labels_[static_cast<std::size_t>(s)]});
  }
}

sim::Task<AbdClient::Quorum> AbdClient::majority(sim::Env env,
                                                 Message request,
                                                 std::int32_t ack_type) {
  const std::int64_t rid = next_rid_++;
  request.rid = rid;
  Quorum quorum;
  int acks = 0;
  int attempt = 1;
  const int needed = n_ / 2 + 1;
  const bool per_peer = per_peer_windows();
  const sim::Time phase_start = env.now();
  // acked[i]: server i already contributed to this quorum — a duplicated
  // or re-sent ack must not be counted twice.  Reused client-owned
  // scratch: the quorum loop allocates nothing per phase.
  acked_scratch_.assign(static_cast<std::size_t>(n_), 0);
  std::vector<char>& acked = acked_scratch_;

  auto absorb = [&](const Message& m) {
    if (m.rid != rid || m.type != ack_type) {
      ++stale_acks_;  // old rid, other phase, or foreign traffic
      note_late_ack(m, env.now());
      return;
    }
    const int server = m.from - n_;
    if (server < 0 || server >= n_) return;
    if (acked[static_cast<std::size_t>(server)]) {
      ++duplicate_acks_;
      return;
    }
    acked[static_cast<std::size_t>(server)] = 1;
    if (acks > 0 && m.tag != quorum.max_tag) quorum.tags_uniform = false;
    ++acks;
    if (m.tag > quorum.max_tag) {
      quorum.max_tag = m.tag;
      quorum.value_of_max = m.value;
    }
    // Per-peer modes learn each server's own first-window round trip;
    // the global discipline keeps its one multicast-to-quorum sample at
    // quorum time below.
    if (per_peer && attempt == 1)
      controller_->observe(server, env.now() - phase_start);
  };

  // Remembers this phase in the late-ack ring so a straggler answering
  // after the quorum closed still teaches its channel (note_late_ack).
  auto remember = [&] {
    if (!per_peer || n_ > 31) return;
    std::uint32_t observed = 0;
    for (int s = 0; s < n_; ++s) {
      if (acked[static_cast<std::size_t>(s)] != 0)
        observed |= 1u << static_cast<unsigned>(s);
    }
    recent_[recent_next_] = {rid, ack_type, phase_start, observed};
    recent_next_ = (recent_next_ + 1) % kRecentPhases;
  };

  // Adaptive window: derive the first ack-collection window from the
  // attached controller's current Δ estimate — globally (stock) or from
  // the per-server channel estimates (per-peer variants); otherwise the
  // static policy value.  Either way the per-retry growth/caps below
  // still apply.
  sim::Duration window = policy_.timeout;
  if (controller_ != nullptr && policy_.timeout_per_delta > 0) {
    if (per_peer) {
      window = per_peer_window(*controller_, n_, policy_.timeout_per_delta,
                               policy_.max_timeout, window_scratch_);
    } else {
      window = std::max<sim::Duration>(
          1, static_cast<sim::Duration>(
                 std::ceil(static_cast<double>(controller_->current()) *
                           policy_.timeout_per_delta)));
      // max_timeout stays the hard cap no matter what the estimate says.
      if (policy_.max_timeout > 0 && window > policy_.max_timeout)
        window = policy_.max_timeout;
    }
  }

  const bool tracing = env.sim().trace_sink() != nullptr;
  if (per_peer && tracing) emit_estimates(env);
  co_await net_->multicast(env, node_, n_, 2 * n_, request);

  if (window == 0) {
    // Legacy discipline: the network is reliable, block until a majority
    // answers.  Byte-identical to the pre-hardening client.
    while (acks < needed) absorb(co_await net_->recv(env, node_));
    if (controller_ != nullptr) {
      controller_->observe(node_, env.now() - phase_start);
      controller_->on_clean();
    }
    co_return quorum;
  }

  sim::Duration pause = policy_.backoff;
  const std::uint32_t label =
      tracing ? env.sim().trace_label(phase_name(ack_type)) : 0;
  for (;;) {
    const sim::Time deadline = env.now() + window;
    while (acks < needed) {
      auto m = co_await net_->recv_until(env, node_, deadline,
                                         policy_.poll_every);
      if (!m.has_value()) break;  // window expired
      absorb(*m);
    }
    if (acks >= needed) {
      if (controller_ != nullptr && attempt == 1) {
        // Multicast-to-quorum RTT on this client's channel; a quorum
        // inside the first window is a clean (timely) phase.  Retried
        // phases are NOT observed: their "RTT" includes the expired
        // windows and backoff pauses themselves, so feeding them back
        // would let the window estimate ratchet itself upward.  (Per-peer
        // modes observed each server in absorb instead.)
        if (!per_peer) controller_->observe(node_, env.now() - phase_start);
        controller_->on_clean();
      }
      remember();
      co_return quorum;
    }

    ++timeouts_;
    if (controller_ != nullptr) controller_->on_failure();
    if (tracing)
      env.sim().emit({env.now(), env.pid(), obs::EventKind::kTimeout, window,
                      rid, label});
    const sim::Duration wait = pause + jitter_for(rid, attempt);
    if (wait > 0) {
      if (tracing)
        env.sim().emit({env.now(), env.pid(), obs::EventKind::kBackoff, wait,
                        rid, label});
      co_await env.delay(wait);
    }
    ++retries_;
    ++attempt;
    if (tracing)
      env.sim().emit({env.now(), env.pid(), obs::EventKind::kRetry, attempt,
                      rid, label});
    // Servers are idempotent and acks are de-duplicated, so re-asking
    // everyone (including servers that already answered) is always safe.
    co_await net_->multicast(env, node_, n_, 2 * n_, request);

    window = grow_saturating(window, policy_.timeout_growth,
                             policy_.max_timeout);
    pause = grow_saturating(pause, policy_.backoff_growth,
                            policy_.max_backoff);
  }
}

sim::Task<void> AbdClient::write(sim::Env env, int reg, std::int64_t value) {
  std::size_t token = 0;
  if (monitor_ != nullptr)
    token = monitor_->on_invoke(node_, reg, /*is_write=*/true, value,
                                env.now());
  // Phase 1: learn the highest tag at a majority.
  Message query;
  query.type = kTagReq;
  query.reg = reg;
  const Quorum seen = co_await majority(env, query, kTagAck);
  // Phase 2: store with a strictly higher, writer-unique tag.
  Message store;
  store.type = kWriteReq;
  store.reg = reg;
  store.tag = make_tag(tag_counter(seen.max_tag) + 1, node_);
  store.value = value;
  co_await majority(env, store, kWriteAck);
  ++operations_;
  if (monitor_ != nullptr) monitor_->on_response(token, value, env.now());
}

sim::Task<std::int64_t> AbdClient::read(sim::Env env, int reg) {
  std::size_t token = 0;
  if (monitor_ != nullptr)
    token = monitor_->on_invoke(node_, reg, /*is_write=*/false, 0, env.now());
  // Phase 1: collect a majority of (tag, value); adopt the maximum.
  Message query;
  query.type = kReadReq;
  query.reg = reg;
  const Quorum seen = co_await majority(env, query, kReadAck);
  // Fast read (Mostéfaoui–Raynal): every ack of the quorum carried the
  // same tag, so that tag is already stored at a majority (server tags
  // are monotone) and any later quorum intersects it — the write-back
  // round adds nothing and is skipped.  One disagreeing ack (a
  // concurrent write landed at part of the quorum) and the two-round
  // discipline below stays the linearizability-preserving default.
  const bool fast =
      variant_ == RegisterVariant::kPerPeerFastRead && seen.tags_uniform;
  if (variant_ == RegisterVariant::kPerPeerFastRead) {
    if (fast) {
      ++fast_reads_;
    } else {
      ++fast_read_misses_;
    }
    if (env.sim().trace_sink() != nullptr) {
      if (fast_label_ == 0)
        fast_label_ = env.sim().trace_label("abd.fast_reads");
      env.sim().emit({env.now(), env.pid(), obs::EventKind::kCounter,
                      static_cast<std::int64_t>(fast_reads_),
                      static_cast<std::int64_t>(fast_read_misses_),
                      fast_label_});
    }
  }
  if (!fast) {
    // Phase 2 (write-back): install the adopted pair at a majority so
    // every later read sees at least this tag — atomicity, not just
    // regularity.
    Message store;
    store.type = kWriteReq;
    store.reg = reg;
    store.tag = seen.max_tag;
    store.value = seen.value_of_max;
    co_await majority(env, store, kWriteAck);
  }
  ++operations_;
  if (monitor_ != nullptr)
    monitor_->on_response(token, seen.value_of_max, env.now());
  co_return seen.value_of_max;
}

}  // namespace tfr::msg
