// Deterministic network fault adversary for the message layer.
//
// The Network's channels assume perfectly reliable delivery; a NetAdversary
// attached via Network::set_adversary turns them into lossy, duplicating,
// reordering links with scheduled partitions and node down/recovery
// windows — the message-passing analogue of the FailureInjector's timing
// failures (§4: late, lost and repeated messages are the faults that
// message-passing resilience must ride out).
//
// Determinism mirrors rt::FaultInjector: each ordered channel (from, to)
// owns a private SplitMix64 stream seeded from (adversary seed, from, to),
// and the verdict for the k-th message on that channel is a pure function
// of (seed, from, to, k).  Because each channel is SPSC, k is fixed by the
// sender's program, so two runs with the same seed and the same fault
// configuration inject byte-identical faults no matter how deliveries
// interleave — which is what makes adversarial runs replayable through
// obs::record / obs::replay.
//
// Fault vocabulary, decided once per message at send time:
//   * drop       — the message is never delivered;
//   * duplicate  — an extra copy is delivered after the first;
//   * delay      — delivery is postponed by a uniform extra duration
//                  (late messages; later traffic may overtake — reorder);
//   * reorder    — a pure hold: delivery waits `reorder_hold` ticks so a
//                  successor can overtake without the cost of a long delay;
//   * partition  — messages crossing a scheduled cut are dropped until the
//                  heal time;
//   * down node  — messages from/to an endpoint are dropped inside a
//                  window (a crashed-then-recovered node: its state
//                  survives, traffic during the outage is lost).
//
// Every injected fault emits an obs event (kNetDrop / kNetDuplicate /
// kNetDelay; partition boundaries emit kNetPartition via arm()) so
// degradation is visible in the same Chrome-JSON timeline as timing
// failures and rt stalls.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tfr/common/rng.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::msg {

/// Per-channel fault distribution.  Probabilities are independent per
/// message; a message can be both duplicated and delayed.  Drop wins over
/// everything else.
struct ChannelFaults {
  double drop = 0.0;       ///< P(message is never delivered)
  double duplicate = 0.0;  ///< P(one extra copy is delivered)
  double delay = 0.0;      ///< P(extra delay uniform in [delay_min, delay_max])
  sim::Duration delay_min = 0;
  sim::Duration delay_max = 0;
  double reorder = 0.0;    ///< P(held `reorder_hold` ticks; successors overtake)
  sim::Duration reorder_hold = 0;

  bool active() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || reorder > 0.0;
  }
};

/// A scheduled partition: endpoints in `group` cannot exchange messages
/// with the complement while begin <= now < heal.  Messages sent across
/// the cut during the window are dropped (the realistic semantics: links
/// are dead, senders must retry after the heal).
struct Partition {
  sim::Time begin = 0;
  sim::Time heal = 0;  ///< exclusive
  std::vector<int> group;

  bool cuts(int from, int to, sim::Time now) const;
};

/// A node outage: every message sent by or addressed to `endpoint` inside
/// [begin, end) is dropped.  The node's process keeps running (its state
/// survives, as with stable storage), so `end` is its recovery instant.
struct DownWindow {
  int endpoint = -1;
  sim::Time begin = 0;
  sim::Time end = 0;  ///< exclusive: the recovery instant
};

/// The verdict for one message, decided at send time.
struct Delivery {
  bool dropped = false;
  int copies = 1;               ///< 2 when duplicated
  sim::Duration extra_delay = 0;  ///< added to the send instant
};

class NetAdversary {
 public:
  explicit NetAdversary(std::uint64_t seed = 42) : seed_(seed) {}

  NetAdversary(const NetAdversary&) = delete;
  NetAdversary& operator=(const NetAdversary&) = delete;

  /// Faults applied to every channel without a per-channel override.
  void set_default_faults(ChannelFaults faults) { default_faults_ = faults; }

  /// Per-ordered-channel override (wins over the default).
  void set_channel_faults(int from, int to, ChannelFaults faults) {
    overrides_[key(from, to)] = faults;
  }

  void add_partition(Partition partition);
  void add_down_window(DownWindow window);

  /// Registers kNetPartition begin/heal markers (and the down windows'
  /// boundaries) as scheduled callbacks on `simulation`, so the cut shows
  /// up in the trace even when no message happens to cross it.  Call after
  /// the partitions/down windows are configured, before run().
  void arm(sim::Simulation& simulation);

  /// The verdict for message `seq` (0-based per-channel send counter) on
  /// channel (from, to) sent at `now`.  Called by Network::send; emits
  /// fault events through `env`'s simulation when tracing is on.
  Delivery on_send(sim::Env env, int from, int to, std::uint64_t seq);

  /// Completion instant of the latest fault injected or scheduled so far:
  /// drop/duplicate instants, delayed deliveries' arrival instants,
  /// partition heals and down-window ends.  -1 when nothing was injected
  /// and nothing is scheduled — the reference point for "converges after
  /// the last fault" measurements.
  sim::Time last_fault_time() const;

  std::uint64_t messages() const { return messages_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t delays() const { return delays_; }
  std::uint64_t reorders() const { return reorders_; }
  std::uint64_t partition_drops() const { return partition_drops_; }

 private:
  static std::uint64_t key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  const ChannelFaults& faults_for(int from, int to) const;
  bool endpoint_down(int endpoint, sim::Time now) const;
  void emit(sim::Env env, obs::EventKind kind, std::int64_t a, std::int64_t b,
            int from, int to);

  std::uint64_t seed_;
  ChannelFaults default_faults_;
  std::map<std::uint64_t, ChannelFaults> overrides_;
  std::vector<Partition> partitions_;
  std::vector<DownWindow> down_windows_;

  std::uint64_t messages_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t partition_drops_ = 0;
  sim::Time last_injected_ = -1;
};

}  // namespace tfr::msg
