#include "tfr/msg/network.hpp"

#include <string>

#include "tfr/common/contracts.hpp"

namespace tfr::msg {

Network::Network(sim::RegisterSpace& space, int endpoints)
    : endpoints_(endpoints) {
  TFR_REQUIRE(endpoints >= 1);
  channels_.reserve(static_cast<std::size_t>(endpoints) *
                    static_cast<std::size_t>(endpoints));
  for (int from = 0; from < endpoints; ++from) {
    for (int to = 0; to < endpoints; ++to) {
      channels_.push_back(std::make_unique<Channel>(
          space,
          "ch." + std::to_string(from) + ">" + std::to_string(to)));
    }
  }
  consumed_.assign(static_cast<std::size_t>(endpoints),
                   std::vector<int>(static_cast<std::size_t>(endpoints), 0));
  inbound_.assign(static_cast<std::size_t>(endpoints),
                  std::vector<Inbound>(static_cast<std::size_t>(endpoints)));
  poll_start_.assign(static_cast<std::size_t>(endpoints), 0);
}

sim::Task<void> Network::send(sim::Env env, int self, int to, Message m) {
  TFR_REQUIRE(self >= 0 && self < endpoints_);
  TFR_REQUIRE(to >= 0 && to < endpoints_);
  m.from = self;
  Channel& ch = channel(self, to);
  // Only `self` writes this channel, so the next free slot is sender-local
  // knowledge.  Slot is written BEFORE the tail so the receiver never
  // observes an unwritten slot.
  const int slot = ch.sender_next++;
  if (adversary_ != nullptr) {
    // The verdict is decided at send time; the sender still pays the full
    // send cost (the network, not the sender, loses the message), and the
    // tail still advances so per-channel sequence numbers stay dense.
    const Delivery verdict = adversary_->on_send(
        env, self, to, static_cast<std::uint64_t>(slot));
    ch.meta.resize(static_cast<std::size_t>(slot) + 1);
    ch.meta[static_cast<std::size_t>(slot)] =
        SlotMeta{env.now() + verdict.extra_delay,
                 verdict.dropped ? 0 : verdict.copies};
  }
  co_await env.write(ch.slots.at(static_cast<std::size_t>(slot)), m);
  co_await env.write(ch.tail, slot + 1);
  ++sent_;
}

sim::Task<void> Network::multicast(sim::Env env, int self, int first,
                                   int last, Message m) {
  for (int to = first; to < last; ++to) co_await send(env, self, to, m);
}

sim::Task<std::optional<Message>> Network::try_recv(sim::Env env, int self) {
  TFR_REQUIRE(self >= 0 && self < endpoints_);
  auto& cursors = consumed_[static_cast<std::size_t>(self)];
  auto& states = inbound_[static_cast<std::size_t>(self)];
  const int start = poll_start_[static_cast<std::size_t>(self)];
  for (int i = 0; i < endpoints_; ++i) {
    const int from = (start + i) % endpoints_;
    Channel& ch = channel(from, self);
    Inbound& in = states[static_cast<std::size_t>(from)];
    int& cursor = cursors[static_cast<std::size_t>(from)];
    // Reliable fast path: nothing pending from the unreliable machinery
    // and no adversary attached — identical to the original SPSC consume.
    if (adversary_ == nullptr && in.ready.empty() && in.scanned == cursor) {
      const int tail = co_await env.read(ch.tail);
      if (tail > cursor) {
        const Message m =
            co_await env.read(ch.slots.at(static_cast<std::size_t>(cursor)));
        ++cursor;
        in.scanned = cursor;
        poll_start_[static_cast<std::size_t>(self)] = (from + 1) % endpoints_;
        co_return m;
      }
      continue;
    }
    // Unreliable path: classify newly published slots, then deliver the
    // pending copy with the earliest delivery instant that has arrived.
    const int tail = co_await env.read(ch.tail);
    while (in.scanned < tail) {
      const int slot = in.scanned++;
      SlotMeta meta{};  // senders without a verdict deliver immediately
      if (static_cast<std::size_t>(slot) < ch.meta.size())
        meta = ch.meta[static_cast<std::size_t>(slot)];
      if (meta.copies > 0)
        in.ready.push_back({slot, meta.deliver_at, meta.copies});
    }
    const sim::Time now = env.now();
    std::size_t best = in.ready.size();
    for (std::size_t r = 0; r < in.ready.size(); ++r) {
      const Inbound::Held& h = in.ready[r];
      if (h.deliver_at > now) continue;
      if (best == in.ready.size() ||
          h.deliver_at < in.ready[best].deliver_at ||
          (h.deliver_at == in.ready[best].deliver_at &&
           h.slot < in.ready[best].slot)) {
        best = r;
      }
    }
    if (best != in.ready.size()) {
      const int slot = in.ready[best].slot;
      const Message m =
          co_await env.read(ch.slots.at(static_cast<std::size_t>(slot)));
      if (--in.ready[best].copies == 0)
        in.ready.erase(in.ready.begin() + static_cast<std::ptrdiff_t>(best));
      cursor = in.scanned;  // keep the fast-path cursor consistent
      poll_start_[static_cast<std::size_t>(self)] = (from + 1) % endpoints_;
      co_return m;
    }
  }
  co_return std::nullopt;
}

sim::Task<Message> Network::recv(sim::Env env, int self) {
  for (;;) {
    auto m = co_await try_recv(env, self);
    if (m.has_value()) co_return *m;
  }
}

sim::Task<std::optional<Message>> Network::recv_until(sim::Env env, int self,
                                                      sim::Time deadline,
                                                      sim::Duration poll_every) {
  TFR_REQUIRE(poll_every >= 1);
  for (;;) {
    auto m = co_await try_recv(env, self);
    if (m.has_value()) co_return m;
    if (env.now() >= deadline) co_return std::nullopt;
    co_await env.delay(poll_every);
  }
}

}  // namespace tfr::msg
