#include "tfr/msg/network.hpp"

#include <string>

#include "tfr/common/contracts.hpp"

namespace tfr::msg {

Network::Network(sim::RegisterSpace& space, int endpoints)
    : endpoints_(endpoints) {
  TFR_REQUIRE(endpoints >= 1);
  channels_.reserve(static_cast<std::size_t>(endpoints) *
                    static_cast<std::size_t>(endpoints));
  for (int from = 0; from < endpoints; ++from) {
    for (int to = 0; to < endpoints; ++to) {
      channels_.push_back(std::make_unique<Channel>(
          space,
          "ch." + std::to_string(from) + ">" + std::to_string(to)));
    }
  }
  consumed_.assign(static_cast<std::size_t>(endpoints),
                   std::vector<int>(static_cast<std::size_t>(endpoints), 0));
}

sim::Task<void> Network::send(sim::Env env, int self, int to, Message m) {
  TFR_REQUIRE(self >= 0 && self < endpoints_);
  TFR_REQUIRE(to >= 0 && to < endpoints_);
  m.from = self;
  Channel& ch = channel(self, to);
  // Only `self` writes this channel, so the next free slot is sender-local
  // knowledge.  Slot is written BEFORE the tail so the receiver never
  // observes an unwritten slot.
  const int slot = ch.sender_next++;
  co_await env.write(ch.slots.at(static_cast<std::size_t>(slot)), m);
  co_await env.write(ch.tail, slot + 1);
  ++sent_;
}

sim::Task<void> Network::multicast(sim::Env env, int self, int first,
                                   int last, Message m) {
  for (int to = first; to < last; ++to) co_await send(env, self, to, m);
}

sim::Task<std::optional<Message>> Network::try_recv(sim::Env env, int self) {
  TFR_REQUIRE(self >= 0 && self < endpoints_);
  auto& cursors = consumed_[static_cast<std::size_t>(self)];
  for (int from = 0; from < endpoints_; ++from) {
    Channel& ch = channel(from, self);
    const int tail = co_await env.read(ch.tail);
    int& cursor = cursors[static_cast<std::size_t>(from)];
    if (tail > cursor) {
      const Message m =
          co_await env.read(ch.slots.at(static_cast<std::size_t>(cursor)));
      ++cursor;
      co_return m;
    }
  }
  co_return std::nullopt;
}

sim::Task<Message> Network::recv(sim::Env env, int self) {
  for (;;) {
    auto m = co_await try_recv(env, self);
    if (m.has_value()) co_return *m;
  }
}

}  // namespace tfr::msg
