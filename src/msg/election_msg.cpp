#include "tfr/msg/election_msg.hpp"

#include <algorithm>

#include "tfr/common/contracts.hpp"

namespace tfr::msg {

TimedElection::TimedElection(Network& net, int n, sim::Duration wait)
    : net_(&net), n_(n), wait_(wait) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(wait >= 1);
  monitor_.throw_on_violation(false);  // violations are measured, not fatal
}

sim::Process TimedElection::participant(sim::Env env, int node) {
  monitor_.set_input(node, node);
  // Announce ourselves to everyone (including ourselves, uniformly).
  Message hello;
  hello.type = kHello;
  hello.value = node;
  co_await net_->multicast(env, node, 0, n_, hello);
  // Wait out the assumed delivery bound.
  const sim::Time deadline = env.now() + wait_;
  co_await env.delay(wait_);
  (void)deadline;
  // Drain whatever has arrived; elect the minimum id heard.
  int leader = node;
  for (;;) {
    const auto m = co_await net_->try_recv(env, node);
    if (!m.has_value()) break;
    if (m->type == kHello)
      leader = std::min(leader, static_cast<int>(m->value));
  }
  monitor_.on_decide(node, leader, env.now());
}

MsgElection::MsgElection(Network& net, int n, sim::Duration delta,
                         RetryPolicy policy)
    : net_(&net), n_(n), delta_(delta), policy_(policy) {
  TFR_REQUIRE(n >= 1 && n <= (1 << kIdBits));
  bits_.reserve(kIdBits);
  for (int k = 0; k < kIdBits; ++k)
    bits_.push_back(
        std::make_unique<MsgConsensus>(net, n, delta, bit_base(k), policy));
}

sim::Task<int> MsgElection::elect(sim::Env env, AbdClient& client, int id) {
  TFR_REQUIRE(id >= 0 && id < (1 << kIdBits));
  int candidate = id;
  for (int k = 0; k < kIdBits; ++k) {
    const int b = (candidate >> k) & 1;
    // Publish the witness before proposing its bit (cf. multivalue_sim).
    co_await client.write(env, witness_reg(k, b), candidate + 1);
    const int decided = co_await bits_[static_cast<std::size_t>(k)]->propose(
        env, client, b);
    if (decided != b) {
      const std::int64_t adopted =
          co_await client.read(env, witness_reg(k, decided));
      TFR_INVARIANT(adopted >= 1);
      const int value = static_cast<int>(adopted - 1);
      TFR_INVARIANT(((value ^ candidate) & ((1 << k) - 1)) == 0);
      TFR_INVARIANT(((value >> k) & 1) == decided);
      candidate = value;
    }
  }
  co_return candidate;
}

sim::Process MsgElection::participant(sim::Env env, int node) {
  monitor_.set_input(node, node);
  AbdClient client(*net_, node, n_, policy_);
  const int leader = co_await elect(env, client, node);
  monitor_.on_decide(node, leader, env.now());
}

}  // namespace tfr::msg
