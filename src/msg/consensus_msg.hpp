// Algorithm 1 over message passing: the paper's time-resilient consensus
// running on ABD-emulated registers (§4 extension).
//
// The reduction is the whole point: Algorithm 1's safety uses nothing but
// register atomicity, which ABD provides over an asynchronous,
// crash-minority message system with NO timing assumption; Algorithm 1's
// liveness needs steps (here: message round-trips) to complete within the
// assumed bound.  Composing the two yields message-passing consensus that
// is safe under arbitrary message delays and decides once delays respect
// the bound — the message-passing analogue of the paper's headline, and a
// cousin of the partially-synchronous protocols of [19, 21].
//
// Logical register layout (all defaults are 0):
//   reg 0:        decide   (0 = ⊥, else v + 1)
//   reg 3r+1..3:  x[r,0], x[r,1] (flags, 0/1), y[r] (0 = ⊥, else v + 1)
//
// The assumed bound `delta` here should cover one ABD operation (four
// message one-way delays): exceeding it is exactly a timing failure.

#pragma once

#include <cstdint>

#include "tfr/msg/abd.hpp"
#include "tfr/sim/monitor.hpp"

namespace tfr::msg {

class MsgConsensus {
 public:
  /// `n` nodes (each contributing a client+server endpoint pair to `net`).
  /// `reg_base` offsets this instance's logical register ids so multiple
  /// instances (e.g. the bitwise multi-valued construction) can share one
  /// ABD register space; an instance uses ids [reg_base, reg_base+3R+1)
  /// for R rounds.  `policy` is the retry discipline given to the
  /// AbdClients that participant() constructs (default: legacy blocking,
  /// for reliable networks; pass timeouts when a NetAdversary is on).
  MsgConsensus(Network& net, int n, sim::Duration delta, int reg_base = 0,
               RetryPolicy policy = {});

  /// The full node-client process: propose, then report to the monitor.
  /// Spawn at endpoint client(node) = node; the matching abd_server must
  /// be spawned at endpoint n + node (crash it to crash the node).
  sim::Process participant(sim::Env env, int node, int input);

  /// Composable core.
  sim::Task<int> propose(sim::Env env, AbdClient& client, int input);

  sim::DecisionMonitor& monitor() { return monitor_; }
  std::size_t max_round() const { return max_round_; }

 private:
  int reg_decide() const { return reg_base_; }
  int reg_flag(std::size_t r, int v) const {
    return reg_base_ + static_cast<int>(3 * r) + 1 + v;
  }
  int reg_y(std::size_t r) const {
    return reg_base_ + static_cast<int>(3 * r) + 3;
  }

  Network* net_;
  int n_;
  sim::Duration delta_;
  int reg_base_;
  RetryPolicy policy_;
  sim::DecisionMonitor monitor_;
  std::size_t max_round_ = 0;
};

}  // namespace tfr::msg
