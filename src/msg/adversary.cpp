#include "tfr/msg/adversary.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "tfr/common/contracts.hpp"

namespace tfr::msg {

namespace {

/// One decorrelated draw in [0, 1) for decision `salt` of message `seq`
/// on the channel stream `channel_seed`.  Pure function of its inputs, so
/// verdicts never depend on scheduling.
double draw01(std::uint64_t channel_seed, std::uint64_t seq,
              std::uint64_t salt) {
  std::uint64_t s =
      channel_seed + seq * 0x9e3779b97f4a7c15ULL + salt * 0xbf58476d1ce4e5b9ULL;
  const std::uint64_t h = splitmix64(s);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t draw64(std::uint64_t channel_seed, std::uint64_t seq,
                     std::uint64_t salt) {
  std::uint64_t s =
      channel_seed + seq * 0x9e3779b97f4a7c15ULL + salt * 0x94d049bb133111ebULL;
  return splitmix64(s);
}

}  // namespace

bool Partition::cuts(int from, int to, sim::Time now) const {
  if (now < begin || now >= heal) return false;
  const bool from_in = std::find(group.begin(), group.end(), from) !=
                       group.end();
  const bool to_in = std::find(group.begin(), group.end(), to) != group.end();
  return from_in != to_in;
}

void NetAdversary::add_partition(Partition partition) {
  TFR_REQUIRE(partition.begin >= 0 && partition.heal > partition.begin);
  partitions_.push_back(std::move(partition));
}

void NetAdversary::add_down_window(DownWindow window) {
  TFR_REQUIRE(window.endpoint >= 0);
  TFR_REQUIRE(window.begin >= 0 && window.end > window.begin);
  down_windows_.push_back(window);
}

void NetAdversary::arm(sim::Simulation& simulation) {
  const std::uint32_t label = simulation.trace_label("partition");
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const auto index = static_cast<std::int64_t>(i);
    for (const auto& [boundary, healed] :
         {std::pair{partitions_[i].begin, std::int64_t{0}},
          std::pair{partitions_[i].heal, std::int64_t{1}}}) {
      simulation.schedule_callback(
          boundary, [&simulation, boundary, healed, index, label] {
            simulation.emit({boundary, -1, obs::EventKind::kNetPartition,
                             healed, index, label});
          });
    }
  }
  const std::uint32_t down_label = simulation.trace_label("node-down");
  for (const DownWindow& w : down_windows_) {
    for (const auto& [boundary, healed] :
         {std::pair{w.begin, std::int64_t{0}},
          std::pair{w.end, std::int64_t{1}}}) {
      simulation.schedule_callback(
          boundary,
          [&simulation, boundary, healed, endpoint = w.endpoint, down_label] {
            simulation.emit({boundary, -1, obs::EventKind::kNetPartition,
                             healed, endpoint, down_label});
          });
    }
  }
}

const ChannelFaults& NetAdversary::faults_for(int from, int to) const {
  const auto it = overrides_.find(key(from, to));
  return it != overrides_.end() ? it->second : default_faults_;
}

bool NetAdversary::endpoint_down(int endpoint, sim::Time now) const {
  for (const DownWindow& w : down_windows_) {
    if (w.endpoint == endpoint && now >= w.begin && now < w.end) return true;
  }
  return false;
}

void NetAdversary::emit(sim::Env env, obs::EventKind kind, std::int64_t a,
                        std::int64_t b, int from, int to) {
  sim::Simulation& simulation = env.sim();
  if (simulation.trace_sink() == nullptr) return;
  const std::uint32_t label = simulation.trace_label(
      "ch." + std::to_string(from) + ">" + std::to_string(to));
  simulation.emit({env.now(), env.pid(), kind, a, b, label});
}

Delivery NetAdversary::on_send(sim::Env env, int from, int to,
                               std::uint64_t seq) {
  ++messages_;
  const sim::Time now = env.now();
  Delivery verdict;

  // Partition / outage drops are schedule-driven, not probabilistic.
  bool cut = endpoint_down(from, now) || endpoint_down(to, now);
  for (const Partition& p : partitions_) cut = cut || p.cuts(from, to, now);
  if (cut) {
    ++partition_drops_;
    ++drops_;
    last_injected_ = std::max(last_injected_, now);
    emit(env, obs::EventKind::kNetDrop, static_cast<std::int64_t>(seq), to,
         from, to);
    verdict.dropped = true;
    return verdict;
  }

  const ChannelFaults& faults = faults_for(from, to);
  if (!faults.active()) return verdict;

  std::uint64_t channel_seed = seed_ ^ key(from, to);
  channel_seed = splitmix64(channel_seed);

  if (faults.drop > 0.0 && draw01(channel_seed, seq, 1) < faults.drop) {
    ++drops_;
    last_injected_ = std::max(last_injected_, now);
    emit(env, obs::EventKind::kNetDrop, static_cast<std::int64_t>(seq), to,
         from, to);
    verdict.dropped = true;
    return verdict;
  }
  if (faults.duplicate > 0.0 &&
      draw01(channel_seed, seq, 2) < faults.duplicate) {
    ++duplicates_;
    verdict.copies = 2;
    last_injected_ = std::max(last_injected_, now);
    emit(env, obs::EventKind::kNetDuplicate, static_cast<std::int64_t>(seq),
         verdict.copies - 1, from, to);
  }
  if (faults.delay > 0.0 && draw01(channel_seed, seq, 3) < faults.delay) {
    TFR_REQUIRE(faults.delay_max >= faults.delay_min &&
                faults.delay_min >= 0);
    const std::uint64_t span =
        static_cast<std::uint64_t>(faults.delay_max - faults.delay_min) + 1;
    verdict.extra_delay =
        faults.delay_min +
        static_cast<sim::Duration>(draw64(channel_seed, seq, 4) % span);
    ++delays_;
    last_injected_ = std::max(last_injected_, now + verdict.extra_delay);
    emit(env, obs::EventKind::kNetDelay, verdict.extra_delay,
         static_cast<std::int64_t>(seq), from, to);
  }
  if (faults.reorder > 0.0 && draw01(channel_seed, seq, 5) < faults.reorder) {
    TFR_REQUIRE(faults.reorder_hold >= 0);
    verdict.extra_delay += faults.reorder_hold;
    ++reorders_;
    last_injected_ = std::max(last_injected_, now + verdict.extra_delay);
    emit(env, obs::EventKind::kNetDelay, faults.reorder_hold,
         static_cast<std::int64_t>(seq), from, to);
  }
  return verdict;
}

sim::Time NetAdversary::last_fault_time() const {
  sim::Time last = last_injected_;
  for (const Partition& p : partitions_) last = std::max(last, p.heal);
  for (const DownWindow& w : down_windows_) last = std::max(last, w.end);
  return last;
}

}  // namespace tfr::msg
