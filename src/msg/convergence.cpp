#include "tfr/msg/convergence.hpp"

#include <algorithm>
#include <string>

#include "tfr/common/contracts.hpp"
#include "tfr/msg/adversary.hpp"
#include "tfr/spec/linearizability.hpp"

namespace tfr::msg {

std::size_t ConvergenceMonitor::on_invoke(int node, int reg, bool is_write,
                                          std::int64_t value, sim::Time now) {
  spec::History& history = histories_[reg];
  const std::size_t inner =
      history.invoke(node, is_write ? "write" : "read", value, now);
  tokens_.push_back(TokenEntry{reg, inner, false});
  return tokens_.size() - 1;
}

void ConvergenceMonitor::on_response(std::size_t token, std::int64_t value,
                                     sim::Time now) {
  TFR_REQUIRE(token < tokens_.size());
  TokenEntry& entry = tokens_[token];
  TFR_REQUIRE(!entry.done);
  entry.done = true;
  histories_[entry.reg].respond(entry.inner, value, now);
}

void ConvergenceMonitor::violation(const char* what) {
  ++safety_violations_;
  if (simulation_ != nullptr) {
    simulation_->emit({simulation_->now(), -1, obs::EventKind::kViolation, 0,
                       0, simulation_->trace_label(what)});
  }
}

ConvergenceMonitor::Report ConvergenceMonitor::check() {
  safety_violations_ = 0;
  Report report;
  report.anchor =
      adversary_ != nullptr ? std::max<sim::Time>(adversary_->last_fault_time(), 0)
                            : 0;

  for (const TokenEntry& entry : tokens_) {
    if (!entry.done) ++report.unfinished;
  }
  if (report.unfinished > 0) violation("unfinished-op");

  for (const auto& [reg, history] : histories_) {
    const std::vector<spec::Operation> ops = history.completed();
    report.operations += ops.size();
    const spec::RegisterModel model;
    if (!spec::check_linearizable(ops, model).linearizable) {
      report.linearizable = false;
      violation("linearizability");
    }
    if (bound_ > 0) {
      for (const spec::Operation& op : ops) {
        // Only completions after the anchor are convergence evidence;
        // operations finished mid-faults answer to linearizability alone.
        if (op.responded_at <= report.anchor) continue;
        const sim::Time start = std::max<sim::Time>(op.invoked_at,
                                                    report.anchor);
        const sim::Duration lag = op.responded_at - start;
        report.worst_lag = std::max(report.worst_lag, lag);
        if (lag > bound_) report.converged = false;
      }
    }
  }
  if (!report.converged) violation("convergence");
  return report;
}

}  // namespace tfr::msg
