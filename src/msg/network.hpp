// Message passing for the simulator (paper §4: "to consider message
// passing systems").
//
// The network is built from the same primitive the paper allows — atomic
// registers under the timing model — so every existing capability applies
// unchanged: a timing failure on a channel register *is* a late message,
// the adversary schedules delivery, crashes silence a node, and RMR
// accounting covers polling.  Each ordered pair (sender, receiver) gets an
// SPSC channel: an unbounded slot array plus a tail register; send writes
// the slot then bumps the tail (2 shared accesses, each <= Δ when timing
// holds, so a message "arrives" within 2Δ + the receiver's polling step);
// the receiver polls tails (cache-local while nothing changes) and
// consumes slots in order.
//
// Endpoints are small integers in [0, endpoints); the ABD layer maps a
// node to two endpoints (client + server).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "tfr/sim/register.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/task.hpp"

namespace tfr::msg {

/// Fixed-shape message; meaning of the payload fields is protocol-defined.
struct Message {
  std::int32_t type = 0;
  std::int32_t from = -1;   ///< sending endpoint
  std::int32_t reg = 0;     ///< logical register id (ABD)
  std::int64_t rid = 0;     ///< request id (matching acks to requests)
  std::int64_t tag = 0;     ///< logical timestamp
  std::int64_t value = 0;
};

class Network {
 public:
  Network(sim::RegisterSpace& space, int endpoints);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int endpoints() const { return endpoints_; }

  /// Sends `m` to endpoint `to` (2 shared accesses).  m.from is stamped
  /// with `self`.
  sim::Task<void> send(sim::Env env, int self, int to, Message m);

  /// Sends `m` to every endpoint in [first, last) (including self if in
  /// range).
  sim::Task<void> multicast(sim::Env env, int self, int first, int last,
                            Message m);

  /// One polling sweep over all inbound channels of `self`; returns the
  /// first undelivered message found, or nullopt.  Costs one tail read
  /// per sender (cache-local when idle) plus one slot read on a hit.
  sim::Task<std::optional<Message>> try_recv(sim::Env env, int self);

  /// Polls until a message arrives.
  sim::Task<Message> recv(sim::Env env, int self);

  std::uint64_t messages_sent() const { return sent_; }

 private:
  struct Channel {
    Channel(sim::RegisterSpace& space, const std::string& name)
        : slots(space, Message{}, name + ".slot"),
          tail(space, 0, name + ".tail") {}
    sim::RegisterArray<Message> slots;
    sim::Register<int> tail;
    int sender_next = 0;  ///< sender-local: slots written so far
  };

  Channel& channel(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) *
                          static_cast<std::size_t>(endpoints_) +
                      static_cast<std::size_t>(to)];
  }

  int endpoints_;
  std::vector<std::unique_ptr<Channel>> channels_;
  /// consumed_[receiver][sender]: receiver-local read cursors.
  std::vector<std::vector<int>> consumed_;
  std::uint64_t sent_ = 0;
};

}  // namespace tfr::msg
