// Message passing for the simulator (paper §4: "to consider message
// passing systems").
//
// The network is built from the same primitive the paper allows — atomic
// registers under the timing model — so every existing capability applies
// unchanged: a timing failure on a channel register *is* a late message,
// the adversary schedules delivery, crashes silence a node, and RMR
// accounting covers polling.  Each ordered pair (sender, receiver) gets an
// SPSC channel: an unbounded slot array plus a tail register; send writes
// the slot then bumps the tail (2 shared accesses, each <= Δ when timing
// holds, so a message "arrives" within 2Δ + the receiver's polling step);
// the receiver polls tails (cache-local while nothing changes) and
// consumes slots in order.  Polling sweeps start at a rotating per-caller
// index so no inbound channel can be starved by sustained load on a
// lower-numbered one.
//
// A NetAdversary attached via set_adversary() makes delivery unreliable:
// each message's verdict (drop / duplicate / extra delay) is decided at
// send time from a per-channel deterministic stream; the receiver's sweep
// skips dropped slots, holds delayed slots until their delivery instant
// (later slots may overtake — reordering), and re-delivers duplicated
// slots once more.  Slot delivery metadata is substrate bookkeeping like
// the read cursors: it models the link, not algorithm state, so it is
// untimed by design.
//
// Endpoints are small integers in [0, endpoints); the ABD layer maps a
// node to two endpoints (client + server).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "tfr/msg/adversary.hpp"
#include "tfr/sim/register.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/task.hpp"

namespace tfr::msg {

/// Fixed-shape message; meaning of the payload fields is protocol-defined.
struct Message {
  std::int32_t type = 0;
  std::int32_t from = -1;   ///< sending endpoint
  std::int32_t reg = 0;     ///< logical register id (ABD)
  std::int64_t rid = 0;     ///< request id (matching acks to requests)
  std::int64_t tag = 0;     ///< logical timestamp
  std::int64_t value = 0;
};

class Network {
 public:
  Network(sim::RegisterSpace& space, int endpoints);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int endpoints() const { return endpoints_; }

  /// Attaches the fault adversary (null detaches).  Attach before traffic
  /// flows; verdicts apply to messages sent while attached.
  void set_adversary(NetAdversary* adversary) { adversary_ = adversary; }
  NetAdversary* adversary() const { return adversary_; }

  /// Sends `m` to endpoint `to` (2 shared accesses).  m.from is stamped
  /// with `self`.
  sim::Task<void> send(sim::Env env, int self, int to, Message m);

  /// Sends `m` to every endpoint in [first, last) (including self if in
  /// range).
  sim::Task<void> multicast(sim::Env env, int self, int first, int last,
                            Message m);

  /// One polling sweep over all inbound channels of `self`, starting at a
  /// rotating per-caller index; returns the first deliverable message
  /// found, or nullopt.  Costs one tail read per sender polled
  /// (cache-local when idle) plus one slot read on a hit.
  sim::Task<std::optional<Message>> try_recv(sim::Env env, int self);

  /// Polls until a message arrives.
  sim::Task<Message> recv(sim::Env env, int self);

  /// Polls until a message arrives or `deadline` passes; between empty
  /// sweeps waits `poll_every` ticks so the caller does not spin.
  sim::Task<std::optional<Message>> recv_until(sim::Env env, int self,
                                               sim::Time deadline,
                                               sim::Duration poll_every = 1);

  std::uint64_t messages_sent() const { return sent_; }

 private:
  /// Delivery metadata for one sent slot, written by the sender at send
  /// time (adversary verdict) and consumed by the receiver's sweep —
  /// substrate bookkeeping, same status as the read cursors.
  struct SlotMeta {
    sim::Time deliver_at = 0;  ///< earliest delivery instant
    int copies = 1;            ///< 0 = dropped
  };

  struct Channel {
    Channel(sim::RegisterSpace& space, const std::string& name)
        : slots(space, Message{}, name + ".slot"),
          tail(space, 0, name + ".tail") {}
    sim::RegisterArray<Message> slots;
    sim::Register<int> tail;
    int sender_next = 0;  ///< sender-local: slots written so far
    std::vector<SlotMeta> meta;  ///< sender-appended adversary verdicts
  };

  /// Receiver-local per-channel delivery state (adversary path).
  struct Inbound {
    int scanned = 0;  ///< slots classified so far (<= observed tail)
    struct Held {
      int slot = 0;
      sim::Time deliver_at = 0;
      int copies = 1;
    };
    std::vector<Held> ready;  ///< published, undelivered, not dropped
  };

  Channel& channel(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) *
                          static_cast<std::size_t>(endpoints_) +
                      static_cast<std::size_t>(to)];
  }

  int endpoints_;
  std::vector<std::unique_ptr<Channel>> channels_;
  /// consumed_[receiver][sender]: receiver-local read cursors (reliable
  /// path; with an adversary the Inbound state supersedes them).
  std::vector<std::vector<int>> consumed_;
  /// inbound_[receiver][sender]: adversary-path delivery state.
  std::vector<std::vector<Inbound>> inbound_;
  /// poll_start_[receiver]: rotating sweep start (fairness under load).
  std::vector<int> poll_start_;
  NetAdversary* adversary_ = nullptr;
  std::uint64_t sent_ = 0;
};

}  // namespace tfr::msg
