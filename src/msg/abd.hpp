// ABD: atomic multi-writer multi-reader registers emulated over message
// passing with majority quorums (after Attiya–Bar-Noy–Dolev), tolerating
// crashes of any minority of nodes.
//
// This is the bridge that carries the paper's register-based algorithms
// into the message-passing world (§4): a logical register's write queries
// a majority for the highest tag, then stores a higher one at a majority;
// a read collects a majority of (tag, value) pairs, adopts the maximum,
// and writes it back to a majority before returning (the write-back is
// what makes reads atomic rather than merely regular).  Any two
// majorities intersect, so a completed operation is visible to every
// later one — with NO timing assumption; late messages (timing failures
// on channel registers) delay operations but never unorder them.
//
// Under a NetAdversary requests and acks can also be lost or duplicated,
// so the client is hardened: each majority phase collects acks inside a
// timeout window, de-duplicates acks per server (a duplicated ack must
// not fake a quorum), and on expiry re-multicasts the same request —
// servers are idempotent, so re-asking is always safe — after an
// exponentially growing backoff pause with deterministic jitter (a pure
// function of node, rid and attempt, keeping adversarial runs
// replayable).  The default RetryPolicy{} has timeout 0 = the legacy
// block-forever behaviour, byte-identical on reliable networks.
//
// Each node contributes two endpoints to the Network:
//   client(i) = i        — runs the node's algorithm and issues ops;
//   server(i) = n + i    — the replica: stores (tag, value) per logical
//                          register and answers queries forever.
//
// Tags are (counter << 16 | writer) so concurrent writers never tie.
// Logical register ids are arbitrary non-negative ints; unknown ids read
// as (tag 0, value 0), so protocols encode their "initial value" as 0.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/msg/network.hpp"

namespace tfr::msg {

class ConvergenceMonitor;

/// Message types of the ABD protocol.
enum AbdMessageType : std::int32_t {
  kTagReq = 1,   ///< -> server: what is your tag for reg?
  kTagAck = 2,   ///< <- server: my tag
  kWriteReq = 3, ///< -> server: store (tag, value) if tag is higher
  kWriteAck = 4, ///< <- server: stored (or already newer)
  kReadReq = 5,  ///< -> server: what is your (tag, value)?
  kReadAck = 6,  ///< <- server: my (tag, value)
};

/// Retry/backoff discipline for one majority phase.  The zero-initialised
/// policy (timeout 0) reproduces the legacy behaviour exactly: multicast
/// once and block until a majority answers.
struct RetryPolicy {
  sim::Duration timeout = 0;      ///< ack-collection window; 0 = no retries
  double timeout_growth = 2.0;    ///< window multiplier per retry
  sim::Duration max_timeout = 0;  ///< window cap (0 = uncapped)
  sim::Duration backoff = 0;      ///< base pause before a retry
  double backoff_growth = 2.0;    ///< pause multiplier per retry
  sim::Duration max_backoff = 0;  ///< pause cap (0 = uncapped)
  sim::Duration jitter = 0;       ///< max deterministic jitter added to pause
  sim::Duration poll_every = 1;   ///< poll period while waiting for acks

  /// Adaptive timeouts: with a DeltaController attached to the client and
  /// this factor > 0, each phase's first ack window is
  /// ceil(controller->current() * timeout_per_delta) instead of `timeout`
  /// (per-retry growth and the caps still apply on top).  0 keeps the
  /// static window even when a controller is attached.
  double timeout_per_delta = 0.0;
};

/// Exponential growth with a saturation guard: value * growth clamped to
/// `cap` (0 = no configured cap) and, before the double -> Duration cast,
/// to a far-below-overflow limit — at high attempt counts the uncapped
/// legacy arithmetic overflowed sim::Duration, which is UB on the cast and
/// turned the pause negative.  Monotone: never returns less than a
/// growth >= 1 input.
sim::Duration grow_saturating(sim::Duration value, double growth,
                              sim::Duration cap);

/// The replica role of node `node`: answers ABD requests forever.  Spawn
/// with endpoint id server(node) = n + node.  Crash it to fault the node.
/// Requests are idempotent (reads are pure; writes compare tags), so
/// re-delivered or re-sent requests are harmless.
sim::Process abd_server(sim::Env env, Network& net, int node, int n);

/// The client role: issues linearizable reads/writes of logical
/// registers.  One instance per node; must be driven by the coroutine
/// running at endpoint client(node) = node.
class AbdClient {
 public:
  AbdClient(Network& net, int node, int n, RetryPolicy policy = {});

  /// Linearizable write of logical register `reg` (two majority phases).
  sim::Task<void> write(sim::Env env, int reg, std::int64_t value);

  /// Linearizable read of logical register `reg` (query + write-back).
  sim::Task<std::int64_t> read(sim::Env env, int reg);

  /// Attaches a monitor; every subsequent read/write is recorded as an
  /// invoke/response pair for linearizability + convergence checking.
  void set_monitor(ConvergenceMonitor* monitor) { monitor_ = monitor; }

  /// Attaches an adaptive optimistic(Δ) controller: ack windows derive
  /// from controller->current() (see RetryPolicy::timeout_per_delta),
  /// every window expiry reports on_failure(), a quorum inside the first
  /// window reports on_clean(), and each phase's multicast-to-quorum RTT
  /// is fed to observe() on this client's node channel.  Advisory only —
  /// ABD linearizability needs no timing assumption at all, so a mistuned
  /// estimate costs retries, never atomicity.
  void set_delta_controller(adapt::DeltaController* controller) {
    controller_ = controller;
  }

  const RetryPolicy& policy() const { return policy_; }

  std::uint64_t operations() const { return operations_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t duplicate_acks() const { return duplicate_acks_; }
  std::uint64_t stale_acks() const { return stale_acks_; }

 private:
  struct Quorum {
    std::int64_t max_tag = 0;
    std::int64_t value_of_max = 0;
  };

  /// Multicasts `request` to all servers and collects a majority of acks
  /// of type `ack_type` carrying the current rid, de-duplicated per
  /// server; re-multicasts per the RetryPolicy when the window expires.
  /// Returns the highest (tag, value) seen among the acks.
  sim::Task<Quorum> majority(sim::Env env, Message request,
                             std::int32_t ack_type);

  static std::int64_t make_tag(std::int64_t counter, int writer) {
    return (counter << 16) | static_cast<std::int64_t>(writer & 0xffff);
  }
  static std::int64_t tag_counter(std::int64_t tag) { return tag >> 16; }

  /// Deterministic jitter in [0, policy_.jitter] for this retry — a pure
  /// function of (node, rid, attempt), so runs replay byte-identically.
  sim::Duration jitter_for(std::int64_t rid, int attempt) const;

  const char* phase_name(std::int32_t ack_type) const;

  Network* net_;
  int node_;
  int n_;
  RetryPolicy policy_;
  ConvergenceMonitor* monitor_ = nullptr;
  adapt::DeltaController* controller_ = nullptr;
  std::int64_t next_rid_ = 1;
  std::uint64_t operations_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t duplicate_acks_ = 0;
  std::uint64_t stale_acks_ = 0;
};

}  // namespace tfr::msg
