// ABD: atomic multi-writer multi-reader registers emulated over message
// passing with majority quorums (after Attiya–Bar-Noy–Dolev), tolerating
// crashes of any minority of nodes.
//
// This is the bridge that carries the paper's register-based algorithms
// into the message-passing world (§4): a logical register's write queries
// a majority for the highest tag, then stores a higher one at a majority;
// a read collects a majority of (tag, value) pairs, adopts the maximum,
// and writes it back to a majority before returning (the write-back is
// what makes reads atomic rather than merely regular).  Any two
// majorities intersect, so a completed operation is visible to every
// later one — with NO timing assumption; late messages (timing failures
// on channel registers) delay operations but never unorder them.
//
// Under a NetAdversary requests and acks can also be lost or duplicated,
// so the client is hardened: each majority phase collects acks inside a
// timeout window, de-duplicates acks per server (a duplicated ack must
// not fake a quorum), and on expiry re-multicasts the same request —
// servers are idempotent, so re-asking is always safe — after an
// exponentially growing backoff pause with deterministic jitter (a pure
// function of node, rid and attempt, keeping adversarial runs
// replayable).  The default RetryPolicy{} has timeout 0 = the legacy
// block-forever behaviour, byte-identical on reliable networks.
//
// Each node contributes two endpoints to the Network:
//   client(i) = i        — runs the node's algorithm and issues ops;
//   server(i) = n + i    — the replica: stores (tag, value) per logical
//                          register and answers queries forever.
//
// Tags are (counter << 16 | writer) so concurrent writers never tie.
// Logical register ids are arbitrary non-negative ints; unknown ids read
// as (tag 0, value 0), so protocols encode their "initial value" as 0.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/msg/network.hpp"

namespace tfr::msg {

class ConvergenceMonitor;

/// Message types of the ABD protocol.
enum AbdMessageType : std::int32_t {
  kTagReq = 1,   ///< -> server: what is your tag for reg?
  kTagAck = 2,   ///< <- server: my tag
  kWriteReq = 3, ///< -> server: store (tag, value) if tag is higher
  kWriteAck = 4, ///< <- server: stored (or already newer)
  kReadReq = 5,  ///< -> server: what is your (tag, value)?
  kReadAck = 6,  ///< <- server: my (tag, value)
};

/// Which register emulation an AbdClient runs.  All three are
/// linearizable under arbitrary timing behaviour — the variants differ
/// only in how long they wait and how many rounds a read takes, never in
/// what they guarantee (tfr_mcheck --abd verifies both read disciplines
/// exhaustively).
enum class RegisterVariant : std::int32_t {
  /// Global ack windows (controller->current()), two-round reads.
  kStock = 0,
  /// Per-peer ack windows: each server's window derives from its own
  /// channel estimate (controller->estimate_for(server)); the phase's
  /// first window is the majority-th smallest, so a straggler never
  /// stretches the wait for a quorum the timely majority can fill.
  kPerPeer = 1,
  /// Per-peer windows + the Mostéfaoui–Raynal fast read: when every ack
  /// of the read quorum carries the same tag, that tag is already stored
  /// at a majority and the write-back round is skipped — a one-round
  /// read on the common path.  Tags disagree -> the stock two-round read.
  kPerPeerFastRead = 2,
};

const char* register_variant_name(RegisterVariant variant);

/// Retry/backoff discipline for one majority phase.  The zero-initialised
/// policy (timeout 0) reproduces the legacy behaviour exactly: multicast
/// once and block until a majority answers.
struct RetryPolicy {
  sim::Duration timeout = 0;      ///< ack-collection window; 0 = no retries
  double timeout_growth = 2.0;    ///< window multiplier per retry
  sim::Duration max_timeout = 0;  ///< window cap (0 = uncapped)
  sim::Duration backoff = 0;      ///< base pause before a retry
  double backoff_growth = 2.0;    ///< pause multiplier per retry
  sim::Duration max_backoff = 0;  ///< pause cap (0 = uncapped)
  sim::Duration jitter = 0;       ///< max deterministic jitter added to pause
  sim::Duration poll_every = 1;   ///< poll period while waiting for acks

  /// Adaptive timeouts: with a DeltaController attached to the client and
  /// this factor > 0, each phase's first ack window is
  /// ceil(controller->current() * timeout_per_delta) instead of `timeout`
  /// (per-retry growth and the caps still apply on top).  0 keeps the
  /// static window even when a controller is attached.
  double timeout_per_delta = 0.0;
};

/// Exponential growth with a saturation guard: value * growth clamped to
/// `cap` (0 = no configured cap) and, before the double -> Duration cast,
/// to a far-below-overflow limit — at high attempt counts the uncapped
/// legacy arithmetic overflowed sim::Duration, which is UB on the cast and
/// turned the pause negative.  Monotone: never returns less than a
/// growth >= 1 input.
sim::Duration grow_saturating(sim::Duration value, double growth,
                              sim::Duration cap);

/// The per-peer first ack window for one majority phase over `n` servers:
/// server s would need w_s = ceil(estimate_for(s) * per_delta), and a
/// quorum only needs the fastest majority of servers, so the phase waits
/// the majority-th smallest w_s — stragglers never size the window.
/// Clamped to [1, max_timeout] (max_timeout 0 = uncapped).  `scratch` is
/// caller-owned storage so the hot path allocates nothing.
sim::Duration per_peer_window(const adapt::DeltaController& controller, int n,
                              double per_delta, sim::Duration max_timeout,
                              std::vector<sim::Duration>& scratch);

/// The replica role of node `node`: answers ABD requests forever.  Spawn
/// with endpoint id server(node) = n + node.  Crash it to fault the node.
/// Requests are idempotent (reads are pure; writes compare tags), so
/// re-delivered or re-sent requests are harmless.
sim::Process abd_server(sim::Env env, Network& net, int node, int n);

/// The client role: issues linearizable reads/writes of logical
/// registers.  One instance per node; must be driven by the coroutine
/// running at endpoint client(node) = node.
class AbdClient {
 public:
  AbdClient(Network& net, int node, int n, RetryPolicy policy = {});

  /// Linearizable write of logical register `reg` (two majority phases).
  sim::Task<void> write(sim::Env env, int reg, std::int64_t value);

  /// Linearizable read of logical register `reg` (query + write-back).
  sim::Task<std::int64_t> read(sim::Env env, int reg);

  /// Attaches a monitor; every subsequent read/write is recorded as an
  /// invoke/response pair for linearizability + convergence checking.
  void set_monitor(ConvergenceMonitor* monitor) { monitor_ = monitor; }

  /// Attaches an adaptive optimistic(Δ) controller: ack windows derive
  /// from controller->current() (see RetryPolicy::timeout_per_delta),
  /// every window expiry reports on_failure(), a quorum inside the first
  /// window reports on_clean(), and each phase's multicast-to-quorum RTT
  /// is fed to observe() on this client's node channel.  Advisory only —
  /// ABD linearizability needs no timing assumption at all, so a mistuned
  /// estimate costs retries, never atomicity.
  void set_delta_controller(adapt::DeltaController* controller) {
    controller_ = controller;
  }

  /// Selects the register emulation (default kStock).  Safe to switch
  /// between operations; switching mid-operation is not supported.
  void set_variant(RegisterVariant variant) { variant_ = variant; }
  RegisterVariant variant() const { return variant_; }

  const RetryPolicy& policy() const { return policy_; }

  std::uint64_t operations() const { return operations_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t duplicate_acks() const { return duplicate_acks_; }
  std::uint64_t stale_acks() const { return stale_acks_; }
  /// Reads that skipped the write-back round (kPerPeerFastRead only).
  std::uint64_t fast_reads() const { return fast_reads_; }
  /// Fast-variant reads that saw disagreeing tags and fell back to the
  /// two-round discipline.
  std::uint64_t fast_read_misses() const { return fast_read_misses_; }
  /// Stale acks matched to a recently completed phase and fed back to the
  /// controller as late per-peer RTT observations (per-peer modes only).
  std::uint64_t late_observations() const { return late_observations_; }

 private:
  struct Quorum {
    std::int64_t max_tag = 0;
    std::int64_t value_of_max = 0;
    bool tags_uniform = true;  ///< every counted ack carried the same tag
  };

  /// A recently completed majority phase, kept so a straggler's ack that
  /// arrives after the quorum closed can still teach the controller that
  /// server's true round-trip time (per-peer modes).
  struct RecentPhase {
    std::int64_t rid = 0;
    std::int32_t ack_type = 0;
    sim::Time started = 0;         ///< first multicast of the phase
    std::uint32_t observed = ~0u;  ///< servers already counted/observed
  };

  /// Multicasts `request` to all servers and collects a majority of acks
  /// of type `ack_type` carrying the current rid, de-duplicated per
  /// server; re-multicasts per the RetryPolicy when the window expires.
  /// Returns the highest (tag, value) seen among the acks.
  sim::Task<Quorum> majority(sim::Env env, Message request,
                             std::int32_t ack_type);

  static std::int64_t make_tag(std::int64_t counter, int writer) {
    return (counter << 16) | static_cast<std::int64_t>(writer & 0xffff);
  }
  static std::int64_t tag_counter(std::int64_t tag) { return tag >> 16; }

  /// Deterministic jitter in [0, policy_.jitter] for this retry — a pure
  /// function of (node, rid, attempt), so runs replay byte-identically.
  sim::Duration jitter_for(std::int64_t rid, int attempt) const;

  const char* phase_name(std::int32_t ack_type) const;

  /// True when ack windows derive from per-server channel estimates.
  bool per_peer_windows() const {
    return variant_ != RegisterVariant::kStock && controller_ != nullptr &&
           policy_.timeout_per_delta > 0;
  }

  /// Matches a stale ack against the recent-phase ring and feeds the
  /// server's late RTT to the controller (per-peer modes only).
  void note_late_ack(const Message& m, sim::Time now);

  /// Emits the per-peer estimate counter tracks (`abd.est.<peer>`) when
  /// tracing; label ids are interned once and cached.
  void emit_estimates(sim::Env& env);

  Network* net_;
  int node_;
  int n_;
  RetryPolicy policy_;
  ConvergenceMonitor* monitor_ = nullptr;
  adapt::DeltaController* controller_ = nullptr;
  RegisterVariant variant_ = RegisterVariant::kStock;
  std::int64_t next_rid_ = 1;
  std::uint64_t operations_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t duplicate_acks_ = 0;
  std::uint64_t stale_acks_ = 0;
  std::uint64_t fast_reads_ = 0;
  std::uint64_t fast_read_misses_ = 0;
  std::uint64_t late_observations_ = 0;
  /// Per-phase ack-dedup scratch, reused so the quorum loop allocates
  /// nothing per phase (sized n_ once, reset with assign()).
  std::vector<char> acked_scratch_;
  /// Scratch for per_peer_window's order statistic, same reuse story.
  std::vector<sim::Duration> window_scratch_;
  /// Ring of recently completed phases for late-ack attribution.
  static constexpr std::size_t kRecentPhases = 4;
  RecentPhase recent_[kRecentPhases];
  std::size_t recent_next_ = 0;
  /// Cached interned labels for the abd.est.<peer> counter tracks.
  std::vector<std::uint32_t> est_labels_;
  std::uint32_t fast_label_ = 0;
};

}  // namespace tfr::msg
