// ABD: atomic multi-writer multi-reader registers emulated over message
// passing with majority quorums (after Attiya–Bar-Noy–Dolev), tolerating
// crashes of any minority of nodes.
//
// This is the bridge that carries the paper's register-based algorithms
// into the message-passing world (§4): a logical register's write queries
// a majority for the highest tag, then stores a higher one at a majority;
// a read collects a majority of (tag, value) pairs, adopts the maximum,
// and writes it back to a majority before returning (the write-back is
// what makes reads atomic rather than merely regular).  Any two
// majorities intersect, so a completed operation is visible to every
// later one — with NO timing assumption; late messages (timing failures
// on channel registers) delay operations but never unorder them.
//
// Each node contributes two endpoints to the Network:
//   client(i) = i        — runs the node's algorithm and issues ops;
//   server(i) = n + i    — the replica: stores (tag, value) per logical
//                          register and answers queries forever.
//
// Tags are (counter << 16 | writer) so concurrent writers never tie.
// Logical register ids are arbitrary non-negative ints; unknown ids read
// as (tag 0, value 0), so protocols encode their "initial value" as 0.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "tfr/msg/network.hpp"

namespace tfr::msg {

/// Message types of the ABD protocol.
enum AbdMessageType : std::int32_t {
  kTagReq = 1,   ///< -> server: what is your tag for reg?
  kTagAck = 2,   ///< <- server: my tag
  kWriteReq = 3, ///< -> server: store (tag, value) if tag is higher
  kWriteAck = 4, ///< <- server: stored (or already newer)
  kReadReq = 5,  ///< -> server: what is your (tag, value)?
  kReadAck = 6,  ///< <- server: my (tag, value)
};

/// The replica role of node `node`: answers ABD requests forever.  Spawn
/// with endpoint id server(node) = n + node.  Crash it to fault the node.
sim::Process abd_server(sim::Env env, Network& net, int node, int n);

/// The client role: issues linearizable reads/writes of logical
/// registers.  One instance per node; must be driven by the coroutine
/// running at endpoint client(node) = node.
class AbdClient {
 public:
  AbdClient(Network& net, int node, int n);

  /// Linearizable write of logical register `reg` (two majority phases).
  sim::Task<void> write(sim::Env env, int reg, std::int64_t value);

  /// Linearizable read of logical register `reg` (query + write-back).
  sim::Task<std::int64_t> read(sim::Env env, int reg);

  std::uint64_t operations() const { return operations_; }

 private:
  struct Quorum {
    std::int64_t max_tag = 0;
    std::int64_t value_of_max = 0;
  };

  /// Broadcasts `request` to all servers and collects a majority of acks
  /// of type `ack_type` carrying the current rid; returns the highest
  /// (tag, value) seen among them.
  sim::Task<Quorum> majority(sim::Env env, Message request,
                             std::int32_t ack_type);

  static std::int64_t make_tag(std::int64_t counter, int writer) {
    return (counter << 16) | static_cast<std::int64_t>(writer & 0xffff);
  }
  static std::int64_t tag_counter(std::int64_t tag) { return tag >> 16; }

  Network* net_;
  int node_;
  int n_;
  std::int64_t next_rid_ = 1;
  std::uint64_t operations_ = 0;
};

}  // namespace tfr::msg
