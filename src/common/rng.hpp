// Deterministic pseudo-random number generation.
//
// Every randomized component in the library (schedulers, timing models,
// workloads, property tests) draws from tfr::Rng so that a (seed, program)
// pair fully determines an execution.  The generator is xoshiro256**
// (public-domain algorithm by Blackman & Vigna), seeded through SplitMix64,
// which gives high-quality 64-bit streams with a tiny state — ideal for
// embedding one generator per simulated process when needed.

#pragma once

#include <cstdint>
#include <limits>

#include "tfr/common/contracts.hpp"

namespace tfr {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    TFR_REQUIRE(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform01() < p; }

  /// Picks an index uniformly in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    TFR_REQUIRE(n > 0);
    return static_cast<std::size_t>(bounded(n));
  }

  /// Fisher-Yates shuffle of a random-access range.
  template <class Range>
  void shuffle(Range& range) {
    const std::size_t n = range.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(range[i - 1], range[j]);
    }
  }

  /// Derives an independent child generator (for per-process streams).
  Rng split() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded sample via Lemire-style rejection.
  std::uint64_t bounded(std::uint64_t bound);

  std::uint64_t state_[4]{};
};

}  // namespace tfr
