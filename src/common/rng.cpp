#include "tfr/common/rng.hpp"

namespace tfr {

std::uint64_t Rng::bounded(std::uint64_t bound) {
  TFR_REQUIRE(bound > 0);
  // Rejection sampling: draw until the value falls into the largest
  // multiple of `bound` that fits in 64 bits, then reduce.  The expected
  // number of draws is < 2 for every bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace tfr
