// Console table / CSV emission for the experiment harnesses.
//
// Every bench binary prints one aligned table per paper claim plus an
// optional CSV copy (for plotting), in the same spirit as the rows a paper
// table would report.

#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace tfr {

/// An aligned text table.  Cells are strings; numeric helpers format with
/// sensible defaults.  Rendering pads every column to its widest cell.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row.  Must be called before adding rows.
  void header(std::vector<std::string> cells);

  /// Appends a row; must match the header width if a header was set.
  void row(std::vector<std::string> cells);

  /// Convenience: formats a mixed row.  Use fmt() helpers for cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(long long v);
  static std::string fmt(unsigned long long v);
  static std::string fmt(int v) { return fmt(static_cast<long long>(v)); }
  static std::string fmt(std::size_t v) {
    return fmt(static_cast<unsigned long long>(v));
  }

  std::size_t rows() const { return rows_.size(); }

  /// Renders the aligned table (title, rule, header, rule, rows).
  void print(std::ostream& os) const;

  /// Emits the table as CSV (header + rows, comma separated, quoted as
  /// needed).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// RAII helper that prints a section banner for a bench experiment, e.g.
///   === E1: consensus decision time without timing failures ===
class Section {
 public:
  Section(std::ostream& os, const std::string& id, const std::string& what);
  ~Section();

 private:
  std::ostream& os_;
};

}  // namespace tfr
