#include "tfr/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "tfr/common/contracts.hpp"

namespace tfr {

void Table::header(std::vector<std::string> cells) {
  TFR_REQUIRE(rows_.empty());
  header_ = std::move(cells);
}

void Table::row(std::vector<std::string> cells) {
  if (!header_.empty()) TFR_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::fmt(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << "  " << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;

  if (!title_.empty()) os << title_ << '\n';
  os << std::string(total, '-') << '\n';
  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
  os << std::string(total, '-') << '\n';
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

Section::Section(std::ostream& os, const std::string& id,
                 const std::string& what)
    : os_(os) {
  os_ << "\n=== " << id << ": " << what << " ===\n";
}

Section::~Section() { os_ << std::flush; }

}  // namespace tfr
