// Streaming and batch statistics used by the benchmark harnesses.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tfr {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
/// Cheap enough to keep one per measured quantity per experiment cell.
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const StatAccumulator& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set with percentile queries.  Keeps all samples; intended
/// for experiment harnesses (thousands of samples), not hot paths.
class Samples {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Percentile by linear interpolation, q in [0, 100].  Requires samples.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  /// Inclusive lower edge of bucket i.
  double edge(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace tfr
