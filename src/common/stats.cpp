#include "tfr/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "tfr/common/contracts.hpp"

namespace tfr {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::min() const {
  TFR_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  TFR_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Samples::percentile(double q) const {
  TFR_REQUIRE(!values_.empty());
  TFR_REQUIRE(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double rank = q / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  TFR_REQUIRE(hi > lo);
  TFR_REQUIRE(buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // float edge case
    ++counts_[i];
  }
}

double Histogram::edge(std::size_t i) const {
  TFR_REQUIRE(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace tfr
