// Contract checking macros used across the library.
//
// Following the Core Guidelines (I.6/E.12 spirit) we make preconditions and
// invariants explicit and *always on*: the algorithms in this library exist
// to demonstrate safety properties, so silently continuing past a violated
// invariant would defeat the purpose.  Violations throw
// tfr::ContractViolation so tests can assert on them; in contexts where
// throwing is impossible the *_FATAL variants abort.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tfr {

/// Thrown when a TFR_REQUIRE / TFR_ENSURE / TFR_INVARIANT check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

[[noreturn]] inline void contract_fail_fatal(const char* kind,
                                             const char* expr,
                                             const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace detail

}  // namespace tfr

/// Precondition check: argument/state requirements at function entry.
#define TFR_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::tfr::detail::contract_fail("precondition", #expr, __FILE__,        \
                                   __LINE__);                              \
  } while (0)

/// Postcondition check.
#define TFR_ENSURE(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::tfr::detail::contract_fail("postcondition", #expr, __FILE__,       \
                                   __LINE__);                              \
  } while (0)

/// Internal invariant check.
#define TFR_INVARIANT(expr)                                                \
  do {                                                                     \
    if (!(expr))                                                           \
      ::tfr::detail::contract_fail("invariant", #expr, __FILE__,           \
                                   __LINE__);                              \
  } while (0)

/// Invariant check usable in noexcept / destructor contexts: aborts.
#define TFR_INVARIANT_FATAL(expr)                                          \
  do {                                                                     \
    if (!(expr))                                                           \
      ::tfr::detail::contract_fail_fatal("invariant", #expr, __FILE__,     \
                                         __LINE__);                        \
  } while (0)

/// Marks unreachable code paths.
#define TFR_UNREACHABLE(msg)                                               \
  ::tfr::detail::contract_fail("unreachable", msg, __FILE__, __LINE__)
