// Real-thread atomic read/write registers.
//
// The paper's model is atomic registers only; on real hardware these are
// std::atomic cells with sequentially consistent accesses.  seq_cst is
// deliberate: the algorithms' correctness arguments (e.g. the
// flag-before-proposal ordering in consensus Algorithm 1, Fischer's gate)
// assume a single total order of register operations, which is exactly the
// guarantee of seq_cst — weakening individual accesses is an optimization
// the paper does not license.
//
// The cell type comes from the Atomics policy (rt/atomics_policy.hpp):
// AtomicRegister<T> (= BasicAtomicRegister<T, StdAtomics>) is a bare
// std::atomic<T>; BasicAtomicRegister<T, ShimAtomics> routes the same
// read()/write() calls through the mcheck interposition seam.

#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "tfr/rt/atomics_policy.hpp"

namespace tfr::rt {

template <class T, class Atomics = StdAtomics>
class BasicAtomicRegister {
  static_assert(std::is_trivially_copyable_v<T>,
                "registers hold plain values");

 public:
  BasicAtomicRegister() : cell_(T{}) {}
  explicit BasicAtomicRegister(T initial) : cell_(initial) {}

  BasicAtomicRegister(const BasicAtomicRegister&) = delete;
  BasicAtomicRegister& operator=(const BasicAtomicRegister&) = delete;

  T read() const { return cell_.load(std::memory_order_seq_cst); }
  void write(T value) { cell_.store(value, std::memory_order_seq_cst); }

  /// Whether the platform implements this register without a hidden lock.
  bool is_lock_free() const { return cell_.is_lock_free(); }

 private:
  typename Atomics::template atomic<T> cell_;
};

template <class T>
using AtomicRegister = BasicAtomicRegister<T, StdAtomics>;

}  // namespace tfr::rt
