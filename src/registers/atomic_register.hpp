// Real-thread atomic read/write registers.
//
// The paper's model is atomic registers only; on real hardware these are
// std::atomic cells with sequentially consistent accesses.  seq_cst is
// deliberate: the algorithms' correctness arguments (e.g. the
// flag-before-proposal ordering in consensus Algorithm 1, Fischer's gate)
// assume a single total order of register operations, which is exactly the
// guarantee of seq_cst — weakening individual accesses is an optimization
// the paper does not license.

#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace tfr::rt {

template <class T>
class AtomicRegister {
  static_assert(std::is_trivially_copyable_v<T>,
                "registers hold plain values");

 public:
  AtomicRegister() : cell_(T{}) {}
  explicit AtomicRegister(T initial) : cell_(initial) {}

  AtomicRegister(const AtomicRegister&) = delete;
  AtomicRegister& operator=(const AtomicRegister&) = delete;

  T read() const { return cell_.load(std::memory_order_seq_cst); }
  void write(T value) { cell_.store(value, std::memory_order_seq_cst); }

  /// Whether the platform implements this register without a hidden lock.
  bool is_lock_free() const { return cell_.is_lock_free(); }

 private:
  std::atomic<T> cell_;
};

}  // namespace tfr::rt
