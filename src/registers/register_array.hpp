// Unbounded array of atomic registers for real threads.
//
// Algorithm 1 uses infinite arrays x[1..∞], y[1..∞]; rounds advance only
// under timing failures, so most executions touch a handful of cells but
// nothing bounds the index a priori.  The array is a two-level radix
// structure: a fixed spine of atomic segment pointers, segments allocated
// on first touch and published with a CAS.  Readers never block; a loser
// of the publication race deletes its segment.  Grown cells are pinned
// (never move), so references handed out stay valid for the array's
// lifetime.

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "tfr/common/contracts.hpp"
#include "tfr/registers/atomic_register.hpp"

namespace tfr::rt {

/// SegmentSize/MaxSegments trade footprint against capacity: the spine
/// costs MaxSegments pointers up front, segments SegmentSize registers
/// each on demand.  Composed objects (multi-valued consensus, the
/// universal construction) use small arrays; standalone instances can
/// afford the default 4M-register capacity.
template <class T, std::size_t SegmentSize = 1024,
          std::size_t MaxSegments = 4096>
class RegisterArray {
 public:
  static constexpr std::size_t kSegmentSize = SegmentSize;
  static constexpr std::size_t kMaxSegments = MaxSegments;

  explicit RegisterArray(T initial) : initial_(initial) {
    for (auto& slot : spine_) slot.store(nullptr, std::memory_order_relaxed);
  }

  RegisterArray(const RegisterArray&) = delete;
  RegisterArray& operator=(const RegisterArray&) = delete;

  ~RegisterArray() {
    for (auto& slot : spine_) delete slot.load(std::memory_order_acquire);
  }

  /// Register at `index`, allocating its segment on demand.  Thread-safe.
  AtomicRegister<T>& at(std::size_t index) {
    const std::size_t seg = index / kSegmentSize;
    const std::size_t off = index % kSegmentSize;
    TFR_REQUIRE(seg < kMaxSegments);
    Segment* segment = spine_[seg].load(std::memory_order_acquire);
    if (segment == nullptr) segment = publish_segment(seg);
    return segment->cells[off];
  }

  /// Read without allocating: `fallback` when the segment is absent (i.e.
  /// nobody has written near `index` yet, so it still holds the initial
  /// value by construction).
  T peek(std::size_t index, T fallback) const {
    const std::size_t seg = index / kSegmentSize;
    const std::size_t off = index % kSegmentSize;
    TFR_REQUIRE(seg < kMaxSegments);
    const Segment* segment = spine_[seg].load(std::memory_order_acquire);
    return segment ? segment->cells[off].read() : fallback;
  }

  /// Number of segments currently allocated (coarse space accounting).
  std::size_t segments_allocated() const {
    return segments_allocated_.load(std::memory_order_relaxed);
  }

  /// Registers backed by allocated segments.
  std::size_t registers_allocated() const {
    return segments_allocated() * kSegmentSize;
  }

 private:
  struct Segment {
    AtomicRegister<T> cells[kSegmentSize];
  };

  Segment* publish_segment(std::size_t seg) {
    auto fresh = std::make_unique<Segment>();
    // The segment is private until the CAS below succeeds, so plain writes
    // are race-free here; publication's release edge orders them for
    // readers.
    for (auto& cell : fresh->cells) cell.write(initial_);
    Segment* expected = nullptr;
    if (spine_[seg].compare_exchange_strong(expected, fresh.get(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      segments_allocated_.fetch_add(1, std::memory_order_relaxed);
      return fresh.release();
    }
    // Lost the race; `expected` holds the winner and `fresh` self-destroys.
    return expected;
  }

  T initial_;
  std::atomic<Segment*> spine_[kMaxSegments];
  std::atomic<std::size_t> segments_allocated_{0};
};

}  // namespace tfr::rt
