// Timing-failure injection for real-thread algorithms.
//
// On real hardware a timing failure is a step that takes longer than the
// assumed bound — preemption, a page fault, contention (§1.2).  We emulate
// these by stalling a thread *between* two register accesses at named
// injection points that the algorithms expose (e.g. Fischer's window
// between reading x = 0 and writing x := i).  This turns "run unlucky for
// long enough" into a controlled experiment.
//
// Determinism: each injection point owns its own visit counter and its own
// SplitMix64 stream seeded from (injector seed, point name).  Whether
// visit k of point P stalls is a pure function of (seed, P, k) — identical
// runs with identical per-point visit sequences fire identically, no
// matter how visits to *different* points interleave across threads.
//
// Thread safety: configure before the run; maybe_stall() is lock-free
// (one relaxed fetch_add plus arithmetic on immutable per-point state).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "tfr/common/contracts.hpp"
#include "tfr/common/rng.hpp"
#include "tfr/obs/trace.hpp"

namespace tfr::rt {

using Nanos = std::chrono::nanoseconds;

/// Busy-wait for at least `d`.  Spinning (rather than sleeping) keeps the
/// wait close to the requested duration — delay(Δ) should not itself
/// suffer a scheduler-induced timing failure whenever avoidable.
inline void spin_for(Nanos d) {
  const auto deadline = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait
  }
}

/// Waits for at least `d` without monopolizing a core: sleeps until
/// ~100 µs before the deadline, then busy-spins the tail for precision.
/// Use for coarse workload simulation (NCS/CS residency, injected
/// multi-ms stalls); keep spin_for for delay(Δ) itself, whose whole job
/// is to not suffer a scheduler-induced timing failure.
inline void sleep_spin_for(Nanos d) {
  constexpr Nanos kSpinTail{100'000};
  const auto deadline = std::chrono::steady_clock::now() + d;
  if (d > kSpinTail) std::this_thread::sleep_until(deadline - kSpinTail);
  while (std::chrono::steady_clock::now() < deadline) {
    // spin out the tail
  }
}

class FaultInjector {
 public:
  struct PointConfig {
    double probability = 0.0;  ///< chance each visit stalls
    Nanos stall{0};            ///< how long a stall lasts
    std::uint64_t always_on_visit = 0;  ///< if > 0: stall exactly that visit
  };

  explicit FaultInjector(std::uint64_t seed = 42)
      : seed_(seed), origin_(std::chrono::steady_clock::now()) {}

  /// Configures the named injection point.  Call before the threads start.
  void configure(std::string point, PointConfig config) {
    TFR_REQUIRE(config.probability >= 0.0 && config.probability <= 1.0);
    auto [it, inserted] = points_.try_emplace(std::move(point));
    it->second.config = config;
    it->second.visits.store(0, std::memory_order_relaxed);
    it->second.fired.store(0, std::memory_order_relaxed);
    it->second.stalled_ns.store(0, std::memory_order_relaxed);
    // Derive the point's private stream: hash the name into the seed so
    // distinct points draw from decorrelated SplitMix64 sequences.
    std::uint64_t s = seed_ ^ fnv1a(it->first);
    it->second.point_seed = splitmix64(s);
    it->second.label =
        sink_ != nullptr ? sink_->intern(it->first) : 0;
  }

  /// Emits a kStall event (time = ns since injector construction) for
  /// every injected stall.  Configure the sink before the points so labels
  /// resolve.  Event appends are lock-free.
  void set_trace_sink(obs::TraceSink* sink) {
    sink_ = sink;
    for (auto& [name, entry] : points_)
      entry.label = sink_ != nullptr ? sink_->intern(name) : 0;
  }

  /// Called by algorithms at their injection points.  Returns true if a
  /// stall was injected (so harnesses can count failures precisely).
  bool maybe_stall(std::string_view point) {
    auto it = points_.find(point);
    if (it == points_.end()) return false;
    Entry& entry = it->second;
    const std::uint64_t visit =
        entry.visits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    if (entry.config.always_on_visit > 0) {
      fire = visit == entry.config.always_on_visit;
    } else if (entry.config.probability > 0.0) {
      // One SplitMix64 draw at (point_seed, visit): deterministic for a
      // fixed per-point visit index, independent across points.
      std::uint64_t s = entry.point_seed + visit * 0x9e3779b97f4a7c15ULL;
      const std::uint64_t h = splitmix64(s);
      fire = static_cast<double>(h >> 11) * 0x1.0p-53 <
             entry.config.probability;
    }
    if (fire) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t fired =
          entry.fired.fetch_add(1, std::memory_order_relaxed) + 1;
      const std::uint64_t stalled_ns =
          entry.stalled_ns.fetch_add(
              static_cast<std::uint64_t>(entry.config.stall.count()),
              std::memory_order_relaxed) +
          static_cast<std::uint64_t>(entry.config.stall.count());
      if (sink_ != nullptr) {
        const auto since_origin =
            std::chrono::duration_cast<Nanos>(
                std::chrono::steady_clock::now() - origin_);
        sink_->append({since_origin.count(), -1, obs::EventKind::kStall,
                       entry.config.stall.count(),
                       static_cast<std::int64_t>(visit), entry.label});
        // Running per-point totals as a counter sample, so the Chrome
        // timeline grows a counter track per injection point.
        sink_->append({since_origin.count(), -1, obs::EventKind::kCounter,
                       static_cast<std::int64_t>(fired),
                       static_cast<std::int64_t>(stalled_ns), entry.label});
      }
      spin_for(entry.config.stall);
    }
    return fire;
  }

  std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// Stalls fired at `point` so far (0 for unknown points).
  std::uint64_t point_stalls(std::string_view point) const {
    const auto it = points_.find(point);
    return it == points_.end()
               ? 0
               : it->second.fired.load(std::memory_order_relaxed);
  }

  /// Total nanoseconds of stall injected at `point` so far.
  std::uint64_t point_stalled_ns(std::string_view point) const {
    const auto it = points_.find(point);
    return it == points_.end()
               ? 0
               : it->second.stalled_ns.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  struct Entry {
    PointConfig config;
    std::uint64_t point_seed = 0;  ///< immutable after configure()
    std::uint32_t label = 0;
    std::atomic<std::uint64_t> visits{0};
    std::atomic<std::uint64_t> fired{0};       ///< stalls injected here
    std::atomic<std::uint64_t> stalled_ns{0};  ///< total ns stalled here
  };

  std::uint64_t seed_;
  std::chrono::steady_clock::time_point origin_;
  obs::TraceSink* sink_ = nullptr;
  std::map<std::string, Entry, std::less<>> points_;
  std::atomic<std::uint64_t> stalls_{0};
};

/// Shared nullable injection handle: algorithms call through this so the
/// common case (no injector) costs one branch.
inline bool maybe_stall(FaultInjector* injector, std::string_view point) {
  return injector != nullptr && injector->maybe_stall(point);
}

}  // namespace tfr::rt
