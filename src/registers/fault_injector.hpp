// Timing-failure injection for real-thread algorithms.
//
// On real hardware a timing failure is a step that takes longer than the
// assumed bound — preemption, a page fault, contention (§1.2).  We emulate
// these by stalling a thread *between* two register accesses at named
// injection points that the algorithms expose (e.g. Fischer's window
// between reading x = 0 and writing x := i).  This turns "run unlucky for
// long enough" into a controlled experiment.
//
// Thread safety: configure before the run; maybe_stall() is lock-free and
// uses a hashed atomic counter for reproducible-ish probabilistic firing.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "tfr/common/contracts.hpp"
#include "tfr/common/rng.hpp"

namespace tfr::rt {

using Nanos = std::chrono::nanoseconds;

/// Busy-wait for at least `d`.  Spinning (rather than sleeping) keeps the
/// wait close to the requested duration — delay(Δ) should not itself
/// suffer a scheduler-induced timing failure whenever avoidable.
inline void spin_for(Nanos d) {
  const auto deadline = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait
  }
}

class FaultInjector {
 public:
  struct PointConfig {
    double probability = 0.0;  ///< chance each visit stalls
    Nanos stall{0};            ///< how long a stall lasts
    std::uint64_t always_on_visit = 0;  ///< if > 0: stall exactly that visit
  };

  explicit FaultInjector(std::uint64_t seed = 42) : seed_(seed) {}

  /// Configures the named injection point.  Call before the threads start.
  void configure(std::string point, PointConfig config) {
    TFR_REQUIRE(config.probability >= 0.0 && config.probability <= 1.0);
    auto [it, inserted] = points_.try_emplace(std::move(point));
    it->second.config = config;
    it->second.visits.store(0, std::memory_order_relaxed);
  }

  /// Called by algorithms at their injection points.  Returns true if a
  /// stall was injected (so harnesses can count failures precisely).
  bool maybe_stall(std::string_view point) {
    auto it = points_.find(point);
    if (it == points_.end()) return false;
    Entry& entry = it->second;
    const std::uint64_t visit =
        entry.visits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    if (entry.config.always_on_visit > 0) {
      fire = visit == entry.config.always_on_visit;
    } else if (entry.config.probability > 0.0) {
      // Hash the visit number into a uniform [0,1) draw; deterministic for
      // a fixed arrival order, merely well-mixed otherwise.
      std::uint64_t s = seed_ ^ (visit * 0x9e3779b97f4a7c15ULL);
      const std::uint64_t h = splitmix64(s);
      fire = static_cast<double>(h >> 11) * 0x1.0p-53 <
             entry.config.probability;
    }
    if (fire) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      spin_for(entry.config.stall);
    }
    return fire;
  }

  std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    PointConfig config;
    std::atomic<std::uint64_t> visits{0};
  };

  std::uint64_t seed_;
  std::map<std::string, Entry, std::less<>> points_;
  std::atomic<std::uint64_t> stalls_{0};
};

/// Shared nullable injection handle: algorithms call through this so the
/// common case (no injector) costs one branch.
inline bool maybe_stall(FaultInjector* injector, std::string_view point) {
  return injector != nullptr && injector->maybe_stall(point);
}

}  // namespace tfr::rt
