// Open-loop workload generator: millions of client sessions arriving at a
// configured rate, independent of how fast the service drains them.
//
// Closed-loop drivers (k coroutines looping request -> response) cannot
// saturate a service: offered load self-throttles to the service rate and
// overload never happens.  Production traffic is open-loop — users arrive
// whether or not the shard is keeping up — so the generator schedules
// arrivals purely from the configured rate and the clock.
//
// Scale trick: one session does NOT get one coroutine (a million
// coroutines would drown the event queue).  A single generator process
// wakes every `tick` ticks, materialises the arrivals that accumulated
// (fractional rates carry over), routes each session to its shard by a
// deterministic hash, and offers it to the shard's bounded queue.  A
// rejected session becomes a pending retry in a host-side min-heap, due
// after max(queue's retry-after hint, RetryPolicy backoff for that
// attempt) plus deterministic jitter — the client side of the
// reject/retry-after contract, and the mechanism by which overload turns
// into a measurable retry storm.  After `max_attempts` offers the session
// is shed (counted, never silently dropped).
//
// Amplification — offered pushes divided by sessions — is the storm
// metric: 1.0 when every session is admitted first try, bounded above by
// `max_attempts` by construction.

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "tfr/msg/abd.hpp"
#include "tfr/obs/trace.hpp"
#include "tfr/service/queue.hpp"
#include "tfr/sim/simulation.hpp"

namespace tfr::service {

struct LoadConfig {
  std::uint64_t sessions = 0;     ///< total client sessions to generate
  double arrivals_per_tick = 0.5; ///< offered rate (sessions per tick)
  sim::Duration tick = 50;        ///< generator wake period
  /// Client retry discipline on rejection: backoff/backoff_growth/
  /// max_backoff/jitter are used (the timeout fields govern ABD ack
  /// windows and are ignored here).
  msg::RetryPolicy retry;
  int max_attempts = 6;           ///< total offers per session before shed
  std::uint64_t route_seed = 1;   ///< session -> shard hash seed
};

class LoadGen {
 public:
  /// `queues` holds one admission queue per shard; sessions are routed by
  /// hash(session) % queues.size().  Queues must outlive the generator.
  LoadGen(LoadConfig config, std::vector<BoundedQueue*> queues);

  /// The generator process.  Spawn with start = sim.now() once the shard
  /// leaders are elected.
  sim::Process run(sim::Env env);

  /// True once every session has been resolved at the generator: admitted
  /// to some queue, or shed.
  bool finished() const { return finished_; }

  std::uint64_t sessions_started() const { return started_; }
  std::uint64_t offered_pushes() const { return offered_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t shed() const { return shed_; }
  std::size_t max_retry_heap() const { return max_retry_heap_; }

  /// Offered pushes per session — the retry-storm amplification factor.
  /// 1.0 = no storm; bounded above by max_attempts by construction.
  double amplification() const {
    return started_ == 0
               ? 0.0
               : static_cast<double>(offered_) / static_cast<double>(started_);
  }

 private:
  struct PendingRetry {
    sim::Time due = 0;
    Request request;
    int shard = 0;
    /// Min-heap by due time; session id breaks ties deterministically.
    friend bool operator>(const PendingRetry& x, const PendingRetry& y) {
      if (x.due != y.due) return x.due > y.due;
      return x.request.session > y.request.session;
    }
  };

  void offer(sim::Env& env, Request request, int shard);
  int route(std::uint64_t session) const;
  sim::Duration backoff_for(std::uint64_t session, int attempt) const;
  void emit_counters(sim::Env& env);

  LoadConfig cfg_;
  std::vector<BoundedQueue*> queues_;
  std::priority_queue<PendingRetry, std::vector<PendingRetry>,
                      std::greater<PendingRetry>>
      retries_;
  std::uint64_t started_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::size_t max_retry_heap_ = 0;
  bool finished_ = false;
  std::uint32_t label_offered_ = 0;
  std::uint32_t label_rejected_ = 0;
  std::uint64_t last_emitted_offered_ = 0;
  std::uint64_t last_emitted_rejected_ = 0;
};

}  // namespace tfr::service
