#include "tfr/service/queue.hpp"

#include <algorithm>

namespace tfr::service {

BoundedQueue::BoundedQueue(std::size_t capacity, sim::Duration drain_hint)
    : capacity_(capacity), drain_hint_(drain_hint < 1 ? 1 : drain_hint) {}

std::optional<Backpressure> BoundedQueue::try_push(Request request,
                                                   sim::Time now) {
  ++offered_;
  if (items_.size() >= capacity_) {
    ++rejected_;
    // Full-drain estimate: the earliest a slot is *guaranteed* free is one
    // serviced request away, but under sustained overload the honest hint
    // is proportional to the backlog the client would queue behind.
    const auto depth = static_cast<sim::Duration>(items_.size());
    return Backpressure{drain_hint_ * depth};
  }
  ++admitted_;
  request.admitted = now;
  items_.push_back(request);
  max_depth_ = std::max(max_depth_, items_.size());
  return std::nullopt;
}

std::size_t BoundedQueue::pop_into(std::vector<Request>& out,
                                   std::size_t max) {
  const std::size_t take = std::min(max, items_.size());
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(items_.front());
    items_.pop_front();
  }
  return take;
}

}  // namespace tfr::service
