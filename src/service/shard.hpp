// One service shard: an n-replica ABD cluster with an elected leader
// frontend draining the shard's admission queue in batches.
//
// Each shard is a self-contained replica group — its own Network (client +
// server endpoint per replica), its own NetAdversary and
// ConvergenceMonitor — so a partial outage can hit a subset of shards
// while the rest keep serving, exactly the blast-radius story sharding is
// for.  All shards share one Simulation (one virtual clock).
//
// Boot: every replica runs MsgElection::elect over the shard's ABD space
// (resilient bitwise agreement — safety never depends on delivery
// timing).  Each replica reuses ONE AbdClient for election and, on the
// leader, for the frontend afterwards: AbdClient request-ids are scoped
// per client endpoint, so a second client on the same endpoint would race
// its twin's acks.
//
// Serve: the leader pulls admitted requests through the Batcher and
// commits one replicated record per batch (quorum write + read-back) to
// the shard's data register.  The read-back must return the leader's own
// write — the shard register is single-writer — so any mismatch is a
// safety bug, counted in readback_mismatches() and expected to be zero.
//
// Outage accounting: mark_outage(heal) arms the drain clock — drained_at()
// records the first instant after the heal at which the backlog dropped
// below one batch, giving the post-heal convergence time the bench gates.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tfr/msg/abd.hpp"
#include "tfr/msg/adversary.hpp"
#include "tfr/msg/convergence.hpp"
#include "tfr/msg/election_msg.hpp"
#include "tfr/service/batcher.hpp"
#include "tfr/service/queue.hpp"
#include "tfr/sim/simulation.hpp"

namespace tfr::service {

struct ShardConfig {
  int id = 0;
  int replicas = 3;
  sim::Duration delta = 50;        ///< step bound (election round pacing)
  msg::RetryPolicy abd_retry;      ///< hardened quorum retry discipline
  BatchPolicy batch;
  std::size_t queue_capacity = 4096;
  sim::Duration drain_hint = 8;    ///< ticks per queued request (retry-after)
  sim::Duration poll_every = 50;   ///< frontend idle poll period
  int data_reg = 1 << 18;          ///< logical register id (above election's)

  /// Adaptive optimistic(Δ): when set, the shard's AbdClients report
  /// window expiries / clean quorums / phase RTTs to this controller (see
  /// msg::AbdClient::set_delta_controller), and — with batch_wait_deltas
  /// > 0 — the frontend retunes the batch deadline each iteration to
  /// ceil(controller->current() * batch_wait_deltas), so batch latency
  /// tracks the currently observed step time instead of a static guess.
  adapt::DeltaController* controller = nullptr;
  double batch_wait_deltas = 0.0;

  /// Register emulation the shard's AbdClients run (stock, per-peer
  /// windows, per-peer + fast read) — the seam E20/E22 swap variants
  /// through.  All variants are linearizable; see msg::RegisterVariant.
  msg::RegisterVariant register_variant = msg::RegisterVariant::kStock;

  /// Heterogeneous replicas: per-replica channel faults applied to every
  /// channel touching the replica's two endpoints (client + server), both
  /// directions — one slow replica, one lossy replica, etc.
  struct ReplicaFaults {
    int replica = 0;
    msg::ChannelFaults faults;
  };
  std::vector<ReplicaFaults> replica_faults;
};

class Shard {
 public:
  /// Callback invoked by the frontend once per served request, at batch
  /// commit time — the session's response instant.
  using ServedFn = std::function<void(const Request&, sim::Time)>;

  Shard(sim::Simulation& sim, ShardConfig config);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Spawns the shard's replicas: n ABD servers + n participants (each
  /// elects; the winner becomes the frontend).  Call once, before run.
  void spawn(ServedFn on_served);

  /// True once every replica has learned the leader.
  bool elected() const {
    return election_->monitor().decided_count() ==
           static_cast<std::size_t>(cfg_.replicas);
  }
  int leader() const { return leader_; }
  sim::Time elected_at() const { return elected_at_; }

  BoundedQueue& queue() { return queue_; }
  msg::Network& network() { return *net_; }
  msg::NetAdversary& adversary() { return adversary_; }
  msg::ConvergenceMonitor& monitor() { return monitor_; }
  const ShardConfig& config() const { return cfg_; }

  /// Starts the post-heal drain clock: drained_at() records the first
  /// instant >= heal at which the backlog fell below one batch.
  void mark_outage(sim::Time heal) { heal_mark_ = heal; }
  sim::Time drained_at() const { return drained_at_; }

  std::uint64_t served() const { return served_; }
  std::uint64_t batches() const { return batch_seq_; }
  std::uint64_t size_flushes() const { return batcher_.size_flushes(); }
  std::uint64_t deadline_flushes() const { return batcher_.deadline_flushes(); }
  std::uint64_t readback_mismatches() const { return readback_mismatches_; }
  sim::Time last_served_at() const { return last_served_at_; }
  std::uint64_t abd_retries() const;
  std::uint64_t abd_operations() const;
  std::uint64_t abd_fast_reads() const;
  std::uint64_t abd_fast_read_misses() const;

  /// Re-points every replica's AbdClient at `variant` (the ShardConfig
  /// field covers construction; this covers tests and A/B sweeps that
  /// flip an existing shard between operations).
  void set_register_variant(msg::RegisterVariant variant);

 private:
  sim::Process node_main(sim::Env env, int node);
  sim::Task<void> serve(sim::Env env, msg::AbdClient& client);
  void emit_depth(sim::Env& env);

  sim::Simulation& sim_;
  ShardConfig cfg_;
  std::unique_ptr<msg::Network> net_;
  msg::NetAdversary adversary_;
  msg::ConvergenceMonitor monitor_;
  std::unique_ptr<msg::MsgElection> election_;
  std::vector<std::unique_ptr<msg::AbdClient>> clients_;
  BoundedQueue queue_;
  Batcher batcher_;
  ServedFn on_served_;

  int leader_ = -1;
  sim::Time elected_at_ = -1;
  std::uint64_t batch_seq_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t readback_mismatches_ = 0;
  sim::Time last_served_at_ = -1;
  sim::Time heal_mark_ = -1;
  sim::Time drained_at_ = -1;
  std::uint32_t label_depth_ = 0;
};

}  // namespace tfr::service
