// The shard-scale service scenario: S shards x (ABD register + leader
// election) behind an open-loop generator — the repo's "millions of
// client sessions" workload axis (ROADMAP north star; docs/MODEL.md
// "Service scenario").
//
// run_service() is the whole story in one call:
//   1. boot    — spawn every shard's replicas; run until all leaders are
//                elected (resilient MsgElection per shard);
//   2. outage  — optionally cut the leader endpoint of a subset of shards
//                for a window [begin, heal) (NetAdversary partition) and
//                arm each affected shard's convergence bound;
//   3. load    — spawn the LoadGen at the current instant and run until
//                every session is resolved (served by a leader or shed by
//                the generator after max_attempts rejections);
//   4. report  — aggregate throughput, end-to-end latency samples, queue /
//                backpressure / retry-storm counters, per-shard ABD stats,
//                linearizability + bounded-convergence verdicts, and the
//                post-heal drain time of the slowest affected shard.
//
// Everything is deterministic for a fixed config (one virtual clock, one
// seed, hash routing, deterministic jitter): same seed => byte-identical
// trace — the property the Service determinism test pins.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfr/common/stats.hpp"
#include "tfr/obs/trace.hpp"
#include "tfr/service/loadgen.hpp"
#include "tfr/service/shard.hpp"

namespace tfr::service {

struct ServiceConfig {
  int shards = 4;
  ShardConfig shard;  ///< template; id is overridden per shard
  LoadConfig load;
  std::uint64_t sim_seed = 1;
  sim::Duration step = 50;  ///< access-cost upper bound (the delta unit)

  /// Partial outage: cut the leader client endpoint of each listed shard
  /// for [begin, heal) ticks after the workload starts.  Empty = no
  /// outage.
  struct Outage {
    std::vector<int> shards;
    sim::Duration begin = 0;
    sim::Duration heal = 0;
  } outage;
  sim::Duration convergence_bound = 0;  ///< post-heal bound (0 = unchecked)

  obs::TraceSink* sink = nullptr;  ///< optional trace (determinism tests)
  sim::Time limit = 8'000'000'000;
};

struct ServiceReport {
  // Boot.
  bool all_elected = false;
  sim::Time elected_at = -1;  ///< slowest shard's election finish
  sim::Time workload_start = -1;

  // Sessions.
  std::uint64_t sessions = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  sim::Time finished_at = -1;  ///< last batch commit instant
  Samples latency;             ///< per served session, ticks end-to-end

  // Backpressure / retry storm.
  std::uint64_t offered_pushes = 0;
  std::uint64_t rejected = 0;
  double amplification = 0.0;
  std::size_t max_queue_depth = 0;
  std::size_t max_retry_heap = 0;

  // Batching / replication.
  std::uint64_t batches = 0;
  std::uint64_t size_flushes = 0;
  std::uint64_t deadline_flushes = 0;
  std::uint64_t abd_operations = 0;
  std::uint64_t abd_retries = 0;
  std::uint64_t abd_fast_reads = 0;
  std::uint64_t abd_fast_read_misses = 0;
  std::uint64_t readback_mismatches = 0;

  // Safety / convergence (aggregated over every shard's monitor).
  bool linearizable = true;
  bool converged = true;
  std::uint64_t unfinished = 0;
  std::uint64_t safety_violations = 0;
  sim::Duration worst_lag = 0;

  // Outage drain: max over affected shards of (drained_at - heal); -1
  // when no outage was configured (or a shard never drained).
  sim::Time outage_heal = -1;
  sim::Duration heal_drain = -1;

  /// Every session accounted for: served or deliberately shed.
  bool complete() const { return served + shed == sessions; }

  /// Served sessions per delta of workload time.
  double throughput_per_delta(sim::Duration step) const {
    const sim::Duration elapsed = finished_at - workload_start;
    if (elapsed <= 0) return 0.0;
    return static_cast<double>(served) * static_cast<double>(step) /
           static_cast<double>(elapsed);
  }
};

/// Runs the full scenario (boot, optional outage, load, drain) in one
/// fresh Simulation and returns the aggregated report.
ServiceReport run_service(const ServiceConfig& config);

}  // namespace tfr::service
