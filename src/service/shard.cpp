#include "tfr/service/shard.hpp"

#include <algorithm>
#include <cmath>

namespace tfr::service {

Shard::Shard(sim::Simulation& sim, ShardConfig config)
    : sim_(sim),
      cfg_(config),
      adversary_(0x5eedULL + static_cast<std::uint64_t>(config.id)),
      queue_(config.queue_capacity, config.drain_hint),
      batcher_(config.batch) {
  const int n = cfg_.replicas;
  net_ = std::make_unique<msg::Network>(sim_.space(), 2 * n);
  net_->set_adversary(&adversary_);
  monitor_.set_adversary(&adversary_);
  election_ = std::make_unique<msg::MsgElection>(*net_, n, cfg_.delta,
                                                 cfg_.abd_retry);
  election_->monitor().throw_on_violation(false);
  for (int i = 0; i < n; ++i) {
    clients_.push_back(
        std::make_unique<msg::AbdClient>(*net_, i, n, cfg_.abd_retry));
    clients_.back()->set_monitor(&monitor_);
    if (cfg_.controller != nullptr)
      clients_.back()->set_delta_controller(cfg_.controller);
    clients_.back()->set_variant(cfg_.register_variant);
  }
  // Heterogeneous replicas: the configured faults cover every channel
  // touching the replica's client and server endpoints, both directions —
  // the replica is slow/lossy as a box, not per edge.
  for (const auto& rf : cfg_.replica_faults) {
    for (const int endpoint : {rf.replica, n + rf.replica}) {
      for (int other = 0; other < 2 * n; ++other) {
        if (other == endpoint) continue;
        adversary_.set_channel_faults(endpoint, other, rf.faults);
        adversary_.set_channel_faults(other, endpoint, rf.faults);
      }
    }
  }
}

void Shard::set_register_variant(msg::RegisterVariant variant) {
  cfg_.register_variant = variant;
  for (const auto& c : clients_) c->set_variant(variant);
}

void Shard::spawn(ServedFn on_served) {
  on_served_ = std::move(on_served);
  const int n = cfg_.replicas;
  for (int i = 0; i < n; ++i) {
    election_->monitor().set_input(i, i);
    sim_.spawn([this, i](sim::Env env) { return node_main(env, i); });
  }
  for (int i = 0; i < n; ++i) {
    sim_.spawn([this, i, n](sim::Env env) {
      return msg::abd_server(env, *net_, i, n);
    });
  }
}

sim::Process Shard::node_main(sim::Env env, int node) {
  msg::AbdClient& client = *clients_[static_cast<std::size_t>(node)];
  const int winner = co_await election_->elect(env, client, node);
  election_->monitor().on_decide(node, winner, env.now());
  if (node != winner) co_return;
  leader_ = winner;
  elected_at_ = env.now();
  co_await serve(env, client);
}

sim::Task<void> Shard::serve(sim::Env env, msg::AbdClient& client) {
  for (;;) {
    const sim::Time now = env.now();
    // Adaptive batch deadline: track the controller's current Δ estimate
    // so deadline flushes stay proportional to observed step time.
    if (cfg_.controller != nullptr && cfg_.batch_wait_deltas > 0) {
      batcher_.set_max_wait(static_cast<sim::Duration>(
          std::ceil(static_cast<double>(cfg_.controller->current()) *
                    cfg_.batch_wait_deltas)));
    }
    // Post-heal drain clock: the outage backlog counts as worked off once
    // what is waiting (queue + pending batch) fits in a single batch
    // again.  Checked at the loop top so time spent blocked in a healing
    // quorum op counts against the drain.
    if (heal_mark_ >= 0 && drained_at_ < 0 && now >= heal_mark_ &&
        queue_.size() + batcher_.size() <= batcher_.policy().max_batch)
      drained_at_ = now;
    batcher_.fill_from(queue_);
    if (!batcher_.should_flush(now)) {
      sim::Duration wait = cfg_.poll_every;
      if (!batcher_.empty()) {
        const sim::Duration budget =
            batcher_.policy().max_wait - (now - batcher_.oldest_admitted());
        wait = std::clamp(budget, sim::Duration{1}, cfg_.poll_every);
      }
      co_await env.delay(wait);
      continue;
    }
    std::vector<Request> batch = batcher_.take();
    ++batch_seq_;
    // One replicated record per batch: sequence number + size, so the
    // read-back also validates the batch identity, not just freshness.
    const auto summary = static_cast<std::int64_t>(
        (batch_seq_ << 20) | static_cast<std::uint64_t>(batch.size()));
    co_await client.write(env, cfg_.data_reg, summary);
    const std::int64_t readback = co_await client.read(env, cfg_.data_reg);
    if (readback != summary) ++readback_mismatches_;
    const sim::Time done = env.now();
    served_ += batch.size();
    last_served_at_ = done;
    for (const Request& request : batch) on_served_(request, done);
    emit_depth(env);
  }
}

void Shard::emit_depth(sim::Env& env) {
  sim::Simulation& s = env.sim();
  if (s.trace_sink() == nullptr) return;
  if (label_depth_ == 0) {
    label_depth_ =
        s.trace_label("svc.shard" + std::to_string(cfg_.id) + ".depth");
  }
  s.emit({env.now(), env.pid(), obs::EventKind::kCounter,
          static_cast<std::int64_t>(queue_.size()),
          static_cast<std::int64_t>(served_), label_depth_});
}

std::uint64_t Shard::abd_retries() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->retries();
  return total;
}

std::uint64_t Shard::abd_operations() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->operations();
  return total;
}

std::uint64_t Shard::abd_fast_reads() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->fast_reads();
  return total;
}

std::uint64_t Shard::abd_fast_read_misses() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->fast_read_misses();
  return total;
}

}  // namespace tfr::service
