#include "tfr/service/loadgen.hpp"

#include <algorithm>
#include <cmath>

namespace tfr::service {

namespace {

/// SplitMix64 — the same mixing the NetAdversary and AbdClient jitter use,
/// so routing and retry jitter are pure functions of their inputs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

LoadGen::LoadGen(LoadConfig config, std::vector<BoundedQueue*> queues)
    : cfg_(config), queues_(std::move(queues)) {}

int LoadGen::route(std::uint64_t session) const {
  const std::uint64_t h = mix64(session ^ (cfg_.route_seed << 32));
  return static_cast<int>(h % queues_.size());
}

sim::Duration LoadGen::backoff_for(std::uint64_t session, int attempt) const {
  const msg::RetryPolicy& p = cfg_.retry;
  double pause = static_cast<double>(p.backoff);
  for (int i = 1; i < attempt; ++i) pause *= p.backoff_growth;
  if (p.max_backoff > 0)
    pause = std::min(pause, static_cast<double>(p.max_backoff));
  auto wait = static_cast<sim::Duration>(pause);
  if (p.jitter > 0) {
    const std::uint64_t h =
        mix64(session * 0x100000001b3ULL + static_cast<std::uint64_t>(attempt));
    wait += static_cast<sim::Duration>(
        h % static_cast<std::uint64_t>(p.jitter + 1));
  }
  return wait;
}

void LoadGen::offer(sim::Env& env, Request request, int shard) {
  ++offered_;
  ++request.attempts;
  const sim::Time now = env.now();
  const auto verdict =
      queues_[static_cast<std::size_t>(shard)]->try_push(request, now);
  if (!verdict.has_value()) {
    ++admitted_;
    return;
  }
  ++rejected_;
  if (request.attempts >= cfg_.max_attempts) {
    ++shed_;
    return;
  }
  // Respect the server's retry-after hint, but never come back faster
  // than the client's own exponential backoff for this attempt.
  const sim::Duration pause = std::max(
      verdict->retry_after, backoff_for(request.session, request.attempts));
  retries_.push(PendingRetry{now + pause, request, shard});
  max_retry_heap_ = std::max(max_retry_heap_, retries_.size());
}

void LoadGen::emit_counters(sim::Env& env) {
  sim::Simulation& s = env.sim();
  if (s.trace_sink() == nullptr) return;
  if (label_offered_ == 0) label_offered_ = s.trace_label("svc.offered");
  if (label_rejected_ == 0) label_rejected_ = s.trace_label("svc.rejected");
  if (offered_ != last_emitted_offered_) {
    s.emit({env.now(), env.pid(), obs::EventKind::kCounter,
            static_cast<std::int64_t>(offered_),
            static_cast<std::int64_t>(admitted_), label_offered_});
    last_emitted_offered_ = offered_;
  }
  if (rejected_ != last_emitted_rejected_) {
    s.emit({env.now(), env.pid(), obs::EventKind::kCounter,
            static_cast<std::int64_t>(rejected_),
            static_cast<std::int64_t>(shed_), label_rejected_});
    last_emitted_rejected_ = rejected_;
  }
}

sim::Process LoadGen::run(sim::Env env) {
  double carry = 0.0;
  std::uint64_t next_session = 0;
  while (next_session < cfg_.sessions || !retries_.empty()) {
    co_await env.delay(cfg_.tick);
    const sim::Time now = env.now();
    // Due retries first: they have been waiting longer than any fresh
    // arrival this tick.
    while (!retries_.empty() && retries_.top().due <= now) {
      const PendingRetry r = retries_.top();
      retries_.pop();
      offer(env, r.request, r.shard);
    }
    if (next_session < cfg_.sessions) {
      // Open-loop rate is per sim tick; one wake covers `tick` of them.
      carry += cfg_.arrivals_per_tick * static_cast<double>(cfg_.tick);
      auto batch = static_cast<std::uint64_t>(carry);
      carry -= static_cast<double>(batch);
      batch = std::min(batch, cfg_.sessions - next_session);
      for (std::uint64_t i = 0; i < batch; ++i) {
        Request request;
        request.session = next_session++;
        request.first_offered = now;
        ++started_;
        offer(env, request, route(request.session));
      }
    }
    emit_counters(env);
  }
  finished_ = true;
}

}  // namespace tfr::service
