// Size-or-deadline request batching for the shard frontend.
//
// One ABD round trip costs ~35-40 steps at n=3 (E19's finish_steps), so
// writing one replicated record per client session would cap a shard at
// a few sessions per delta.  The frontend instead coalesces admitted
// requests into batches and performs one replicated write (plus read-back)
// per batch, amortising the quorum cost across up to `max_batch` sessions.
//
// Flush policy is the classic size-or-deadline pair:
//   * size:     the pending batch reached `max_batch` — flush now, the
//               quorum write is fully amortised;
//   * deadline: the oldest pending request has waited `max_wait` ticks
//               since admission — flush a partial batch so light load
//               still sees bounded latency instead of waiting forever
//               for the batch to fill.
// The deadline anchors on the oldest pending request's *admission* time
// (not on when the frontend noticed it), so time a request spent queued
// behind a slow quorum write counts against its deadline.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tfr/service/queue.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::service {

struct BatchPolicy {
  std::size_t max_batch = 256;   ///< size flush threshold (requests)
  sim::Duration max_wait = 200;  ///< deadline flush threshold (ticks)
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy) : policy_(policy) {}

  /// Pulls requests from `queue` until the pending batch is full.
  void fill_from(BoundedQueue& queue) {
    if (pending_.size() >= policy_.max_batch) return;
    queue.pop_into(pending_, policy_.max_batch - pending_.size());
  }

  /// True when the pending batch must be flushed: full, or the oldest
  /// pending request has waited out the deadline.
  bool should_flush(sim::Time now) const {
    if (pending_.size() >= policy_.max_batch) return true;
    if (pending_.empty()) return false;
    return now - pending_.front().admitted >= policy_.max_wait;
  }

  /// Hands over the pending batch (classifying the flush as size- or
  /// deadline-triggered for the counters) and resets.
  std::vector<Request> take() {
    if (pending_.size() >= policy_.max_batch) {
      ++size_flushes_;
    } else {
      ++deadline_flushes_;
    }
    std::vector<Request> batch = std::move(pending_);
    pending_.clear();
    return batch;
  }

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Admission instant of the oldest pending request; -1 when empty.
  sim::Time oldest_admitted() const {
    return pending_.empty() ? -1 : pending_.front().admitted;
  }
  const BatchPolicy& policy() const { return policy_; }

  /// Retunes the deadline flush threshold; the frontend calls this each
  /// serve iteration when an adaptive Δ controller drives the batch
  /// deadline (Shard, ShardConfig::batch_wait_deltas).
  void set_max_wait(sim::Duration max_wait) {
    if (max_wait >= 1) policy_.max_wait = max_wait;
  }

  std::uint64_t size_flushes() const { return size_flushes_; }
  std::uint64_t deadline_flushes() const { return deadline_flushes_; }

 private:
  BatchPolicy policy_;
  std::vector<Request> pending_;
  std::uint64_t size_flushes_ = 0;
  std::uint64_t deadline_flushes_ = 0;
};

}  // namespace tfr::service
