#include "tfr/service/service.hpp"

#include <algorithm>

#include "tfr/sim/timing.hpp"

namespace tfr::service {

ServiceReport run_service(const ServiceConfig& config) {
  sim::Simulation s(sim::make_uniform_timing(1, config.step),
                    {.seed = config.sim_seed, .sink = config.sink});

  ServiceReport report;
  report.sessions = config.load.sessions;

  // --- Shards: spawn replicas; served sessions feed the latency samples.
  std::vector<std::unique_ptr<Shard>> shards;
  report.latency.reserve(static_cast<std::size_t>(config.load.sessions));
  for (int k = 0; k < config.shards; ++k) {
    ShardConfig sc = config.shard;
    sc.id = k;
    shards.push_back(std::make_unique<Shard>(s, sc));
    shards.back()->spawn([&report](const Request& request, sim::Time done) {
      ++report.served;
      report.latency.add(static_cast<double>(done - request.first_offered));
    });
  }

  // --- Boot: run until every shard's replicas agree on a leader.
  s.run(config.limit, [&shards] {
    return std::all_of(shards.begin(), shards.end(),
                       [](const auto& shard) { return shard->elected(); });
  });
  report.all_elected =
      std::all_of(shards.begin(), shards.end(),
                  [](const auto& shard) { return shard->elected(); });
  for (const auto& shard : shards)
    report.elected_at = std::max(report.elected_at, shard->elected_at());
  if (!report.all_elected) return report;

  report.workload_start = s.now();

  // --- Optional partial outage: cut each affected shard's leader client
  // endpoint for [begin, heal) after the workload starts.
  if (!config.outage.shards.empty()) {
    report.outage_heal = report.workload_start + config.outage.heal;
    for (const int k : config.outage.shards) {
      Shard& shard = *shards[static_cast<std::size_t>(k)];
      msg::Partition partition;
      partition.begin = report.workload_start + config.outage.begin;
      partition.heal = report.outage_heal;
      partition.group = {shard.leader()};
      shard.adversary().add_partition(partition);
      shard.adversary().arm(s);
      if (config.convergence_bound > 0)
        shard.monitor().set_bound(config.convergence_bound);
      shard.mark_outage(report.outage_heal);
    }
  }

  // --- Load: open-loop generator over the shard queues.
  std::vector<BoundedQueue*> queues;
  for (const auto& shard : shards) queues.push_back(&shard->queue());
  LoadGen gen(config.load, std::move(queues));
  s.spawn([&gen](sim::Env env) { return gen.run(env); }, s.now());
  s.run(config.limit, [&] {
    return gen.finished() && report.served + gen.shed() == config.load.sessions;
  });

  // --- Aggregate.
  report.shed = gen.shed();
  report.offered_pushes = gen.offered_pushes();
  report.rejected = gen.rejected();
  report.amplification = gen.amplification();
  report.max_retry_heap = gen.max_retry_heap();
  for (const auto& shard : shards) {
    report.max_queue_depth =
        std::max(report.max_queue_depth, shard->queue().max_depth());
    report.batches += shard->batches();
    report.size_flushes += shard->size_flushes();
    report.deadline_flushes += shard->deadline_flushes();
    report.abd_operations += shard->abd_operations();
    report.abd_retries += shard->abd_retries();
    report.abd_fast_reads += shard->abd_fast_reads();
    report.abd_fast_read_misses += shard->abd_fast_read_misses();
    report.readback_mismatches += shard->readback_mismatches();
    report.finished_at = std::max(report.finished_at, shard->last_served_at());
    const msg::ConvergenceMonitor::Report check = shard->monitor().check();
    report.linearizable &= check.linearizable;
    report.converged &= check.converged;
    report.unfinished += check.unfinished;
    report.worst_lag = std::max(report.worst_lag, check.worst_lag);
    report.safety_violations += shard->monitor().safety_violations();
  }
  if (!config.outage.shards.empty()) {
    for (const int k : config.outage.shards) {
      const Shard& shard = *shards[static_cast<std::size_t>(k)];
      if (shard.drained_at() < 0) {
        report.heal_drain = -1;
        break;
      }
      report.heal_drain =
          std::max(report.heal_drain, shard.drained_at() - report.outage_heal);
    }
  }
  return report;
}

}  // namespace tfr::service
