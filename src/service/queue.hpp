// Bounded admission queue with explicit backpressure — the front door of
// one service shard.
//
// The shard-scale scenario (docs/MODEL.md "Service scenario") models a
// production frontend: client sessions arrive open-loop (the world does
// not slow down because the server is busy), so an unbounded queue would
// hide overload as unbounded latency.  The BoundedQueue instead *rejects*
// when full and tells the client when to come back — the reject/retry-after
// discipline — turning overload into a measurable, bounded retry storm
// instead of memory growth.
//
// The retry-after hint is the queue's own drain estimate: `drain_hint`
// ticks per queued request (the shard's steady-state service cost per
// admitted request), times the current depth.  It is deliberately
// conservative — a client that comes back too early is just rejected
// again — and purely deterministic, so service runs replay byte-identically.
//
// The queue is host-local state of the shard frontend (like the network's
// read cursors): pushes and pops happen inside simulated processes, but
// the container itself is not a shared register — only one frontend
// coroutine ever pops, and the generator pushes between its own timed
// steps.  Contention for the *service* is modelled by the queue filling,
// not by memory contention on the queue cells.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "tfr/sim/types.hpp"

namespace tfr::service {

/// One client session's request, as it travels queue -> batch -> replica
/// write.  `first_offered` anchors the session's end-to-end latency: it is
/// set on the very first try_push and survives rejections, so a session
/// that was bounced and retried pays its full waiting time in the reported
/// percentiles.
struct Request {
  std::uint64_t session = 0;
  sim::Time first_offered = 0;  ///< first arrival instant (latency anchor)
  sim::Time admitted = 0;       ///< instant the queue accepted it
  int attempts = 0;             ///< offers so far (1 = admitted first try)
};

/// The rejection verdict: try again no earlier than `retry_after` ticks
/// from now.
struct Backpressure {
  sim::Duration retry_after = 0;
};

class BoundedQueue {
 public:
  /// `capacity` requests may wait; `drain_hint` is the expected service
  /// cost per queued request in ticks (feeds the retry-after hint).
  BoundedQueue(std::size_t capacity, sim::Duration drain_hint);

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admits `request` (stamping `admitted = now`) or rejects it with a
  /// retry-after hint.  Every call counts toward offered(); the verdict
  /// feeds admitted()/rejected().
  std::optional<Backpressure> try_push(Request request, sim::Time now);

  /// Pops up to `max` requests in FIFO order into `out` (appending).
  /// Returns how many were moved.
  std::size_t pop_into(std::vector<Request>& out, std::size_t max);

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Admission instant of the oldest waiting request; -1 when empty.
  sim::Time oldest_admitted() const {
    return items_.empty() ? -1 : items_.front().admitted;
  }

  std::uint64_t offered() const { return offered_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::size_t max_depth() const { return max_depth_; }

 private:
  std::size_t capacity_;
  sim::Duration drain_hint_;
  std::deque<Request> items_;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace tfr::service
