#include <algorithm>

#include "tfr/common/contracts.hpp"
#include "tfr/mutex/mutex_sim.hpp"

namespace tfr::mutex {

// Taubenfeld's black-white bakery (DISC 2004).  Tickets carry the colour
// of the shared colour bit read in the doorway; the waiting rule orders
// same-coloured tickets like the bakery, and gives the *old* generation
// (colour different from the current shared colour) priority over the new
// one.  A process leaving the CS flips the shared colour away from its
// own, which bounds every ticket by the number of processes.

BlackWhiteBakeryMutex::BlackWhiteBakeryMutex(sim::RegisterSpace& space, int n)
    : n_(n),
      color_(space, 0, "bw.color"),
      choosing_(space, 0, "bw.choosing"),
      ticket_(space, Ticket{}, "bw.ticket"),
      mycolor_(static_cast<std::size_t>(n), 0) {
  TFR_REQUIRE(n >= 1);
  choosing_.at(static_cast<std::size_t>(n - 1));
  ticket_.at(static_cast<std::size_t>(n - 1));
}

sim::Task<void> BlackWhiteBakeryMutex::enter(sim::Env env, int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  co_await env.write(choosing_.at(id), 1);
  const int mycolor = co_await env.read(color_);
  mycolor_[static_cast<std::size_t>(id)] = mycolor;
  // Take one more than the largest ticket of my own colour.
  int max_seen = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    const Ticket t = co_await env.read(ticket_.at(j));
    if (t.num != 0 && t.color == mycolor) max_seen = std::max(max_seen, t.num);
  }
  const int mine = max_seen + 1;
  max_ticket_ = std::max(max_ticket_, mine);
  co_await env.write(ticket_.at(id), Ticket{mycolor, mine});
  co_await env.write(choosing_.at(id), 0);

  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    for (;;) {  // await ¬choosing[j]
      const int cj = co_await env.read(choosing_.at(j));
      if (cj == 0) break;
    }
    for (;;) {
      const Ticket t = co_await env.read(ticket_.at(j));
      if (t.num == 0) break;  // j is not competing
      if (t.color == mycolor) {
        // Same generation: bakery order on (ticket, id).
        if (t.num > mine || (t.num == mine && j > id)) break;
      } else {
        // Different generations: the old one (colour != shared colour) has
        // priority.  We pass j iff we are the old generation.
        const int shared = co_await env.read(color_);
        if (shared != mycolor) break;
      }
    }
  }
}

sim::Task<void> BlackWhiteBakeryMutex::exit(sim::Env env, int id) {
  // Flip the shared colour away from ours, retiring our generation, then
  // return the ticket.
  co_await env.write(color_, 1 - mycolor_[static_cast<std::size_t>(id)]);
  co_await env.write(ticket_.at(id), Ticket{});
}

}  // namespace tfr::mutex
