// Workload harness for mutual-exclusion experiments: n processes cycling
// NCS → entry → CS → exit under a chosen timing model, with a MutexMonitor
// checking safety and recording the paper's time-complexity metric.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/sim/monitor.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::mutex {

struct WorkloadConfig {
  int processes = 2;
  /// Critical sections each process performs; <= 0 means "until the time
  /// limit" (long-lived run).
  int sessions = 10;
  sim::Duration cs_time = 10;    ///< time spent inside the CS
  sim::Duration ncs_time = 10;   ///< time spent in the NCS between sessions
  bool randomize_ncs = false;    ///< NCS uniform in [0, ncs_time]
  /// Count ME violations instead of throwing (for violation-rate sweeps).
  bool tolerate_violations = false;
};

/// One process's session loop; reports entry/CS/exit transitions to `mon`.
sim::Process mutex_sessions(sim::Env env, SimMutex& algorithm,
                            sim::MutexMonitor& mon, int id,
                            WorkloadConfig config);

struct WorkloadResult {
  sim::MutexMonitor monitor;          ///< full event record
  std::uint64_t violations = 0;       ///< ME violations observed
  std::uint64_t cs_entries = 0;
  sim::Duration time_complexity = 0;  ///< paper's metric over the whole run
  sim::Duration max_wait = 0;         ///< longest entry wait of any process
  std::uint64_t registers_allocated = 0;
  sim::Time end_time = 0;
  bool completed = false;  ///< every process finished its sessions
};

/// Builds the mutex inside a fresh simulation (via `make`), spawns
/// `config.processes` session loops, runs, and summarizes.  When `sink` is
/// given, the run emits structured trace events (accesses, entry/CS
/// transitions, ME violations).
WorkloadResult run_mutex_workload(
    const std::function<std::unique_ptr<SimMutex>(sim::RegisterSpace&)>& make,
    WorkloadConfig config, std::unique_ptr<sim::TimingModel> timing,
    std::uint64_t seed = 1, sim::Time limit = sim::kTimeNever,
    obs::TraceSink* sink = nullptr);

}  // namespace tfr::mutex
