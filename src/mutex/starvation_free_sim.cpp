#include "tfr/common/contracts.hpp"
#include "tfr/mutex/mutex_sim.hpp"

namespace tfr::mutex {

// The deadlock-free → starvation-free transformation using registers only
// (the paper credits Yoah Bar-David; cf. Taubenfeld's book, Problem 2.3.4;
// this presentation follows Raynal's).  A flag array and a round-robin
// TURN register form a doorway in front of the inner deadlock-free lock:
//
//   enter(i):  FLAG[i] := up
//              wait until TURN = i or FLAG[TURN] = down
//              inner.enter(i)
//   exit(i):   FLAG[i] := down
//              if FLAG[TURN] = down then TURN := (TURN + 1) mod n
//              inner.exit(i)
//
// Why it is starvation-free: TURN only advances past a competitor once
// that competitor's flag is down.  If TURN = j and j competes, every later
// arrival blocks at the doorway, the finitely many processes already past
// it drain (inner is deadlock-free), and then j — the only remaining
// competitor — enters; its own exit advances TURN.  So TURN sweeps the
// ring and every waiting process is eventually let through.
//
// Why it stays fast: the doorway costs 1 write + 2 reads when the lock is
// idle, so with a fast inner algorithm the contention-free entry remains a
// constant number of accesses — the property Algorithm 3 needs from A for
// its O(Δ) efficiency claim.

StarvationFreeMutex::StarvationFreeMutex(sim::RegisterSpace& space, int n,
                                         std::unique_ptr<SimMutex> inner)
    : n_(n),
      inner_(std::move(inner)),
      flag_(space, 0, "sf.flag"),
      turn_(space, 0, "sf.turn") {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(inner_ != nullptr);
  flag_.at(static_cast<std::size_t>(n - 1));
}

sim::Task<void> StarvationFreeMutex::enter(sim::Env env, int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  co_await env.write(flag_.at(id), 1);
  for (;;) {
    const int t = co_await env.read(turn_);
    if (t == id) break;
    const int holder_flag = co_await env.read(flag_.at(t));
    if (holder_flag == 0) break;
  }
  co_await inner_->enter(env, id);
}

sim::Task<void> StarvationFreeMutex::exit(sim::Env env, int id) {
  co_await env.write(flag_.at(id), 0);
  const int t = co_await env.read(turn_);
  const int holder_flag = co_await env.read(flag_.at(t));
  if (holder_flag == 0) co_await env.write(turn_, (t + 1) % n_);
  co_await inner_->exit(env, id);
}

}  // namespace tfr::mutex
