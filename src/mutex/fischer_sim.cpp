#include "tfr/common/contracts.hpp"
#include "tfr/mutex/mutex_sim.hpp"

namespace tfr::mutex {

// Algorithm 2 (paper §3.1):
//   1  repeat   await (x = 0)
//   2           x := i
//   3           delay(Δ)
//   4  until    x = i
//   5  critical section
//   6  x := 0
//
// The delay guarantees (absent timing failures) that after it completes,
// every process that read x = 0 before our write has finished its own
// write, so a surviving x = i certifies exclusive ownership.

FischerMutex::FischerMutex(sim::RegisterSpace& space, sim::Duration delta)
    : delta_(delta), x_(space, 0, "fischer.x") {
  TFR_REQUIRE(delta >= 1);
}

sim::Task<void> FischerMutex::enter(sim::Env env, int id) {
  const int me = id + 1;
  bool first_attempt = true;
  for (;;) {
    for (;;) {  // await (x = 0)
      const int x = co_await env.read(x_);
      if (x == 0) break;
    }
    co_await env.write(x_, me);
    co_await env.delay(controller_ != nullptr ? controller_->current()
                                              : delta_);
    const int check = co_await env.read(x_);
    if (check == me) {
      if (controller_ != nullptr && first_attempt) controller_->on_clean();
      co_return;
    }
    first_attempt = false;
    if (controller_ != nullptr) controller_->on_failure();
  }
}

sim::Task<void> FischerMutex::exit(sim::Env env, int id) {
  (void)id;
  co_await env.write(x_, 0);
}

}  // namespace tfr::mutex
