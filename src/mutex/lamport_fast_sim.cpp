#include "tfr/common/contracts.hpp"
#include "tfr/mutex/mutex_sim.hpp"

namespace tfr::mutex {

// Lamport, "A fast mutual exclusion algorithm" (TOCS 1987), Algorithm 2.
// Shared: x, y (gate, 0 = open), b[1..n].  Contention-free path: two writes
// (b[i], x), one read (y), one write (y), one read (x) — five accesses.
// Deadlock-free; a process can be overtaken forever (no starvation-
// freedom), which is exactly why Theorem 3.2 rejects it as the inner
// algorithm A of Algorithm 3.

LamportFastMutex::LamportFastMutex(sim::RegisterSpace& space, int n)
    : n_(n),
      x_(space, 0, "lamport.x"),
      y_(space, 0, "lamport.y"),
      b_(space, 0, "lamport.b") {
  TFR_REQUIRE(n >= 1);
  // Pre-size b so the register count is visible up front (Theorem 3.1
  // audits: n + 2 registers for n processes).
  b_.at(static_cast<std::size_t>(n - 1));
}

sim::Task<void> LamportFastMutex::enter(sim::Env env, int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  const int me = id + 1;
  for (;;) {  // start:
    co_await env.write(b_.at(id), 1);
    co_await env.write(x_, me);
    const int gate = co_await env.read(y_);
    if (gate != 0) {
      co_await env.write(b_.at(id), 0);
      for (;;) {  // await y = 0
        const int y = co_await env.read(y_);
        if (y == 0) break;
      }
      continue;  // goto start
    }
    co_await env.write(y_, me);
    const int last = co_await env.read(x_);
    if (last != me) {
      co_await env.write(b_.at(id), 0);
      for (int j = 0; j < n_; ++j) {
        for (;;) {  // await ¬b[j]
          const int bj = co_await env.read(b_.at(j));
          if (bj == 0) break;
        }
      }
      const int owner = co_await env.read(y_);
      if (owner != me) {
        for (;;) {  // await y = 0
          const int y = co_await env.read(y_);
          if (y == 0) break;
        }
        continue;  // goto start
      }
    }
    co_return;  // enter the critical section
  }
}

sim::Task<void> LamportFastMutex::exit(sim::Env env, int id) {
  co_await env.write(y_, 0);
  co_await env.write(b_.at(id), 0);
}

}  // namespace tfr::mutex
