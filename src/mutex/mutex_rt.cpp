#include "tfr/mutex/mutex_rt.hpp"

#include <algorithm>
#include <atomic>

#include "tfr/common/contracts.hpp"

namespace tfr::rt {

namespace {

/// Spin-wait step: be polite to the OS scheduler so oversubscribed runs
/// (more threads than cores) keep making progress.
inline void relax() { std::this_thread::yield(); }

std::unique_ptr<AtomicRegister<int>[]> make_int_registers(int n, int init) {
  auto regs = std::make_unique<AtomicRegister<int>[]>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) regs[static_cast<std::size_t>(i)].write(init);
  return regs;
}

}  // namespace

// --------------------------------------------------------------------------
// Fischer

FischerRt::FischerRt(Nanos delta, FaultInjector* faults)
    : delta_(delta), faults_(faults) {
  TFR_REQUIRE(delta.count() >= 0);
}

void FischerRt::lock(int id) {
  const int me = id + 1;
  for (;;) {
    while (x_.read() != 0) relax();  // await (x = 0)
    // The gate's vulnerable window: a stall here longer than Δ is exactly
    // the timing failure that breaks mutual exclusion (§3.1).
    maybe_stall(faults_, "fischer.gate");
    x_.write(me);
    spin_for(delta_);
    if (x_.read() == me) return;
  }
}

void FischerRt::unlock(int /*id*/) { x_.write(0); }

// --------------------------------------------------------------------------
// Lamport's fast mutex

LamportFastRt::LamportFastRt(int n) : n_(n), b_(make_int_registers(n, 0)) {
  TFR_REQUIRE(n >= 1);
}

void LamportFastRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  const int me = id + 1;
  for (;;) {  // start:
    b_[static_cast<std::size_t>(id)].write(1);
    x_.write(me);
    if (y_.read() != 0) {
      b_[static_cast<std::size_t>(id)].write(0);
      while (y_.read() != 0) relax();
      continue;
    }
    y_.write(me);
    if (x_.read() != me) {
      b_[static_cast<std::size_t>(id)].write(0);
      for (int j = 0; j < n_; ++j) {
        while (b_[static_cast<std::size_t>(j)].read() != 0) relax();
      }
      if (y_.read() != me) {
        while (y_.read() != 0) relax();
        continue;
      }
    }
    return;
  }
}

void LamportFastRt::unlock(int id) {
  y_.write(0);
  b_[static_cast<std::size_t>(id)].write(0);
}

// --------------------------------------------------------------------------
// Bakery

BakeryRt::BakeryRt(int n)
    : n_(n),
      choosing_(make_int_registers(n, 0)),
      number_(make_int_registers(n, 0)) {
  TFR_REQUIRE(n >= 1);
}

void BakeryRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  choosing_[static_cast<std::size_t>(id)].write(1);
  int max_seen = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    max_seen = std::max(max_seen, number_[static_cast<std::size_t>(j)].read());
  }
  const int mine = max_seen + 1;
  number_[static_cast<std::size_t>(id)].write(mine);
  choosing_[static_cast<std::size_t>(id)].write(0);
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    while (choosing_[static_cast<std::size_t>(j)].read() != 0) relax();
    for (;;) {
      const int nj = number_[static_cast<std::size_t>(j)].read();
      if (nj == 0 || nj > mine || (nj == mine && j > id)) break;
      relax();
    }
  }
}

void BakeryRt::unlock(int id) {
  number_[static_cast<std::size_t>(id)].write(0);
}

// --------------------------------------------------------------------------
// Black-white bakery

BlackWhiteBakeryRt::BlackWhiteBakeryRt(int n)
    : n_(n),
      choosing_(make_int_registers(n, 0)),
      ticket_(std::make_unique<AtomicRegister<Ticket>[]>(
          static_cast<std::size_t>(n))),
      mycolor_(static_cast<std::size_t>(n), 0) {
  TFR_REQUIRE(n >= 1);
  for (int i = 0; i < n; ++i)
    ticket_[static_cast<std::size_t>(i)].write(Ticket{});
}

void BlackWhiteBakeryRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  choosing_[static_cast<std::size_t>(id)].write(1);
  const int mycolor = color_.read();
  mycolor_[static_cast<std::size_t>(id)] = mycolor;
  int max_seen = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    const Ticket t = ticket_[static_cast<std::size_t>(j)].read();
    if (t.num != 0 && t.color == mycolor) max_seen = std::max(max_seen, t.num);
  }
  const int mine = max_seen + 1;
  ticket_[static_cast<std::size_t>(id)].write(
      Ticket{static_cast<std::int32_t>(mycolor),
             static_cast<std::int32_t>(mine)});
  choosing_[static_cast<std::size_t>(id)].write(0);
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    while (choosing_[static_cast<std::size_t>(j)].read() != 0) relax();
    for (;;) {
      const Ticket t = ticket_[static_cast<std::size_t>(j)].read();
      if (t.num == 0) break;
      if (t.color == mycolor) {
        if (t.num > mine || (t.num == mine && j > id)) break;
      } else {
        if (color_.read() != mycolor) break;  // we are the old generation
      }
      relax();
    }
  }
}

void BlackWhiteBakeryRt::unlock(int id) {
  color_.write(1 - mycolor_[static_cast<std::size_t>(id)]);
  ticket_[static_cast<std::size_t>(id)].write(Ticket{});
}

// --------------------------------------------------------------------------
// Starvation-free doorway

StarvationFreeRt::StarvationFreeRt(int n, std::unique_ptr<RtMutex> inner)
    : n_(n), inner_(std::move(inner)), flag_(make_int_registers(n, 0)) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(inner_ != nullptr);
}

void StarvationFreeRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  flag_[static_cast<std::size_t>(id)].write(1);
  for (;;) {
    const int t = turn_.read();
    if (t == id) break;
    if (flag_[static_cast<std::size_t>(t)].read() == 0) break;
    relax();
  }
  inner_->lock(id);
}

void StarvationFreeRt::unlock(int id) {
  flag_[static_cast<std::size_t>(id)].write(0);
  const int t = turn_.read();
  if (flag_[static_cast<std::size_t>(t)].read() == 0)
    turn_.write((t + 1) % n_);
  inner_->unlock(id);
}

// --------------------------------------------------------------------------
// Algorithm 3

TfrMutexRt::TfrMutexRt(Nanos delta, std::unique_ptr<RtMutex> inner,
                       FaultInjector* faults)
    : delta_(delta), inner_(std::move(inner)), faults_(faults) {
  TFR_REQUIRE(delta.count() >= 0);
  TFR_REQUIRE(inner_ != nullptr);
}

void TfrMutexRt::lock(int id) {
  const int me = id + 1;
  bool first_attempt = true;
  for (;;) {
    while (x_.read() != 0) relax();
    maybe_stall(faults_, "fischer.gate");
    x_.write(me);
    spin_for(delta_);
    if (x_.read() == me) break;
    first_attempt = false;
  }
  (first_attempt ? first_try_ : retried_)
      .fetch_add(1, std::memory_order_relaxed);
  inner_->lock(id);
}

void TfrMutexRt::unlock(int id) {
  inner_->unlock(id);
  if (x_.read() == id + 1) x_.write(0);
}

std::unique_ptr<TfrMutexRt> make_tfr_mutex_rt(int n, Nanos delta,
                                              FaultInjector* faults) {
  auto fast = std::make_unique<LamportFastRt>(n);
  auto a = std::make_unique<StarvationFreeRt>(n, std::move(fast));
  return std::make_unique<TfrMutexRt>(delta, std::move(a), faults);
}

// --------------------------------------------------------------------------
// Harness

RtWorkloadResult run_rt_mutex_workload(RtMutex& mutex,
                                       RtWorkloadConfig config) {
  TFR_REQUIRE(config.threads >= 1);
  TFR_REQUIRE(config.sessions >= 1);

  std::atomic<int> occupancy{0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> entries{0};
  std::atomic<std::int64_t> max_wait_ns{0};

  auto worker = [&](int id) {
    for (int s = 0; s < config.sessions; ++s) {
      if (config.ncs_time.count() > 0) spin_for(config.ncs_time);
      const auto wait_begin = std::chrono::steady_clock::now();
      mutex.lock(id);
      const auto waited = std::chrono::duration_cast<Nanos>(
                              std::chrono::steady_clock::now() - wait_begin)
                              .count();
      std::int64_t seen = max_wait_ns.load(std::memory_order_relaxed);
      while (waited > seen &&
             !max_wait_ns.compare_exchange_weak(seen, waited,
                                                std::memory_order_relaxed)) {
      }
      if (occupancy.fetch_add(1, std::memory_order_seq_cst) != 0)
        violations.fetch_add(1, std::memory_order_relaxed);
      entries.fetch_add(1, std::memory_order_relaxed);
      if (config.cs_time.count() > 0) spin_for(config.cs_time);
      occupancy.fetch_sub(1, std::memory_order_seq_cst);
      mutex.unlock(id);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.threads));
  for (int i = 0; i < config.threads; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  return RtWorkloadResult{
      .violations = violations.load(),
      .cs_entries = entries.load(),
      .max_wait = Nanos{max_wait_ns.load()},
      .wall_seconds = wall,
  };
}

}  // namespace tfr::rt
