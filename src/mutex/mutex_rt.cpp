#include "tfr/mutex/mutex_rt.hpp"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "tfr/common/contracts.hpp"

namespace tfr::rt {

// The production codegen: every target linking tfr_mutex shares these
// StdAtomics instantiations (the header's extern template declarations).
template class BasicFischerRt<StdAtomics>;
template class BasicLamportFastRt<StdAtomics>;
template class BasicBakeryRt<StdAtomics>;
template class BasicBlackWhiteBakeryRt<StdAtomics>;
template class BasicStarvationFreeRt<StdAtomics>;
template class BasicTfrMutexRt<StdAtomics>;

std::unique_ptr<TfrMutexRt> make_tfr_mutex_rt(int n, Nanos delta,
                                              FaultInjector* faults) {
  return make_basic_tfr_mutex<StdAtomics>(n, delta, faults);
}

namespace {

/// CPU time consumed by the whole process so far, in seconds.  Inside
/// run_rt_mutex_workload only the workload's threads run, so the delta
/// across the run is the workload's own CPU bill.
double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

// --------------------------------------------------------------------------
// Harness

RtWorkloadResult run_rt_mutex_workload(RtMutex& mutex,
                                       RtWorkloadConfig config) {
  TFR_REQUIRE(config.threads >= 1);
  TFR_REQUIRE(config.sessions >= 1);

  // raw-atomic-ok: harness instrumentation (occupancy probe and wait
  // statistics), not algorithm state — the seam verifies the locks, the
  // harness only measures them.
  std::atomic<int> occupancy{0};           // raw-atomic-ok: harness probe
  std::atomic<std::uint64_t> violations{0};  // raw-atomic-ok: harness probe
  std::atomic<std::uint64_t> entries{0};     // raw-atomic-ok: harness probe
  std::atomic<std::int64_t> max_wait_ns{0};  // raw-atomic-ok: harness probe
  std::vector<std::vector<std::int64_t>> waits(
      static_cast<std::size_t>(config.threads));

  auto worker = [&](int id) {
    auto& my_waits = waits[static_cast<std::size_t>(id)];
    my_waits.reserve(static_cast<std::size_t>(config.sessions));
    for (int s = 0; s < config.sessions; ++s) {
      if (config.ncs_time.count() > 0) sleep_spin_for(config.ncs_time);
      const auto wait_begin = std::chrono::steady_clock::now();
      mutex.lock(id);
      const auto waited = std::chrono::duration_cast<Nanos>(
                              std::chrono::steady_clock::now() - wait_begin)
                              .count();
      my_waits.push_back(waited);
      std::int64_t seen = max_wait_ns.load(std::memory_order_relaxed);  // mo-ok: statistic
      while (waited > seen &&
             !max_wait_ns.compare_exchange_weak(
                 seen, waited, std::memory_order_relaxed)) {  // mo-ok: statistic
      }
      if (occupancy.fetch_add(1, std::memory_order_seq_cst) != 0)
        violations.fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistic
      entries.fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistic
      if (config.cs_time.count() > 0) sleep_spin_for(config.cs_time);
      occupancy.fetch_sub(1, std::memory_order_seq_cst);
      mutex.unlock(id);
    }
  };

  const double cpu_start = process_cpu_seconds();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.threads));
  for (int i = 0; i < config.threads; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  const double cpu = process_cpu_seconds() - cpu_start;

  std::vector<std::int64_t> all_waits;
  all_waits.reserve(static_cast<std::size_t>(config.threads) *
                    static_cast<std::size_t>(config.sessions));
  for (auto& w : waits) all_waits.insert(all_waits.end(), w.begin(), w.end());
  std::sort(all_waits.begin(), all_waits.end());
  const std::size_t p99_index =
      all_waits.empty() ? 0 : (all_waits.size() * 99) / 100;
  const std::int64_t p99 =
      all_waits.empty()
          ? 0
          : all_waits[std::min(p99_index, all_waits.size() - 1)];

  return RtWorkloadResult{
      .violations = violations.load(),
      .cs_entries = entries.load(),
      .max_wait = Nanos{max_wait_ns.load()},
      .p99_wait = Nanos{p99},
      .wall_seconds = wall,
      .cpu_seconds = cpu,
  };
}

}  // namespace tfr::rt
