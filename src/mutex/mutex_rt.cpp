#include "tfr/mutex/mutex_rt.hpp"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "tfr/common/contracts.hpp"

namespace tfr::rt {

namespace {

std::unique_ptr<AtomicRegister<int>[]> make_int_registers(int n, int init) {
  auto regs = std::make_unique<AtomicRegister<int>[]>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) regs[static_cast<std::size_t>(i)].write(init);
  return regs;
}

/// CPU time consumed by the whole process so far, in seconds.  Inside
/// run_rt_mutex_workload only the workload's threads run, so the delta
/// across the run is the workload's own CPU bill.
double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

// --------------------------------------------------------------------------
// Fischer
//
// Wait/notify protocol (shared by every algorithm below): waiters park on
// the lock's EventCount via wait_until_changed; every write that can turn
// some waiter's predicate true is followed by events_.advance().  Writes
// that only *falsify* predicates (x := me, flag := 1, choosing := 1, the
// doorway's ticket grab) never need an advance — nobody waits for them.

FischerRt::FischerRt(Nanos delta, FaultInjector* faults)
    : delta_(delta), faults_(faults) {
  TFR_REQUIRE(delta.count() >= 0);
}

void FischerRt::lock(int id) {
  const int me = id + 1;
  for (;;) {
    wait_until_changed(events_, [&] { return x_.read() == 0; });  // await (x = 0)
    // The gate's vulnerable window: a stall here longer than Δ is exactly
    // the timing failure that breaks mutual exclusion (§3.1).
    maybe_stall(faults_, "fischer.gate");
    x_.write(me);
    spin_for(delta_);
    if (x_.read() == me) return;
  }
}

void FischerRt::unlock(int /*id*/) {
  x_.write(0);
  events_.advance();
}

// --------------------------------------------------------------------------
// Lamport's fast mutex

LamportFastRt::LamportFastRt(int n) : n_(n), b_(make_int_registers(n, 0)) {
  TFR_REQUIRE(n >= 1);
}

void LamportFastRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  const int me = id + 1;
  for (;;) {  // start:
    b_[static_cast<std::size_t>(id)].write(1);
    x_.write(me);
    if (y_.read() != 0) {
      b_[static_cast<std::size_t>(id)].write(0);
      events_.advance();
      wait_until_changed(events_, [&] { return y_.read() == 0; });
      continue;
    }
    y_.write(me);
    if (x_.read() != me) {
      b_[static_cast<std::size_t>(id)].write(0);
      events_.advance();
      for (int j = 0; j < n_; ++j) {
        wait_until_changed(events_, [&, j] {
          return b_[static_cast<std::size_t>(j)].read() == 0;
        });
      }
      if (y_.read() != me) {
        wait_until_changed(events_, [&] { return y_.read() == 0; });
        continue;
      }
    }
    return;
  }
}

void LamportFastRt::unlock(int id) {
  y_.write(0);
  b_[static_cast<std::size_t>(id)].write(0);
  events_.advance();
}

// --------------------------------------------------------------------------
// Bakery

BakeryRt::BakeryRt(int n)
    : n_(n),
      choosing_(make_int_registers(n, 0)),
      number_(make_int_registers(n, 0)) {
  TFR_REQUIRE(n >= 1);
}

void BakeryRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  choosing_[static_cast<std::size_t>(id)].write(1);
  int max_seen = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    max_seen = std::max(max_seen, number_[static_cast<std::size_t>(j)].read());
  }
  const int mine = max_seen + 1;
  number_[static_cast<std::size_t>(id)].write(mine);
  choosing_[static_cast<std::size_t>(id)].write(0);
  events_.advance();
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    wait_until_changed(events_, [&, j] {
      return choosing_[static_cast<std::size_t>(j)].read() == 0;
    });
    wait_until_changed(events_, [&, j, mine] {
      const int nj = number_[static_cast<std::size_t>(j)].read();
      return nj == 0 || nj > mine || (nj == mine && j > id);
    });
  }
}

void BakeryRt::unlock(int id) {
  number_[static_cast<std::size_t>(id)].write(0);
  events_.advance();
}

// --------------------------------------------------------------------------
// Black-white bakery

BlackWhiteBakeryRt::BlackWhiteBakeryRt(int n)
    : n_(n),
      choosing_(make_int_registers(n, 0)),
      ticket_(std::make_unique<AtomicRegister<Ticket>[]>(
          static_cast<std::size_t>(n))),
      mycolor_(static_cast<std::size_t>(n), 0) {
  TFR_REQUIRE(n >= 1);
  for (int i = 0; i < n; ++i)
    ticket_[static_cast<std::size_t>(i)].write(Ticket{});
}

void BlackWhiteBakeryRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  choosing_[static_cast<std::size_t>(id)].write(1);
  const int mycolor = color_.read();
  mycolor_[static_cast<std::size_t>(id)] = mycolor;
  int max_seen = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    const Ticket t = ticket_[static_cast<std::size_t>(j)].read();
    if (t.num != 0 && t.color == mycolor) max_seen = std::max(max_seen, t.num);
  }
  const int mine = max_seen + 1;
  ticket_[static_cast<std::size_t>(id)].write(
      Ticket{static_cast<std::int32_t>(mycolor),
             static_cast<std::int32_t>(mine)});
  choosing_[static_cast<std::size_t>(id)].write(0);
  events_.advance();
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    wait_until_changed(events_, [&, j] {
      return choosing_[static_cast<std::size_t>(j)].read() == 0;
    });
    // Multi-register predicate (ticket_[j] AND color_): both unblocking
    // transitions — j clearing its ticket, the generation color flipping —
    // happen in some unlock(), which advances the shared eventcount.
    wait_until_changed(events_, [&, j, mine, mycolor] {
      const Ticket t = ticket_[static_cast<std::size_t>(j)].read();
      if (t.num == 0) return true;
      if (t.color == mycolor)
        return t.num > mine || (t.num == mine && j > id);
      return color_.read() != mycolor;  // we are the old generation
    });
  }
}

void BlackWhiteBakeryRt::unlock(int id) {
  color_.write(1 - mycolor_[static_cast<std::size_t>(id)]);
  ticket_[static_cast<std::size_t>(id)].write(Ticket{});
  events_.advance();
}

// --------------------------------------------------------------------------
// Starvation-free doorway

StarvationFreeRt::StarvationFreeRt(int n, std::unique_ptr<RtMutex> inner)
    : n_(n), inner_(std::move(inner)), flag_(make_int_registers(n, 0)) {
  TFR_REQUIRE(n >= 1);
  TFR_REQUIRE(inner_ != nullptr);
}

void StarvationFreeRt::lock(int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  flag_[static_cast<std::size_t>(id)].write(1);
  wait_until_changed(events_, [&] {
    const int t = turn_.read();
    return t == id || flag_[static_cast<std::size_t>(t)].read() == 0;
  });
  inner_->lock(id);
}

void StarvationFreeRt::unlock(int id) {
  flag_[static_cast<std::size_t>(id)].write(0);
  const int t = turn_.read();
  if (flag_[static_cast<std::size_t>(t)].read() == 0)
    turn_.write((t + 1) % n_);
  events_.advance();
  inner_->unlock(id);
}

// --------------------------------------------------------------------------
// Algorithm 3

TfrMutexRt::TfrMutexRt(Nanos delta, std::unique_ptr<RtMutex> inner,
                       FaultInjector* faults)
    : delta_(delta), inner_(std::move(inner)), faults_(faults) {
  TFR_REQUIRE(delta.count() >= 0);
  TFR_REQUIRE(inner_ != nullptr);
}

void TfrMutexRt::lock(int id) {
  const int me = id + 1;
  bool first_attempt = true;
  for (;;) {
    wait_until_changed(events_, [&] { return x_.read() == 0; });
    maybe_stall(faults_, "fischer.gate");
    x_.write(me);
    spin_for(delta_);  // delay(Δ) stays a precise busy-wait
    if (x_.read() == me) break;
    first_attempt = false;
  }
  (first_attempt ? first_try_ : retried_)
      .fetch_add(1, std::memory_order_relaxed);
  inner_->lock(id);
}

void TfrMutexRt::unlock(int id) {
  inner_->unlock(id);
  if (x_.read() == id + 1) {
    x_.write(0);
    events_.advance();
  }
}

std::unique_ptr<TfrMutexRt> make_tfr_mutex_rt(int n, Nanos delta,
                                              FaultInjector* faults) {
  auto fast = std::make_unique<LamportFastRt>(n);
  auto a = std::make_unique<StarvationFreeRt>(n, std::move(fast));
  return std::make_unique<TfrMutexRt>(delta, std::move(a), faults);
}

// --------------------------------------------------------------------------
// Harness

RtWorkloadResult run_rt_mutex_workload(RtMutex& mutex,
                                       RtWorkloadConfig config) {
  TFR_REQUIRE(config.threads >= 1);
  TFR_REQUIRE(config.sessions >= 1);

  std::atomic<int> occupancy{0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> entries{0};
  std::atomic<std::int64_t> max_wait_ns{0};
  std::vector<std::vector<std::int64_t>> waits(
      static_cast<std::size_t>(config.threads));

  auto worker = [&](int id) {
    auto& my_waits = waits[static_cast<std::size_t>(id)];
    my_waits.reserve(static_cast<std::size_t>(config.sessions));
    for (int s = 0; s < config.sessions; ++s) {
      if (config.ncs_time.count() > 0) sleep_spin_for(config.ncs_time);
      const auto wait_begin = std::chrono::steady_clock::now();
      mutex.lock(id);
      const auto waited = std::chrono::duration_cast<Nanos>(
                              std::chrono::steady_clock::now() - wait_begin)
                              .count();
      my_waits.push_back(waited);
      std::int64_t seen = max_wait_ns.load(std::memory_order_relaxed);
      while (waited > seen &&
             !max_wait_ns.compare_exchange_weak(seen, waited,
                                                std::memory_order_relaxed)) {
      }
      if (occupancy.fetch_add(1, std::memory_order_seq_cst) != 0)
        violations.fetch_add(1, std::memory_order_relaxed);
      entries.fetch_add(1, std::memory_order_relaxed);
      if (config.cs_time.count() > 0) sleep_spin_for(config.cs_time);
      occupancy.fetch_sub(1, std::memory_order_seq_cst);
      mutex.unlock(id);
    }
  };

  const double cpu_start = process_cpu_seconds();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.threads));
  for (int i = 0; i < config.threads; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  const double cpu = process_cpu_seconds() - cpu_start;

  std::vector<std::int64_t> all_waits;
  all_waits.reserve(static_cast<std::size_t>(config.threads) *
                    static_cast<std::size_t>(config.sessions));
  for (auto& w : waits) all_waits.insert(all_waits.end(), w.begin(), w.end());
  std::sort(all_waits.begin(), all_waits.end());
  const std::size_t p99_index =
      all_waits.empty() ? 0 : (all_waits.size() * 99) / 100;
  const std::int64_t p99 =
      all_waits.empty()
          ? 0
          : all_waits[std::min(p99_index, all_waits.size() - 1)];

  return RtWorkloadResult{
      .violations = violations.load(),
      .cs_entries = entries.load(),
      .max_wait = Nanos{max_wait_ns.load()},
      .p99_wait = Nanos{p99},
      .wall_seconds = wall,
      .cpu_seconds = cpu,
  };
}

}  // namespace tfr::rt
