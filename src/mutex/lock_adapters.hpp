// RtMutex adapters for the E12 contended shootout and the stress tests:
// the locks the tfr family is measured against.  None of these are
// register-based algorithms from the paper — they are the reference
// points the §3.3 practicality claim needs on real hardware:
//
//   * AtomicMutexLock — the 4-byte futex-class AtomicMutex (src/rt/
//     atomic_mutex.hpp): what a production lock on this substrate costs.
//   * StdMutexLock    — std::mutex, the platform's native blocking lock.
//   * SpinYieldLock   — test-and-set with a yield-spin wait loop: the
//     pre-blocking behaviour of every rt wait loop, kept as the
//     core-burning reference the CPU-time/wall-time detector is
//     calibrated against.
//
// AtomicMutexLock and SpinYieldLock are Atomics-policy templates like the
// algorithms they adapt, so the model checker can drive the futex-class
// lock through the interposition seam; StdMutexLock wraps the platform
// mutex and exists only in the StdAtomics world.

#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "tfr/mutex/mutex_rt.hpp"
#include "tfr/rt/atomic_mutex.hpp"

namespace tfr::rt {

template <class Atomics>
class BasicAtomicMutexLock final : public BasicRtMutex<Atomics> {
 public:
  explicit BasicAtomicMutexLock(unsigned spin_budget = Atomics::kSpinBudget)
      : spin_budget_(spin_budget) {}

  void lock(int /*id*/) override { mutex_.spin_lock(spin_budget_); }
  void unlock(int /*id*/) override { mutex_.unlock(); }
  std::string name() const override { return "atomic"; }

 private:
  unsigned spin_budget_;
  BasicAtomicMutex<Atomics> mutex_;
};

using AtomicMutexLock = BasicAtomicMutexLock<StdAtomics>;

class StdMutexLock final : public RtMutex {
 public:
  void lock(int /*id*/) override { mutex_.lock(); }
  void unlock(int /*id*/) override { mutex_.unlock(); }
  std::string name() const override { return "std::mutex"; }

 private:
  std::mutex mutex_;
};

/// Test-and-set spinlock that yields between attempts — exactly the
/// "polite" unbounded spin the blocking substrate replaced.  Progresses
/// even at threads >> cores (yield cedes the core), but every waiter
/// stays runnable, so CPU time ≈ min(threads, cores) × wall time.
template <class Atomics>
class BasicSpinYieldLock final : public BasicRtMutex<Atomics> {
 public:
  void lock(int /*id*/) override {
    // mo-ok: acquire on the winning exchange pairs with release unlock
    while (locked_.exchange(true, std::memory_order_acquire))
      Atomics::yield();
  }
  void unlock(int /*id*/) override {
    // mo-ok: release publishes the critical section to the next acquirer
    locked_.store(false, std::memory_order_release);
  }
  std::string name() const override { return "spin-yield"; }

 private:
  typename Atomics::template atomic<bool> locked_{false};
};

using SpinYieldLock = BasicSpinYieldLock<StdAtomics>;

}  // namespace tfr::rt
