#include "tfr/common/contracts.hpp"
#include "tfr/mutex/mutex_sim.hpp"

namespace tfr::mutex {

// Algorithm 3 (paper §3.3):
//
//   1  repeat   await (x = 0)
//   2           x := i
//   3           delay(Δ)
//   4  until    x = i
//   5  entry section of algorithm A
//   6  critical section
//   7  exit section of algorithm A
//   8  if x = i then x := 0 fi
//
// Without timing failures the Fischer filter (1-4) admits one process at a
// time, so A's entry runs contention-free and the whole entry costs O(Δ).
// Under timing failures several processes may pass the filter together; A
// alone then guarantees mutual exclusion and (if starvation-free)
// guarantees that the crowd inside A eventually drains, which is the heart
// of the convergence proof (Theorem 3.3).  Line 8 makes sure that, of all
// processes concurrently past the filter, at most one re-opens the gate.

TfrMutex::TfrMutex(sim::RegisterSpace& space, sim::Duration delta,
                   std::unique_ptr<SimMutex> inner)
    : delta_(delta), inner_(std::move(inner)), x_(space, 0, "tfr.x") {
  TFR_REQUIRE(delta >= 1);
  TFR_REQUIRE(inner_ != nullptr);
}

sim::Task<void> TfrMutex::enter(sim::Env env, int id) {
  const int me = id + 1;
  bool first_attempt = true;
  for (;;) {
    for (;;) {  // await (x = 0)
      const int x = co_await env.read(x_);
      if (x == 0) break;
    }
    co_await env.write(x_, me);
    co_await env.delay(controller_ != nullptr ? controller_->current()
                                              : delta_);
    const int check = co_await env.read(x_);
    if (check == me) break;
    first_attempt = false;
    // A failed check is the filter's timing-failure symptom: someone
    // overwrote x inside our delay window, so the estimate was too small
    // (or contention raced us — indistinguishable here, and growing on
    // contention is what TCP does too).
    if (controller_ != nullptr) controller_->on_failure();
  }
  (first_attempt ? first_try_ : retried_) += 1;
  if (controller_ != nullptr && first_attempt) controller_->on_clean();
  co_await inner_->enter(env, id);
}

sim::Task<void> TfrMutex::exit(sim::Env env, int id) {
  co_await inner_->exit(env, id);
  const int x = co_await env.read(x_);
  if (x == id + 1) co_await env.write(x_, 0);
}

std::unique_ptr<TfrMutex> make_tfr_mutex_starvation_free(
    sim::RegisterSpace& space, int n, sim::Duration delta) {
  auto fast = std::make_unique<LamportFastMutex>(space, n);
  auto a = std::make_unique<StarvationFreeMutex>(space, n, std::move(fast));
  return std::make_unique<TfrMutex>(space, delta, std::move(a));
}

std::unique_ptr<TfrMutex> make_tfr_mutex_deadlock_free_only(
    sim::RegisterSpace& space, int n, sim::Duration delta) {
  auto fast = std::make_unique<LamportFastMutex>(space, n);
  return std::make_unique<TfrMutex>(space, delta, std::move(fast));
}

}  // namespace tfr::mutex
