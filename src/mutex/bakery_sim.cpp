#include <algorithm>

#include "tfr/common/contracts.hpp"
#include "tfr/mutex/mutex_sim.hpp"

namespace tfr::mutex {

// Lamport's bakery algorithm: the classic asynchronous starvation-free
// (indeed FIFO) mutex.  Used as the "best known asynchronous algorithm"
// baseline that Algorithm 3 is compared against: its entry section costs
// Θ(n) accesses even without contention, so its time complexity is Θ(n·Δ)
// where Algorithm 3 achieves O(Δ).

BakeryMutex::BakeryMutex(sim::RegisterSpace& space, int n)
    : n_(n),
      choosing_(space, 0, "bakery.choosing"),
      number_(space, 0, "bakery.number") {
  TFR_REQUIRE(n >= 1);
  choosing_.at(static_cast<std::size_t>(n - 1));
  number_.at(static_cast<std::size_t>(n - 1));
}

sim::Task<void> BakeryMutex::enter(sim::Env env, int id) {
  TFR_REQUIRE(id >= 0 && id < n_);
  co_await env.write(choosing_.at(id), 1);
  int max_seen = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    const int nj = co_await env.read(number_.at(j));
    max_seen = std::max(max_seen, nj);
  }
  const int mine = max_seen + 1;
  max_ticket_ = std::max(max_ticket_, mine);
  co_await env.write(number_.at(id), mine);
  co_await env.write(choosing_.at(id), 0);
  for (int j = 0; j < n_; ++j) {
    if (j == id) continue;
    for (;;) {  // await ¬choosing[j]
      const int cj = co_await env.read(choosing_.at(j));
      if (cj == 0) break;
    }
    for (;;) {
      const int nj = co_await env.read(number_.at(j));
      // Pass j once it is not competing or is ordered after us in the
      // lexicographic (ticket, id) order.
      if (nj == 0 || nj > mine || (nj == mine && j > id)) break;
    }
  }
}

sim::Task<void> BakeryMutex::exit(sim::Env env, int id) {
  co_await env.write(number_.at(id), 0);
}

}  // namespace tfr::mutex
