// Mutual-exclusion algorithms — simulator edition.
//
// The paper's §3 builds its time-resilient mutex (Algorithm 3) by wrapping
// an asynchronous *fast starvation-free* algorithm A inside Fischer's
// timing-based filter.  This header provides every piece:
//
//   FischerMutex           — Algorithm 2: the timing-based filter itself.
//                            ME + deadlock-freedom without timing failures;
//                            ME can break under timing failures (§3.1).
//   LamportFastMutex       — Lamport's fast mutex: asynchronous,
//                            deadlock-free but NOT starvation-free; the
//                            negative instantiation of A (Theorem 3.2).
//   BakeryMutex            — Lamport's bakery: asynchronous,
//                            starvation-free, FIFO, unbounded tickets.
//   BlackWhiteBakeryMutex  — Taubenfeld's black-white bakery: asynchronous,
//                            starvation-free, bounded tickets.
//   StarvationFreeMutex    — the deadlock-free → starvation-free register
//                            transformation the paper invokes (due to Yoah
//                            Bar-David; cf. Taubenfeld's book, Problem
//                            2.3.4); applied to LamportFastMutex it yields
//                            the fast starvation-free A of Theorem 3.3.
//   TfrMutex               — Algorithm 3: Fischer filter around A, exit
//                            code `if x = i then x := 0`.
//
// All ids are 0-based (0..n-1).  Entry/exit sections are Tasks so that
// TfrMutex composes algorithms by awaiting them.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/sim/register.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/task.hpp"
#include "tfr/sim/types.hpp"

namespace tfr::mutex {

/// Abstract mutual-exclusion algorithm in the simulator.
class SimMutex {
 public:
  virtual ~SimMutex() = default;

  /// The entry section: completes when `id` may enter its critical section.
  virtual sim::Task<void> enter(sim::Env env, int id) = 0;

  /// The exit section.
  virtual sim::Task<void> exit(sim::Env env, int id) = 0;

  virtual std::string name() const = 0;
};

/// Algorithm 2 — Fischer's timing-based mutex.  One shared register; the
/// delay(Δ) after writing x := i is what makes the gate safe *when timing
/// holds*.  Supports unboundedly many processes.
class FischerMutex final : public SimMutex {
 public:
  FischerMutex(sim::RegisterSpace& space, sim::Duration delta);

  sim::Task<void> enter(sim::Env env, int id) override;
  sim::Task<void> exit(sim::Env env, int id) override;
  std::string name() const override { return "fischer"; }

  sim::Duration delta() const { return delta_; }

  /// Adaptive optimistic(Δ): the gate's delay waits for
  /// controller->current(); a failed check reports on_failure(), a
  /// first-try admission on_clean().  NOTE Fischer's mutual exclusion
  /// genuinely depends on the bound holding — an optimistic estimate makes
  /// violations *more* likely, which is exactly why the paper wraps the
  /// filter in Algorithm 3.  Null restores the static delta.
  void set_delta_controller(adapt::DeltaController* controller) {
    controller_ = controller;
  }

 private:
  sim::Duration delta_;
  adapt::DeltaController* controller_ = nullptr;
  sim::Register<int> x_;  ///< 0 = free, else owner id + 1
};

/// Lamport's fast mutual exclusion algorithm (1987).  Asynchronous;
/// deadlock-free; contention-free entry takes 3 writes + 2 reads.
class LamportFastMutex final : public SimMutex {
 public:
  LamportFastMutex(sim::RegisterSpace& space, int n);

  sim::Task<void> enter(sim::Env env, int id) override;
  sim::Task<void> exit(sim::Env env, int id) override;
  std::string name() const override { return "lamport-fast"; }

 private:
  int n_;
  sim::Register<int> x_;       ///< last announcer (id + 1)
  sim::Register<int> y_;       ///< gate (0 = open, else id + 1)
  sim::RegisterArray<int> b_;  ///< b[i]: i is trying
};

/// Lamport's bakery algorithm.  Asynchronous; starvation-free (FIFO);
/// tickets grow without bound under perpetual contention.
class BakeryMutex final : public SimMutex {
 public:
  BakeryMutex(sim::RegisterSpace& space, int n);

  sim::Task<void> enter(sim::Env env, int id) override;
  sim::Task<void> exit(sim::Env env, int id) override;
  std::string name() const override { return "bakery"; }

  /// Largest ticket ever taken (observability for the boundedness contrast
  /// with the black-white bakery).
  int max_ticket() const { return max_ticket_; }

 private:
  int n_;
  sim::RegisterArray<int> choosing_;
  sim::RegisterArray<int> number_;
  int max_ticket_ = 0;
};

/// Taubenfeld's black-white bakery (DISC 2004): starvation-free like the
/// bakery but with tickets bounded by the number of processes, achieved by
/// colouring each generation of tickets with a shared colour bit.
class BlackWhiteBakeryMutex final : public SimMutex {
 public:
  BlackWhiteBakeryMutex(sim::RegisterSpace& space, int n);

  sim::Task<void> enter(sim::Env env, int id) override;
  sim::Task<void> exit(sim::Env env, int id) override;
  std::string name() const override { return "bw-bakery"; }

  int max_ticket() const { return max_ticket_; }

 private:
  /// A (colour, number) pair held in one atomic register, as in the paper.
  struct Ticket {
    int color = 0;
    int num = 0;  ///< 0 = not competing
  };

  int n_;
  sim::Register<int> color_;          ///< the shared colour bit
  sim::RegisterArray<int> choosing_;
  sim::RegisterArray<Ticket> ticket_;
  std::vector<int> mycolor_;          ///< per-process local memory
  int max_ticket_ = 0;
};

/// The deadlock-free → starvation-free transformation (registers only).
/// A doorway (flag array + round-robin turn register) throttles entry to
/// the inner deadlock-free lock so the turn-holder cannot be bypassed
/// forever.  Fast: the doorway adds 3 accesses on the contention-free path.
class StarvationFreeMutex final : public SimMutex {
 public:
  /// `inner` must be deadlock-free; the wrapper owns it.
  StarvationFreeMutex(sim::RegisterSpace& space, int n,
                      std::unique_ptr<SimMutex> inner);

  sim::Task<void> enter(sim::Env env, int id) override;
  sim::Task<void> exit(sim::Env env, int id) override;
  std::string name() const override {
    return "starvation-free(" + inner_->name() + ")";
  }

 private:
  int n_;
  std::unique_ptr<SimMutex> inner_;
  sim::RegisterArray<int> flag_;  ///< 1 = up (competing)
  sim::Register<int> turn_;
};

/// Algorithm 3 — the paper's time-resilient mutex: Fischer's filter in
/// front of an asynchronous algorithm A, with exit code
/// `A.exit(); if x = i then x := 0`.
///
/// Properties (§3.3): ME and deadlock-freedom always (A provides them even
/// while timing fails); O(Δ) time complexity without timing failures; with
/// a *starvation-free* A the algorithm converges after failures cease
/// (Theorem 3.3), with a merely deadlock-free A it may not (Theorem 3.2).
class TfrMutex final : public SimMutex {
 public:
  TfrMutex(sim::RegisterSpace& space, sim::Duration delta,
           std::unique_ptr<SimMutex> inner);

  sim::Task<void> enter(sim::Env env, int id) override;
  sim::Task<void> exit(sim::Env env, int id) override;
  std::string name() const override {
    return "tfr(" + inner_->name() + ")";
  }

  sim::Duration delta() const { return delta_; }

  /// How often the Fischer filter admitted a process on its first attempt
  /// (no retry loop) — the filter's efficiency signal for optimistic(Δ).
  std::uint64_t first_try_admissions() const { return first_try_; }
  std::uint64_t retried_admissions() const { return retried_; }

  /// Adaptive optimistic(Δ): the filter's delay waits for
  /// controller->current(); each failed check reports on_failure(), each
  /// first-try admission on_clean().  Purely advisory — mutual exclusion
  /// is provided by the inner algorithm A under ANY timing behaviour
  /// (Theorem 3.1), so a mistuned estimate costs admission retries, never
  /// safety.  The tfr_mcheck mistuned-controller scenario verifies this.
  void set_delta_controller(adapt::DeltaController* controller) {
    controller_ = controller;
  }

 private:
  sim::Duration delta_;
  adapt::DeltaController* controller_ = nullptr;
  std::unique_ptr<SimMutex> inner_;
  sim::Register<int> x_;  ///< Fischer's register: 0 = free, else id + 1
  std::uint64_t first_try_ = 0;
  std::uint64_t retried_ = 0;
};

/// Convenience factories for the two instantiations of Algorithm 3 the
/// paper discusses.
std::unique_ptr<TfrMutex> make_tfr_mutex_starvation_free(
    sim::RegisterSpace& space, int n, sim::Duration delta);
std::unique_ptr<TfrMutex> make_tfr_mutex_deadlock_free_only(
    sim::RegisterSpace& space, int n, sim::Duration delta);

}  // namespace tfr::mutex
