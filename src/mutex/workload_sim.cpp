#include "tfr/mutex/workload_sim.hpp"

#include "tfr/common/contracts.hpp"

namespace tfr::mutex {

sim::Process mutex_sessions(sim::Env env, SimMutex& algorithm,
                            sim::MutexMonitor& mon, int id,
                            WorkloadConfig config) {
  for (int s = 0; config.sessions <= 0 || s < config.sessions; ++s) {
    if (config.ncs_time > 0) {
      const sim::Duration ncs =
          config.randomize_ncs ? env.rng().uniform(0, config.ncs_time)
                               : config.ncs_time;
      if (ncs > 0) co_await env.delay(ncs);
    }
    mon.enter_entry(id, env.now());
    co_await algorithm.enter(env, id);
    mon.enter_cs(id, env.now());
    if (config.cs_time > 0) co_await env.delay(config.cs_time);
    mon.exit_cs(id, env.now());
    co_await algorithm.exit(env, id);
    mon.leave_exit(id, env.now());
  }
}

WorkloadResult run_mutex_workload(
    const std::function<std::unique_ptr<SimMutex>(sim::RegisterSpace&)>& make,
    WorkloadConfig config, std::unique_ptr<sim::TimingModel> timing,
    std::uint64_t seed, sim::Time limit, obs::TraceSink* sink) {
  TFR_REQUIRE(config.processes >= 1);
  sim::Simulation simulation(std::move(timing), {.seed = seed, .sink = sink});
  std::unique_ptr<SimMutex> algorithm = make(simulation.space());
  TFR_REQUIRE(algorithm != nullptr);

  sim::MutexMonitor monitor;
  monitor.set_trace_sink(sink);
  monitor.throw_on_violation(!config.tolerate_violations);
  for (int i = 0; i < config.processes; ++i) {
    simulation.spawn([&, i](sim::Env env) {
      return mutex_sessions(env, *algorithm, monitor, i, config);
    });
  }
  simulation.run(limit);

  WorkloadResult result{.monitor = monitor};
  result.violations = monitor.mutual_exclusion_violations();
  result.cs_entries = monitor.cs_entries();
  result.time_complexity = monitor.time_complexity();
  result.max_wait = monitor.max_wait();
  result.registers_allocated = simulation.space().allocated();
  result.end_time = simulation.now();
  result.completed = simulation.all_done();
  return result;
}

}  // namespace tfr::mutex
