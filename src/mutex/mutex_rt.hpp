// Mutual-exclusion algorithms — real-thread edition (atomic registers).
//
// Same algorithm set as mutex_sim.hpp; see that header for the catalogue
// and the role each plays in the paper.  Every unbounded await-loop
// blocks on the lock's eventcount (rt/atomic_mutex.hpp) after a short
// spin budget instead of yield-spinning, so waiters cost no CPU on
// machines with fewer cores than threads — delay(Δ) itself stays a
// precise busy-wait, which is all the Δ reasoning needs (docs/MODEL.md
// "Blocking lock substrate").  Protocol: any register write that can
// turn some waiter's predicate true is followed by events_.advance().
//
// Every algorithm is a template over the Atomics policy
// (rt/atomics_policy.hpp).  The Basic*<StdAtomics> instantiations — the
// unsuffixed aliases below, explicitly instantiated in mutex_rt.cpp —
// are the production locks and compile to exactly the pre-seam code
// (std::atomic cells, real busy-waits, noexcept-able ops).  The same
// source instantiated with ShimAtomics (rt/shim/shim_atomic.hpp) runs
// under the mcheck interposition seam, where the explorer owns every
// interleaving and access duration; that is how the model checker checks
// the *real* rt code instead of a parallel transcription of it.
//
// Injection points (see registers/fault_injector.hpp):
//   "fischer.gate"  — between reading x = 0 and writing x := i; stalling
//                     here longer than Δ reproduces the classic mutual-
//                     exclusion violation of §3.1.  (Under the shim the
//                     explorer's failure-cost menu plays this role and
//                     `faults` stays null.)

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/common/contracts.hpp"
#include "tfr/registers/atomic_register.hpp"
#include "tfr/registers/fault_injector.hpp"
#include "tfr/rt/atomic_mutex.hpp"
#include "tfr/rt/atomics_policy.hpp"

namespace tfr::rt {

template <class Atomics>
class BasicRtMutex {
 public:
  virtual ~BasicRtMutex() = default;
  virtual void lock(int id) = 0;
  virtual void unlock(int id) = 0;
  virtual std::string name() const = 0;
};

using RtMutex = BasicRtMutex<StdAtomics>;

namespace detail {

template <class Atomics>
std::unique_ptr<BasicAtomicRegister<int, Atomics>[]> make_int_registers(
    int n, int init) {
  auto regs = std::make_unique<BasicAtomicRegister<int, Atomics>[]>(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) regs[static_cast<std::size_t>(i)].write(init);
  return regs;
}

}  // namespace detail

// --------------------------------------------------------------------------
// Fischer
//
// Wait/notify protocol (shared by every algorithm below): waiters park on
// the lock's eventcount via wait_until_changed; every write that can turn
// some waiter's predicate true is followed by events_.advance().  Writes
// that only *falsify* predicates (x := me, flag := 1, choosing := 1, the
// doorway's ticket grab) never need an advance — nobody waits for them.

/// Algorithm 2 — Fischer's timing-based mutex on real threads.  `delta`
/// should be optimistic(Δ); ME holds only while no step outlasts it.
template <class Atomics>
class BasicFischerRt final : public BasicRtMutex<Atomics> {
 public:
  using Duration = typename Atomics::duration;

  explicit BasicFischerRt(Duration delta, FaultInjector* faults = nullptr)
      : delta_(delta), faults_(faults) {
    TFR_REQUIRE(Atomics::count(delta) >= 0);
  }

  void lock(int id) override {
    const int me = id + 1;
    bool first_attempt = true;
    for (;;) {
      wait_until_changed(events_, [&] { return x_.read() == 0; });  // await (x = 0)
      // The gate's vulnerable window: a stall here longer than Δ is exactly
      // the timing failure that breaks mutual exclusion (§3.1).
      maybe_stall(faults_, "fischer.gate");
      x_.write(me);
      Atomics::delay(current_delta());
      if (x_.read() == me) {
        if (controller_ != nullptr && first_attempt) controller_->on_clean();
        return;
      }
      first_attempt = false;
      if (controller_ != nullptr) controller_->on_failure();
    }
  }

  void unlock(int /*id*/) override {
    x_.write(0);
    events_.advance();
  }

  std::string name() const override { return "fischer"; }

  /// Attaches an adaptive Δ controller: delay(Δ) waits the controller's
  /// current estimate, losing the Fischer check reports on_failure() and a
  /// first-try admission reports on_clean().  Share one controller across
  /// threads only if it is thread-safe (adapt::AtomicAimd).  NOT advisory
  /// here: Fischer's ME genuinely depends on the bound, so an optimistic
  /// estimate makes violations more likely — exactly the exposure
  /// Algorithm 3 (BasicTfrMutexRt) exists to remove.
  void set_delta_controller(adapt::DeltaController* controller) {
    controller_ = controller;
  }

 private:
  Duration current_delta() const {
    return controller_ != nullptr ? Duration(controller_->current()) : delta_;
  }

  Duration delta_;
  FaultInjector* faults_;
  adapt::DeltaController* controller_ = nullptr;
  BasicAtomicRegister<int, Atomics> x_{0};
  BasicEventCount<Atomics> events_;
};

using FischerRt = BasicFischerRt<StdAtomics>;

// --------------------------------------------------------------------------
// Lamport's fast mutex

/// Lamport's fast mutex (deadlock-free, not starvation-free).
template <class Atomics>
class BasicLamportFastRt final : public BasicRtMutex<Atomics> {
 public:
  explicit BasicLamportFastRt(int n)
      : n_(n), b_(detail::make_int_registers<Atomics>(n, 0)) {
    TFR_REQUIRE(n >= 1);
  }

  void lock(int id) override {
    TFR_REQUIRE(id >= 0 && id < n_);
    const int me = id + 1;
    for (;;) {  // start:
      b_[static_cast<std::size_t>(id)].write(1);
      x_.write(me);
      if (y_.read() != 0) {
        b_[static_cast<std::size_t>(id)].write(0);
        events_.advance();
        wait_until_changed(events_, [&] { return y_.read() == 0; });
        continue;
      }
      y_.write(me);
      if (x_.read() != me) {
        b_[static_cast<std::size_t>(id)].write(0);
        events_.advance();
        for (int j = 0; j < n_; ++j) {
          wait_until_changed(events_, [&, j] {
            return b_[static_cast<std::size_t>(j)].read() == 0;
          });
        }
        if (y_.read() != me) {
          wait_until_changed(events_, [&] { return y_.read() == 0; });
          continue;
        }
      }
      return;
    }
  }

  void unlock(int id) override {
    y_.write(0);
    b_[static_cast<std::size_t>(id)].write(0);
    events_.advance();
  }

  std::string name() const override { return "lamport-fast"; }

 private:
  int n_;
  BasicAtomicRegister<int, Atomics> x_{0};
  BasicAtomicRegister<int, Atomics> y_{0};
  std::unique_ptr<BasicAtomicRegister<int, Atomics>[]> b_;
  BasicEventCount<Atomics> events_;
};

using LamportFastRt = BasicLamportFastRt<StdAtomics>;

// --------------------------------------------------------------------------
// Bakery

/// Lamport's bakery (starvation-free, FIFO, unbounded tickets).
template <class Atomics>
class BasicBakeryRt final : public BasicRtMutex<Atomics> {
 public:
  explicit BasicBakeryRt(int n)
      : n_(n),
        choosing_(detail::make_int_registers<Atomics>(n, 0)),
        number_(detail::make_int_registers<Atomics>(n, 0)) {
    TFR_REQUIRE(n >= 1);
  }

  void lock(int id) override {
    TFR_REQUIRE(id >= 0 && id < n_);
    choosing_[static_cast<std::size_t>(id)].write(1);
    int max_seen = 0;
    for (int j = 0; j < n_; ++j) {
      if (j == id) continue;
      max_seen =
          std::max(max_seen, number_[static_cast<std::size_t>(j)].read());
    }
    const int mine = max_seen + 1;
    number_[static_cast<std::size_t>(id)].write(mine);
    choosing_[static_cast<std::size_t>(id)].write(0);
    events_.advance();
    for (int j = 0; j < n_; ++j) {
      if (j == id) continue;
      wait_until_changed(events_, [&, j] {
        return choosing_[static_cast<std::size_t>(j)].read() == 0;
      });
      wait_until_changed(events_, [&, j, mine] {
        const int nj = number_[static_cast<std::size_t>(j)].read();
        return nj == 0 || nj > mine || (nj == mine && j > id);
      });
    }
  }

  void unlock(int id) override {
    number_[static_cast<std::size_t>(id)].write(0);
    events_.advance();
  }

  std::string name() const override { return "bakery"; }

 private:
  int n_;
  std::unique_ptr<BasicAtomicRegister<int, Atomics>[]> choosing_;
  std::unique_ptr<BasicAtomicRegister<int, Atomics>[]> number_;
  BasicEventCount<Atomics> events_;
};

using BakeryRt = BasicBakeryRt<StdAtomics>;

// --------------------------------------------------------------------------
// Black-white bakery

/// Taubenfeld's black-white bakery (starvation-free, bounded tickets).
template <class Atomics>
class BasicBlackWhiteBakeryRt final : public BasicRtMutex<Atomics> {
 public:
  explicit BasicBlackWhiteBakeryRt(int n)
      : n_(n),
        choosing_(detail::make_int_registers<Atomics>(n, 0)),
        ticket_(std::make_unique<BasicAtomicRegister<Ticket, Atomics>[]>(
            static_cast<std::size_t>(n))),
        mycolor_(static_cast<std::size_t>(n), 0) {
    TFR_REQUIRE(n >= 1);
    for (int i = 0; i < n; ++i)
      ticket_[static_cast<std::size_t>(i)].write(Ticket{});
  }

  void lock(int id) override {
    TFR_REQUIRE(id >= 0 && id < n_);
    choosing_[static_cast<std::size_t>(id)].write(1);
    const int mycolor = color_.read();
    mycolor_[static_cast<std::size_t>(id)] = mycolor;
    int max_seen = 0;
    for (int j = 0; j < n_; ++j) {
      if (j == id) continue;
      const Ticket t = ticket_[static_cast<std::size_t>(j)].read();
      if (t.num != 0 && t.color == mycolor)
        max_seen = std::max(max_seen, t.num);
    }
    const int mine = max_seen + 1;
    ticket_[static_cast<std::size_t>(id)].write(
        Ticket{static_cast<std::int32_t>(mycolor),
               static_cast<std::int32_t>(mine)});
    choosing_[static_cast<std::size_t>(id)].write(0);
    events_.advance();
    for (int j = 0; j < n_; ++j) {
      if (j == id) continue;
      wait_until_changed(events_, [&, j] {
        return choosing_[static_cast<std::size_t>(j)].read() == 0;
      });
      // Multi-register predicate (ticket_[j] AND color_): both unblocking
      // transitions — j clearing its ticket, the generation color flipping —
      // happen in some unlock(), which advances the shared eventcount.
      wait_until_changed(events_, [&, j, mine, mycolor] {
        const Ticket t = ticket_[static_cast<std::size_t>(j)].read();
        if (t.num == 0) return true;
        if (t.color == mycolor)
          return t.num > mine || (t.num == mine && j > id);
        return color_.read() != mycolor;  // we are the old generation
      });
    }
  }

  void unlock(int id) override {
    color_.write(1 - mycolor_[static_cast<std::size_t>(id)]);
    ticket_[static_cast<std::size_t>(id)].write(Ticket{});
    events_.advance();
  }

  std::string name() const override { return "bw-bakery"; }

 private:
  struct Ticket {
    std::int32_t color = 0;
    std::int32_t num = 0;  ///< 0 = not competing
  };

  int n_;
  BasicAtomicRegister<int, Atomics> color_{0};
  std::unique_ptr<BasicAtomicRegister<int, Atomics>[]> choosing_;
  std::unique_ptr<BasicAtomicRegister<Ticket, Atomics>[]> ticket_;
  std::vector<int> mycolor_;
  BasicEventCount<Atomics> events_;
};

using BlackWhiteBakeryRt = BasicBlackWhiteBakeryRt<StdAtomics>;

// --------------------------------------------------------------------------
// Starvation-free doorway

/// Deadlock-free → starvation-free doorway transformation (see
/// mutex/starvation_free_sim.cpp for the argument).
template <class Atomics>
class BasicStarvationFreeRt final : public BasicRtMutex<Atomics> {
 public:
  BasicStarvationFreeRt(int n, std::unique_ptr<BasicRtMutex<Atomics>> inner)
      : n_(n),
        inner_(std::move(inner)),
        flag_(detail::make_int_registers<Atomics>(n, 0)) {
    TFR_REQUIRE(n >= 1);
    TFR_REQUIRE(inner_ != nullptr);
  }

  void lock(int id) override {
    TFR_REQUIRE(id >= 0 && id < n_);
    flag_[static_cast<std::size_t>(id)].write(1);
    wait_until_changed(events_, [&] {
      const int t = turn_.read();
      return t == id || flag_[static_cast<std::size_t>(t)].read() == 0;
    });
    inner_->lock(id);
  }

  void unlock(int id) override {
    flag_[static_cast<std::size_t>(id)].write(0);
    const int t = turn_.read();
    if (flag_[static_cast<std::size_t>(t)].read() == 0)
      turn_.write((t + 1) % n_);
    events_.advance();
    inner_->unlock(id);
  }

  std::string name() const override {
    return "starvation-free(" + inner_->name() + ")";
  }

 private:
  int n_;
  std::unique_ptr<BasicRtMutex<Atomics>> inner_;
  std::unique_ptr<BasicAtomicRegister<int, Atomics>[]> flag_;
  BasicAtomicRegister<int, Atomics> turn_{0};
  BasicEventCount<Atomics> events_;
};

using StarvationFreeRt = BasicStarvationFreeRt<StdAtomics>;

// --------------------------------------------------------------------------
// Algorithm 3

/// Algorithm 3 — the time-resilient mutex: Fischer filter around an inner
/// asynchronous algorithm A.
template <class Atomics>
class BasicTfrMutexRt final : public BasicRtMutex<Atomics> {
 public:
  using Duration = typename Atomics::duration;

  BasicTfrMutexRt(Duration delta,
                  std::unique_ptr<BasicRtMutex<Atomics>> inner,
                  FaultInjector* faults = nullptr)
      : delta_(delta), inner_(std::move(inner)), faults_(faults) {
    TFR_REQUIRE(Atomics::count(delta) >= 0);
    TFR_REQUIRE(inner_ != nullptr);
  }

  void lock(int id) override {
    const int me = id + 1;
    bool first_attempt = true;
    for (;;) {
      wait_until_changed(events_, [&] { return x_.read() == 0; });
      maybe_stall(faults_, "fischer.gate");
      x_.write(me);
      // delay(Δ) stays a precise busy-wait; with a controller attached the
      // wait is its current estimate instead of the static bound.
      Atomics::delay(controller_ != nullptr ? Duration(controller_->current())
                                            : delta_);
      if (x_.read() == me) break;
      first_attempt = false;
      if (controller_ != nullptr) controller_->on_failure();
    }
    (first_attempt ? first_try_ : retried_)
        .fetch_add(1, std::memory_order_relaxed);  // mo-ok: statistics counter
    if (controller_ != nullptr && first_attempt) controller_->on_clean();
    inner_->lock(id);
  }

  void unlock(int id) override {
    inner_->unlock(id);
    if (x_.read() == id + 1) {
      x_.write(0);
      events_.advance();
    }
  }

  std::string name() const override { return "tfr(" + inner_->name() + ")"; }

  std::uint64_t first_try_admissions() const {
    return first_try_.load(std::memory_order_relaxed);  // mo-ok: statistic
  }
  std::uint64_t retried_admissions() const {
    return retried_.load(std::memory_order_relaxed);  // mo-ok: statistic
  }

  /// Attaches an adaptive Δ controller: the Fischer filter's delay waits
  /// the controller's current estimate, a failed filter check reports
  /// on_failure() and a first-try admission reports on_clean().  Share one
  /// controller across threads only if it is thread-safe
  /// (adapt::AtomicAimd).  Advisory: the inner algorithm A provides mutual
  /// exclusion under ANY timing, so a mistuned estimate costs retries,
  /// never safety — the mcheck mistuned-controller scenario verifies this.
  void set_delta_controller(adapt::DeltaController* controller) {
    controller_ = controller;
  }

 private:
  Duration delta_;
  std::unique_ptr<BasicRtMutex<Atomics>> inner_;
  FaultInjector* faults_;
  adapt::DeltaController* controller_ = nullptr;
  BasicAtomicRegister<int, Atomics> x_{0};
  BasicEventCount<Atomics> events_;
  typename Atomics::template counter<std::uint64_t> first_try_{0};
  typename Atomics::template counter<std::uint64_t> retried_{0};
};

using TfrMutexRt = BasicTfrMutexRt<StdAtomics>;

/// The paper's recommended instantiation of Algorithm 3: A = starvation-
/// free transformation of Lamport's fast mutex.
template <class Atomics>
std::unique_ptr<BasicTfrMutexRt<Atomics>> make_basic_tfr_mutex(
    int n, typename Atomics::duration delta, FaultInjector* faults = nullptr) {
  auto fast = std::make_unique<BasicLamportFastRt<Atomics>>(n);
  auto a = std::make_unique<BasicStarvationFreeRt<Atomics>>(n, std::move(fast));
  return std::make_unique<BasicTfrMutexRt<Atomics>>(delta, std::move(a),
                                                    faults);
}

std::unique_ptr<TfrMutexRt> make_tfr_mutex_rt(int n, Nanos delta,
                                              FaultInjector* faults = nullptr);

// The production instantiations live in mutex_rt.cpp — one definition of
// the StdAtomics codegen for every target that links tfr_mutex.
extern template class BasicFischerRt<StdAtomics>;
extern template class BasicLamportFastRt<StdAtomics>;
extern template class BasicBakeryRt<StdAtomics>;
extern template class BasicBlackWhiteBakeryRt<StdAtomics>;
extern template class BasicStarvationFreeRt<StdAtomics>;
extern template class BasicTfrMutexRt<StdAtomics>;

// ---------------------------------------------------------------------------
// Harness: n threads cycling NCS → lock → CS → unlock with an occupancy
// probe that counts mutual-exclusion violations.  CS/NCS residency uses
// sleep_spin_for, so only the locks' own spin budgets burn CPU; the
// CPU-time/wall-time ratio of the whole run is the core-burning
// detector — ~1 (or below, with sleeping phases) for blocking locks,
// ~min(threads, cores) for spinning ones.

struct RtWorkloadConfig {
  int threads = 2;
  int sessions = 100;
  Nanos cs_time{500};
  Nanos ncs_time{500};
};

struct RtWorkloadResult {
  std::uint64_t violations = 0;   ///< CS occupancy > 1 observations
  std::uint64_t cs_entries = 0;
  Nanos max_wait{0};              ///< longest lock() latency
  Nanos p99_wait{0};              ///< 99th-percentile lock() latency
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;       ///< process CPU time over the run

  /// The core-burning detector: CPU time per unit wall time.
  double cpu_wall_ratio() const {
    return wall_seconds > 0 ? cpu_seconds / wall_seconds : 0.0;
  }
};

RtWorkloadResult run_rt_mutex_workload(RtMutex& mutex,
                                       RtWorkloadConfig config);

}  // namespace tfr::rt
