// Mutual-exclusion algorithms — real-thread edition (std::atomic registers).
//
// Same algorithm set as mutex_sim.hpp; see that header for the catalogue
// and the role each plays in the paper.  Every unbounded await-loop
// blocks on the lock's EventCount (rt/atomic_mutex.hpp) after a short
// spin budget instead of yield-spinning, so waiters cost no CPU on
// machines with fewer cores than threads — delay(Δ) itself stays a
// precise busy-wait, which is all the Δ reasoning needs (docs/MODEL.md
// "Blocking lock substrate").  Protocol: any register write that can
// turn some waiter's predicate true is followed by events_.advance().
//
// Injection points (see registers/fault_injector.hpp):
//   "fischer.gate"  — between reading x = 0 and writing x := i; stalling
//                     here longer than Δ reproduces the classic mutual-
//                     exclusion violation of §3.1.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tfr/registers/atomic_register.hpp"
#include "tfr/registers/fault_injector.hpp"
#include "tfr/rt/atomic_mutex.hpp"

namespace tfr::rt {

class RtMutex {
 public:
  virtual ~RtMutex() = default;
  virtual void lock(int id) = 0;
  virtual void unlock(int id) = 0;
  virtual std::string name() const = 0;
};

/// Algorithm 2 — Fischer's timing-based mutex on real threads.  `delta`
/// should be optimistic(Δ); ME holds only while no step outlasts it.
class FischerRt final : public RtMutex {
 public:
  FischerRt(Nanos delta, FaultInjector* faults = nullptr);

  void lock(int id) override;
  void unlock(int id) override;
  std::string name() const override { return "fischer"; }

 private:
  Nanos delta_;
  FaultInjector* faults_;
  AtomicRegister<int> x_{0};
  EventCount events_;
};

/// Lamport's fast mutex (deadlock-free, not starvation-free).
class LamportFastRt final : public RtMutex {
 public:
  explicit LamportFastRt(int n);

  void lock(int id) override;
  void unlock(int id) override;
  std::string name() const override { return "lamport-fast"; }

 private:
  int n_;
  AtomicRegister<int> x_{0};
  AtomicRegister<int> y_{0};
  std::unique_ptr<AtomicRegister<int>[]> b_;
  EventCount events_;
};

/// Lamport's bakery (starvation-free, FIFO, unbounded tickets).
class BakeryRt final : public RtMutex {
 public:
  explicit BakeryRt(int n);

  void lock(int id) override;
  void unlock(int id) override;
  std::string name() const override { return "bakery"; }

 private:
  int n_;
  std::unique_ptr<AtomicRegister<int>[]> choosing_;
  std::unique_ptr<AtomicRegister<int>[]> number_;
  EventCount events_;
};

/// Taubenfeld's black-white bakery (starvation-free, bounded tickets).
class BlackWhiteBakeryRt final : public RtMutex {
 public:
  explicit BlackWhiteBakeryRt(int n);

  void lock(int id) override;
  void unlock(int id) override;
  std::string name() const override { return "bw-bakery"; }

 private:
  struct Ticket {
    std::int32_t color = 0;
    std::int32_t num = 0;  ///< 0 = not competing
  };

  int n_;
  AtomicRegister<int> color_{0};
  std::unique_ptr<AtomicRegister<int>[]> choosing_;
  std::unique_ptr<AtomicRegister<Ticket>[]> ticket_;
  std::vector<int> mycolor_;
  EventCount events_;
};

/// Deadlock-free → starvation-free doorway transformation (see
/// mutex/starvation_free_sim.cpp for the argument).
class StarvationFreeRt final : public RtMutex {
 public:
  StarvationFreeRt(int n, std::unique_ptr<RtMutex> inner);

  void lock(int id) override;
  void unlock(int id) override;
  std::string name() const override {
    return "starvation-free(" + inner_->name() + ")";
  }

 private:
  int n_;
  std::unique_ptr<RtMutex> inner_;
  std::unique_ptr<AtomicRegister<int>[]> flag_;
  AtomicRegister<int> turn_{0};
  EventCount events_;
};

/// Algorithm 3 — the time-resilient mutex: Fischer filter around an inner
/// asynchronous algorithm A.
class TfrMutexRt final : public RtMutex {
 public:
  TfrMutexRt(Nanos delta, std::unique_ptr<RtMutex> inner,
             FaultInjector* faults = nullptr);

  void lock(int id) override;
  void unlock(int id) override;
  std::string name() const override { return "tfr(" + inner_->name() + ")"; }

  std::uint64_t first_try_admissions() const {
    return first_try_.load(std::memory_order_relaxed);
  }
  std::uint64_t retried_admissions() const {
    return retried_.load(std::memory_order_relaxed);
  }

 private:
  Nanos delta_;
  std::unique_ptr<RtMutex> inner_;
  FaultInjector* faults_;
  AtomicRegister<int> x_{0};
  EventCount events_;
  std::atomic<std::uint64_t> first_try_{0};
  std::atomic<std::uint64_t> retried_{0};
};

/// The paper's recommended instantiation of Algorithm 3: A = starvation-
/// free transformation of Lamport's fast mutex.
std::unique_ptr<TfrMutexRt> make_tfr_mutex_rt(int n, Nanos delta,
                                              FaultInjector* faults = nullptr);

// ---------------------------------------------------------------------------
// Harness: n threads cycling NCS → lock → CS → unlock with an occupancy
// probe that counts mutual-exclusion violations.  CS/NCS residency uses
// sleep_spin_for, so only the locks' own spin budgets burn CPU; the
// CPU-time/wall-time ratio of the whole run is the core-burning
// detector — ~1 (or below, with sleeping phases) for blocking locks,
// ~min(threads, cores) for spinning ones.

struct RtWorkloadConfig {
  int threads = 2;
  int sessions = 100;
  Nanos cs_time{500};
  Nanos ncs_time{500};
};

struct RtWorkloadResult {
  std::uint64_t violations = 0;   ///< CS occupancy > 1 observations
  std::uint64_t cs_entries = 0;
  Nanos max_wait{0};              ///< longest lock() latency
  Nanos p99_wait{0};              ///< 99th-percentile lock() latency
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;       ///< process CPU time over the run

  /// The core-burning detector: CPU time per unit wall time.
  double cpu_wall_ratio() const {
    return wall_seconds > 0 ? cpu_seconds / wall_seconds : 0.0;
  }
};

RtWorkloadResult run_rt_mutex_workload(RtMutex& mutex,
                                       RtWorkloadConfig config);

}  // namespace tfr::rt
