// The Atomics policy: the single seam through which rt algorithm code
// touches shared memory.
//
// Every blocking primitive and mutex algorithm in src/rt and src/mutex is
// a template over one `Atomics` policy type.  Two policies exist:
//
//   * StdAtomics (this header) — the production policy.  Its member
//     aliases ARE the std:: types (`atomic<T>` is literally
//     std::atomic<T>), its pause/delay are the real PAUSE loop and
//     busy-wait, and every operation is noexcept.  Instantiating an
//     algorithm with StdAtomics therefore compiles to exactly the code
//     the untemplated originals produced — there is no wrapper object,
//     no indirection, and rt_codegen_test pins the layout and noexcept
//     guarantees that make this "zero-cost by construction".
//
//   * ShimAtomics (rt/shim/shim_atomic.hpp) — the model-checking policy.
//     Its `atomic<T>` routes every load/store/RMW/wait/notify through an
//     mcheck-controlled simulation so the explorer can interleave and
//     time-stretch the algorithm's real source code.  Production targets
//     must never link it (it drags in tfr_sim).
//
// Policy surface (duck-typed; both policies provide):
//   atomic<T>    — std::atomic-compatible cell (load/store/exchange/CAS/
//                  fetch_add/wait/notify)
//   counter<T>   — relaxed statistics counter (fetch_add/load); plain
//                  under the shim, where the seam already serializes
//   duration     — the delay(Δ) argument type (Nanos / sim ticks)
//   thread       — companion thread facade (std::thread / shim::thread)
//   kSpinBudget  — spin iterations before blocking (0 under the shim:
//                  spinning is useless when the checker owns time)
//   kNoexceptOps — whether lock/unlock may be declared noexcept (the
//                  shim aborts executions by throwing through them)
//   pause()      — one polite spin iteration
//   delay(d)     — the paper's delay statement (precise busy-wait /
//                  simulated-time delay)
//   count(d)     — duration as a raw tick count (validation only)

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "tfr/registers/fault_injector.hpp"

namespace tfr::rt {

/// One polite spin iteration: de-pipelines the loop without yielding the
/// core (PAUSE/YIELD are ~dozens of cycles; a scheduler yield is ~µs).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Default spin-then-wait budget, in cpu_relax() iterations.  Sized so an
/// uncontended-to-lightly-contended handoff (a few hundred ns of critical
/// section) resolves without a futex round trip, while a preempted or
/// long-CS owner parks waiters well under a scheduler quantum.
inline constexpr unsigned kDefaultSpinBudget = 256;

/// Production policy: real hardware atomics, real time.  See the header
/// comment — instantiations with this policy must be bit-for-bit the code
/// the pre-seam untemplated classes generated.
struct StdAtomics {
  template <class T>
  using atomic = std::atomic<T>;

  template <class T>
  using counter = std::atomic<T>;

  using duration = Nanos;
  using thread = std::thread;

  static constexpr unsigned kSpinBudget = kDefaultSpinBudget;
  static constexpr bool kNoexceptOps = true;

  static void pause() noexcept { cpu_relax(); }

  /// delay(Δ) stays a precise busy-wait — delay must not itself suffer a
  /// scheduler-induced timing failure whenever avoidable (docs/MODEL.md).
  static void delay(duration d) { spin_for(d); }

  static std::int64_t count(duration d) noexcept { return d.count(); }

  static void yield() { std::this_thread::yield(); }
};

}  // namespace tfr::rt
