// The atomic interposition seam: running real rt thread code under mcheck.
//
// Model checkers usually verify a *transcription* of an algorithm into
// their own modeling language, leaving a gap between the checked model and
// the shipped code.  This seam closes that gap for the rt locks: the same
// templated source (mutex/mutex_rt.hpp, rt/atomic_mutex.hpp) that
// production compiles against std::atomic is instantiated with ShimAtomics
// (shim_atomic.hpp), whose cells forward every load/store/RMW/wait/notify
// into a sim::Simulation that the mcheck explorer drives.
//
// Mechanics (the CDSChecker/relacy switch-to-master design, adapted to the
// coroutine simulator): each logical thread is a pooled OS thread running
// the unmodified algorithm body, paired with a sim::Process "pump"
// coroutine inside the simulation.  The handshake alternates strictly —
//
//   thread:  runs until its next shared-memory op, posts it, blocks
//   pump:    co_awaits the op into the simulation; when the explorer
//            linearizes it (choosing its interleaving and duration), the
//            pump applies it to the shared register, replies, and blocks
//            until the thread posts its next op
//
// so at every simulation suspension point every algorithm thread is
// parked: algorithm code is single-threaded in effect (no data races, no
// TSan noise, deterministic replay) and the explorer owns every
// interleaving and timing decision, including stretching any access past
// Δ — the paper's timing failures — via its cost menu.
//
// atomic::wait(old) is modeled as a scheduled read that atomically
// check-and-parks at its linearization instant iff the value still equals
// `old`; notify is an immediate (zero-duration) op that reschedules every
// parked waiter for a fresh check — faithfully modeling the futex
// re-check loop, including the lost-wakeup interleavings the EventCount
// torn-epoch scenario hunts.  A run that goes idle with parked waiters is
// exactly a lost wakeup / deadlock.
//
// Soundness caveats are documented in docs/MODEL.md ("Model-checking the
// rt code"): seq_cst-only modeling, notify_one explored as notify_all
// (legal under the spurious-wakeup license of std::atomic::wait, but a
// single-wakeup loss needs the torn-epoch style scenarios to surface).

#pragma once

#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "tfr/sim/simulation.hpp"

namespace tfr::rtshim {

/// Thrown through algorithm code when an execution is torn down mid-run
/// (the explorer prunes most runs early); the thread-pool worker catches
/// it and returns the OS thread to the pool.  Algorithm code instantiated
/// with ShimAtomics must therefore not be noexcept (Atomics::kNoexceptOps).
struct AbortExecution {};

class RtExecution;

namespace detail {

/// Pump coroutines parked in atomic::wait on one shim cell.
struct WaitList {
  std::vector<std::coroutine_handle<>> handles;
};

/// One shared-memory operation posted by an algorithm thread.  Lives on
/// the posting thread's stack; the thread stays blocked until the reply,
/// so the pump may dereference it freely.
struct Op {
  enum class Kind { kLoad, kStore, kRmw, kWait, kDelay, kNotify, kMark };

  Kind kind;
  std::uint64_t reg_uid = 0;  ///< scheduled accesses: the conflict key
  bool is_write = false;      ///< scheduled accesses: dependence class
  sim::Duration delay = 0;    ///< kDelay only

  explicit Op(Kind k) : kind(k) {}
  virtual ~Op() = default;

  /// Immediate ops take no simulated time: they run at the instant the
  /// posting thread's previous scheduled op linearized (sound for notify,
  /// which follows its store program-order; and for the occupancy marks).
  bool scheduled() const {
    return kind != Kind::kNotify && kind != Kind::kMark;
  }

  /// Scheduled ops: runs on the simulation thread at the linearization
  /// instant.  Returns true iff the posting thread must park (a kWait
  /// whose value still equals the expected one — atomic check-and-park).
  virtual bool apply(sim::Simulation&, sim::Pid, sim::Time /*issued*/) {
    return false;
  }

  /// Immediate ops: runs synchronously inside the pump.
  virtual void immediate(RtExecution&, sim::Simulation&) {}

  /// kWait: the cell's park list.
  virtual WaitList* wait_list() { return nullptr; }
};

/// The handshake cell pairing one pooled OS thread with one pump.
struct Slot {
  enum class Phase {
    kIdle,      ///< pool thread parked, no job
    kArmed,     ///< job assigned, waiting for the pump's kStart
    kRunning,   ///< algorithm code executing between ops
    kOpPosted,  ///< op posted; thread blocked awaiting the reply
    kReplied,   ///< pump answered; thread about to resume
    kJobDone,   ///< job returned (or unwound)
  };

  std::mutex m;
  std::condition_variable cv;
  Phase phase = Phase::kIdle;
  bool exit = false;   ///< pool shutdown (never set in practice; pool leaks)
  bool abort = false;  ///< reply means: unwind via AbortExecution
  std::function<void()> job;
  Op* op = nullptr;
  std::exception_ptr error;
  std::thread thread;

  void arm(std::function<void()> body);
  void start_job();  // pump side, at kStart
  Op* await_op();    // pump side; blocks; nullptr = job finished
  void reply(bool abort_run);
  void finish_teardown();  // RtExecution dtor side
};

/// The slot of the shim thread the calling OS thread animates, or nullptr
/// outside the seam (scenario construction, verdict closures) — shim
/// cells then fall back to untimed peek/poke, which is exactly right for
/// initialization and post-run inspection.
Slot* current_slot();

/// Posts `op` to this thread's pump and blocks until it is applied.
/// Throws AbortExecution when the execution is being torn down.
void post_op(Op& op);

}  // namespace detail

/// One model-checked execution of a set of real-thread bodies.  Construct
/// inside a CheckScenario with the run's Simulation, spawn_thread() each
/// algorithm body, and let the explorer run the simulation; destroy (or
/// let the harness closure drop it) to unwind any still-blocked threads
/// back into the pool.  Exactly one instance may be live per process at a
/// time (current() is how shim cells find their simulation).
///
/// Ownership contract: the RtExecution must be owned by the harness
/// (verdict closure) alone — never by the thread-body closures — so its
/// destructor runs on the simulation thread when the explorer drops the
/// harness.  Bodies may share-own the algorithm state they touch: the
/// pool worker drops a body's closure before reporting its slot done, and
/// ~RtExecution synchronizes with that report for every slot, so an
/// algorithm-state reference held alongside the RtExecution is always the
/// last to drop (see mcheck/rt_scenarios.cpp for the Holder idiom).
class RtExecution {
 public:
  explicit RtExecution(sim::Simulation& sim);
  ~RtExecution();
  RtExecution(const RtExecution&) = delete;
  RtExecution& operator=(const RtExecution&) = delete;

  /// The live execution, if any (bound for this object's whole lifetime).
  static RtExecution* current();

  sim::Simulation& sim() { return *sim_; }

  /// Spawns one logical thread running `body` under the seam.  Call during
  /// scenario setup, before the simulation runs; the thread's first step
  /// is a kStart event the explorer schedules like any other.
  void spawn_thread(std::function<void()> body);

  // Critical-section occupancy probe: immediate ops posted by algorithm
  // threads; occupancy changes at the linearization instant of the
  // thread's latest shared access, so an overlap in simulated time is
  // exactly two threads inside the CS simultaneously.
  void mark_enter();
  void mark_exit();
  std::uint64_t me_violations() const { return violations_; }

  /// Pump-side bookkeeping for the occupancy marks.
  void note_mark(int delta);

 private:
  sim::Simulation* sim_;
  std::vector<detail::Slot*> slots_;
  int occupancy_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace tfr::rtshim
