// shim::atomic — std::atomic-compatible cells that route every operation
// through the mcheck interposition seam (rt_exec.hpp), plus the
// ShimAtomics policy that plugs them into the templated rt algorithms.
//
// On an algorithm thread each method builds an Op on the caller's stack,
// posts it to the thread's pump and blocks until the explorer linearizes
// it; off-thread (scenario construction, verdict closures) the methods
// fall back to untimed peek/poke, which is the correct semantics for
// initialization and post-run inspection.  RMWs linearize as a single
// write-classified event whose new value is computed at the linearization
// instant — exchange/CAS/fetch_add are atomic at their linearization
// point exactly as on hardware.  A failed CAS performs (and accounts) a
// read instead of a write.
//
// Memory orders are accepted for API compatibility and deliberately
// ignored: the simulation linearizes every access into one total order,
// i.e. everything is modeled seq_cst.  That is sound for the algorithms
// here (whose arguments assume seq_cst, see registers/atomic_register.hpp)
// but means the shim cannot exhibit relaxed-memory-only bugs; the shared
// access lint (scripts/lint_shared_access.py) separately flags non-seq_cst
// orders in rt code for human review.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "tfr/common/contracts.hpp"
#include "tfr/rt/shim/rt_exec.hpp"

namespace tfr::rtshim {

namespace detail {

template <class T>
struct LoadOp final : Op {
  const sim::Register<T>* reg;
  T result{};

  explicit LoadOp(const sim::Register<T>* r) : Op(Kind::kLoad), reg(r) {
    reg_uid = r->uid();
    is_write = false;
  }

  bool apply(sim::Simulation& sim, sim::Pid pid, sim::Time issued) override {
    const bool remote = reg->note_read_rmr(pid);
    sim.note_read(pid, remote);
    if (sim.trace_sink() != nullptr) {
      sim.emit({issued, pid, obs::EventKind::kRead, sim.now() - issued,
                remote ? 1 : 0, sim.trace_label(reg->name())});
    }
    result = reg->load_linearized();
    return false;
  }
};

template <class T>
struct StoreOp final : Op {
  sim::Register<T>* reg;
  T value;

  StoreOp(sim::Register<T>* r, T v)
      : Op(Kind::kStore), reg(r), value(std::move(v)) {
    reg_uid = r->uid();
    is_write = true;
  }

  bool apply(sim::Simulation& sim, sim::Pid pid, sim::Time issued) override {
    sim.note_write(pid);
    reg->note_write_rmr(pid);
    if (sim.trace_sink() != nullptr) {
      std::int64_t traced = 0;
      if constexpr (std::is_convertible_v<T, std::int64_t>)
        traced = static_cast<std::int64_t>(value);
      sim.emit({issued, pid, obs::EventKind::kWrite, sim.now() - issued,
                traced, sim.trace_label(reg->name())});
    }
    reg->store_linearized(std::move(value));
    return false;
  }
};

/// Read-modify-write: `f(prior)` returns the value to store, or nullopt
/// to store nothing (failed CAS).  Scheduled as a write (conservative
/// conflict class either way); accounted by what actually happened.
template <class T, class F>
struct RmwOp final : Op {
  sim::Register<T>* reg;
  F f;
  T prior{};

  RmwOp(sim::Register<T>* r, F fn)
      : Op(Kind::kRmw), reg(r), f(std::move(fn)) {
    reg_uid = r->uid();
    is_write = true;
  }

  bool apply(sim::Simulation& sim, sim::Pid pid, sim::Time issued) override {
    const std::optional<T> next = f(static_cast<const T&>(reg->peek()));
    if (next.has_value()) {
      sim.note_write(pid);
      reg->note_write_rmr(pid);
      prior = reg->peek();
      if (sim.trace_sink() != nullptr) {
        std::int64_t traced = 0;
        if constexpr (std::is_convertible_v<T, std::int64_t>)
          traced = static_cast<std::int64_t>(*next);
        sim.emit({issued, pid, obs::EventKind::kWrite, sim.now() - issued,
                  traced, sim.trace_label(reg->name())});
      }
      reg->store_linearized(*next);
    } else {
      const bool remote = reg->note_read_rmr(pid);
      sim.note_read(pid, remote);
      if (sim.trace_sink() != nullptr) {
        sim.emit({issued, pid, obs::EventKind::kRead, sim.now() - issued,
                  remote ? 1 : 0, sim.trace_label(reg->name())});
      }
      prior = reg->load_linearized();
    }
    return false;
  }
};

/// atomic::wait(old): a scheduled read that parks atomically at its
/// linearization instant iff the value still equals `old`.
template <class T>
struct WaitOp final : Op {
  const sim::Register<T>* reg;
  T old;
  WaitList* list;

  WaitOp(const sim::Register<T>* r, T o, WaitList* l)
      : Op(Kind::kWait), reg(r), old(std::move(o)), list(l) {
    reg_uid = r->uid();
    is_write = false;
  }

  bool apply(sim::Simulation& sim, sim::Pid pid, sim::Time issued) override {
    const bool remote = reg->note_read_rmr(pid);
    sim.note_read(pid, remote);
    if (sim.trace_sink() != nullptr) {
      sim.emit({issued, pid, obs::EventKind::kRead, sim.now() - issued,
                remote ? 1 : 0, sim.trace_label(reg->name())});
    }
    return reg->load_linearized() == old;
  }

  WaitList* wait_list() override { return list; }
};

/// notify_one/notify_all: immediate op; every parked waiter is
/// rescheduled (via a zero-cost callback at the current instant) for a
/// fresh check-and-park read.  Waking "too many" waiters is within the
/// spurious-wakeup license of std::atomic::wait.
struct NotifyOp final : Op {
  WaitList* list;

  explicit NotifyOp(WaitList* l) : Op(Kind::kNotify), list(l) {}

  void immediate(RtExecution&, sim::Simulation& sim) override {
    for (std::coroutine_handle<> h : list->handles)
      sim.schedule_callback(sim.now(), [h] { h.resume(); });
    list->handles.clear();
  }
};

/// delay(d): the paper's delay statement, in simulated ticks.
struct DelayOp final : Op {
  explicit DelayOp(sim::Duration d) : Op(Kind::kDelay) { delay = d; }

  bool apply(sim::Simulation& sim, sim::Pid pid, sim::Time) override {
    sim.note_delay(pid, delay);
    sim.emit({sim.now() - delay, pid, obs::EventKind::kDelay, delay, 0, 0});
    return false;
  }
};

inline sim::RegisterSpace& current_space() {
  RtExecution* exec = RtExecution::current();
  TFR_REQUIRE(exec != nullptr);  // shim cells need a live RtExecution
  return exec->sim().space();
}

}  // namespace detail

/// The shim cell.  API-compatible with the std::atomic<T> subset the rt
/// algorithms use; must be constructed while an RtExecution is live
/// (scenario setup), which binds the cell's register to that simulation.
template <class T>
class atomic {
 public:
  atomic() : atomic(T{}) {}
  atomic(T v) : reg_(detail::current_space(), std::move(v)) {}

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const {
    if (detail::current_slot() == nullptr) return reg_.peek();
    detail::LoadOp<T> op(&reg_);
    detail::post_op(op);
    return op.result;
  }

  void store(T v, std::memory_order = std::memory_order_seq_cst) {
    if (detail::current_slot() == nullptr) {
      reg_.poke(std::move(v));
      return;
    }
    detail::StoreOp<T> op(&reg_, std::move(v));
    detail::post_op(op);
  }

  T exchange(T v, std::memory_order = std::memory_order_seq_cst) {
    return rmw([v](const T&) { return std::optional<T>(v); });
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst,
      std::memory_order = std::memory_order_seq_cst) {
    const T want = expected;
    const T prior = rmw([want, desired](const T& current) {
      return current == want ? std::optional<T>(desired) : std::nullopt;
    });
    if (prior == want) return true;
    expected = prior;
    return false;
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order success = std::memory_order_seq_cst,
      std::memory_order failure = std::memory_order_seq_cst) {
    // No spurious failure under the seam: weak == strong.
    return compare_exchange_strong(expected, desired, success, failure);
  }

  T fetch_add(T d, std::memory_order = std::memory_order_seq_cst) {
    return rmw([d](const T& current) {
      return std::optional<T>(static_cast<T>(current + d));
    });
  }

  T fetch_sub(T d, std::memory_order = std::memory_order_seq_cst) {
    return rmw([d](const T& current) {
      return std::optional<T>(static_cast<T>(current - d));
    });
  }

  void wait(T old, std::memory_order = std::memory_order_seq_cst) const {
    TFR_REQUIRE(detail::current_slot() != nullptr);  // wait needs the seam
    detail::WaitOp<T> op(&reg_, std::move(old), &waiters_);
    detail::post_op(op);
  }

  /// Modeled as notify_all — see the header caveat.
  void notify_one() { notify_all(); }

  void notify_all() {
    if (detail::current_slot() == nullptr) {
      TFR_REQUIRE(waiters_.handles.empty());  // nobody to wake off-run
      return;
    }
    detail::NotifyOp op(&waiters_);
    detail::post_op(op);
  }

  bool is_lock_free() const { return true; }

 private:
  template <class F>
  T rmw(F f) {
    if (detail::current_slot() == nullptr) {
      const T prior = reg_.peek();
      if (std::optional<T> next = f(static_cast<const T&>(prior)))
        reg_.poke(*next);
      return prior;
    }
    detail::RmwOp<T, F> op(&reg_, std::move(f));
    detail::post_op(op);
    return op.prior;
  }

  mutable sim::Register<T> reg_;
  mutable detail::WaitList waiters_;
};

/// std::atomic_flag facade on a shim word.
class atomic_flag {
 public:
  atomic_flag() = default;
  atomic_flag(const atomic_flag&) = delete;
  atomic_flag& operator=(const atomic_flag&) = delete;

  bool test_and_set(std::memory_order = std::memory_order_seq_cst) {
    return cell_.exchange(1) != 0;
  }
  void clear(std::memory_order = std::memory_order_seq_cst) {
    cell_.store(0);
  }
  bool test(std::memory_order = std::memory_order_seq_cst) const {
    return cell_.load() != 0;
  }
  void wait(bool old, std::memory_order = std::memory_order_seq_cst) const {
    cell_.wait(old ? 1u : 0u);
  }
  void notify_one() { cell_.notify_one(); }
  void notify_all() { cell_.notify_all(); }

 private:
  atomic<std::uint32_t> cell_{0};
};

/// Statistics counter under the seam: the handshake serializes algorithm
/// threads (with happens-before edges between consecutive runners), so a
/// plain value is race-free and — unlike a shim cell — adds no events to
/// the explored state space.
template <class T>
class serial_counter {
 public:
  serial_counter() = default;
  serial_counter(T v) : value_(v) {}
  serial_counter(const serial_counter&) = delete;
  serial_counter& operator=(const serial_counter&) = delete;

  T fetch_add(T d, std::memory_order = std::memory_order_relaxed) {
    const T prior = value_;
    value_ = static_cast<T>(value_ + d);
    return prior;
  }
  T load(std::memory_order = std::memory_order_relaxed) const {
    return value_;
  }

 private:
  T value_{};
};

/// std::thread facade: construction spawns a logical thread in the live
/// RtExecution; the simulation's run-to-idle is the join, so join() is a
/// sim-thread no-op kept for API shape.
class thread {
 public:
  template <class F>
  explicit thread(F&& f) {
    RtExecution* exec = RtExecution::current();
    TFR_REQUIRE(exec != nullptr);
    exec->spawn_thread(std::forward<F>(f));
  }

  void join() { TFR_REQUIRE(detail::current_slot() == nullptr); }
  bool joinable() const { return false; }
};

/// A yield is not a shared-memory step: under the seam it is a no-op (the
/// explorer already owns scheduling).
inline void yield() {}

/// The model-checking Atomics policy (see rt/atomics_policy.hpp for the
/// surface contract and the StdAtomics production twin).
struct ShimAtomics {
  template <class T>
  using atomic = rtshim::atomic<T>;

  template <class T>
  using counter = rtshim::serial_counter<T>;

  using duration = sim::Duration;
  using thread = rtshim::thread;

  /// Spinning is useless when the checker owns time — a spin iteration
  /// would re-read the register without letting anything else move.
  static constexpr unsigned kSpinBudget = 0;
  /// Teardown unwinds AbortExecution through algorithm frames.
  static constexpr bool kNoexceptOps = false;

  static void pause() {}

  static void delay(duration d) {
    detail::DelayOp op(d);
    detail::post_op(op);
  }

  static std::int64_t count(duration d) noexcept { return d; }

  static void yield() { rtshim::yield(); }
};

}  // namespace tfr::rtshim
