#include "tfr/rt/shim/rt_exec.hpp"

#include <unistd.h>

#include <memory>
#include <utility>

#include "tfr/common/contracts.hpp"

namespace tfr::rtshim {

namespace detail {

namespace {

thread_local Slot* tls_slot = nullptr;

/// The pool worker: parks until a job is started, runs it (the whole
/// algorithm body of one logical thread for one execution), reports done,
/// parks again.  One OS thread per slot, reused across executions — the
/// explorer runs the same scenario hundreds of thousands of times and
/// thread creation would dominate.
void worker_main(Slot* slot) {
  std::unique_lock<std::mutex> lk(slot->m);
  for (;;) {
    slot->cv.wait(lk, [&] {
      return slot->phase == Slot::Phase::kRunning || slot->exit;
    });
    if (slot->exit) return;
    std::function<void()> job = std::move(slot->job);
    slot->job = nullptr;
    lk.unlock();
    tls_slot = slot;
    try {
      job();
    } catch (const AbortExecution&) {
      // Teardown unwind: not an error.
    } catch (...) {
      std::lock_guard<std::mutex> guard(slot->m);
      slot->error = std::current_exception();
    }
    tls_slot = nullptr;
    // Drop the closure before reporting done: it owns the scenario state
    // (shared_ptr captures), which must die on the simulation side, not
    // here — teardown returns only after kJobDone, so ordering this first
    // guarantees the worker never holds the last reference.
    job = nullptr;
    lk.lock();
    slot->phase = Slot::Phase::kJobDone;
    slot->cv.notify_all();
  }
}

/// Slots keyed by process id: after a fork() (mcheck's parallel workers)
/// the child inherits the pool's memory but none of its threads, so the
/// child abandons the stale object — leaking it deliberately; its mutexes
/// may be mid-transition — and lazily builds its own.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static std::mutex g_mutex;
    static ThreadPool* g_pool = nullptr;
    static pid_t g_pid = -1;
    std::lock_guard<std::mutex> lk(g_mutex);
    const pid_t me = ::getpid();
    if (g_pool == nullptr || g_pid != me) {
      g_pool = new ThreadPool();  // intentionally leaked (threads park in it)
      g_pid = me;
    }
    return *g_pool;
  }

  Slot* acquire() {
    std::lock_guard<std::mutex> lk(m_);
    if (!free_.empty()) {
      Slot* slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.push_back(std::make_unique<Slot>());
    Slot* slot = slots_.back().get();
    slot->thread = std::thread(worker_main, slot);
    slot->thread.detach();  // pool lives for the process; never joined
    return slot;
  }

  void release(Slot* slot) {
    std::lock_guard<std::mutex> lk(m_);
    free_.push_back(slot);
  }

 private:
  std::mutex m_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Slot*> free_;
};

/// Schedules the posted op into the simulation and applies it at its
/// linearization instant.  The awaited value is "must the thread park".
struct OpAwaiter {
  sim::Simulation* sim;
  sim::Pid pid;
  Op* op;
  sim::Time issued = 0;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    issued = sim->now();
    if (op->kind == Op::Kind::kDelay)
      sim->schedule_delay(pid, op->delay, h);
    else
      sim->schedule_access(pid, h, op->reg_uid, op->is_write);
  }
  bool await_resume() { return op->apply(*sim, pid, issued); }
};

/// Parks the pump on the cell's wait list; resumed by a notify's wake
/// callback (zero-duration, so the wake itself is not a scheduling
/// decision — the re-check read it triggers is).
struct ParkAwaiter {
  WaitList* list;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { list->handles.push_back(h); }
  void await_resume() const noexcept {}
};

/// The pump: the simulation-side half of one logical thread.
sim::Process pump(sim::Env env, RtExecution* exec, detail::Slot* slot) {
  slot->start_job();
  for (;;) {
    Op* op = slot->await_op();
    if (op == nullptr) break;
    if (!op->scheduled()) {
      op->immediate(*exec, env.sim());
      slot->reply(false);
      continue;
    }
    bool park = co_await OpAwaiter{&env.sim(), env.pid(), op};
    while (park) {
      co_await ParkAwaiter{op->wait_list()};
      park = co_await OpAwaiter{&env.sim(), env.pid(), op};
    }
    slot->reply(false);
  }
  // Propagate real algorithm failures (contract violations, logic bugs in
  // the code under test) into the simulation's exception channel.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(slot->m);
    error = std::exchange(slot->error, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

void Slot::arm(std::function<void()> body) {
  std::lock_guard<std::mutex> lk(m);
  TFR_REQUIRE(phase == Phase::kIdle);
  job = std::move(body);
  op = nullptr;
  abort = false;
  error = nullptr;
  phase = Phase::kArmed;
}

void Slot::start_job() {
  std::lock_guard<std::mutex> lk(m);
  TFR_INVARIANT(phase == Phase::kArmed);
  phase = Phase::kRunning;
  cv.notify_all();
}

detail::Op* Slot::await_op() {
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] {
    return phase == Phase::kOpPosted || phase == Phase::kJobDone;
  });
  return phase == Phase::kOpPosted ? op : nullptr;
}

void Slot::reply(bool abort_run) {
  std::lock_guard<std::mutex> lk(m);
  TFR_INVARIANT(phase == Phase::kOpPosted);
  abort = abort_run;
  phase = Phase::kReplied;
  cv.notify_all();
}

void Slot::finish_teardown() {
  std::unique_lock<std::mutex> lk(m);
  switch (phase) {
    case Phase::kArmed:
      // The pump's kStart never linearized; the thread never started.
      job = nullptr;
      break;
    case Phase::kOpPosted:
      // Strict alternation guarantees this is the only mid-run state at a
      // simulation suspension point: unblock the thread with an abort
      // reply and wait for the unwind to finish.
      abort = true;
      phase = Phase::kReplied;
      cv.notify_all();
      cv.wait(lk, [&] { return phase == Phase::kJobDone; });
      break;
    case Phase::kJobDone:
      break;
    case Phase::kIdle:
    case Phase::kRunning:
    case Phase::kReplied:
      TFR_INVARIANT(false);  // impossible between pump resumptions
      break;
  }
  abort = false;
  error = nullptr;
  phase = Phase::kIdle;
}

Slot* current_slot() { return tls_slot; }

void post_op(Op& op) {
  Slot* slot = tls_slot;
  TFR_REQUIRE(slot != nullptr);
  std::unique_lock<std::mutex> lk(slot->m);
  TFR_INVARIANT(slot->phase == Slot::Phase::kRunning);
  slot->op = &op;
  slot->phase = Slot::Phase::kOpPosted;
  slot->cv.notify_all();
  slot->cv.wait(lk, [&] { return slot->phase == Slot::Phase::kReplied; });
  slot->phase = Slot::Phase::kRunning;
  slot->op = nullptr;
  if (slot->abort) throw AbortExecution{};
}

}  // namespace detail

namespace {

RtExecution* g_current = nullptr;

struct MarkOp final : detail::Op {
  int delta;
  explicit MarkOp(int d) : Op(Kind::kMark), delta(d) {}
  void immediate(RtExecution& exec, sim::Simulation&) override {
    exec.note_mark(delta);
  }
};

}  // namespace

RtExecution::RtExecution(sim::Simulation& sim) : sim_(&sim) {
  TFR_REQUIRE(g_current == nullptr);
  g_current = this;
}

RtExecution::~RtExecution() {
  for (detail::Slot* slot : slots_) {
    slot->finish_teardown();
    detail::ThreadPool::instance().release(slot);
  }
  g_current = nullptr;
}

RtExecution* RtExecution::current() { return g_current; }

void RtExecution::spawn_thread(std::function<void()> body) {
  TFR_REQUIRE(body != nullptr);
  detail::Slot* slot = detail::ThreadPool::instance().acquire();
  slot->arm(std::move(body));
  slots_.push_back(slot);
  sim_->spawn([this, slot](sim::Env env) {
    return detail::pump(env, this, slot);
  });
}

void RtExecution::mark_enter() {
  MarkOp op(+1);
  detail::post_op(op);
}

void RtExecution::mark_exit() {
  MarkOp op(-1);
  detail::post_op(op);
}

void RtExecution::note_mark(int delta) {
  occupancy_ += delta;
  TFR_INVARIANT(occupancy_ >= 0);
  if (occupancy_ > 1) ++violations_;
}

}  // namespace tfr::rtshim
