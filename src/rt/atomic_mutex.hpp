// Futex-class blocking primitives for the real-thread runtime.
//
// Every rt wait loop used to be an unbounded yield-spin: each waiter kept
// a core busy, so oversubscribed runs (threads > cores) burned CPU
// proportional to the thread count — exactly the regime where the paper's
// timing failures live, and exactly where a measurement harness must not
// perturb the system it measures.  This header provides the two blocking
// substrates that replace those spins:
//
//   * AtomicMutex — a 4-byte std::mutex-compatible lock on C++20
//     std::atomic::wait/notify_one (futex on Linux), with a tunable
//     spin-then-wait budget.  Three states: free, locked, locked with
//     (possible) waiters; unlock syscalls only in the contended case.
//
//   * EventCount + wait_until_changed() — a condition-variable-style
//     eventcount for the algorithms' await-loops, whose predicates read
//     *registers* (often several of them: the black-white bakery waits on
//     ticket_[j] AND color_).  Waiters snapshot the epoch, re-check the
//     predicate, and block until the epoch moves; state writers bump the
//     epoch after any write that can turn a predicate true.  The
//     epoch-before-predicate order (all seq_cst) makes lost wakeups
//     impossible: a writer's state change is visible to any waiter that
//     observed the pre-bump epoch.
//
// The spin budget bridges the two regimes: short critical sections are
// won within a few hundred PAUSE iterations without touching the kernel;
// past the budget the waiter parks and costs nothing until notified.
// Algorithm 3's Δ reasoning is untouched — delay(Δ) is still the precise
// busy-wait spin_for(); only *unbounded* waits (await x = 0, bakery
// scans, turn waits) block.
//
// Both primitives are templates over the Atomics policy (atomics_policy.hpp):
// BasicAtomicMutex<StdAtomics> is the production lock (the AtomicMutex
// alias below — one futex word, identical codegen to the pre-seam class);
// BasicAtomicMutex<ShimAtomics> is the same source code with every atomic
// access routed through the mcheck interposition seam.

#pragma once

#include <atomic>
#include <cstdint>

#include "tfr/rt/atomics_policy.hpp"

namespace tfr::rt {

/// A 4-byte mutex on atomic wait/notify_one (the atomic_sync design).
/// States: kFree, kLocked (no waiter has ever blocked during this hold),
/// kContended (a waiter may be parked: unlock must notify).  Satisfies
/// Lockable, so std::lock_guard / std::unique_lock work.
template <class Atomics>
class BasicAtomicMutex {
 public:
  BasicAtomicMutex() = default;
  BasicAtomicMutex(const BasicAtomicMutex&) = delete;
  BasicAtomicMutex& operator=(const BasicAtomicMutex&) = delete;

  void lock() noexcept(Atomics::kNoexceptOps) {
    spin_lock(Atomics::kSpinBudget);
  }

  /// lock() with an explicit spin budget: try the fast path, spin up to
  /// `spin_budget` relax iterations, then park until notified.
  void spin_lock(unsigned spin_budget) noexcept(Atomics::kNoexceptOps) {
    std::uint32_t expected = kFree;
    if (state_.compare_exchange_strong(
            expected, kLocked,
            std::memory_order_acquire,   // mo-ok: pairs with unlock's release
            std::memory_order_relaxed))  // mo-ok: failed CAS publishes nothing
      return;
    for (unsigned i = 0; i < spin_budget; ++i) {
      Atomics::pause();
      // mo-ok: advisory spin probe; the acquiring CAS below synchronizes
      if (state_.load(std::memory_order_relaxed) == kFree) {
        expected = kFree;
        if (state_.compare_exchange_weak(
                expected, kLocked,
                std::memory_order_acquire,   // mo-ok: pairs with release unlock
                std::memory_order_relaxed))  // mo-ok: failure publishes nothing
          return;
      }
    }
    // Blocking phase.  Claim the lock and advertise contention in one
    // exchange; whoever finds kFree here owns the lock but must leave
    // kContended behind — another waiter may already be parked.
    // mo-ok: acquire on the winning exchange pairs with release unlock
    while (state_.exchange(kContended, std::memory_order_acquire) != kFree)
      state_.wait(kContended, std::memory_order_relaxed);  // mo-ok: advisory futex check; the exchange above synchronizes
  }

  bool try_lock() noexcept(Atomics::kNoexceptOps) {
    std::uint32_t expected = kFree;
    return state_.compare_exchange_strong(
        expected, kLocked,
        std::memory_order_acquire,    // mo-ok: pairs with unlock's release
        std::memory_order_relaxed);
  }

  void unlock() noexcept(Atomics::kNoexceptOps) {
    // mo-ok: release publishes the critical section to the next acquirer
    if (state_.exchange(kFree, std::memory_order_release) == kContended)
      state_.notify_one();
  }

  /// True while any thread holds the lock (diagnostic; racy by nature).
  bool is_locked() const noexcept(Atomics::kNoexceptOps) {
    return state_.load(std::memory_order_relaxed) != kFree;  // mo-ok: diagnostic
  }

 private:
  static constexpr std::uint32_t kFree = 0;
  static constexpr std::uint32_t kLocked = 1;
  static constexpr std::uint32_t kContended = 2;

  typename Atomics::template atomic<std::uint32_t> state_{kFree};
};

/// The production lock: one futex word, nothing else.
using AtomicMutex = BasicAtomicMutex<StdAtomics>;

static_assert(sizeof(AtomicMutex) == 4,
              "the whole point: one futex word, nothing else");

/// Eventcount: a 4-byte epoch that waiters block on and state writers
/// bump.  The protocol (wait side in wait_until_changed below):
///
///   writer:  write the registers, then advance()
///   waiter:  seen = epoch(); if (!pred()) wait_changed(seen)
///
/// advance() uses notify_all because distinct waiters wait on distinct
/// predicates (different bakery tickets, different turn values); a
/// notify_one could wake only a waiter whose predicate is still false.
template <class Atomics>
class BasicEventCount {
 public:
  BasicEventCount() = default;
  BasicEventCount(const BasicEventCount&) = delete;
  BasicEventCount& operator=(const BasicEventCount&) = delete;

  std::uint32_t epoch() const noexcept(Atomics::kNoexceptOps) {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Publishes "state changed": epoch moves, parked waiters re-check.
  /// Call after the register write(s) the waiters' predicates read.
  void advance() noexcept(Atomics::kNoexceptOps) {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    epoch_.notify_all();
  }

  /// Blocks until the epoch differs from `seen` (wraps are harmless: any
  /// change wakes).  Returns on spurious wakeups too — callers re-check.
  void wait_changed(std::uint32_t seen) const noexcept(Atomics::kNoexceptOps) {
    epoch_.wait(seen, std::memory_order_seq_cst);
  }

 private:
  typename Atomics::template atomic<std::uint32_t> epoch_{0};
};

using EventCount = BasicEventCount<StdAtomics>;

static_assert(sizeof(EventCount) == 4, "one futex word, nothing else");

/// The shared await-loop: spins `spin_budget` relax iterations re-checking
/// `pred`, then parks on `events` until an advance().  `pred` may read any
/// number of registers; correctness only requires that every write that
/// can flip it true is followed by events.advance().
template <class Atomics, class Pred>
inline void wait_until_changed(const BasicEventCount<Atomics>& events,
                               Pred&& pred,
                               unsigned spin_budget = Atomics::kSpinBudget) {
  for (unsigned i = 0; i < spin_budget; ++i) {
    if (pred()) return;
    Atomics::pause();
  }
  for (;;) {
    const std::uint32_t seen = events.epoch();
    if (pred()) return;
    events.wait_changed(seen);
  }
}

}  // namespace tfr::rt
