// Futex-class blocking primitives for the real-thread runtime.
//
// Every rt wait loop used to be an unbounded yield-spin: each waiter kept
// a core busy, so oversubscribed runs (threads > cores) burned CPU
// proportional to the thread count — exactly the regime where the paper's
// timing failures live, and exactly where a measurement harness must not
// perturb the system it measures.  This header provides the two blocking
// substrates that replace those spins:
//
//   * AtomicMutex — a 4-byte std::mutex-compatible lock on C++20
//     std::atomic::wait/notify_one (futex on Linux), with a tunable
//     spin-then-wait budget.  Three states: free, locked, locked with
//     (possible) waiters; unlock syscalls only in the contended case.
//
//   * EventCount + wait_until_changed() — a condition-variable-style
//     eventcount for the algorithms' await-loops, whose predicates read
//     *registers* (often several of them: the black-white bakery waits on
//     ticket_[j] AND color_).  Waiters snapshot the epoch, re-check the
//     predicate, and block until the epoch moves; state writers bump the
//     epoch after any write that can turn a predicate true.  The
//     epoch-before-predicate order (all seq_cst) makes lost wakeups
//     impossible: a writer's state change is visible to any waiter that
//     observed the pre-bump epoch.
//
// The spin budget bridges the two regimes: short critical sections are
// won within a few hundred PAUSE iterations without touching the kernel;
// past the budget the waiter parks and costs nothing until notified.
// Algorithm 3's Δ reasoning is untouched — delay(Δ) is still the precise
// busy-wait spin_for(); only *unbounded* waits (await x = 0, bakery
// scans, turn waits) block.

#pragma once

#include <atomic>
#include <cstdint>

#if !defined(__x86_64__) && !defined(__i386__) && !defined(__aarch64__)
#include <thread>
#endif

namespace tfr::rt {

/// One polite spin iteration: de-pipelines the loop without yielding the
/// core (PAUSE/YIELD are ~dozens of cycles; a scheduler yield is ~µs).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Default spin-then-wait budget, in cpu_relax() iterations.  Sized so an
/// uncontended-to-lightly-contended handoff (a few hundred ns of critical
/// section) resolves without a futex round trip, while a preempted or
/// long-CS owner parks waiters well under a scheduler quantum.
inline constexpr unsigned kDefaultSpinBudget = 256;

/// A 4-byte mutex on std::atomic::wait/notify_one (the atomic_sync
/// design).  States: kFree, kLocked (no waiter has ever blocked during
/// this hold), kContended (a waiter may be parked: unlock must notify).
/// Satisfies Lockable, so std::lock_guard / std::unique_lock work.
class AtomicMutex {
 public:
  AtomicMutex() = default;
  AtomicMutex(const AtomicMutex&) = delete;
  AtomicMutex& operator=(const AtomicMutex&) = delete;

  void lock() noexcept { spin_lock(kDefaultSpinBudget); }

  /// lock() with an explicit spin budget: try the fast path, spin up to
  /// `spin_budget` relax iterations, then park until notified.
  void spin_lock(unsigned spin_budget) noexcept {
    std::uint32_t expected = kFree;
    if (state_.compare_exchange_strong(expected, kLocked,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed))
      return;
    for (unsigned i = 0; i < spin_budget; ++i) {
      cpu_relax();
      if (state_.load(std::memory_order_relaxed) == kFree) {
        expected = kFree;
        if (state_.compare_exchange_weak(expected, kLocked,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed))
          return;
      }
    }
    // Blocking phase.  Claim the lock and advertise contention in one
    // exchange; whoever finds kFree here owns the lock but must leave
    // kContended behind — another waiter may already be parked.
    while (state_.exchange(kContended, std::memory_order_acquire) != kFree)
      state_.wait(kContended, std::memory_order_relaxed);
  }

  bool try_lock() noexcept {
    std::uint32_t expected = kFree;
    return state_.compare_exchange_strong(expected, kLocked,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() noexcept {
    if (state_.exchange(kFree, std::memory_order_release) == kContended)
      state_.notify_one();
  }

  /// True while any thread holds the lock (diagnostic; racy by nature).
  bool is_locked() const noexcept {
    return state_.load(std::memory_order_relaxed) != kFree;
  }

 private:
  static constexpr std::uint32_t kFree = 0;
  static constexpr std::uint32_t kLocked = 1;
  static constexpr std::uint32_t kContended = 2;

  std::atomic<std::uint32_t> state_{kFree};
};

static_assert(sizeof(AtomicMutex) == 4,
              "the whole point: one futex word, nothing else");

/// Eventcount: a 4-byte epoch that waiters block on and state writers
/// bump.  The protocol (wait side in wait_until_changed below):
///
///   writer:  write the registers, then advance()
///   waiter:  seen = epoch(); if (!pred()) wait_changed(seen)
///
/// advance() uses notify_all because distinct waiters wait on distinct
/// predicates (different bakery tickets, different turn values); a
/// notify_one could wake only a waiter whose predicate is still false.
class EventCount {
 public:
  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  std::uint32_t epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Publishes "state changed": epoch moves, parked waiters re-check.
  /// Call after the register write(s) the waiters' predicates read.
  void advance() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    epoch_.notify_all();
  }

  /// Blocks until the epoch differs from `seen` (wraps are harmless: any
  /// change wakes).  Returns on spurious wakeups too — callers re-check.
  void wait_changed(std::uint32_t seen) const noexcept {
    epoch_.wait(seen, std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uint32_t> epoch_{0};
};

static_assert(sizeof(EventCount) == 4, "one futex word, nothing else");

/// The shared await-loop: spins `spin_budget` relax iterations re-checking
/// `pred`, then parks on `events` until an advance().  `pred` may read any
/// number of registers; correctness only requires that every write that
/// can flip it true is followed by events.advance().
template <class Pred>
inline void wait_until_changed(const EventCount& events, Pred&& pred,
                               unsigned spin_budget = kDefaultSpinBudget) {
  for (unsigned i = 0; i < spin_budget; ++i) {
    if (pred()) return;
    cpu_relax();
  }
  for (;;) {
    const std::uint32_t seen = events.epoch();
    if (pred()) return;
    events.wait_changed(seen);
  }
}

}  // namespace tfr::rt
