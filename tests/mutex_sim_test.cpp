// Tests for the mutual-exclusion algorithms (simulator edition): Fischer
// (Algorithm 2), Lamport fast, bakery, black-white bakery, the
// starvation-free transformation, and the time-resilient composition
// (Algorithm 3) — covering §3.1-§3.3 and Theorems 3.1-3.3.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::mutex {
namespace {

using sim::Duration;
using sim::FailureInjector;
using sim::make_fixed_timing;
using sim::make_uniform_timing;
using sim::ScriptedTiming;

constexpr Duration kDelta = 100;

using Factory = std::function<std::unique_ptr<SimMutex>(sim::RegisterSpace&)>;

Factory fischer() {
  return [](sim::RegisterSpace& sp) {
    return std::make_unique<FischerMutex>(sp, kDelta);
  };
}
Factory lamport(int n) {
  return [n](sim::RegisterSpace& sp) {
    return std::make_unique<LamportFastMutex>(sp, n);
  };
}
Factory bakery(int n) {
  return [n](sim::RegisterSpace& sp) {
    return std::make_unique<BakeryMutex>(sp, n);
  };
}
Factory bw_bakery(int n) {
  return [n](sim::RegisterSpace& sp) {
    return std::make_unique<BlackWhiteBakeryMutex>(sp, n);
  };
}
Factory starvation_free(int n) {
  return [n](sim::RegisterSpace& sp) {
    return std::make_unique<StarvationFreeMutex>(
        sp, n, std::make_unique<LamportFastMutex>(sp, n));
  };
}
Factory tfr_sf(int n) {
  return [n](sim::RegisterSpace& sp) {
    return make_tfr_mutex_starvation_free(sp, n, kDelta);
  };
}
Factory tfr_df(int n) {
  return [n](sim::RegisterSpace& sp) {
    return make_tfr_mutex_deadlock_free_only(sp, n, kDelta);
  };
}

WorkloadConfig workload(int n, int sessions) {
  return WorkloadConfig{.processes = n,
                        .sessions = sessions,
                        .cs_time = 30,
                        .ncs_time = 60,
                        .randomize_ncs = true};
}

// --- Safety & deadlock-freedom matrix over all algorithms --------------------

struct AlgoCase {
  const char* label;
  std::function<Factory(int)> make;
};

class MutexMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 public:
  static Factory factory_for(int algo, int n) {
    switch (algo) {
      case 0: return fischer();
      case 1: return lamport(n);
      case 2: return bakery(n);
      case 3: return bw_bakery(n);
      case 4: return starvation_free(n);
      case 5: return tfr_sf(n);
      default: return tfr_df(n);
    }
  }
  static const char* name_for(int algo) {
    switch (algo) {
      case 0: return "fischer";
      case 1: return "lamport-fast";
      case 2: return "bakery";
      case 3: return "bw-bakery";
      case 4: return "starvation-free";
      case 5: return "tfr(sf)";
      default: return "tfr(df)";
    }
  }
};

TEST_P(MutexMatrix, MutualExclusionAndCompletionWithoutFailures) {
  const int algo = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  const int schedule = std::get<2>(GetParam());
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto timing = schedule == 0
                      ? make_fixed_timing(kDelta)
                      : make_uniform_timing(1, kDelta);
    const auto result =
        run_mutex_workload(factory_for(algo, n), workload(n, 12),
                           std::move(timing), seed, 80'000'000);
    EXPECT_EQ(result.violations, 0u)
        << name_for(algo) << " n=" << n << " seed=" << seed;
    EXPECT_TRUE(result.completed)
        << name_for(algo) << " n=" << n << " seed=" << seed;
    EXPECT_EQ(result.cs_entries, static_cast<std::uint64_t>(n) * 12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MutexMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(1, 2, 3, 6),
                       ::testing::Values(0, 1)));

// --- §3.1: Fischer breaks under timing failures, deterministically -----------

TEST(Fischer, ScriptedTimingFailureViolatesMutualExclusion) {
  // Classic violation: p0 reads x = 0, then its write x := 1 stalls past
  // Delta.  Meanwhile p1 runs the whole gate, enters the CS, and p0's
  // stale write + clean delay + check lets p0 in as well.
  auto script = std::make_unique<ScriptedTiming>(make_fixed_timing(1));
  // p0 accesses: read x (1 tick), write x (LONG: 1000 ticks), read x, ...
  script->push(0, 1);
  script->push(0, 1000);
  // p1 accesses: read x, write x, (delay), read x -> enters CS.
  script->push(1, 2);
  script->push(1, 1);
  script->push(1, 1);

  const auto result = run_mutex_workload(
      fischer(),
      WorkloadConfig{.processes = 2,
                     .sessions = 1,
                     .cs_time = 5000,  // long CS so the overlap is visible
                     .ncs_time = 0,
                     .tolerate_violations = true},
      std::move(script), 1, 1'000'000);
  EXPECT_GE(result.violations, 1u);
  EXPECT_TRUE(result.completed);
}

TEST(Fischer, RandomTimingFailuresEventuallyViolate) {
  // Statistical counterpart of the scripted test: across seeds with a high
  // failure rate and long critical sections, at least one violation occurs.
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 0; seed < 40 && violations == 0; ++seed) {
    auto injector = std::make_unique<FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    injector->set_random_failures(0.15, 12 * kDelta);
    const auto result = run_mutex_workload(
        fischer(),
        WorkloadConfig{.processes = 4,
                       .sessions = 15,
                       .cs_time = 10 * kDelta,
                       .ncs_time = 50,
                       .randomize_ncs = true,
                       .tolerate_violations = true},
        std::move(injector), seed, 40'000'000);
    violations += result.violations;
  }
  EXPECT_GT(violations, 0u);
}

TEST(Fischer, NoViolationWhenStretchStaysWithinDelta) {
  // Jitter up to exactly Delta is *not* a timing failure; ME must hold.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result =
        run_mutex_workload(fischer(), workload(5, 10),
                           make_uniform_timing(1, kDelta), seed, 40'000'000);
    EXPECT_EQ(result.violations, 0u) << "seed=" << seed;
  }
}

// --- Algorithm 3: resilience ---------------------------------------------------

TEST(TfrMutex, MutualExclusionHoldsUnderScriptedFailure) {
  // Same adversarial script that defeats plain Fischer: Algorithm 3 must
  // stay safe because the inner algorithm A provides ME on its own.
  auto script = std::make_unique<ScriptedTiming>(make_fixed_timing(1));
  script->push(0, 1);
  script->push(0, 1000);
  script->push(1, 2);
  script->push(1, 1);
  script->push(1, 1);
  const auto result = run_mutex_workload(
      tfr_sf(2),
      WorkloadConfig{.processes = 2,
                     .sessions = 1,
                     .cs_time = 5000,
                     .ncs_time = 0},
      std::move(script), 1, 1'000'000);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_TRUE(result.completed);
}

TEST(TfrMutex, MutualExclusionHoldsUnderHeavyRandomFailures) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    auto injector = std::make_unique<FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    injector->set_random_failures(0.2, 12 * kDelta);
    const auto result = run_mutex_workload(
        tfr_sf(4),
        WorkloadConfig{.processes = 4,
                       .sessions = 10,
                       .cs_time = 5 * kDelta,
                       .ncs_time = 50,
                       .randomize_ncs = true},
        std::move(injector), seed, 200'000'000);
    EXPECT_EQ(result.violations, 0u) << "seed=" << seed;
    EXPECT_TRUE(result.completed) << "seed=" << seed;
  }
}

TEST(TfrMutex, ProgressContinuesDuringFailureWindows) {
  // §3.2: the algorithm must not shut everyone out during timing failures —
  // it degrades to the asynchronous algorithm A and keeps admitting.
  auto injector = std::make_unique<FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->add_window({.begin = 0, .end = 400 * kDelta, .stretched = 3 * kDelta});
  const auto result = run_mutex_workload(
      tfr_sf(3),
      WorkloadConfig{.processes = 3,
                     .sessions = 5,
                     .cs_time = 20,
                     .ncs_time = 20},
      std::move(injector), 3, 400 * kDelta);
  // Entries happened while every access was a timing failure.
  EXPECT_GT(result.cs_entries, 0u);
  EXPECT_EQ(result.violations, 0u);
}

TEST(TfrMutex, FilterAdmitsFirstTryWithoutContentionOrFailures) {
  const auto make = [](sim::RegisterSpace& sp) {
    return make_tfr_mutex_starvation_free(sp, 1, kDelta);
  };
  sim::Simulation s(make_fixed_timing(kDelta));
  auto m = make(s.space());
  sim::MutexMonitor mon;
  s.spawn([&](sim::Env env) {
    return mutex_sessions(env, *m, mon, 0,
                          WorkloadConfig{.processes = 1,
                                         .sessions = 8,
                                         .cs_time = 10,
                                         .ncs_time = 10});
  });
  s.run();
  EXPECT_EQ(m->first_try_admissions(), 8u);
  EXPECT_EQ(m->retried_admissions(), 0u);
}

// --- Theorems 3.2 / 3.3: convergence contrast ---------------------------------

// Adversary: pid 0 permanently slow (cost exactly Delta), pid 1 fast
// (cost 1).  Both schedules are legal (no timing failure).  A failure
// burst first pushes both processes into the inner algorithm A; afterwards
// with A = Lamport-fast the slow process can be bypassed indefinitely,
// with A = starvation-free(Lamport-fast) its wait stays bounded.
sim::Duration post_failure_wait(const Factory& make, std::uint64_t seed) {
  auto base = std::make_unique<sim::PerProcessTiming>(
      std::vector<Duration>{kDelta, 1, 1, 1}, 1);
  auto injector = std::make_unique<FailureInjector>(std::move(base), kDelta);
  const sim::Time failure_end = 40 * kDelta;
  injector->add_window({.begin = 0, .end = failure_end, .stretched = 5 * kDelta});

  sim::Simulation s(std::move(injector), {.seed = seed});
  auto algorithm = make(s.space());
  sim::MutexMonitor mon;
  const WorkloadConfig config{.processes = 4,
                              .sessions = 0,  // run until the time limit
                              .cs_time = 10,
                              .ncs_time = 0};
  for (int i = 0; i < 4; ++i) {
    s.spawn([&, i](sim::Env env) {
      return mutex_sessions(env, *algorithm, mon, i, config);
    });
  }
  const sim::Time horizon = 4000 * kDelta;
  s.run(horizon);
  // A starved process never completes its wait, so take the maximum of
  // completed post-failure waits and waits still pending at the horizon.
  return std::max(mon.max_wait_starting_at(failure_end + 6 * kDelta),
                  mon.longest_pending_wait(horizon));
}

TEST(Convergence, StarvationFreeInnerBoundsPostFailureWaits) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto sf_wait = post_failure_wait(tfr_sf(4), seed);
    const auto df_wait = post_failure_wait(tfr_df(4), seed);
    // Theorem 3.3: bounded (measured ~265 Delta: the slow process's own
    // Delta-cost steps through filter + doorway + inner entry, plus turn
    // rotations).  Theorem 3.2: unbounded — under this adversary the slow
    // process never enters again, so its pending wait spans the horizon.
    EXPECT_LT(sf_wait, 400 * kDelta) << "seed=" << seed;
    EXPECT_GT(df_wait, 10 * sf_wait) << "seed=" << seed;
  }
}

// --- Starvation-freedom of the doorway transformation --------------------------

TEST(StarvationFree, SlowProcessIsNotStarved) {
  // pid 0 is 100x slower than the other three; with bare Lamport-fast it
  // starves, with the doorway it keeps a bounded share of entries.
  auto slow_timing = [] {
    return std::make_unique<sim::PerProcessTiming>(
        std::vector<Duration>{kDelta, 1, 1, 1}, 1);
  };
  const WorkloadConfig config{.processes = 4,
                              .sessions = 0,
                              .cs_time = 5,
                              .ncs_time = 0};

  const auto run = [&](const Factory& make) {
    auto result = run_mutex_workload(make, config, slow_timing(), 7,
                                     30'000 * kDelta);
    return result;
  };

  const auto with_doorway = run(starvation_free(4));
  const auto bare = run(lamport(4));
  EXPECT_GT(with_doorway.monitor.cs_entries(0), 10u);
  // The doorway costs throughput but guarantees fairness; bare Lamport
  // gives the slow process (at best) a sliver.
  EXPECT_GT(with_doorway.monitor.cs_entries(0) * 5,
            bare.monitor.cs_entries(0));
}

TEST(StarvationFree, EveryProcessGetsTurns) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto result =
        run_mutex_workload(starvation_free(5), workload(5, 10),
                           make_uniform_timing(1, kDelta), seed, 200'000'000);
    EXPECT_TRUE(result.completed) << "seed=" << seed;
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(result.monitor.cs_entries(i), 10u) << "seed=" << seed;
  }
}

// --- Ticket boundedness: bakery vs black-white bakery ---------------------------

TEST(Bakery, TicketsGrowUnderPerpetualContention) {
  sim::Simulation s(make_uniform_timing(1, 20), {.seed = 5});
  auto algorithm = std::make_unique<BakeryMutex>(s.space(), 4);
  auto* bakery_ptr = algorithm.get();
  sim::MutexMonitor mon;
  const WorkloadConfig config{.processes = 4,
                              .sessions = 0,
                              .cs_time = 1,
                              .ncs_time = 0};
  for (int i = 0; i < 4; ++i) {
    s.spawn([&, i](sim::Env env) {
      return mutex_sessions(env, *algorithm, mon, i, config);
    });
  }
  s.run(400'000);
  EXPECT_GT(bakery_ptr->max_ticket(), 10);
}

TEST(BlackWhiteBakery, TicketsStayBoundedByN) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    sim::Simulation s(make_uniform_timing(1, 20), {.seed = seed});
    auto algorithm = std::make_unique<BlackWhiteBakeryMutex>(s.space(), 4);
    auto* bw_ptr = algorithm.get();
    sim::MutexMonitor mon;
    const WorkloadConfig config{.processes = 4,
                                .sessions = 0,
                                .cs_time = 1,
                                .ncs_time = 0};
    for (int i = 0; i < 4; ++i) {
      s.spawn([&, i](sim::Env env) {
        return mutex_sessions(env, *algorithm, mon, i, config);
      });
    }
    s.run(400'000);
    EXPECT_LE(bw_ptr->max_ticket(), 4) << "seed=" << seed;
    EXPECT_EQ(mon.mutual_exclusion_violations(), 0u);
  }
}

// --- Theorem 3.1 (space): register counts scale with n ---------------------------

TEST(Space, RegisterCountsMeetLowerBound) {
  for (int n : {2, 4, 8, 16}) {
    sim::RegisterSpace space;
    const auto m = make_tfr_mutex_starvation_free(space, n, kDelta);
    // Theorem 3.1: any time-resilient mutex needs >= n registers.
    EXPECT_GE(space.allocated(), static_cast<std::uint64_t>(n));
    // Ours is O(n): Fischer x + doorway (n flags + turn) + Lamport
    // (n flags + x + y).
    EXPECT_LE(space.allocated(), static_cast<std::uint64_t>(2 * n + 4));
  }
}

// --- Efficiency: O(Delta) entry for Algorithm 3 vs Θ(n Delta) for bakery --------

TEST(Efficiency, TfrEntryIsDeltaBoundNotNDelta) {
  // Solo process: measure the entry latency (paper's time-complexity
  // metric).  Algorithm 3 must be a small multiple of Delta, independent of
  // n; the bakery's doorway scan makes it grow linearly with n.
  const auto solo_latency = [](const Factory& make, int n) {
    auto result = run_mutex_workload(
        make,
        WorkloadConfig{.processes = 1, .sessions = 4, .cs_time = 10,
                       .ncs_time = 10},
        make_fixed_timing(kDelta), 1, 10'000'000);
    (void)n;
    return result.max_wait;
  };
  const auto tfr8 = solo_latency(tfr_sf(8), 8);
  const auto tfr64 = solo_latency(tfr_sf(64), 64);
  const auto bakery8 = solo_latency(bakery(8), 8);
  const auto bakery64 = solo_latency(bakery(64), 64);
  EXPECT_EQ(tfr8, tfr64);          // independent of n
  EXPECT_LE(tfr64, 12 * kDelta);   // small multiple of Delta
  EXPECT_GT(bakery64, bakery8 * 4);  // bakery scales with n
}

// --- Exit-code property: at most one gate reset -----------------------------------

TEST(TfrMutex, GateResetAtMostOncePerRelease) {
  // After heavy failures push several processes past the filter, line 8
  // must let at most one of them reset x (others leave it unchanged);
  // otherwise two later processes could both pass a reopened gate while the
  // first crowd is still draining.  Detectable consequence: no ME
  // violation and (post-failures) the filter admits one at a time again —
  // covered by MutualExclusionHoldsUnderHeavyRandomFailures; here we check
  // the reset accounting on the gate register directly.
  auto injector = std::make_unique<FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(0.15, 10 * kDelta);

  sim::Simulation s(std::move(injector), {.seed = 9});
  auto algorithm = make_tfr_mutex_starvation_free(s.space(), 3, kDelta);
  sim::MutexMonitor mon;
  const WorkloadConfig config{.processes = 3, .sessions = 6, .cs_time = 50,
                              .ncs_time = 30};
  for (int i = 0; i < 3; ++i) {
    s.spawn([&, i](sim::Env env) {
      return mutex_sessions(env, *algorithm, mon, i, config);
    });
  }
  s.run(200'000'000);
  EXPECT_EQ(mon.mutual_exclusion_violations(), 0u);
  EXPECT_EQ(mon.cs_entries(), 18u);
}

}  // namespace
}  // namespace tfr::mutex
