// Unit tests for the common utilities: RNG, statistics, tables, contracts.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/common/rng.hpp"
#include "tfr/common/stats.hpp"
#include "tfr/common/table.hpp"

namespace tfr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(2, 1), ContractViolation);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) seen[static_cast<std::size_t>(rng.uniform(0, 9))]++;
  for (int count : seen) EXPECT_GT(count, 700);  // each bucket near 1000
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, IndexRequiresNonEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitIndependentStreams) {
  Rng parent(13);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child1() == child2());
  EXPECT_LT(same, 3);
}

TEST(Stats, AccumulatorBasics) {
  StatAccumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.sum(), 10.0, 1e-12);
}

TEST(Stats, AccumulatorEmpty) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Stats, AccumulatorMergeMatchesSequential) {
  StatAccumulator whole, left, right;
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform01() * 10;
    whole.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Stats, SamplesSingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(Stats, PercentileRequiresData) {
  Samples s;
  EXPECT_THROW(s.percentile(50), ContractViolation);
}

TEST(Stats, HistogramBuckets) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_DOUBLE_EQ(h.edge(3), 3.0);
}

TEST(Table, PrintsAlignedRows) {
  Table t("demo");
  t.header({"a", "long-column"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("long-column"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t;
  t.header({"x", "y"});
  t.row({"plain", "with,comma"});
  t.row({"with\"quote", "z"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\nplain,\"with,comma\"\n\"with\"\"quote\",z\n");
}

TEST(Table, RowWidthEnforced) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractViolation);
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(Table::fmt(static_cast<std::size_t>(12)), "12");
}

TEST(Contracts, RequireThrowsWithLocation) {
  try {
    TFR_REQUIRE(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"),
              std::string::npos);
  }
}

TEST(Contracts, EnsureAndInvariant) {
  EXPECT_THROW(TFR_ENSURE(false), ContractViolation);
  EXPECT_THROW(TFR_INVARIANT(false), ContractViolation);
  EXPECT_NO_THROW(TFR_REQUIRE(true));
}

}  // namespace
}  // namespace tfr
