// Tests for the adaptive optimistic(Δ) controller seam (src/adapt/): the
// AIMD policies (single-threaded and atomic), the windowed-quantile
// timeliness estimator, the pinned manual policy, the saturating window
// growth used by the msg retry discipline, and same-seed determinism of a
// recorded drift run.  The thread suite is named RtAdaptiveController* so
// it rides the same sanitizer regexes as the other real-thread suites.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/adapt/graph.hpp"
#include "tfr/adapt/observe.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/adversary.hpp"
#include "tfr/msg/network.hpp"
#include "tfr/obs/replay.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr {
namespace {

// --- Aimd -------------------------------------------------------------------
// The first three tests are the former core::OptimisticDelta suite (E10's
// local toy, retired in favour of adapt::Aimd) with the knobs renamed:
// min/max -> floor/ceiling, shrink_step -> decay_step, stable_threshold ->
// clean_threshold, on_retry/on_progress -> on_failure/on_clean.  The
// numeric sequences are unchanged — the policy is the same discipline.

TEST(AimdTest, GrowsOnFailureDecaysOnStableProgress) {
  adapt::Aimd est({.initial = 8,
                   .floor = 1,
                   .ceiling = 1024,
                   .grow_factor = 2.0,
                   .decay_step = 1,
                   .clean_threshold = 3});
  EXPECT_EQ(est.current(), 8);
  est.on_failure();
  EXPECT_EQ(est.current(), 16);
  est.on_failure();
  EXPECT_EQ(est.current(), 32);
  for (int i = 0; i < 3; ++i) est.on_clean();
  EXPECT_EQ(est.current(), 31);
  for (int i = 0; i < 2; ++i) est.on_clean();
  EXPECT_EQ(est.current(), 31);  // threshold not yet reached again
  est.on_clean();
  EXPECT_EQ(est.current(), 30);
  EXPECT_EQ(est.grows(), 2u);
  EXPECT_EQ(est.decays(), 2u);
}

TEST(AimdTest, RespectsBounds) {
  adapt::Aimd est({.initial = 2,
                   .floor = 2,
                   .ceiling = 4,
                   .grow_factor = 10.0,
                   .decay_step = 5,
                   .clean_threshold = 1});
  est.on_failure();
  EXPECT_EQ(est.current(), 4);  // capped
  est.on_failure();
  EXPECT_EQ(est.current(), 4);
  est.on_clean();
  EXPECT_EQ(est.current(), 4);  // decay below the floor rejected
  EXPECT_EQ(est.grows(), 1u);   // the capped second grow does not count
  EXPECT_EQ(est.decays(), 0u);
}

TEST(AimdTest, FailureResetsCleanRun) {
  adapt::Aimd est({.initial = 10,
                   .floor = 1,
                   .ceiling = 100,
                   .grow_factor = 2.0,
                   .decay_step = 1,
                   .clean_threshold = 2});
  est.on_clean();
  est.on_failure();  // clean run resets, estimate 20
  est.on_clean();
  EXPECT_EQ(est.current(), 20);  // one clean after reset: no decay yet
  est.on_clean();
  EXPECT_EQ(est.current(), 19);
}

TEST(AimdTest, DecayReachesTheFloorExactly) {
  adapt::Aimd est({.initial = 3,
                   .floor = 1,
                   .ceiling = 8,
                   .grow_factor = 2.0,
                   .decay_step = 2,
                   .clean_threshold = 1});
  est.on_clean();
  EXPECT_EQ(est.current(), 1);  // 3 - 2 lands exactly on the floor
  est.on_clean();
  EXPECT_EQ(est.current(), 1);  // 1 - 2 would cross it: rejected
}

TEST(AimdTest, GrowthIsAtLeastOneTick) {
  // ceil(1 * 1.2) == 2? No: ceil(1.2) = 2 — but with estimate 10 and
  // factor 1.05 the product truncates to 11 via ceil; the max(est + 1, .)
  // guard matters when ceil(est * factor) == est.
  adapt::Aimd est({.initial = 1,
                   .floor = 1,
                   .ceiling = 100,
                   .grow_factor = 1.0000001,
                   .decay_step = 1,
                   .clean_threshold = 1});
  est.on_failure();
  EXPECT_EQ(est.current(), 2);  // est + 1, not ceil(1.0000001)
}

TEST(AimdTest, CountersTrackEverySignal) {
  adapt::Aimd est({.initial = 4, .clean_threshold = 3});
  est.on_failure();
  est.on_clean();
  est.on_clean();
  est.observe(7, 123);  // AIMD ignores observations, the base counts them
  EXPECT_EQ(est.failure_events(), 1u);
  EXPECT_EQ(est.clean_events(), 2u);
  EXPECT_EQ(est.observations(), 1u);
}

// --- TimelinessEstimator ----------------------------------------------------

adapt::TimelinessEstimator::Config estimator_config() {
  return {.initial = 4,
          .floor = 1,
          .ceiling = 1000,
          .window = 4,
          .quantile = 1.0,
          .headroom = 2.0,
          .grow_factor = 2.0,
          .decay_step = 1,
          .clean_threshold = 2};
}

TEST(TimelinessEstimatorTest, EmptyWindowHoldsTheInitialEstimate) {
  adapt::TimelinessEstimator est(estimator_config());
  EXPECT_EQ(est.current(), 4);
  EXPECT_EQ(est.channels(), 0u);
  EXPECT_EQ(est.channel_quantile(0), 0);  // no samples: quantile 0
}

TEST(TimelinessEstimatorTest, SingleSampleIsEveryQuantile) {
  auto config = estimator_config();
  config.quantile = 0.25;  // even a low quantile of one sample is itself
  adapt::TimelinessEstimator est(config);
  est.observe(3, 10);
  EXPECT_EQ(est.channels(), 1u);
  EXPECT_EQ(est.channel_quantile(3), 10);
  EXPECT_EQ(est.current(), 20);  // headroom 2 x the quantile
}

TEST(TimelinessEstimatorTest, EstimateTracksTheWorstChannel) {
  adapt::TimelinessEstimator est(estimator_config());
  est.observe(0, 5);
  est.observe(1, 30);
  EXPECT_EQ(est.current(), 60);  // channel 1 dominates
  // The slow sample ages out of channel 1's window (size 4): the cached
  // worst must be rescanned downward, not pinned at the old maximum.
  for (int i = 0; i < 4; ++i) est.observe(1, 2);
  EXPECT_EQ(est.channel_quantile(1), 2);
  EXPECT_EQ(est.current(), 10);  // channel 0's 5 is now the worst
}

TEST(TimelinessEstimatorTest, QuantileIgnoresTheTailAboveIt) {
  auto config = estimator_config();
  config.quantile = 0.5;
  adapt::TimelinessEstimator est(config);
  for (const adapt::Duration d : {1, 2, 3, 100}) est.observe(0, d);
  // Order statistic at index floor(0.5 * 4) = 2 of {1,2,3,100} -> 3.
  EXPECT_EQ(est.channel_quantile(0), 3);
  EXPECT_EQ(est.current(), 6);
}

TEST(TimelinessEstimatorTest, BoostGrowsOnFailureAndDecaysWhenClean) {
  adapt::TimelinessEstimator est(estimator_config());
  EXPECT_EQ(est.boost(), 4);  // starts at the initial estimate
  est.on_failure();
  EXPECT_EQ(est.boost(), 8);
  EXPECT_EQ(est.current(), 8);  // no observations: the boost is the estimate
  est.on_clean();
  est.on_clean();  // clean_threshold = 2
  EXPECT_EQ(est.boost(), 7);
  EXPECT_EQ(est.current(), 7);
}

TEST(TimelinessEstimatorTest, BoostCapTiesFailureGrowthToObservations) {
  auto config = estimator_config();
  config.boost_cap = 2.0;
  adapt::TimelinessEstimator est(config);
  est.observe(0, 10);  // margined quantile = 20
  for (int i = 0; i < 10; ++i) est.on_failure();
  // Uncapped the boost would double each time into the ceiling; capped it
  // stops at boost_cap x the margined quantile.
  EXPECT_EQ(est.boost(), 40);
  EXPECT_EQ(est.current(), 40);
  // Without observations the cap is inert (nothing measured to tie to).
  adapt::TimelinessEstimator blind(config);
  blind.on_failure();
  EXPECT_EQ(blind.boost(), 8);
}

TEST(TimelinessEstimatorTest, EstimateStaysInsideTheClamp) {
  auto config = estimator_config();
  config.ceiling = 50;
  adapt::TimelinessEstimator est(config);
  est.observe(0, 1000);
  EXPECT_EQ(est.current(), 50);  // 2 x 1000 clamped to the ceiling
  for (int i = 0; i < 20; ++i) est.on_failure();
  EXPECT_EQ(est.current(), 50);
}

TEST(TimelinessEstimatorTest, PerChannelViewIsolatesChannelsFromEachOther) {
  adapt::TimelinessEstimator est(estimator_config());
  EXPECT_EQ(est.estimate_for(0), 4);  // no samples anywhere: the initial
  est.observe(0, 5);
  est.observe(1, 30);
  EXPECT_EQ(est.estimate_for(0), 10);  // headroom x its own quantile
  EXPECT_EQ(est.estimate_for(1), 60);
  EXPECT_EQ(est.current(), 60);        // the global view: the worst channel
  EXPECT_EQ(est.estimate_for(7), 60);  // cold channel inherits the global
}

TEST(TimelinessEstimatorTest, FailureBoostStaysOutOfPerChannelViews) {
  adapt::TimelinessEstimator est(estimator_config());
  est.observe(0, 5);
  est.observe(1, 30);
  for (int i = 0; i < 4; ++i) est.on_failure();
  EXPECT_GT(est.current(), 60);  // the boost floor raised the global view
  // An expiry cannot name a culprit peer, so measured channels keep their
  // observation-driven view; only cold channels see the boosted global.
  EXPECT_EQ(est.estimate_for(0), 10);
  EXPECT_EQ(est.estimate_for(1), 60);
  EXPECT_EQ(est.estimate_for(7), est.current());
}

TEST(TimelinessEstimatorTest, IdleChannelsAreEvictedAndTheWorstRescanned) {
  auto config = estimator_config();
  config.evict_after_windows = 1;  // idle > one window of observations
  adapt::TimelinessEstimator est(config);
  est.observe(0, 50);  // the worst channel... which then goes silent
  for (int i = 0; i < 6; ++i) est.observe(1, 5);
  EXPECT_EQ(est.channels(), 2u);  // still within the idle horizon
  EXPECT_EQ(est.current(), 100);  // the stale channel still sizes the max
  est.observe(1, 5);              // the window-boundary sweep fires
  EXPECT_EQ(est.channels(), 1u);
  EXPECT_EQ(est.evictions(), 1u);
  EXPECT_EQ(est.current(), 10);  // the worst was rescanned off the evictee
  EXPECT_EQ(est.estimate_for(0), 10);  // evicted: back to the global view
}

TEST(TimelinessEstimatorTest, EvictionIsOffByDefault) {
  adapt::TimelinessEstimator est(estimator_config());
  est.observe(0, 50);
  for (int i = 0; i < 100; ++i) est.observe(1, 5);
  EXPECT_EQ(est.channels(), 2u);
  EXPECT_EQ(est.evictions(), 0u);
  EXPECT_EQ(est.current(), 100);
}

// --- TimelinessGraph --------------------------------------------------------

TEST(TimelinessGraphTest, ClassifiesStragglersAgainstTheLowerMedian) {
  adapt::TimelinessEstimator est(estimator_config());
  est.observe(0, 5);    // margined estimate 10
  est.observe(1, 6);    // 12
  est.observe(2, 100);  // 200
  const adapt::TimelinessGraph graph(est);
  EXPECT_EQ(graph.known(), 3u);
  EXPECT_EQ(graph.reference(), 12);  // lower median of {10, 12, 200}
  EXPECT_EQ(graph.classify(0), adapt::PeerClass::kTimely);
  EXPECT_EQ(graph.classify(1), adapt::PeerClass::kTimely);
  EXPECT_EQ(graph.classify(2), adapt::PeerClass::kStraggler);  // > 4 x 12
  EXPECT_EQ(graph.stragglers(), 1u);
  EXPECT_EQ(graph.estimate(2), 200);
}

TEST(TimelinessGraphTest, UnknownPeersAreOptimisticallyTimely) {
  adapt::TimelinessEstimator est(estimator_config());
  const adapt::TimelinessGraph empty(est);
  EXPECT_EQ(empty.known(), 0u);
  EXPECT_EQ(empty.reference(), 0);
  EXPECT_EQ(empty.classify(3), adapt::PeerClass::kUnknown);
  EXPECT_TRUE(empty.timely(3));

  est.observe(0, 5);
  const adapt::TimelinessGraph one(est);
  EXPECT_EQ(one.classify(9), adapt::PeerClass::kUnknown);  // never sampled
  EXPECT_TRUE(one.timely(9));
  EXPECT_EQ(one.estimate(9), 0);
}

TEST(TimelinessGraphTest, TwoPeersOneSlowTheSlowOneIsTheStraggler) {
  // Even count: the lower median keeps the fast peer as the reference, so
  // the slow half cannot drag the reference up and classify itself timely.
  adapt::TimelinessEstimator est(estimator_config());
  est.observe(0, 5);
  est.observe(1, 100);
  const adapt::TimelinessGraph graph(est);
  EXPECT_EQ(graph.reference(), 10);
  EXPECT_EQ(graph.classify(0), adapt::PeerClass::kTimely);
  EXPECT_EQ(graph.classify(1), adapt::PeerClass::kStraggler);
}

TEST(TimelinessGraphTest, RecoveredStragglerReclassifiesWithinOneWindow) {
  // The straggler-flip regression: a peer that was slow and turns fast
  // must classify timely as soon as its ring rolls over — the very next
  // snapshot, not some decayed average many windows later.
  adapt::TimelinessEstimator est(estimator_config());  // window 4
  est.observe(0, 5);
  est.observe(1, 6);
  for (int i = 0; i < 4; ++i) est.observe(2, 100);
  EXPECT_EQ(adapt::TimelinessGraph(est).classify(2),
            adapt::PeerClass::kStraggler);
  for (int i = 0; i < 4; ++i) est.observe(2, 6);  // one full fast window
  const adapt::TimelinessGraph after(est);
  EXPECT_EQ(after.classify(2), adapt::PeerClass::kTimely);
  EXPECT_EQ(after.stragglers(), 0u);
  // And the flip the other way: a degrading peer is caught as fast.
  for (int i = 0; i < 4; ++i) est.observe(0, 400);
  EXPECT_EQ(adapt::TimelinessGraph(est).classify(0),
            adapt::PeerClass::kStraggler);
}

// --- ManualDelta ------------------------------------------------------------

TEST(ManualDeltaTest, PinnedUntilSetAndSignalsOnlyCounted) {
  adapt::ManualDelta pinned(5);
  EXPECT_EQ(pinned.current(), 5);
  pinned.on_failure();
  pinned.on_clean();
  pinned.observe(0, 900);
  EXPECT_EQ(pinned.current(), 5);  // adaptation-free
  EXPECT_EQ(pinned.failure_events(), 1u);
  EXPECT_EQ(pinned.clean_events(), 1u);
  EXPECT_EQ(pinned.observations(), 1u);
  pinned.set(9);
  EXPECT_EQ(pinned.current(), 9);
}

// --- AtomicAimd (real threads; rides the Rt* sanitizer suites) --------------

TEST(RtAdaptiveControllerTest, UncontendedSequenceMatchesAimd) {
  const adapt::AimdConfig config{.initial = 8,
                                 .floor = 1,
                                 .ceiling = 1024,
                                 .grow_factor = 2.0,
                                 .decay_step = 1,
                                 .clean_threshold = 3};
  adapt::Aimd plain(config);
  adapt::AtomicAimd atomic(config);
  const auto drive = [](adapt::DeltaController& c) {
    for (int round = 0; round < 5; ++round) {
      c.on_failure();
      for (int i = 0; i < 4; ++i) c.on_clean();
    }
  };
  drive(plain);
  drive(atomic);
  EXPECT_EQ(plain.current(), atomic.current());
  EXPECT_EQ(plain.grows(), atomic.grows());
  EXPECT_EQ(plain.decays(), atomic.decays());
}

TEST(RtAdaptiveControllerTest, SharedByThreadsStaysClampedAndCounts) {
  adapt::AtomicAimd shared({.initial = 16,
                            .floor = 2,
                            .ceiling = 256,
                            .grow_factor = 2.0,
                            .decay_step = 1,
                            .clean_threshold = 2});
  constexpr int kThreads = 4;
  constexpr int kSignals = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      for (int i = 0; i < kSignals; ++i) {
        if ((i + t) % 3 == 0) {
          shared.on_failure();
        } else {
          shared.on_clean();
        }
        const adapt::Duration seen = shared.current();
        // Every intermediate estimate a racing reader can observe stays
        // inside the clamp — the advisory-only contract.
        ASSERT_GE(seen, 2);
        ASSERT_LE(seen, 256);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(shared.current(), 2);
  EXPECT_LE(shared.current(), 256);
  // The relaxed counters lose nothing: every signal lands exactly once.
  EXPECT_EQ(shared.failure_events() + shared.clean_events(),
            static_cast<std::uint64_t>(kThreads) * kSignals);
}

// --- grow_saturating (msg retry windows) ------------------------------------

TEST(MsgRetrySaturationTest, GrowsGeometricallyUnderTheCap) {
  EXPECT_EQ(msg::grow_saturating(100, 2.0, 1500), 200);
  EXPECT_EQ(msg::grow_saturating(200, 2.5, 1500), 500);
}

TEST(MsgRetrySaturationTest, CapsAtMaxTimeout) {
  EXPECT_EQ(msg::grow_saturating(1000, 2.0, 1500), 1500);
  EXPECT_EQ(msg::grow_saturating(1500, 2.0, 1500), 1500);
}

TEST(MsgRetrySaturationTest, HugeGrowthCannotOverflow) {
  // Before the guard this was UB: the double product exceeds the int64
  // range and the cast back was undefined.  Now it saturates.
  const sim::Duration huge = sim::Duration{1} << 60;
  EXPECT_EQ(msg::grow_saturating(huge, 1e9, 0), sim::Duration{1} << 62);
  EXPECT_EQ(msg::grow_saturating(huge, 1e9, huge), huge);
  // An uncapped policy (max == 0) still grows normally while in range.
  EXPECT_EQ(msg::grow_saturating(100, 3.0, 0), 300);
}

// --- adaptive ABD windows: expiries are timing-failure signals --------------

namespace {

sim::Process write_once(sim::Env env, msg::AbdClient& client, int* done) {
  co_await client.write(env, /*reg=*/1, 42);
  ++*done;
}

}  // namespace

TEST(MsgAdaptiveWindowTest, ExpiryReportsFailureSignalAndRecovers) {
  // Node 0 is partitioned until t = 4000: its quorum cannot form, so the
  // estimate-derived window (100 ticks via ManualDelta) must expire at
  // least once, each expiry reported as on_failure(); after the heal the
  // write completes.
  sim::Simulation s(sim::make_fixed_timing(1), {.seed = 3});
  const int n = 3;
  msg::Network net(s.space(), 2 * n);
  msg::NetAdversary adversary(7);
  msg::Partition partition;
  partition.begin = 0;
  partition.heal = 4000;
  partition.group = {0, n + 0};  // node 0's client + server endpoints
  adversary.add_partition(partition);
  adversary.arm(s);
  net.set_adversary(&adversary);

  msg::RetryPolicy policy;
  policy.timeout = 40;
  policy.timeout_per_delta = 1.0;
  policy.max_timeout = 800;
  policy.backoff = 10;
  policy.poll_every = 5;

  adapt::ManualDelta pinned(100);
  msg::AbdClient client(net, 0, n, policy);
  client.set_delta_controller(&pinned);

  int done = 0;
  s.spawn([&client, &done](sim::Env env) {
    return write_once(env, client, &done);
  });
  for (int i = 0; i < n; ++i) {
    s.spawn(
        [&net, i, n](sim::Env env) { return msg::abd_server(env, net, i, n); });
  }
  s.run(1'000'000, [&] { return done == 1; });

  EXPECT_EQ(done, 1);
  EXPECT_GE(pinned.failure_events(), 1u);  // expiries were reported
  EXPECT_EQ(client.timeouts(), pinned.failure_events());
  // The write's tag phase straddles the partition (every window expired),
  // but its second phase starts after the heal and makes quorum inside
  // the first window — exactly one clean signal.
  EXPECT_EQ(pinned.clean_events(), 1u);
}

// --- determinism: a recorded drift run replays byte-identically -------------

obs::TimingSpec drift_spec() {
  obs::TimingSpec spec;
  spec.kind = obs::TimingSpec::Kind::kPhased;
  spec.phases = {{.start = 0, .lo = 1, .hi = 10, .ramp = true},
                 {.start = 400, .lo = 1, .hi = 80},
                 {.start = 900, .lo = 1, .hi = 10}};
  return spec;
}

/// Back-to-back consensus instances sharing one Aimd controller — the E21
/// drift harness in miniature, built fresh on each invocation so record
/// and replay see identical state.
obs::Scenario adaptive_scenario() {
  return [](sim::Simulation& simulation) {
    auto controller = std::make_shared<adapt::Aimd>(
        adapt::AimdConfig{.initial = 1,
                          .floor = 1,
                          .ceiling = 100,
                          .grow_factor = 2.0,
                          .decay_step = 1,
                          .clean_threshold = 2});
    for (int instance = 0; instance < 4; ++instance) {
      auto consensus = std::make_shared<core::SimConsensus>(simulation.space(),
                                                            /*delta=*/100);
      consensus->set_delta_controller(controller.get());
      consensus->monitor().set_trace_sink(simulation.trace_sink());
      for (int input : {0, 1}) {
        simulation.spawn(
            [consensus, input](sim::Env env) {
              return consensus->participant(env, input);
            },
            /*start=*/simulation.now());
      }
      simulation.run();  // to idle: the instance is complete
    }
  };
}

TEST(AdaptDeterminismTest, PhasedSpecSurvivesTheByteRoundTrip) {
  obs::RecordedRun run;
  run.seed = 77;
  run.timing = drift_spec();
  run.trace = "not-a-real-trace";
  const std::optional<obs::RecordedRun> back =
      obs::RecordedRun::from_bytes(run.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, 77u);
  ASSERT_EQ(back->timing.kind, obs::TimingSpec::Kind::kPhased);
  ASSERT_EQ(back->timing.phases.size(), 3u);
  EXPECT_EQ(back->timing.phases[0].hi, 10);
  EXPECT_TRUE(back->timing.phases[0].ramp);
  EXPECT_EQ(back->timing.phases[1].start, 400);
  EXPECT_EQ(back->timing.phases[1].hi, 80);
  EXPECT_FALSE(back->timing.phases[2].ramp);
  EXPECT_EQ(back->trace, run.trace);
}

TEST(AdaptDeterminismTest, SameSeedDriftRunReplaysByteIdentical) {
  const obs::RecordedRun run =
      obs::record(/*seed=*/5, drift_spec(), adaptive_scenario());
  EXPECT_FALSE(run.trace.empty());
  const obs::ReplayResult again = obs::replay(run, adaptive_scenario());
  EXPECT_TRUE(again.identical);

  // A different drift (same seed) must diverge — the phases are load-
  // bearing, not decorative.
  obs::TimingSpec other = drift_spec();
  other.phases[1].hi = 81;
  EXPECT_NE(obs::record(5, other, adaptive_scenario()).trace, run.trace);
}

}  // namespace
}  // namespace tfr
