// Pins the "zero-cost by construction" claim of the Atomics policy seam
// (rt/atomics_policy.hpp): instantiating the rt algorithms with
// StdAtomics must compile to exactly the code the pre-seam untemplated
// classes produced.  The argument is by type identity — the policy's
// member aliases ARE the std:: types, so a BasicFoo<StdAtomics> member
// of type Atomics::atomic<T> is the very same std::atomic<T> member the
// original class had, with the same layout, alignment and noexcept
// surface.  Everything here is a compile-time assertion; the TEST bodies
// only exist so a filter run shows the suite.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <type_traits>
#include <utility>

#include "tfr/mutex/lock_adapters.hpp"
#include "tfr/mutex/mutex_rt.hpp"
#include "tfr/registers/atomic_register.hpp"
#include "tfr/rt/atomic_mutex.hpp"
#include "tfr/rt/atomics_policy.hpp"

namespace tfr {
namespace {

// The policy aliases are the std:: types themselves — no wrapper class,
// so there is nothing a wrapper could cost.
static_assert(std::is_same_v<rt::StdAtomics::atomic<int>, std::atomic<int>>);
static_assert(std::is_same_v<rt::StdAtomics::atomic<std::uint32_t>,
                             std::atomic<std::uint32_t>>);
static_assert(
    std::is_same_v<rt::StdAtomics::counter<std::uint64_t>,
                   std::atomic<std::uint64_t>>);
static_assert(std::is_same_v<rt::StdAtomics::thread, std::thread>);
static_assert(std::is_same_v<rt::StdAtomics::duration, rt::Nanos>);

// The production names are aliases of the StdAtomics instantiations —
// the same types, not parallel implementations.
static_assert(
    std::is_same_v<rt::AtomicMutex, rt::BasicAtomicMutex<rt::StdAtomics>>);
static_assert(
    std::is_same_v<rt::EventCount, rt::BasicEventCount<rt::StdAtomics>>);
static_assert(
    std::is_same_v<rt::FischerRt, rt::BasicFischerRt<rt::StdAtomics>>);
static_assert(std::is_same_v<rt::TfrMutexRt,
                             rt::BasicTfrMutexRt<rt::StdAtomics>>);
static_assert(std::is_same_v<rt::AtomicMutexLock,
                             rt::BasicAtomicMutexLock<rt::StdAtomics>>);
static_assert(std::is_same_v<rt::AtomicRegister<int>,
                             rt::BasicAtomicRegister<int, rt::StdAtomics>>);

// Layout: the futex-class primitives stay one 4-byte word (also
// static_asserted at their definitions), standard-layout, and no more
// aligned than the word itself.
static_assert(sizeof(rt::AtomicMutex) == 4);
static_assert(sizeof(rt::EventCount) == 4);
static_assert(alignof(rt::AtomicMutex) == alignof(std::atomic<std::uint32_t>));
static_assert(std::is_standard_layout_v<rt::AtomicMutex>);
static_assert(std::is_standard_layout_v<rt::EventCount>);
static_assert(sizeof(rt::AtomicRegister<int>) == sizeof(std::atomic<int>));

// noexcept surface: with kNoexceptOps the production lock operations are
// nothrow — the property the pre-seam classes declared, and the one the
// shim policy must be able to turn off (it unwinds via AbortExecution).
static_assert(rt::StdAtomics::kNoexceptOps);
static_assert(noexcept(std::declval<rt::AtomicMutex&>().lock()));
static_assert(noexcept(std::declval<rt::AtomicMutex&>().try_lock()));
static_assert(noexcept(std::declval<rt::AtomicMutex&>().unlock()));
static_assert(noexcept(std::declval<rt::EventCount&>().advance()));
static_assert(noexcept(std::declval<const rt::EventCount&>().epoch()));

// Spinning is real on hardware, disabled under the checker.
static_assert(rt::StdAtomics::kSpinBudget == rt::kDefaultSpinBudget);

TEST(RtCodegen, StdPolicyIsZeroCostByConstruction) {
  // All assertions above are compile-time; reaching here is the pass.
  SUCCEED();
}

}  // namespace
}  // namespace tfr
