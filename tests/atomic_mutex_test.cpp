// Tests for the futex-class blocking substrate (src/rt/atomic_mutex.hpp):
// the 4-byte AtomicMutex, the EventCount/wait_until_changed pair, and the
// shootout lock adapters.  Suite names start with "Rt" so the TSan CI job
// (-R '^Rt') covers every path.
//
// Timing assertions are shape-level and generous: the host may be a
// loaded single-core CI container.  The one quantitative claim — waiters
// block instead of burning CPU — is asserted via process CPU time with
// wide margins (wider still under TSan, whose instrumentation inflates
// the CPU bill of every atomic access).

#include <gtest/gtest.h>

#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "tfr/mutex/lock_adapters.hpp"
#include "tfr/mutex/mutex_rt.hpp"
#include "tfr/rt/atomic_mutex.hpp"

namespace tfr::rt {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// --- AtomicMutex -------------------------------------------------------------

TEST(RtAtomicMutex, StorageIsFourBytes) {
  EXPECT_EQ(sizeof(AtomicMutex), 4u);
  EXPECT_EQ(sizeof(EventCount), 4u);
}

TEST(RtAtomicMutex, LockUnlockTryLock) {
  AtomicMutex m;
  EXPECT_FALSE(m.is_locked());
  m.lock();
  EXPECT_TRUE(m.is_locked());
  EXPECT_FALSE(m.try_lock());
  m.unlock();
  EXPECT_FALSE(m.is_locked());
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(RtAtomicMutex, LockGuardCompatible) {
  AtomicMutex m;
  {
    std::lock_guard<AtomicMutex> guard(m);
    EXPECT_TRUE(m.is_locked());
  }
  EXPECT_FALSE(m.is_locked());
  {
    std::unique_lock<AtomicMutex> guard(m, std::try_to_lock);
    EXPECT_TRUE(guard.owns_lock());
  }
}

TEST(RtAtomicMutex, ContendedCounterExact) {
  // The classic torture test: an unprotected counter stays exact only if
  // the lock excludes.  Zero spin budget forces the blocking path.
  AtomicMutex m;
  std::uint64_t counter = 0;
  const int threads = 8;
  const int rounds = kTsan ? 500 : 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < rounds; ++i) {
        m.spin_lock(i % 2 == 0 ? kDefaultSpinBudget : 0);
        ++counter;
        m.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * rounds);
}

TEST(RtAtomicMutex, WaitersBlockInsteadOfSpinning) {
  // One holder sleeps ~120 ms inside the lock while three waiters queue.
  // If waiters parked, the process burns far less CPU than the 480 ms
  // that four spinning threads would (on a multi-core host); the bound
  // also holds trivially on a single core.
  AtomicMutex m;
  m.lock();
  const double cpu_start = process_cpu_seconds();
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      m.spin_lock(64);
      m.unlock();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  m.unlock();
  for (auto& w : waiters) w.join();
  const double cpu = process_cpu_seconds() - cpu_start;
  EXPECT_LT(cpu, kTsan ? 0.30 : 0.20);
}

// --- EventCount --------------------------------------------------------------

TEST(RtEventCount, AdvanceMovesEpoch) {
  EventCount ec;
  const auto e0 = ec.epoch();
  ec.advance();
  EXPECT_NE(ec.epoch(), e0);
}

TEST(RtEventCount, WaitUntilChangedMultiRegisterPredicate) {
  // The black-white-bakery shape: the predicate reads two registers and
  // either write alone must wake a parked waiter (spin budget 0).
  EventCount ec;
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    wait_until_changed(
        ec, [&] { return a.load() + b.load() == 2; }, /*spin_budget=*/0);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  a.store(1);
  ec.advance();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  b.store(1);
  ec.advance();
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(RtEventCount, AdvanceWakesAllWaiters) {
  EventCount ec;
  std::atomic<int> gate{0};
  std::atomic<int> released{0};
  const int n = 4;
  std::vector<std::thread> waiters;
  for (int t = 0; t < n; ++t) {
    waiters.emplace_back([&] {
      wait_until_changed(ec, [&] { return gate.load() != 0; }, 0);
      released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(released.load(), 0);
  gate.store(1);
  ec.advance();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(released.load(), n);
}

// --- Lock adapters -----------------------------------------------------------

TEST(RtLockAdapters, NamesAndBasicExclusion) {
  AtomicMutexLock atomic_lock;
  StdMutexLock std_lock;
  SpinYieldLock spin_lock;
  EXPECT_EQ(atomic_lock.name(), "atomic");
  EXPECT_EQ(std_lock.name(), "std::mutex");
  EXPECT_EQ(spin_lock.name(), "spin-yield");
  for (RtMutex* m : {static_cast<RtMutex*>(&atomic_lock),
                     static_cast<RtMutex*>(&std_lock),
                     static_cast<RtMutex*>(&spin_lock)}) {
    const auto result = run_rt_mutex_workload(
        *m, {.threads = 4, .sessions = 25, .cs_time = Nanos{1000},
             .ncs_time = Nanos{500}});
    EXPECT_EQ(result.violations, 0u) << m->name();
    EXPECT_EQ(result.cs_entries, 100u) << m->name();
  }
}

}  // namespace
}  // namespace tfr::rt
