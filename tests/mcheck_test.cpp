// Tests for the mcheck stateless model checker: exhaustive verification
// of the paper's algorithms on small configurations, the known Fischer
// counterexample, byte-identical counterexample replay, and the
// DPOR-vs-naive pruning regression.

#include <gtest/gtest.h>

#include "tfr/mcheck/explorer.hpp"
#include "tfr/mcheck/rt_scenarios.hpp"
#include "tfr/mcheck/scenarios.hpp"
#include "tfr/obs/replay.hpp"

namespace tfr {
namespace {

mcheck::ExploreConfig small_config() {
  mcheck::ExploreConfig config;
  config.delta = 2;
  config.failure_cost = 5;
  config.max_failures = 1;
  config.slow_budget = 1;
  return config;
}

// Algorithm 1, n=2, inputs {0,1}, round bound 2: agreement and validity
// hold on every execution within the bounds, every failure-free
// execution decides before round 2, and the DFS runs to completion.
TEST(McheckConsensus, ExhaustiveNoViolation) {
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_consensus_scenario({}), small_config());
  EXPECT_FALSE(result.violation) << result.what;
  EXPECT_TRUE(result.stats.complete);
  EXPECT_GT(result.stats.executions, 1000u);
  // With n=2 the sleep-set reduction manifests as whole executions cut at
  // a node whose every option is asleep.
  EXPECT_GT(result.stats.sleep_blocked, 0u);
}

// The sleep-set reduction must explore strictly fewer executions than
// naive DFS while reaching the same verdict.  A slow-access budget of 0
// keeps the naive state space small enough for a unit test.
TEST(McheckConsensus, SleepSetsPruneAgainstNaiveDfs) {
  mcheck::ExploreConfig config = small_config();
  config.slow_budget = 0;

  const mcheck::CheckResult reduced =
      mcheck::check(mcheck::make_consensus_scenario({}), config);
  config.reduction = mcheck::Reduction::kNone;
  const mcheck::CheckResult naive =
      mcheck::check(mcheck::make_consensus_scenario({}), config);

  EXPECT_FALSE(reduced.violation);
  EXPECT_FALSE(naive.violation);
  EXPECT_TRUE(reduced.stats.complete);
  EXPECT_TRUE(naive.stats.complete);
  EXPECT_LT(reduced.stats.executions, naive.stats.executions);
  EXPECT_LT(reduced.stats.states, naive.stats.states);
  EXPECT_EQ(naive.stats.sleep_blocked, 0u);
}

// Source-set DPOR must prune strictly beyond plain sleep sets — same
// clean verdict, fewer executions, and nonzero dependent-access race and
// source-pruning activity.
TEST(McheckConsensus, SourceDporPrunesBeyondSleepSets) {
  mcheck::ExploreConfig config = small_config();

  const mcheck::CheckResult dpor =
      mcheck::check(mcheck::make_consensus_scenario({}), config);
  config.reduction = mcheck::Reduction::kSleepSets;
  const mcheck::CheckResult sleep =
      mcheck::check(mcheck::make_consensus_scenario({}), config);

  EXPECT_FALSE(dpor.violation);
  EXPECT_FALSE(sleep.violation);
  EXPECT_TRUE(dpor.stats.complete);
  EXPECT_TRUE(sleep.stats.complete);
  EXPECT_LT(dpor.stats.executions, sleep.stats.executions);
  EXPECT_GT(dpor.stats.races_detected, 0u);
  EXPECT_GT(dpor.stats.source_pruned, 0u);
  EXPECT_EQ(sleep.stats.races_detected, 0u);
  EXPECT_EQ(sleep.stats.source_pruned, 0u);
}

// Same ablation on a mutex scenario: Algorithm 3's much larger tree is
// where the reduction pays (33k -> 16k executions at n = 2).
TEST(McheckTfrMutex, SourceDporPrunesBeyondSleepSets) {
  mcheck::MutexScenarioConfig scenario;
  scenario.algorithm =
      mcheck::MutexScenarioConfig::Algorithm::kTfrStarvationFree;
  mcheck::ExploreConfig config = small_config();

  const mcheck::CheckResult dpor =
      mcheck::check(mcheck::make_mutex_scenario(scenario), config);
  config.reduction = mcheck::Reduction::kSleepSets;
  const mcheck::CheckResult sleep =
      mcheck::check(mcheck::make_mutex_scenario(scenario), config);

  EXPECT_FALSE(dpor.violation);
  EXPECT_FALSE(sleep.violation);
  EXPECT_TRUE(dpor.stats.complete);
  EXPECT_TRUE(sleep.stats.complete);
  EXPECT_LT(dpor.stats.executions, sleep.stats.executions);
}

// Bare Fischer (Algorithm 2) under a single timing failure: the explorer
// must find the known mutual-exclusion violation (§3.1) and emit a
// counterexample that replays byte-identically through the trace layer.
TEST(McheckFischer, FindsKnownViolationAndReplays) {
  mcheck::ExploreConfig config = small_config();
  config.slow_budget = -1;
  const mcheck::CheckScenario scenario = mcheck::make_mutex_scenario({});

  const mcheck::CheckResult result = mcheck::check(scenario, config);
  ASSERT_TRUE(result.violation);
  EXPECT_EQ(result.what, "mutual exclusion violated");
  EXPECT_FALSE(result.counterexample.timing.script.empty());
  EXPECT_FALSE(result.counterexample.timing.schedule.empty());

  // Golden replay: the recorded trace must reproduce byte-for-byte.
  const obs::ReplayResult replayed = obs::replay(
      result.counterexample,
      mcheck::counterexample_scenario(scenario, config));
  EXPECT_TRUE(replayed.identical)
      << "first divergence at event " << replayed.first_divergence;

  // And the re-run must reproduce the violation itself.
  const mcheck::CheckOutcome reproduced =
      mcheck::run_recorded(result.counterexample, scenario, config);
  EXPECT_FALSE(reproduced.ok);
  EXPECT_EQ(reproduced.what, "mutual exclusion violated");
}

// The counterexample survives serialization: save bytes, load them back,
// and the loaded run still replays byte-identically.
TEST(McheckFischer, CounterexampleSerializationRoundtrip) {
  mcheck::ExploreConfig config = small_config();
  config.slow_budget = -1;
  const mcheck::CheckScenario scenario = mcheck::make_mutex_scenario({});
  const mcheck::CheckResult result = mcheck::check(scenario, config);
  ASSERT_TRUE(result.violation);

  const std::string bytes = result.counterexample.to_bytes();
  const std::optional<obs::RecordedRun> loaded =
      obs::RecordedRun::from_bytes(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->timing.kind, obs::TimingSpec::Kind::kScripted);
  EXPECT_EQ(loaded->timing.script, result.counterexample.timing.script);
  EXPECT_EQ(loaded->timing.schedule, result.counterexample.timing.schedule);
  EXPECT_EQ(loaded->trace, result.counterexample.trace);

  const obs::ReplayResult replayed = obs::replay(
      *loaded, mcheck::counterexample_scenario(scenario, config));
  EXPECT_TRUE(replayed.identical);
}

// Without a timing failure budget Fischer is safe: the same scenario
// explored with max_failures = 0 must come up clean — the violation
// really is caused by the injected failure.
TEST(McheckFischer, SafeWithoutTimingFailures) {
  mcheck::ExploreConfig config = small_config();
  config.slow_budget = -1;
  config.max_failures = 0;
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_mutex_scenario({}), config);
  EXPECT_FALSE(result.violation) << result.what;
  EXPECT_TRUE(result.stats.complete);
}

// Algorithm 3 (Fischer filter over a starvation-free asynchronous A)
// keeps mutual exclusion even under the timing failure that breaks bare
// Fischer (Theorem 3.3's safety half), exhaustively for n=2.
TEST(McheckTfrMutex, ExhaustiveNoViolation) {
  mcheck::MutexScenarioConfig scenario;
  scenario.algorithm =
      mcheck::MutexScenarioConfig::Algorithm::kTfrStarvationFree;
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_mutex_scenario(scenario), small_config());
  EXPECT_FALSE(result.violation) << result.what;
  EXPECT_TRUE(result.stats.complete);
  EXPECT_GT(result.stats.sleep_blocked, 0u);
}

// A scripted TimingSpec (the counterexample format) roundtrips through
// the flat serialization, including the schedule and per-access costs.
TEST(McheckReplayFormat, ScriptedSpecRoundtrip) {
  obs::RecordedRun run;
  run.seed = 42;
  run.timing.kind = obs::TimingSpec::Kind::kScripted;
  run.timing.lo = 1;
  run.timing.delta = 2;
  run.timing.script = {{0, 1}, {1, 5}, {0, 2}};
  run.timing.schedule = {0, 1, 1, 0};
  run.trace = "not-a-real-trace";

  const std::optional<obs::RecordedRun> loaded =
      obs::RecordedRun::from_bytes(run.to_bytes());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seed, 42u);
  EXPECT_EQ(loaded->timing.kind, obs::TimingSpec::Kind::kScripted);
  EXPECT_EQ(loaded->timing.script, run.timing.script);
  EXPECT_EQ(loaded->timing.schedule, run.timing.schedule);
  EXPECT_EQ(loaded->trace, run.trace);
  // A scripted spec never wraps a FailureInjector: the failures are in
  // the script itself.
  EXPECT_FALSE(loaded->timing.has_injector());
}

// The exploration honours its max_executions bound and says so.
TEST(McheckBounds, AbortsAtMaxExecutions) {
  mcheck::ExploreConfig config = small_config();
  config.max_executions = 10;
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_consensus_scenario({}), config);
  EXPECT_FALSE(result.stats.complete);
  EXPECT_EQ(result.stats.executions, 10u);
}

// --- parallel exploration: jobs > 1 must be indistinguishable ------------

void expect_stats_equal(const mcheck::ExploreStats& parallel,
                        const mcheck::ExploreStats& serial) {
  EXPECT_EQ(parallel.executions, serial.executions);
  EXPECT_EQ(parallel.states, serial.states);
  EXPECT_EQ(parallel.transitions, serial.transitions);
  EXPECT_EQ(parallel.sched_choice_points, serial.sched_choice_points);
  EXPECT_EQ(parallel.cost_choice_points, serial.cost_choice_points);
  EXPECT_EQ(parallel.sleep_pruned, serial.sleep_pruned);
  EXPECT_EQ(parallel.sleep_blocked, serial.sleep_blocked);
  EXPECT_EQ(parallel.races_detected, serial.races_detected);
  EXPECT_EQ(parallel.source_pruned, serial.source_pruned);
  EXPECT_EQ(parallel.state_pruned, serial.state_pruned);
  EXPECT_EQ(parallel.truncated, serial.truncated);
  EXPECT_EQ(parallel.complete, serial.complete);
}

/// Runs the scenario serially and at jobs {2, 4}; every parallel result
/// must match the serial one exactly — verdict, the full ExploreStats,
/// and (for violations) the counterexample artifact byte-for-byte.
void expect_parallel_equivalent(const mcheck::CheckScenario& scenario,
                                const mcheck::ExploreConfig& base) {
  mcheck::ExploreConfig config = base;
  config.jobs = 1;
  const mcheck::CheckResult serial = mcheck::check(scenario, config);
  for (const int jobs : {2, 4}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    config.jobs = jobs;
    const mcheck::CheckResult parallel = mcheck::check(scenario, config);
    EXPECT_EQ(parallel.violation, serial.violation);
    EXPECT_EQ(parallel.what, serial.what);
    expect_stats_equal(parallel.stats, serial.stats);
    if (serial.violation) {
      EXPECT_EQ(parallel.counterexample.to_bytes(),
                serial.counterexample.to_bytes());
    }
  }
}

// Algorithm 1 (clean verdict): the work-sharing frontier partitions a
// sleep-set-reduced tree; merged stats must equal the serial count of
// every event class, including the ones incurred at prefix depths.
TEST(McheckParallel, ConsensusMatchesSerial) {
  expect_parallel_equivalent(mcheck::make_consensus_scenario({}),
                             small_config());
}

// Bare Fischer (violating): the merged result must pick the DFS-least
// violating execution — the same one the serial run finds first — and
// hand back a byte-identical counterexample, no matter which worker
// reported a violation first.
TEST(McheckParallel, FischerViolationMatchesSerial) {
  mcheck::ExploreConfig config = small_config();
  config.slow_budget = -1;
  expect_parallel_equivalent(mcheck::make_mutex_scenario({}), config);
}

// Algorithm 3 over starvation-free A (clean, heavy sleep-set activity).
TEST(McheckParallel, TfrMutexMatchesSerial) {
  mcheck::MutexScenarioConfig scenario;
  scenario.algorithm =
      mcheck::MutexScenarioConfig::Algorithm::kTfrStarvationFree;
  expect_parallel_equivalent(mcheck::make_mutex_scenario(scenario),
                             small_config());
}

// ABD with a crashed minority (clean, message-passing over channel
// registers, sleep-blocked probes at shallow depths).
TEST(McheckParallel, AbdMatchesSerial) {
  mcheck::ExploreConfig config = small_config();
  config.max_failures = 0;
  config.slow_budget = 0;
  config.max_steps = 600;
  expect_parallel_equivalent(mcheck::make_abd_scenario({}), config);
}

// The fast-read ABD variant: the one-round read prunes the schedule tree
// (no write-back round on uniform-tag quorums), and the pruned tree must
// still partition deterministically across workers.
TEST(McheckParallel, AbdFastReadMatchesSerial) {
  mcheck::ExploreConfig config = small_config();
  config.max_failures = 0;
  config.slow_budget = 0;
  config.max_steps = 600;
  mcheck::AbdScenarioConfig scenario;
  scenario.variant = msg::RegisterVariant::kPerPeerFastRead;
  expect_parallel_equivalent(mcheck::make_abd_scenario(scenario), config);
}

// Every explored schedule of the fast-read variant linearizes, the space
// is exhausted, and it is strictly smaller than stock's (the skipped
// write-back removes interleavings, never adds verdicts).
TEST(McheckParallel, AbdFastReadShrinksTheScheduleSpace) {
  mcheck::ExploreConfig config = small_config();
  config.max_failures = 0;
  config.slow_budget = 0;
  config.max_steps = 600;
  config.jobs = 1;
  const mcheck::CheckResult stock =
      mcheck::check(mcheck::make_abd_scenario({}), config);
  mcheck::AbdScenarioConfig fast_scenario;
  fast_scenario.variant = msg::RegisterVariant::kPerPeerFastRead;
  const mcheck::CheckResult fast =
      mcheck::check(mcheck::make_abd_scenario(fast_scenario), config);
  EXPECT_FALSE(stock.violation);
  EXPECT_FALSE(fast.violation);
  EXPECT_TRUE(stock.stats.complete);
  EXPECT_TRUE(fast.stats.complete);
  EXPECT_LT(fast.stats.executions, stock.stats.executions);
}

// The frontier depth only changes how work is partitioned, never what is
// counted: extreme depths (1 = a handful of huge subtrees, 64 = every
// probe ends as a short-leaf singleton item) must all reproduce the
// serial stats.
TEST(McheckParallel, PrefixDepthInsensitive) {
  mcheck::ExploreConfig config = small_config();
  config.slow_budget = 0;
  const mcheck::CheckScenario scenario = mcheck::make_consensus_scenario({});
  config.jobs = 1;
  const mcheck::CheckResult serial = mcheck::check(scenario, config);
  for (const std::uint32_t depth : {1u, 3u, 64u}) {
    SCOPED_TRACE("prefix_depth=" + std::to_string(depth));
    config.jobs = 2;
    config.prefix_depth = depth;
    const mcheck::CheckResult parallel = mcheck::check(scenario, config);
    EXPECT_FALSE(parallel.violation);
    expect_stats_equal(parallel.stats, serial.stats);
  }
}

// max_executions is documented as per-worker-subtree in parallel mode;
// hitting it in any subtree must still be reported as an incomplete
// exploration.
TEST(McheckParallel, MaxExecutionsReportsIncomplete) {
  mcheck::ExploreConfig config = small_config();
  config.max_executions = 10;
  config.jobs = 2;
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_consensus_scenario({}), config);
  EXPECT_FALSE(result.stats.complete);
}

// --- real-thread scenarios through the atomic interposition seam --------
//
// Suite naming is deliberate: McheckRt* suites fork worker processes
// (jobs > 1) and stay outside the TSan ctest regex; RtShim* suites run
// everything in-process so the TSan job exercises the pool-thread/pump
// handshake itself.

mcheck::ExploreConfig rt_eventcount_config() {
  mcheck::ExploreConfig config = small_config();
  config.max_failures = 0;
  config.slow_budget = 0;
  return config;
}

// Real-thread Fischer (rt::BasicFischerRt over ShimAtomics, the same
// source production instantiates with std::atomic) under one timing
// failure: the §3.1 violation must surface through the seam, and the
// counterexample must replay byte-identically.
TEST(McheckRtFischer, FindsKnownViolationAndReplays) {
  const mcheck::CheckScenario scenario = mcheck::make_rt_mutex_scenario({});
  const mcheck::ExploreConfig config = small_config();

  const mcheck::CheckResult result = mcheck::check(scenario, config);
  ASSERT_TRUE(result.violation);
  EXPECT_EQ(result.what, "mutual exclusion violated (CS occupancy overlap)");
  EXPECT_FALSE(result.counterexample.timing.script.empty());
  EXPECT_FALSE(result.counterexample.timing.schedule.empty());

  const obs::ReplayResult replayed = obs::replay(
      result.counterexample,
      mcheck::counterexample_scenario(scenario, config));
  EXPECT_TRUE(replayed.identical)
      << "first divergence at event " << replayed.first_divergence;

  const mcheck::CheckOutcome reproduced =
      mcheck::run_recorded(result.counterexample, scenario, config);
  EXPECT_FALSE(reproduced.ok);
  EXPECT_EQ(reproduced.what, result.what);
}

// The futex-class AtomicMutex (wait/notify protocol) verifies clean and
// exhaustively through the seam under the same failure budget.
TEST(McheckRtAtomicLock, ExhaustiveNoViolation) {
  mcheck::RtMutexScenarioConfig scenario;
  scenario.algorithm = mcheck::RtMutexScenarioConfig::Algorithm::kAtomicLock;
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_rt_mutex_scenario(scenario), small_config());
  EXPECT_FALSE(result.violation) << result.what;
  EXPECT_TRUE(result.stats.complete);
}

// Algorithm 3 (tfr starvation-free mutex), real-thread flavour: clean and
// complete, the rt twin of McheckTfrMutex.ExhaustiveNoViolation.
TEST(McheckRtTfrMutex, ExhaustiveNoViolation) {
  mcheck::RtMutexScenarioConfig scenario;
  scenario.algorithm =
      mcheck::RtMutexScenarioConfig::Algorithm::kTfrStarvationFree;
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_rt_mutex_scenario(scenario), small_config());
  EXPECT_FALSE(result.violation) << result.what;
  EXPECT_TRUE(result.stats.complete);
}

// EventCount with the epoch published before the state write: the seam
// must find the lost-wakeup interleaving (both threads parked, simulation
// idle); the documented publication order must verify clean.
TEST(McheckRtEventCount, TornEpochLosesWakeupCorrectOrderDoesNot) {
  const mcheck::CheckResult torn = mcheck::check(
      mcheck::make_rt_eventcount_scenario({}), rt_eventcount_config());
  ASSERT_TRUE(torn.violation);
  EXPECT_EQ(torn.what, "lost wakeup: threads parked with the simulation idle");

  mcheck::RtEventCountScenarioConfig fixed;
  fixed.torn_epoch = false;
  const mcheck::CheckResult clean = mcheck::check(
      mcheck::make_rt_eventcount_scenario(fixed), rt_eventcount_config());
  EXPECT_FALSE(clean.violation) << clean.what;
  EXPECT_TRUE(clean.stats.complete);
}

// Forked-jobs parity for the rt scenarios: pooled shim threads must not
// leak state across the fork (the pool is pid-keyed; children rebuild it
// lazily), so jobs {2, 4} reproduce the serial verdict, stats and
// counterexample bytes exactly.
TEST(McheckRtParallel, FischerRtViolationMatchesSerial) {
  expect_parallel_equivalent(mcheck::make_rt_mutex_scenario({}),
                             small_config());
}

TEST(McheckRtParallel, AtomicLockMatchesSerial) {
  mcheck::RtMutexScenarioConfig scenario;
  scenario.algorithm = mcheck::RtMutexScenarioConfig::Algorithm::kAtomicLock;
  expect_parallel_equivalent(mcheck::make_rt_mutex_scenario(scenario),
                             small_config());
}

TEST(McheckRtParallel, EventCountTornMatchesSerial) {
  expect_parallel_equivalent(mcheck::make_rt_eventcount_scenario({}),
                             rt_eventcount_config());
}

// In-process determinism (TSan-covered): two serial explorations of the
// same rt scenario are bit-for-bit the same — stats and counterexample —
// proving the OS-thread/pump handshake injects no nondeterminism (and,
// under TSan, no data races).
TEST(RtShimDeterminism, RepeatedEventCountRunsAreIdentical) {
  const mcheck::CheckScenario scenario = mcheck::make_rt_eventcount_scenario({});
  const mcheck::ExploreConfig config = rt_eventcount_config();
  const mcheck::CheckResult first = mcheck::check(scenario, config);
  const mcheck::CheckResult second = mcheck::check(scenario, config);
  ASSERT_TRUE(first.violation);
  ASSERT_TRUE(second.violation);
  EXPECT_EQ(first.what, second.what);
  expect_stats_equal(first.stats, second.stats);
  EXPECT_EQ(first.counterexample.to_bytes(), second.counterexample.to_bytes());
}

// In-process replay (TSan-covered): the recorded lost-wakeup run drives
// the pooled threads down the identical path, byte-for-byte.
TEST(RtShimReplay, EventCountCounterexampleReplaysByteIdentical) {
  const mcheck::CheckScenario scenario = mcheck::make_rt_eventcount_scenario({});
  const mcheck::ExploreConfig config = rt_eventcount_config();
  const mcheck::CheckResult result = mcheck::check(scenario, config);
  ASSERT_TRUE(result.violation);

  const obs::ReplayResult replayed = obs::replay(
      result.counterexample,
      mcheck::counterexample_scenario(scenario, config));
  EXPECT_TRUE(replayed.identical)
      << "first divergence at event " << replayed.first_divergence;

  const mcheck::CheckOutcome reproduced =
      mcheck::run_recorded(result.counterexample, scenario, config);
  EXPECT_FALSE(reproduced.ok);
  EXPECT_EQ(reproduced.what, result.what);
}

// In-process wait/notify workout (TSan-covered): the AtomicMutex check
// parks and wakes pump coroutines on every execution, so a clean complete
// run here means the park-list handshake is race-free.
TEST(RtShimWaitNotify, AtomicLockVerifiesCleanInProcess) {
  mcheck::RtMutexScenarioConfig scenario;
  scenario.algorithm = mcheck::RtMutexScenarioConfig::Algorithm::kAtomicLock;
  const mcheck::CheckResult result =
      mcheck::check(mcheck::make_rt_mutex_scenario(scenario), small_config());
  EXPECT_FALSE(result.violation) << result.what;
  EXPECT_TRUE(result.stats.complete);
  EXPECT_GT(result.stats.executions, 10u);
}

}  // namespace
}  // namespace tfr
