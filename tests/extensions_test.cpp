// Tests for the §4-extension modules: ablation variants of Algorithm 1,
// transient memory-failure hooks, RMR accounting, k-set consensus, and
// the long-lived (generational) test-and-set — including using the latter
// as a mutual-exclusion lock.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/core/consensus_ablation_sim.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/derived/long_lived_tas_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/derived/set_consensus_sim.hpp"
#include "tfr/sim/monitor.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr {
namespace {

using core::AblationVariant;
using sim::Duration;
using sim::make_fixed_timing;
using sim::make_uniform_timing;

constexpr Duration kDelta = 100;

std::unique_ptr<sim::TimingModel> faulty(double p) {
  auto injector = std::make_unique<sim::FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(p, 10 * kDelta);
  return injector;
}

// --- Ablation variants --------------------------------------------------------

TEST(Ablation, FaithfulNeverViolatesAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const auto out =
        core::run_ablation(AblationVariant::kFaithful, {0, 1, 0, 1}, kDelta,
                           faulty(0.15), seed, 10'000'000);
    EXPECT_EQ(out.agreement_violations, 0u) << "seed=" << seed;
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
  }
}

TEST(Ablation, YFirstVariantEventuallyViolates) {
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 0; seed < 400 && violations == 0; ++seed) {
    const auto out =
        core::run_ablation(AblationVariant::kYFirst, {0, 1, 0, 1}, kDelta,
                           faulty(0.15), seed, 10'000'000);
    violations += out.agreement_violations;
  }
  EXPECT_GT(violations, 0u)
      << "the y-first reordering should lose agreement under failures";
}

TEST(Ablation, YFirstVariantSafeWithoutFailures) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto out =
        core::run_ablation(AblationVariant::kYFirst, {0, 1, 0, 1}, kDelta,
                           make_uniform_timing(1, kDelta), seed, 10'000'000);
    EXPECT_EQ(out.agreement_violations, 0u) << "seed=" << seed;
  }
}

TEST(Ablation, NoDelayVariantSafeButSlower) {
  std::size_t worst_rounds = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const auto out =
        core::run_ablation(AblationVariant::kNoDelay, {0, 1, 0, 1}, kDelta,
                           make_uniform_timing(1, kDelta), seed, 10'000'000);
    EXPECT_EQ(out.agreement_violations, 0u) << "seed=" << seed;
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
    worst_rounds = std::max(worst_rounds, out.max_round + 1);
  }
  // Without the delay the two-round guarantee is gone.
  EXPECT_GT(worst_rounds, 2u);
}

// --- Memory-failure hooks -------------------------------------------------------

TEST(MemoryFaults, ToleratedClassesKeepAgreement) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    sim::Simulation s(faulty(0.1), {.seed = seed});
    core::SimConsensus consensus(s.space(), kDelta);
    consensus.monitor().throw_on_violation(false);
    const std::vector<int> inputs{0, 1, 0, 1};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
      s.spawn([&consensus, input = inputs[i]](sim::Env env) {
        return consensus.participant(env, input);
      });
    }
    s.run(4 * kDelta);
    // Tolerated classes: spurious flag set + decide reset.
    consensus.fault_set_flag(static_cast<int>(seed % 2), consensus.max_round());
    s.run(8 * kDelta);
    consensus.fault_reset_decide();
    s.run(10'000'000);
    EXPECT_EQ(consensus.monitor().agreement_violations(), 0u)
        << "seed=" << seed;
    EXPECT_TRUE(consensus.monitor().all_decided(inputs.size()))
        << "seed=" << seed;
  }
}

TEST(MemoryFaults, FlagResetCanBreakAgreement) {
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 0; seed < 400 && violations == 0; ++seed) {
    sim::Simulation s(faulty(0.15), {.seed = seed});
    core::SimConsensus consensus(s.space(), kDelta);
    consensus.monitor().throw_on_violation(false);
    const std::vector<int> inputs{0, 1, 0, 1};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
      s.spawn([&consensus, input = inputs[i]](sim::Env env) {
        return consensus.participant(env, input);
      });
    }
    s.run(static_cast<sim::Time>(2 + seed % 6) * kDelta);
    consensus.fault_reset_flag(static_cast<int>(seed % 2),
                               consensus.max_round());
    s.run(10'000'000);
    violations += consensus.monitor().agreement_violations();
  }
  EXPECT_GT(violations, 0u);
}

// --- RMR accounting ---------------------------------------------------------------

struct RmrShared {
  sim::Register<int> flag;
  explicit RmrShared(sim::RegisterSpace& sp) : flag(sp, 0) {}
};

sim::Process spinner(sim::Env env, RmrShared& sh) {
  for (;;) {  // spin until the flag is raised
    const int f = co_await env.read(sh.flag);
    if (f != 0) break;
  }
}

sim::Process raiser(sim::Env env, RmrShared& sh, Duration after) {
  co_await env.delay(after);
  co_await env.write(sh.flag, 1);
}

TEST(Rmr, SpinningOnUnchangedRegisterIsLocal) {
  sim::Simulation s(make_fixed_timing(10));
  RmrShared sh(s.space());
  s.spawn([&sh](sim::Env env) { return spinner(env, sh); });
  s.spawn([&sh](sim::Env env) { return raiser(env, sh, 1000); });
  s.run();
  const auto& spin_stats = s.stats(0);
  // ~100 spin reads, but only two remote: the first (cache fill) and the
  // one after the raiser's write invalidated the copy.
  EXPECT_GT(spin_stats.reads, 50u);
  EXPECT_EQ(spin_stats.rmr, 2u);
  EXPECT_EQ(s.stats(1).rmr, 1u);  // the write
}

sim::Process write_read_write(sim::Env env, RmrShared& sh) {
  co_await env.write(sh.flag, 1);
  const int a = co_await env.read(sh.flag);  // local: own copy valid
  (void)a;
  co_await env.write(sh.flag, 2);
}

TEST(Rmr, WriterRetainsItsOwnCopy) {
  sim::Simulation s(make_fixed_timing(10));
  RmrShared sh(s.space());
  s.spawn([&sh](sim::Env env) { return write_read_write(env, sh); });
  s.run();
  EXPECT_EQ(s.stats(0).rmr, 2u);  // two writes; the read was local
}

// --- Whole-workload determinism (replayability) -----------------------------------

std::uint64_t mutex_workload_trace_hash(std::uint64_t seed) {
  auto injector = std::make_unique<sim::FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(0.1, 8 * kDelta);
  sim::Simulation s(std::move(injector), {.seed = seed, .trace = true});
  auto algorithm = mutex::make_tfr_mutex_starvation_free(s.space(), 3, kDelta);
  sim::MutexMonitor mon;
  const mutex::WorkloadConfig config{.processes = 3,
                                     .sessions = 8,
                                     .cs_time = 30,
                                     .ncs_time = 40,
                                     .randomize_ncs = true};
  for (int i = 0; i < 3; ++i) {
    s.spawn([&, i](sim::Env env) {
      return mutex::mutex_sessions(env, *algorithm, mon, i, config);
    });
  }
  s.run(1'000'000'000);
  return s.trace_hash();
}

TEST(Determinism, FullMutexWorkloadReplaysBitIdentically) {
  // Everything — scheduler, failure injection, workload randomness — is
  // derived from the seed, so an entire contended run under failures
  // replays to the same linearization trace.
  EXPECT_EQ(mutex_workload_trace_hash(11), mutex_workload_trace_hash(11));
  EXPECT_NE(mutex_workload_trace_hash(11), mutex_workload_trace_hash(12));
}

// --- Quantum scheduling (scheduling failures, §4) --------------------------------

TEST(QuantumScheduling, OwnerStepsAreCheapOthersWait) {
  sim::QuantumTiming timing(/*n=*/3, /*quantum=*/30, /*step=*/2);
  Rng rng(1);
  // At t=5, slot 0 belongs to pid 0.
  EXPECT_EQ(timing.access_cost(0, 5, rng), 2);
  // pid 1 must wait for its slot [30, 60).
  EXPECT_EQ(timing.access_cost(1, 5, rng), 25 + 2);
  // pid 2 waits for [60, 90).
  EXPECT_EQ(timing.access_cost(2, 5, rng), 55 + 2);
  // An owner too close to its quantum end defers to its next slot.
  EXPECT_EQ(timing.access_cost(0, 29, rng), (90 - 29) + 2);
  EXPECT_EQ(timing.delta_equivalent(), 90);
}

TEST(QuantumScheduling, ConfiscationPostponesVictim) {
  sim::QuantumTiming timing(2, 10, 1);
  timing.confiscate(0, 0, 40);  // pid 0 loses quanta starting in [0, 40)
  Rng rng(1);
  // pid 0's quanta start at 0, 20, 40...; the first usable one starts 40.
  EXPECT_EQ(timing.access_cost(0, 0, rng), 40 + 1);
  // pid 1 is unaffected (its quantum [10, 20)).
  EXPECT_EQ(timing.access_cost(1, 0, rng), 10 + 1);
  EXPECT_GE(timing.postponements(), 1u);
}

TEST(QuantumScheduling, ConsensusDecidesUnderQuantumScheduling) {
  for (const sim::Duration quantum : {8, 32}) {
    auto timing = std::make_unique<sim::QuantumTiming>(4, quantum, 1);
    const sim::Duration delta_q = timing->delta_equivalent();
    const auto out = core::run_consensus({0, 1, 0, 1}, delta_q,
                                         std::move(timing), 1, 100'000'000);
    EXPECT_TRUE(out.all_decided) << "quantum=" << quantum;
    EXPECT_LE(out.last_decision, 15 * delta_q) << "quantum=" << quantum;
  }
}

TEST(QuantumScheduling, SafeAcrossConfiscationBurst) {
  auto timing = std::make_unique<sim::QuantumTiming>(3, 16, 1);
  const sim::Duration delta_q = timing->delta_equivalent();
  timing->confiscate(1, 0, 20 * delta_q);
  const auto out = core::run_consensus({0, 1, 1}, delta_q, std::move(timing),
                                       2, 1'000'000'000);
  EXPECT_TRUE(out.all_decided);
}

// --- Bounded-register mode (§2.1 remark) ------------------------------------------

TEST(BoundedRounds, PreallocatesExactlyItsRegisters) {
  sim::RegisterSpace space;
  core::SimConsensus consensus(space, 100, /*max_rounds=*/6);
  EXPECT_EQ(space.allocated(), 3 * 6 + 1u);
}

TEST(BoundedRounds, SufficientBoundBehavesIdentically) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    core::SimConsensus consensus(s.space(), kDelta, /*max_rounds=*/4);
    for (int i = 0; i < 4; ++i) {
      consensus.monitor().set_input(i, i % 2);
      s.spawn([&consensus, input = i % 2](sim::Env env) {
        return consensus.participant(env, input);
      });
    }
    s.run(10'000'000);
    EXPECT_TRUE(consensus.monitor().all_decided(4)) << "seed=" << seed;
  }
}

TEST(BoundedRounds, ViolatedPromiseTripsTheContract) {
  // Failures last far longer than a 1-round budget covers: the algorithm
  // must refuse to silently run out of (finitely many) registers.
  bool tripped = false;
  for (std::uint64_t seed = 0; seed < 40 && !tripped; ++seed) {
    auto injector = std::make_unique<sim::FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    injector->set_random_failures(0.4, 20 * kDelta);
    sim::Simulation s(std::move(injector), {.seed = seed});
    core::SimConsensus consensus(s.space(), kDelta, /*max_rounds=*/1);
    for (int i = 0; i < 4; ++i) {
      consensus.monitor().set_input(i, i % 2);
      s.spawn([&consensus, input = i % 2](sim::Env env) {
        return consensus.participant(env, input);
      });
    }
    try {
      s.run(10'000'000);
    } catch (const ContractViolation&) {
      tripped = true;
    }
  }
  EXPECT_TRUE(tripped);
}

// --- k-set consensus ---------------------------------------------------------------

sim::Process set_propose(sim::Env env, derived::SimSetConsensus& sc,
                         std::int64_t input, std::int64_t* out) {
  *out = co_await sc.propose(env, input);
}

TEST(SetConsensus, AtMostKValuesAndValidity) {
  for (const int k : {1, 2, 3}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const int n = 9;
      sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
      derived::SimSetConsensus sc(s.space(), kDelta, k);
      std::vector<std::int64_t> inputs, out(n, -1);
      for (int i = 0; i < n; ++i) inputs.push_back(100 + i);
      for (int i = 0; i < n; ++i) {
        s.spawn([&sc, input = inputs[static_cast<std::size_t>(i)],
                 slot = &out[static_cast<std::size_t>(i)]](sim::Env env) {
          return set_propose(env, sc, input, slot);
        });
      }
      s.run(100'000'000);
      std::set<std::int64_t> decided(out.begin(), out.end());
      EXPECT_LE(decided.size(), static_cast<std::size_t>(k))
          << "k=" << k << " seed=" << seed;
      for (auto v : out)
        EXPECT_TRUE(std::count(inputs.begin(), inputs.end(), v) > 0);
    }
  }
}

TEST(SetConsensus, K1DegeneratesToConsensus) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 7});
  derived::SimSetConsensus sc(s.space(), kDelta, 1);
  std::vector<std::int64_t> out(5, -1);
  for (int i = 0; i < 5; ++i) {
    s.spawn([&sc, input = std::int64_t{10 + i},
             slot = &out[static_cast<std::size_t>(i)]](sim::Env env) {
      return set_propose(env, sc, input, slot);
    });
  }
  s.run(100'000'000);
  for (auto v : out) EXPECT_EQ(v, out[0]);
}

TEST(SetConsensus, SafeUnderTimingFailures) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Simulation s(faulty(0.15), {.seed = seed});
    derived::SimSetConsensus sc(s.space(), kDelta, 2);
    std::vector<std::int64_t> out(6, -1);
    for (int i = 0; i < 6; ++i) {
      s.spawn([&sc, input = std::int64_t{50 + i},
               slot = &out[static_cast<std::size_t>(i)]](sim::Env env) {
        return set_propose(env, sc, input, slot);
      });
    }
    s.run(500'000'000);
    std::set<std::int64_t> decided(out.begin(), out.end());
    EXPECT_LE(decided.size(), 2u) << "seed=" << seed;
  }
}

// --- Long-lived test-and-set ------------------------------------------------------

sim::Process tas_lock_sessions(sim::Env env,
                               derived::SimLongLivedTestAndSet& tas,
                               sim::MutexMonitor& mon, int sessions) {
  for (int s = 0; s < sessions;) {
    mon.enter_entry(env.pid(), env.now());
    for (;;) {
      const int got = co_await tas.test_and_set(env);
      if (got == 0) break;
      co_await env.delay(10);  // back off before retrying
    }
    mon.enter_cs(env.pid(), env.now());
    co_await env.delay(20);
    mon.exit_cs(env.pid(), env.now());
    co_await tas.reset(env);
    mon.leave_exit(env.pid(), env.now());
    ++s;
  }
}

TEST(LongLivedTas, WorksAsMutexLock) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    derived::SimLongLivedTestAndSet tas(s.space(), kDelta);
    sim::MutexMonitor mon;
    for (int i = 0; i < 3; ++i) {
      s.spawn([&tas, &mon](sim::Env env) {
        return tas_lock_sessions(env, tas, mon, 4);
      });
    }
    s.run(1'000'000'000);
    EXPECT_EQ(mon.mutual_exclusion_violations(), 0u) << "seed=" << seed;
    EXPECT_EQ(mon.cs_entries(), 12u) << "seed=" << seed;
    EXPECT_GE(tas.generations(), 12u);
  }
}

TEST(LongLivedTas, MutexHoldsUnderTimingFailures) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Simulation s(faulty(0.1), {.seed = seed});
    derived::SimLongLivedTestAndSet tas(s.space(), kDelta);
    sim::MutexMonitor mon;
    for (int i = 0; i < 3; ++i) {
      s.spawn([&tas, &mon](sim::Env env) {
        return tas_lock_sessions(env, tas, mon, 3);
      });
    }
    s.run(4'000'000'000);
    EXPECT_EQ(mon.mutual_exclusion_violations(), 0u) << "seed=" << seed;
    EXPECT_EQ(mon.cs_entries(), 9u) << "seed=" << seed;
  }
}

sim::Process single_tas(sim::Env env, derived::SimLongLivedTestAndSet& tas,
                        int* out) {
  *out = co_await tas.test_and_set(env);
}

sim::Process reset_expect_throw(sim::Env env,
                                derived::SimLongLivedTestAndSet& tas,
                                bool* threw) {
  try {
    co_await tas.reset(env);  // never won anything
  } catch (const ContractViolation&) {
    *threw = true;
  }
}

TEST(LongLivedTas, OneWinnerPerGeneration) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 3});
  derived::SimLongLivedTestAndSet tas(s.space(), kDelta);
  std::vector<int> got(4, -1);
  for (int i = 0; i < 4; ++i) {
    s.spawn([&tas, slot = &got[static_cast<std::size_t>(i)]](sim::Env env) {
      return single_tas(env, tas, slot);
    });
  }
  s.run(100'000'000);
  EXPECT_EQ(std::count(got.begin(), got.end(), 0), 1);
  EXPECT_EQ(std::count(got.begin(), got.end(), 1), 3);
}

TEST(LongLivedTas, ResetByNonWinnerRejected) {
  sim::Simulation s(make_fixed_timing(10));
  derived::SimLongLivedTestAndSet tas(s.space(), kDelta);
  bool threw = false;
  s.spawn([&tas, &threw](sim::Env env) {
    return reset_expect_throw(env, tas, &threw);
  });
  s.run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace tfr
