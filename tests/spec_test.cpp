// Unit tests for the history recorder and the Wing-Gong linearizability
// checker, against hand-constructed histories with known verdicts.

#include <gtest/gtest.h>

#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/spec/history.hpp"
#include "tfr/spec/linearizability.hpp"

namespace tfr::spec {
namespace {

Operation op(int thread, const char* name, std::int64_t arg,
             std::int64_t result, std::int64_t from, std::int64_t to) {
  return Operation{thread, name, arg, result, from, to};
}

TEST(History, RecordsAndCompletes) {
  History h;
  const auto a = h.invoke(0, "add", 5, 10);
  const auto b = h.invoke(1, "get", 0, 12);
  h.respond(a, 5, 20);
  EXPECT_EQ(h.size(), 2u);
  const auto done = h.completed();
  ASSERT_EQ(done.size(), 1u);  // b never responded
  EXPECT_EQ(done[0].op, "add");
  EXPECT_EQ(done[0].result, 5);
  EXPECT_EQ(done[0].invoked_at, 10);
  EXPECT_EQ(done[0].responded_at, 20);
  (void)b;
}

TEST(History, RejectsDoubleResponse) {
  History h;
  const auto a = h.invoke(0, "x", 0, 0);
  h.respond(a, 0, 1);
  EXPECT_THROW(h.respond(a, 0, 2), ContractViolation);
}

TEST(History, RejectsResponseBeforeInvoke) {
  History h;
  const auto a = h.invoke(0, "x", 0, 10);
  EXPECT_THROW(h.respond(a, 0, 5), ContractViolation);
}

TEST(Linearizability, EmptyHistoryIsLinearizable) {
  const auto verdict = check_linearizable({}, CounterModel{});
  EXPECT_TRUE(verdict.linearizable);
}

TEST(Linearizability, SequentialCounterOk) {
  std::vector<Operation> h{
      op(0, "add", 1, 1, 0, 10),
      op(0, "add", 2, 3, 20, 30),
      op(0, "get", 0, 3, 40, 50),
  };
  EXPECT_TRUE(check_linearizable(h, CounterModel{}).linearizable);
}

TEST(Linearizability, SequentialCounterWrongResult) {
  std::vector<Operation> h{
      op(0, "add", 1, 1, 0, 10),
      op(0, "get", 0, 99, 20, 30),
  };
  EXPECT_FALSE(check_linearizable(h, CounterModel{}).linearizable);
}

TEST(Linearizability, ConcurrentOpsMayReorder) {
  // get overlaps the add: may linearize before (0) — here it returned 0.
  std::vector<Operation> h{
      op(0, "add", 5, 5, 0, 100),
      op(1, "get", 0, 0, 10, 20),
  };
  EXPECT_TRUE(check_linearizable(h, CounterModel{}).linearizable);
}

TEST(Linearizability, RealTimeOrderIsRespected) {
  // get strictly AFTER the add completed must see 5; it saw 0.
  std::vector<Operation> h{
      op(0, "add", 5, 5, 0, 10),
      op(1, "get", 0, 0, 20, 30),
  };
  EXPECT_FALSE(check_linearizable(h, CounterModel{}).linearizable);
}

TEST(Linearizability, TasExactlyOneWinnerOk) {
  std::vector<Operation> h{
      op(0, "tas", 0, 0, 0, 50),
      op(1, "tas", 0, 1, 10, 60),
      op(2, "tas", 0, 1, 20, 70),
  };
  EXPECT_TRUE(check_linearizable(h, TasModel{}).linearizable);
}

TEST(Linearizability, TasTwoWinnersRejected) {
  std::vector<Operation> h{
      op(0, "tas", 0, 0, 0, 50),
      op(1, "tas", 0, 0, 10, 60),
  };
  EXPECT_FALSE(check_linearizable(h, TasModel{}).linearizable);
}

TEST(Linearizability, TasLateWinnerAfterLoserRejected) {
  // Loser (returned 1) completed before the winner was invoked: no legal
  // order exists (the bit must have been set by someone before the loser,
  // but the only other op started later).
  std::vector<Operation> h{
      op(0, "tas", 0, 1, 0, 10),
      op(1, "tas", 0, 0, 20, 30),
  };
  EXPECT_FALSE(check_linearizable(h, TasModel{}).linearizable);
}

TEST(Linearizability, QueueFifoOk) {
  std::vector<Operation> h{
      op(0, "enqueue", 1, 1, 0, 10),
      op(0, "enqueue", 2, 2, 20, 30),
      op(1, "dequeue", 0, 1, 40, 50),
      op(1, "dequeue", 0, 2, 60, 70),
  };
  EXPECT_TRUE(check_linearizable(h, QueueModel{}).linearizable);
}

TEST(Linearizability, QueueLifoRejected) {
  std::vector<Operation> h{
      op(0, "enqueue", 1, 1, 0, 10),
      op(0, "enqueue", 2, 2, 20, 30),
      op(1, "dequeue", 0, 2, 40, 50),  // LIFO order: illegal for a queue
      op(1, "dequeue", 0, 1, 60, 70),
  };
  EXPECT_FALSE(check_linearizable(h, QueueModel{}).linearizable);
}

TEST(Linearizability, QueueConcurrentEnqueuesEitherOrder) {
  // The two enqueues overlap; the recorded results (enqueue(2) saw size 1,
  // enqueue(1) saw size 2) force the order e2 < e1, and the dequeues agree.
  std::vector<Operation> h{
      op(0, "enqueue", 1, 2, 0, 100),
      op(1, "enqueue", 2, 1, 0, 100),
      op(2, "dequeue", 0, 2, 200, 210),
      op(2, "dequeue", 0, 1, 220, 230),
  };
  EXPECT_TRUE(check_linearizable(h, QueueModel{}).linearizable);
}

TEST(Linearizability, DequeueEmptyRule) {
  std::vector<Operation> h{
      op(0, "dequeue", 0, -1, 0, 10),
      op(0, "enqueue", 7, 1, 20, 30),
      op(0, "dequeue", 0, 7, 40, 50),
  };
  EXPECT_TRUE(check_linearizable(h, QueueModel{}).linearizable);
}

TEST(Linearizability, RegisterReadMustSeeLatestWrite) {
  std::vector<Operation> h{
      op(0, "write", 1, 1, 0, 10),
      op(1, "write", 2, 2, 20, 30),
      op(2, "read", 0, 1, 40, 50),  // stale read after write(2) completed
  };
  EXPECT_FALSE(check_linearizable(h, RegisterModel{}).linearizable);
}

TEST(Linearizability, RegisterConcurrentWriteReadOk) {
  std::vector<Operation> h{
      op(0, "write", 1, 1, 0, 10),
      op(1, "write", 2, 2, 20, 60),
      op(2, "read", 0, 1, 30, 40),  // overlaps write(2): may precede it
  };
  EXPECT_TRUE(check_linearizable(h, RegisterModel{}).linearizable);
}

TEST(Linearizability, WitnessOrderIsValid) {
  std::vector<Operation> h{
      op(0, "add", 5, 5, 0, 100),
      op(1, "get", 0, 0, 10, 20),
  };
  const auto verdict = check_linearizable(h, CounterModel{});
  ASSERT_TRUE(verdict.linearizable);
  ASSERT_EQ(verdict.witness.size(), 2u);
  // The witness must place the get (index 1) before the add (index 0).
  EXPECT_EQ(verdict.witness.front(), 1u);
}

TEST(Linearizability, LargerHistoryStaysTractable) {
  // 3 threads x 4 sequential counter ops with full overlap freedom across
  // threads: exercises the memoized search.
  std::vector<Operation> h;
  std::int64_t per_thread_total[3] = {0, 0, 0};
  for (int t = 0; t < 3; ++t) {
    for (int k = 0; k < 4; ++k) {
      // Give every op the same wide window so all interleavings are live.
      per_thread_total[t] += 1;
      h.push_back(op(t, "add", 1, 0, k * 10, k * 10 + 1000));
    }
  }
  // Results must be *some* permutation-consistent values; use a simple
  // sequential-consistent assignment: thread t's i-th add returns
  // 3*i + t + 1 (round-robin order t0,t1,t2,t0,...).
  for (int t = 0; t < 3; ++t) {
    for (int k = 0; k < 4; ++k) {
      h[static_cast<std::size_t>(t * 4 + k)].result = 3 * k + t + 1;
    }
  }
  const auto verdict = check_linearizable(h, CounterModel{});
  EXPECT_TRUE(verdict.linearizable);
  EXPECT_GT(verdict.states_explored, 0u);
}

}  // namespace
}  // namespace tfr::spec
