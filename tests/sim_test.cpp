// Tests for the simulator substrate: event ordering, timing semantics,
// failure injection, crashes, registers, tasks, monitors, determinism.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/sim/monitor.hpp"
#include "tfr/sim/register.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/task.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::sim {
namespace {

struct Cell {
  Register<int> reg;
  explicit Cell(RegisterSpace& space, int init = 0) : reg(space, init) {}
};

Process writer_process(Env env, Register<int>& reg, int value, int times) {
  for (int i = 0; i < times; ++i) co_await env.write(reg, value + i);
}

TEST(Simulation, AccessTakesConfiguredTime) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 5, 3); });
  EXPECT_EQ(s.run(), Simulation::RunResult::Idle);
  EXPECT_EQ(s.now(), 30);  // three accesses, 10 ticks each
  EXPECT_EQ(c.reg.peek(), 7);
  EXPECT_EQ(s.stats(0).writes, 3u);
  EXPECT_EQ(s.stats(0).done_at, 30);
}

Process delayer(Env env, Duration d) {
  co_await env.delay(d);
}

TEST(Simulation, DelayTakesExactlyD) {
  Simulation s(make_fixed_timing(10));
  s.spawn([&](Env env) { return delayer(env, 123); });
  s.run();
  EXPECT_EQ(s.now(), 123);
  EXPECT_EQ(s.stats(0).delays, 1u);
  EXPECT_EQ(s.stats(0).delay_time, 123);
}

TEST(Simulation, StartTimeOffsetsFirstStep) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 1, 1); },
          /*start=*/100);
  s.run();
  EXPECT_EQ(s.now(), 110);
}

TEST(Simulation, TimeLimitPausesAndResumes) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 0, 10); });
  EXPECT_EQ(s.run(45), Simulation::RunResult::TimeLimit);
  EXPECT_EQ(s.stats(0).writes, 4u);
  EXPECT_EQ(s.run(), Simulation::RunResult::Idle);
  EXPECT_EQ(s.stats(0).writes, 10u);
}

TEST(Simulation, StopPredicate) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 0, 100); });
  const auto result =
      s.run(kTimeNever, [&] { return s.stats(0).writes >= 5; });
  EXPECT_EQ(result, Simulation::RunResult::Stopped);
  EXPECT_EQ(s.stats(0).writes, 5u);
}

Process reader_then_writer(Env env, Register<int>& a, Register<int>& b) {
  const int v = co_await env.read(a);
  co_await env.write(b, v + 1);
}

TEST(Simulation, ValuesFlowBetweenProcesses) {
  Simulation s(make_fixed_timing(10));
  Cell a(s.space(), 41), b(s.space());
  s.spawn([&](Env env) { return reader_then_writer(env, a.reg, b.reg); });
  s.run();
  EXPECT_EQ(b.reg.peek(), 42);
  EXPECT_EQ(s.stats(0).reads, 1u);
}

TEST(Simulation, InterleavingRespectsEventTimes) {
  // Fast process (cost 1) completes all writes before slow (cost 100)
  // does its first: the final value must be the slow one's.
  Simulation s(std::make_unique<PerProcessTiming>(
      std::vector<Duration>{1, 100}, 50));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 10, 3); });
  s.spawn([&](Env env) { return writer_process(env, c.reg, 99, 1); });
  s.run();
  EXPECT_EQ(c.reg.peek(), 99);
}

TEST(Simulation, DeterministicTraceForSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulation s(make_uniform_timing(1, 100), {.seed = seed, .trace = true});
    Cell c(s.space());
    for (int p = 0; p < 4; ++p)
      s.spawn([&](Env env) { return writer_process(env, c.reg, p, 50); });
    s.run();
    return s.trace_hash();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Simulation, CrashAtDropsLaterAccesses) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 0, 10); });
  s.crash_at(0, 35);  // accesses at 40.. never linearize
  s.run();
  EXPECT_EQ(s.stats(0).writes, 3u);
  EXPECT_TRUE(s.stats(0).crashed);
  EXPECT_TRUE(s.all_done());
}

TEST(Simulation, CrashAfterAccessesExactCount) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 0, 10); });
  s.crash_after_accesses(0, 4);
  s.run();
  EXPECT_EQ(s.stats(0).writes, 4u);
  EXPECT_TRUE(s.stats(0).crashed);
}

TEST(Simulation, CrashedProcessDoesNotBlockOthers) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 0, 10); });
  s.spawn([&](Env env) { return writer_process(env, c.reg, 100, 5); });
  s.crash_at(0, 5);
  s.run();
  EXPECT_TRUE(s.stats(0).crashed);
  EXPECT_TRUE(s.stats(1).done());
  EXPECT_EQ(s.stats(1).writes, 5u);
}

Process thrower(Env env, Register<int>& reg) {
  co_await env.write(reg, 1);
  TFR_REQUIRE(!"boom");
}

TEST(Simulation, ExceptionsPropagateToRun) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return thrower(env, c.reg); });
  EXPECT_THROW(s.run(), ContractViolation);
}

// --- Task composition ------------------------------------------------------

Task<int> add_task(Env env, Register<int>& reg, int amount) {
  const int v = co_await env.read(reg);
  co_await env.write(reg, v + amount);
  co_return v + amount;
}

Task<int> double_add(Env env, Register<int>& reg, int amount) {
  const int first = co_await add_task(env, reg, amount);
  const int second = co_await add_task(env, reg, amount);
  co_return first + second;
}

Process task_user(Env env, Register<int>& reg, int* out) {
  *out = co_await double_add(env, reg, 10);
}

TEST(Task, NestedTasksComposeAndReturnValues) {
  Simulation s(make_fixed_timing(5));
  Cell c(s.space());
  int out = 0;
  s.spawn([&](Env env) { return task_user(env, c.reg, &out); });
  s.run();
  EXPECT_EQ(c.reg.peek(), 20);
  EXPECT_EQ(out, 30);         // 10 + 20
  EXPECT_EQ(s.now(), 20);     // 4 accesses at 5 ticks
}

Task<int> failing_task(Env env, Register<int>& reg) {
  co_await env.read(reg);
  TFR_REQUIRE(!"task failure");
  co_return 0;
}

Process catching_process(Env env, Register<int>& reg, bool* caught) {
  try {
    co_await failing_task(env, reg);
  } catch (const ContractViolation&) {
    *caught = true;
  }
}

TEST(Task, ExceptionsPropagateThroughCoAwait) {
  Simulation s(make_fixed_timing(5));
  Cell c(s.space());
  bool caught = false;
  s.spawn([&](Env env) { return catching_process(env, c.reg, &caught); });
  s.run();
  EXPECT_TRUE(caught);
}

// --- Registers -------------------------------------------------------------

TEST(Registers, SpaceCountsAllocations) {
  RegisterSpace space;
  EXPECT_EQ(space.allocated(), 0u);
  Register<int> a(space, 0), b(space, 1);
  EXPECT_EQ(space.allocated(), 2u);
  RegisterArray<int> arr(space, 0, "arr");
  EXPECT_EQ(space.allocated(), 2u);  // arrays allocate lazily
  arr.at(4);
  EXPECT_EQ(space.allocated(), 7u);  // indices 0..4
  EXPECT_EQ(arr.size(), 5u);
}

TEST(Registers, ArrayCellsAreStable) {
  RegisterSpace space;
  RegisterArray<int> arr(space, -1);
  Register<int>* first = &arr.at(0);
  arr.at(1000);
  EXPECT_EQ(first, &arr.at(0));  // deque storage: no relocation
  EXPECT_EQ(arr.at(999).peek(), -1);
}

TEST(Registers, AccessCountsViaSimulation) {
  Simulation s(make_fixed_timing(1));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 0, 4); });
  s.run();
  EXPECT_EQ(c.reg.writes(), 4u);
  EXPECT_EQ(s.space().total_writes(), 4u);
}

// --- Timing models ---------------------------------------------------------

TEST(Timing, FixedAlwaysSame) {
  FixedTiming t(42);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.access_cost(0, i, rng), 42);
}

TEST(Timing, UniformWithinBoundsAndVaries) {
  UniformTiming t(5, 50);
  Rng rng(1);
  bool varied = false;
  Duration first = t.access_cost(0, 0, rng);
  for (int i = 0; i < 200; ++i) {
    const Duration c = t.access_cost(0, i, rng);
    EXPECT_GE(c, 5);
    EXPECT_LE(c, 50);
    varied |= (c != first);
  }
  EXPECT_TRUE(varied);
}

TEST(Timing, ScriptedThenFallback) {
  ScriptedTiming t(make_fixed_timing(7));
  t.push(1, 100);
  t.push(1, 200);
  Rng rng(1);
  EXPECT_EQ(t.access_cost(1, 0, rng), 100);
  EXPECT_EQ(t.access_cost(1, 0, rng), 200);
  EXPECT_EQ(t.access_cost(1, 0, rng), 7);   // script exhausted
  EXPECT_EQ(t.access_cost(0, 0, rng), 7);   // other pid unscripted
}

TEST(Timing, FailureWindowStretchesVictims) {
  auto injector =
      std::make_unique<FailureInjector>(make_fixed_timing(10), 10);
  injector->add_window({.begin = 100, .end = 200, .victims = {1},
                        .stretched = 500});
  Rng rng(1);
  EXPECT_EQ(injector->access_cost(1, 50, rng), 10);   // before window
  EXPECT_EQ(injector->access_cost(1, 150, rng), 500); // inside window
  EXPECT_EQ(injector->access_cost(0, 150, rng), 10);  // not a victim
  EXPECT_EQ(injector->access_cost(1, 200, rng), 10);  // window closed
  EXPECT_EQ(injector->failures_injected(), 1u);
  EXPECT_EQ(injector->last_failure_completion(), 650);
}

TEST(Timing, FailureWindowEmptyVictimsMeansEveryone) {
  auto injector =
      std::make_unique<FailureInjector>(make_fixed_timing(10), 10);
  injector->add_window({.begin = 0, .end = 100, .stretched = 99});
  Rng rng(1);
  EXPECT_EQ(injector->access_cost(3, 50, rng), 99);
}

TEST(Timing, RandomFailuresRoughlyMatchRate) {
  auto injector =
      std::make_unique<FailureInjector>(make_fixed_timing(10), 10);
  injector->set_random_failures(0.2, 100);
  Rng rng(1);
  int failures = 0;
  for (int i = 0; i < 10000; ++i)
    failures += (injector->access_cost(0, i, rng) > 10);
  EXPECT_NEAR(failures / 10000.0, 0.2, 0.02);
}

TEST(Timing, InjectedCostMustExceedDelta) {
  auto injector =
      std::make_unique<FailureInjector>(make_fixed_timing(10), 10);
  EXPECT_THROW(
      injector->add_window({.begin = 0, .end = 1, .stretched = 10}),
      ContractViolation);
}

// --- Monitors ---------------------------------------------------------------

TEST(MutexMonitor, DetectsViolation) {
  MutexMonitor mon;
  mon.throw_on_violation(false);
  mon.enter_entry(0, 0);
  mon.enter_entry(1, 1);
  mon.enter_cs(0, 2);
  mon.enter_cs(1, 3);  // overlap!
  EXPECT_EQ(mon.mutual_exclusion_violations(), 1u);
  EXPECT_FALSE(mon.mutual_exclusion_holds());
}

TEST(MutexMonitor, ThrowsWhenConfigured) {
  MutexMonitor mon;
  mon.enter_entry(0, 0);
  mon.enter_entry(1, 0);
  mon.enter_cs(0, 1);
  EXPECT_THROW(mon.enter_cs(1, 2), ContractViolation);
}

TEST(MutexMonitor, TimeComplexityMeasuresEntryWhileEmpty) {
  MutexMonitor mon;
  mon.enter_entry(0, 100);   // CS empty, entry busy from 100
  mon.enter_cs(0, 160);      // interval [100, 160): length 60
  mon.enter_entry(1, 170);   // CS occupied: no starved interval
  mon.exit_cs(0, 200);       // now 1 waits with CS empty from 200
  mon.enter_cs(1, 220);      // interval [200, 220): length 20
  mon.exit_cs(1, 230);
  EXPECT_EQ(mon.time_complexity(), 60);
  EXPECT_EQ(mon.time_complexity(150), 20);  // only intervals starting >= 150
  EXPECT_EQ(mon.cs_entries(), 2u);
}

TEST(MutexMonitor, TracksWaits) {
  MutexMonitor mon;
  mon.enter_entry(0, 0);
  mon.enter_cs(0, 50);
  mon.exit_cs(0, 60);
  mon.leave_exit(0, 61);
  mon.enter_entry(0, 100);
  mon.enter_cs(0, 110);
  EXPECT_EQ(mon.max_wait(0), 50);
  EXPECT_EQ(mon.max_wait(), 50);
  EXPECT_EQ(mon.max_wait_starting_at(90), 10);
  EXPECT_EQ(mon.cs_entries(0), 2u);
}

TEST(DecisionMonitor, AgreementAndValidity) {
  DecisionMonitor mon;
  mon.set_input(0, 1);
  mon.set_input(1, 0);
  mon.on_decide(0, 1, 10);
  mon.on_decide(1, 1, 20);
  EXPECT_TRUE(mon.agreement_holds());
  EXPECT_TRUE(mon.validity_holds());
  EXPECT_TRUE(mon.all_decided(2));
  EXPECT_EQ(mon.first_decision_time(), 10);
  EXPECT_EQ(mon.last_decision_time(), 20);
  EXPECT_EQ(mon.decision(1), 1);
}

TEST(DecisionMonitor, FlagsConflictingDecisions) {
  DecisionMonitor mon;
  mon.throw_on_violation(false);
  mon.set_input(0, 0);
  mon.set_input(1, 1);
  mon.on_decide(0, 0, 1);
  mon.on_decide(1, 1, 2);
  EXPECT_FALSE(mon.agreement_holds());
}

TEST(DecisionMonitor, FlagsInventedValues) {
  DecisionMonitor mon;
  mon.throw_on_violation(false);
  mon.set_input(0, 0);
  mon.on_decide(0, 7, 1);
  EXPECT_FALSE(mon.validity_holds());
}


TEST(Simulation, ScheduledCallbacksRunAtTheirInstant) {
  Simulation s(make_fixed_timing(10));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 5, 3); });
  std::vector<std::pair<Time, int>> fired;
  s.schedule_callback(15, [&] { fired.emplace_back(s.now(), 1); });
  s.schedule_callback(15, [&] { fired.emplace_back(s.now(), 2); });
  s.schedule_callback(5, [&] {
    // Callbacks may schedule further callbacks (fault-schedule chaining).
    s.schedule_callback(25, [&] { fired.emplace_back(s.now(), 3); });
    fired.emplace_back(s.now(), 0);
  });
  EXPECT_EQ(s.run(), Simulation::RunResult::Idle);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], (std::pair<Time, int>{5, 0}));
  EXPECT_EQ(fired[1], (std::pair<Time, int>{15, 1}));  // same-instant order
  EXPECT_EQ(fired[2], (std::pair<Time, int>{15, 2}));  // = scheduling order
  EXPECT_EQ(fired[3], (std::pair<Time, int>{25, 3}));
  EXPECT_EQ(c.reg.peek(), 7);  // the processes were not disturbed
}

TEST(Simulation, ScheduledCallbackInThePastIsRejected) {
  Simulation s(make_fixed_timing(1));
  Cell c(s.space());
  s.spawn([&](Env env) { return writer_process(env, c.reg, 1, 3); });
  EXPECT_EQ(s.run(), Simulation::RunResult::Idle);
  EXPECT_EQ(s.now(), 3);
  EXPECT_THROW(s.schedule_callback(1, [] {}), ContractViolation);
}

}  // namespace
}  // namespace tfr::sim
