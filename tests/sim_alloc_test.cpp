// Steady-state allocation regression for the Simulation::reset() fast
// path.  mcheck re-executes one scenario hundreds of thousands of times;
// the whole point of reset() (vs. reconstructing the Simulation) is that
// event-queue storage, per-process stat vectors, the linearization trace
// buffer and the strategy scratch vectors are *reused*.  This test counts
// global operator new calls per reset+rerun iteration: after a warm-up
// run every iteration must allocate exactly the same (small) amount — the
// unavoidable per-spawn coroutine frames — or someone reintroduced
// per-event churn.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_calls{0};

}  // namespace

// Counting overrides for the whole test binary.  Deliberately minimal:
// route through malloc/free and count calls; gtest's own allocations are
// outside the measured windows.
void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tfr {
namespace {

sim::Process ping_pong(sim::Env env, sim::Register<int>& mine,
                       sim::Register<int>& theirs, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const int seen = co_await env.read(theirs);
    co_await env.write(mine, seen + 1);
    co_await env.delay(1);
  }
}

/// One reset+rerun iteration; returns how many operator new calls it made.
std::uint64_t run_iteration(sim::Simulation& simulation) {
  const std::uint64_t before =
      g_alloc_calls.load(std::memory_order_relaxed);
  simulation.reset(1);
  sim::Register<int> a(simulation.space(), 0, "a");
  sim::Register<int> b(simulation.space(), 0, "b");
  simulation.spawn(
      [&](sim::Env env) { return ping_pong(env, a, b, /*rounds=*/8); });
  simulation.spawn(
      [&](sim::Env env) { return ping_pong(env, b, a, /*rounds=*/8); });
  EXPECT_EQ(simulation.run(), sim::Simulation::RunResult::Idle);
  return g_alloc_calls.load(std::memory_order_relaxed) - before;
}

// FIFO tie-breaks (no strategy): the default event loop must reach an
// allocation steady state — the only per-iteration allocations are the
// two coroutine frames the scenario itself spawns.
TEST(SimAllocRegression, ResetReachesSteadyState) {
  sim::Simulation simulation(std::make_unique<sim::FixedTiming>(1),
                             sim::SimulationOptions{.seed = 1, .trace = true});
  const std::uint64_t warmup = run_iteration(simulation);
  const std::uint64_t steady = run_iteration(simulation);
  EXPECT_LE(steady, warmup);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run_iteration(simulation), steady) << "iteration " << i;
  }
  // Two spawns → two coroutine frames; a small slack tolerates frame-size
  // bookkeeping differences across compilers, but per-event or per-step
  // churn (dozens of events per run) would blow well past it.
  EXPECT_LE(steady, 8u);
}

/// Strategy that always picks the first enabled option — enough to force
/// the event loop through the strategy-driven path (pop_next_event and
/// its scratch vectors) instead of the FIFO fast path.
class PickFirst final : public sim::SchedulerStrategy {
 public:
  std::size_t pick(sim::Time,
                   const std::vector<sim::EnabledEvent>&) override {
    return 0;
  }
};

// Strategy-driven tie-breaks (the mcheck replay loop): the per-pick
// ready/options scratch must be pooled, not rebuilt — same steady-state
// requirement as the FIFO path.
TEST(SimAllocRegression, StrategyPathReachesSteadyState) {
  PickFirst strategy;
  sim::SimulationOptions options;
  options.seed = 1;
  options.strategy = &strategy;
  sim::Simulation simulation(std::make_unique<sim::FixedTiming>(1), options);
  const std::uint64_t warmup = run_iteration(simulation);
  const std::uint64_t steady = run_iteration(simulation);
  EXPECT_LE(steady, warmup);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run_iteration(simulation), steady) << "iteration " << i;
  }
  EXPECT_LE(steady, 8u);
}

}  // namespace
}  // namespace tfr
