// Steady-state allocation regression for the Simulation::reset() fast
// path.  mcheck re-executes one scenario hundreds of thousands of times;
// the whole point of reset() (vs. reconstructing the Simulation) is that
// event-queue storage, per-process stat vectors, the linearization trace
// buffer and the strategy scratch vectors are *reused*.  This test counts
// global operator new calls per reset+rerun iteration: after a warm-up
// run every iteration must allocate exactly the same (small) amount — the
// unavoidable per-spawn coroutine frames — or someone reintroduced
// per-event churn.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "tfr/adapt/controller.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/network.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_calls{0};

}  // namespace

// Counting overrides for the whole test binary.  Deliberately minimal:
// route through malloc/free and count calls; gtest's own allocations are
// outside the measured windows.
void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tfr {
namespace {

sim::Process ping_pong(sim::Env env, sim::Register<int>& mine,
                       sim::Register<int>& theirs, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const int seen = co_await env.read(theirs);
    co_await env.write(mine, seen + 1);
    co_await env.delay(1);
  }
}

/// One reset+rerun iteration; returns how many operator new calls it made.
std::uint64_t run_iteration(sim::Simulation& simulation) {
  const std::uint64_t before =
      g_alloc_calls.load(std::memory_order_relaxed);
  simulation.reset(1);
  sim::Register<int> a(simulation.space(), 0, "a");
  sim::Register<int> b(simulation.space(), 0, "b");
  simulation.spawn(
      [&](sim::Env env) { return ping_pong(env, a, b, /*rounds=*/8); });
  simulation.spawn(
      [&](sim::Env env) { return ping_pong(env, b, a, /*rounds=*/8); });
  EXPECT_EQ(simulation.run(), sim::Simulation::RunResult::Idle);
  return g_alloc_calls.load(std::memory_order_relaxed) - before;
}

// FIFO tie-breaks (no strategy): the default event loop must reach an
// allocation steady state — the only per-iteration allocations are the
// two coroutine frames the scenario itself spawns.
TEST(SimAllocRegression, ResetReachesSteadyState) {
  sim::Simulation simulation(std::make_unique<sim::FixedTiming>(1),
                             sim::SimulationOptions{.seed = 1, .trace = true});
  const std::uint64_t warmup = run_iteration(simulation);
  const std::uint64_t steady = run_iteration(simulation);
  EXPECT_LE(steady, warmup);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run_iteration(simulation), steady) << "iteration " << i;
  }
  // Two spawns → two coroutine frames; a small slack tolerates frame-size
  // bookkeeping differences across compilers, but per-event or per-step
  // churn (dozens of events per run) would blow well past it.
  EXPECT_LE(steady, 8u);
}

/// Strategy that always picks the first enabled option — enough to force
/// the event loop through the strategy-driven path (pop_next_event and
/// its scratch vectors) instead of the FIFO fast path.
class PickFirst final : public sim::SchedulerStrategy {
 public:
  std::size_t pick(sim::Time,
                   const std::vector<sim::EnabledEvent>&) override {
    return 0;
  }
};

// Strategy-driven tie-breaks (the mcheck replay loop): the per-pick
// ready/options scratch must be pooled, not rebuilt — same steady-state
// requirement as the FIFO path.
TEST(SimAllocRegression, StrategyPathReachesSteadyState) {
  PickFirst strategy;
  sim::SimulationOptions options;
  options.seed = 1;
  options.strategy = &strategy;
  sim::Simulation simulation(std::make_unique<sim::FixedTiming>(1), options);
  const std::uint64_t warmup = run_iteration(simulation);
  const std::uint64_t steady = run_iteration(simulation);
  EXPECT_LE(steady, warmup);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run_iteration(simulation), steady) << "iteration " << i;
  }
  EXPECT_LE(steady, 8u);
}

// --- ABD phase scratch: per-op allocations reach a steady state --------------

/// Runs `ops` write+read pairs on one per-peer fast-read client, recording
/// the operator-new call count after each op into `per_op` (pre-reserved:
/// the measurement itself must not allocate inside the window).
sim::Process abd_alloc_probe(sim::Env env, msg::AbdClient& client, int ops,
                             std::vector<std::uint64_t>& per_op, int* done) {
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t before =
        g_alloc_calls.load(std::memory_order_relaxed);
    co_await client.write(env, /*reg=*/1, i);
    co_await client.read(env, 1);
    per_op.push_back(g_alloc_calls.load(std::memory_order_relaxed) - before);
  }
  *done = 1;
}

// The quorum loop's ack-dedup array, the per-peer window order statistic
// and the late-ack ring are all client-owned reusable scratch: after the
// warm-up ops (which size the scratch, fill the estimator's channel rings
// and grow the network queues) the per-op allocation count must be flat —
// only the unavoidable coroutine frames — with zero cumulative growth.
TEST(SimAllocRegression, AbdPhasesReachSteadyStatePerOperation) {
  sim::Simulation simulation(std::make_unique<sim::FixedTiming>(1),
                             sim::SimulationOptions{.seed = 5});
  const int n = 3;
  msg::Network net(simulation.space(), 2 * n);
  adapt::TimelinessEstimator estimator({.initial = 8,
                                        .floor = 1,
                                        .ceiling = 4096,
                                        .window = 8,
                                        .quantile = 1.0,
                                        .headroom = 2.0,
                                        .grow_factor = 2.0,
                                        .decay_step = 1,
                                        .clean_threshold = 2});
  msg::RetryPolicy policy;
  policy.timeout = 64;
  policy.max_timeout = 4096;
  policy.poll_every = 4;
  policy.timeout_per_delta = 2.0;
  msg::AbdClient client(net, 0, n, policy);
  client.set_delta_controller(&estimator);
  client.set_variant(msg::RegisterVariant::kPerPeerFastRead);
  constexpr int kOps = 16;
  std::vector<std::uint64_t> per_op;
  per_op.reserve(kOps);
  int done = 0;
  simulation.spawn([&](sim::Env env) {
    return abd_alloc_probe(env, client, kOps, per_op, &done);
  });
  for (int i = 1; i < n; ++i) {
    simulation.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  for (int i = 0; i < n; ++i) {
    simulation.spawn(
        [&net, i, n](sim::Env env) { return msg::abd_server(env, net, i, n); });
  }
  simulation.run(10'000'000, [&] { return done == 1; });
  ASSERT_EQ(done, 1);
  ASSERT_EQ(per_op.size(), static_cast<std::size_t>(kOps));
  // After warm-up (op 0 sizes the scratch, fills channel rings and grows
  // the network queues) the per-op count is coroutine frames only, in a
  // band whose width is one protocol-shape difference: a read that misses
  // the fast path adds its write-back round's frames, nothing else may
  // vary.  Cumulative growth (per-phase vectors, unbounded maps) would
  // widen the band or lift its floor across the run.
  std::uint64_t lo = per_op[2], hi = per_op[2];
  for (int i = 2; i < kOps; ++i) {
    lo = std::min(lo, per_op[static_cast<std::size_t>(i)]);
    hi = std::max(hi, per_op[static_cast<std::size_t>(i)]);
  }
  EXPECT_LE(hi - lo, 8u) << "per-phase allocation crept back in";
  EXPECT_LE(hi, per_op[0]) << "warm-up should dominate steady state";
  // No drift: the last ops must still sit in the same band as the first
  // steady ones (a growing structure would push the tail upward).
  EXPECT_EQ(per_op[kOps - 1], per_op[kOps - 2]);
  EXPECT_GE(per_op[kOps - 1], lo);
  EXPECT_LE(per_op[kOps - 1], hi);
}

// Eviction bounds the estimator's channel map: a service folding
// thousands of transient pids into channels must not grow it without
// bound, and the recurring channel's history must survive the sweeps.
TEST(SimAllocRegression, EstimatorEvictionBoundsTheChannelMap) {
  adapt::TimelinessEstimator est({.initial = 4,
                                  .floor = 1,
                                  .ceiling = 1024,
                                  .window = 8,
                                  .quantile = 1.0,
                                  .headroom = 2.0,
                                  .grow_factor = 2.0,
                                  .decay_step = 1,
                                  .clean_threshold = 2,
                                  .evict_after_windows = 1});
  for (int pid = 0; pid < 10'000; ++pid) {
    est.observe(/*channel=*/100 + pid, 5);  // transient: one sample, gone
    est.observe(/*channel=*/0, 7);          // recurring: always fresh
  }
  // Horizon = 1 window = 8 observations; sweeps run every 8 observations,
  // so at most ~2 windows of transient channels are resident at once.
  EXPECT_LE(est.channels(), 18u);
  EXPECT_GT(est.evictions(), 9'900u);
  EXPECT_EQ(est.channel_quantile(0), 7);  // the recurring channel survived
  EXPECT_EQ(est.current(), 14);
}

}  // namespace
}  // namespace tfr
