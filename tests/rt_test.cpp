// Real-thread tests: atomic register substrate, consensus (Algorithm 1),
// the mutex family, and the derived objects, all on std::thread with
// wall-clock optimistic(Delta) and preemption-style fault injection.
//
// The host may have a single core, so thread counts stay small and spin
// loops yield; timing assertions are shape-level only (safety assertions
// are exact).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/core/consensus_rt.hpp"
#include "tfr/derived/derived_rt.hpp"
#include "tfr/mutex/lock_adapters.hpp"
#include "tfr/mutex/mutex_rt.hpp"
#include "tfr/registers/atomic_register.hpp"
#include "tfr/registers/fault_injector.hpp"
#include "tfr/registers/register_array.hpp"
#include "tfr/spec/history.hpp"
#include "tfr/spec/linearizability.hpp"

namespace tfr::rt {
namespace {

constexpr Nanos kDelta{200'000};  // 200 us: generous for CI machines

// --- Registers ---------------------------------------------------------------

TEST(RtRegisters, AtomicRegisterBasics) {
  AtomicRegister<int> r(7);
  EXPECT_EQ(r.read(), 7);
  r.write(42);
  EXPECT_EQ(r.read(), 42);
  EXPECT_TRUE(r.is_lock_free());
}

TEST(RtRegisters, ArrayInitialValueAndGrowth) {
  RegisterArray<int> arr(-1);
  EXPECT_EQ(arr.at(0).read(), -1);
  EXPECT_EQ(arr.at(5000).read(), -1);  // second segment
  arr.at(5000).write(9);
  EXPECT_EQ(arr.at(5000).read(), 9);
  EXPECT_EQ(arr.segments_allocated(), 2u);
}

TEST(RtRegisters, PeekDoesNotAllocate) {
  RegisterArray<int> arr(-1);
  EXPECT_EQ(arr.peek(123456, -1), -1);
  EXPECT_EQ(arr.segments_allocated(), 0u);
  arr.at(0).write(5);
  EXPECT_EQ(arr.peek(0, -1), 5);
}

TEST(RtRegisters, ConcurrentGrowthPublishesOneSegment) {
  RegisterArray<std::int64_t> arr(0);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&arr, &ready] {
      ready.fetch_add(1);
      while (ready.load() < 4) std::this_thread::yield();
      for (std::size_t i = 0; i < 4096; ++i) arr.at(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arr.segments_allocated(), 4u);  // 4096 / 1024, no duplicates
}

TEST(RtRegisters, SmallArrayVariantRespectsCaps) {
  RegisterArray<int, 16, 4> arr(0);
  arr.at(63).write(1);
  EXPECT_EQ(arr.segments_allocated(), 1u);
  EXPECT_THROW(arr.at(64), ContractViolation);
}

// --- Fault injector ------------------------------------------------------------

TEST(RtFaults, TargetedVisitFires) {
  FaultInjector faults;
  faults.configure("p", {.stall = Nanos{1000}, .always_on_visit = 3});
  EXPECT_FALSE(faults.maybe_stall("p"));
  EXPECT_FALSE(faults.maybe_stall("p"));
  EXPECT_TRUE(faults.maybe_stall("p"));
  EXPECT_FALSE(faults.maybe_stall("p"));
  EXPECT_EQ(faults.stalls(), 1u);
}

TEST(RtFaults, UnknownPointIsNoop) {
  FaultInjector faults;
  EXPECT_FALSE(faults.maybe_stall("never-configured"));
  EXPECT_FALSE(maybe_stall(nullptr, "anything"));
}

// --- Consensus -------------------------------------------------------------------

TEST(RtConsensusTest, SoloFastPath) {
  RtConsensus consensus({.delta = kDelta});
  const auto result = consensus.propose(1);
  EXPECT_EQ(result.value, 1);
  EXPECT_EQ(result.steps, 7u);
  EXPECT_EQ(result.delays, 0u);
}

TEST(RtConsensusTest, AgreementAcrossThreadsRepeated) {
  for (int round = 0; round < 30; ++round) {
    RtConsensus consensus({.delta = Nanos{2000}});
    const int n = 4;
    std::vector<int> decided(n, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&consensus, &decided, i] {
        decided[static_cast<std::size_t>(i)] =
            consensus.propose_value(i % 2);
      });
    }
    for (auto& t : threads) t.join();
    for (int v : decided) {
      EXPECT_EQ(v, decided[0]) << "round " << round;
      EXPECT_TRUE(v == 0 || v == 1);
    }
  }
}

TEST(RtConsensusTest, SafeWithTinyOptimisticDelta) {
  // delta = 0: every contended round is a "timing failure"; safety must
  // hold and termination still arrives (threads eventually align).
  for (int round = 0; round < 20; ++round) {
    RtConsensus consensus({.delta = Nanos{0}});
    std::vector<int> decided(3, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&consensus, &decided, i] {
        decided[static_cast<std::size_t>(i)] = consensus.propose_value(i % 2);
      });
    }
    for (auto& t : threads) t.join();
    for (int v : decided) EXPECT_EQ(v, decided[0]) << "round " << round;
  }
}

TEST(RtConsensusTest, InjectedStallsCannotBreakAgreement) {
  for (int round = 0; round < 10; ++round) {
    FaultInjector faults(round);
    faults.configure("consensus.after_flag",
                     {.probability = 0.3, .stall = 5 * kDelta});
    faults.configure("consensus.after_read_y",
                     {.probability = 0.3, .stall = 5 * kDelta});
    RtConsensus consensus({.delta = Nanos{1000}, .faults = &faults});
    std::vector<int> decided(3, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&consensus, &decided, i] {
        decided[static_cast<std::size_t>(i)] = consensus.propose_value(i % 2);
      });
    }
    for (auto& t : threads) t.join();
    for (int v : decided) EXPECT_EQ(v, decided[0]) << "round " << round;
  }
}

// --- Mutexes ----------------------------------------------------------------------

TEST(RtMutexTest, TfrMutexExcludesAndCompletes) {
  auto mutex = make_tfr_mutex_rt(3, kDelta);
  const auto result = run_rt_mutex_workload(
      *mutex, {.threads = 3, .sessions = 60, .cs_time = Nanos{2000},
               .ncs_time = Nanos{1000}});
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.cs_entries, 180u);
}

// Parameters chosen for single-core hosts too: the injected stall (30 ms)
// dwarfs a scheduler quantum, so while a stalled thread spins in the gate
// the other one runs, passes the gate, and is eventually preempted *inside*
// its 5 ms critical section — at which point the stalled thread resumes,
// finds x unchanged since its (pre-stall) read, and walks in.
constexpr RtWorkloadConfig kPreemptionWorkload{
    .threads = 2,
    .sessions = 30,
    .cs_time = Nanos{5'000'000},
    .ncs_time = Nanos{0},
};
constexpr Nanos kPreemptionDelta{20'000};
constexpr Nanos kPreemptionStall{30'000'000};

TEST(RtMutexTest, FischerViolatesUnderInjectedPreemption) {
  FaultInjector faults(7);
  faults.configure("fischer.gate",
                   {.probability = 0.2, .stall = kPreemptionStall});
  FischerRt fischer(kPreemptionDelta, &faults);
  const auto result = run_rt_mutex_workload(fischer, kPreemptionWorkload);
  EXPECT_GT(faults.stalls(), 0u);
  EXPECT_GT(result.violations, 0u);
}

TEST(RtMutexTest, TfrMutexSurvivesInjectedPreemption) {
  FaultInjector faults(7);
  faults.configure("fischer.gate",
                   {.probability = 0.2, .stall = kPreemptionStall});
  auto mutex = make_tfr_mutex_rt(2, kPreemptionDelta, &faults);
  const auto result = run_rt_mutex_workload(*mutex, kPreemptionWorkload);
  EXPECT_GT(faults.stalls(), 0u);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.cs_entries, 60u);
}

// 0-5: the paper's register algorithms; 6-8: the shootout reference locks
// (futex-class AtomicMutex, std::mutex, yield-spin TAS).
class RtMutexMatrix : public ::testing::TestWithParam<int> {
 public:
  static constexpr int kFischer = 0;
  static constexpr int kSpinYield = 8;

  static std::unique_ptr<RtMutex> make(int algo, int n, Nanos delta = kDelta) {
    switch (algo) {
      case 0: return std::make_unique<FischerRt>(delta);
      case 1: return std::make_unique<LamportFastRt>(n);
      case 2: return std::make_unique<BakeryRt>(n);
      case 3: return std::make_unique<BlackWhiteBakeryRt>(n);
      case 4:
        return std::make_unique<StarvationFreeRt>(
            n, std::make_unique<LamportFastRt>(n));
      case 5: return make_tfr_mutex_rt(n, delta);
      case 6: return std::make_unique<AtomicMutexLock>();
      case 7: return std::make_unique<StdMutexLock>();
      default: return std::make_unique<SpinYieldLock>();
    }
  }
};

TEST_P(RtMutexMatrix, MutualExclusionHolds) {
  const int n = 3;
  auto mutex = make(GetParam(), n);
  const auto result = run_rt_mutex_workload(
      *mutex, {.threads = n, .sessions = 50, .cs_time = Nanos{1000},
               .ncs_time = Nanos{500}});
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.cs_entries, static_cast<std::uint64_t>(n) * 50);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RtMutexMatrix,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

// Oversubscription stress: threads = 4× hardware cores, so on any host a
// majority of waiters cannot be running.  With the blocking substrate the
// run's CPU-time/wall-time ratio stays ~1 (waiters park, CS/NCS sleep);
// with the old yield-spins it approached min(threads, cores).  The ratio
// bound is relaxed under TSan, whose instrumentation inflates CPU time.

#if defined(__SANITIZE_THREAD__)
constexpr double kMaxCpuWallRatio = 3.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr double kMaxCpuWallRatio = 3.0;
#else
constexpr double kMaxCpuWallRatio = 1.5;
#endif
#else
constexpr double kMaxCpuWallRatio = 1.5;
#endif

class RtMutexOversubscribed : public RtMutexMatrix {};

TEST_P(RtMutexOversubscribed, BlocksExcludesAndProgresses) {
  const int cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int threads = 4 * cores;
  // Δ = 50 µs keeps the Fischer-filter delay cheap; it changes no ME
  // guarantee asserted below (Algorithm 3 excludes for any Δ).
  auto mutex = make(GetParam(), threads, Nanos{50'000});
  const auto result = run_rt_mutex_workload(
      *mutex, {.threads = threads, .sessions = 15, .cs_time = Nanos{200'000},
               .ncs_time = Nanos{200'000}});
  // Mutual exclusion — except bare Fischer, whose ME is *conditional* on
  // no step outlasting Δ (§3.1): oversubscription makes gate preemptions
  // real, which is the very failure mode the tfr construction absorbs.
  if (GetParam() != kFischer) {
    EXPECT_EQ(result.violations, 0u);
  }
  EXPECT_EQ(result.cs_entries,  // progress: every session completed
            static_cast<std::uint64_t>(threads) * 15);
  // Bounded waiting: no single acquisition outlasted the whole run, and
  // the p99 is consistent with it.
  EXPECT_LT(result.max_wait.count(),
            static_cast<std::int64_t>(result.wall_seconds * 1e9) + 1);
  EXPECT_LE(result.p99_wait.count(), result.max_wait.count());
  // The core-burning detector: waiters block instead of spinning.  The
  // yield-spin reference is exempt — burning is its documented behaviour.
  if (GetParam() != kSpinYield) {
    EXPECT_LT(result.cpu_wall_ratio(), kMaxCpuWallRatio)
        << "cpu=" << result.cpu_seconds << "s wall=" << result.wall_seconds
        << "s";
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RtMutexOversubscribed,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

// --- Derived objects -----------------------------------------------------------------

TEST(RtDerived, MultiValueAgreement) {
  for (int round = 0; round < 10; ++round) {
    RtMultiConsensus mc({.delta = Nanos{2000}, .bits = 31});
    const std::vector<std::int64_t> inputs{1000001, 999, 31337};
    std::vector<std::int64_t> out(inputs.size(), -1);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      threads.emplace_back([&mc, &out, &inputs, i] {
        out[i] = mc.propose(inputs[i]);
      });
    }
    for (auto& t : threads) t.join();
    for (auto v : out) {
      EXPECT_EQ(v, out[0]) << "round " << round;
      EXPECT_TRUE(std::count(inputs.begin(), inputs.end(), v) > 0);
    }
    EXPECT_EQ(mc.decided(), out[0]);
  }
}

TEST(RtDerived, ElectionSingleLeader) {
  for (int round = 0; round < 10; ++round) {
    RtElection election(Nanos{2000});
    std::vector<int> winner(4, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&election, &winner, i] {
        winner[static_cast<std::size_t>(i)] = election.elect(i);
      });
    }
    for (auto& t : threads) t.join();
    for (int w : winner) EXPECT_EQ(w, winner[0]);
    EXPECT_EQ(election.leader(), winner[0]);
  }
}

TEST(RtDerived, TestAndSetOneWinner) {
  for (int round = 0; round < 10; ++round) {
    RtTestAndSet tas(Nanos{2000});
    std::vector<int> got(4, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&tas, &got, i] {
        got[static_cast<std::size_t>(i)] = tas.test_and_set(i);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(std::count(got.begin(), got.end(), 0), 1) << "round " << round;
    EXPECT_EQ(std::count(got.begin(), got.end(), 1), 3) << "round " << round;
  }
}

TEST(RtDerived, RenamingUniqueTightNames) {
  for (int round = 0; round < 8; ++round) {
    const int n = 4;
    RtRenaming renaming(Nanos{2000}, n);
    std::vector<int> name(n, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&renaming, &name, i] {
        name[static_cast<std::size_t>(i)] = renaming.acquire(i);
      });
    }
    for (auto& t : threads) t.join();
    std::set<int> unique(name.begin(), name.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(n)) << "round " << round;
    for (int v : name) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

TEST(RtDerived, SetConsensusAtMostKValues) {
  for (int round = 0; round < 8; ++round) {
    const int n = 6;
    const int k = 2;
    RtSetConsensus sc(Nanos{2000}, k);
    std::vector<std::int64_t> out(n, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&sc, &out, i] {
        out[static_cast<std::size_t>(i)] = sc.propose(i, 100 + i);
      });
    }
    for (auto& t : threads) t.join();
    std::set<std::int64_t> decided(out.begin(), out.end());
    EXPECT_LE(decided.size(), static_cast<std::size_t>(k))
        << "round " << round;
    for (auto v : out) {
      EXPECT_GE(v, 100);
      EXPECT_LT(v, 100 + n);
    }
  }
}

TEST(RtDerived, LongLivedTasOneWinnerPerGeneration) {
  RtLongLivedTestAndSet tas(Nanos{2000}, 4);
  std::vector<int> got(4, -1);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&tas, &got, i] {
      got[static_cast<std::size_t>(i)] = tas.test_and_set(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(std::count(got.begin(), got.end(), 0), 1);
  EXPECT_EQ(std::count(got.begin(), got.end(), 1), 3);
}

TEST(RtDerived, LongLivedTasWorksAsLock) {
  const int n = 3;
  const int sessions = 20;
  RtLongLivedTestAndSet tas(Nanos{2000}, n);
  std::atomic<int> occupancy{0};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      for (int s = 0; s < sessions;) {
        if (tas.test_and_set(i) != 0) {
          std::this_thread::yield();
          continue;
        }
        if (occupancy.fetch_add(1) != 0) violations.fetch_add(1);
        spin_for(Nanos{500});
        occupancy.fetch_sub(1);
        tas.reset(i);
        ++s;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GE(tas.generations(), static_cast<std::size_t>(n * sessions));
}

TEST(RtDerived, LongLivedTasResetByNonWinnerRejected) {
  RtLongLivedTestAndSet tas(Nanos{1000}, 2);
  EXPECT_EQ(tas.test_and_set(0), 0);
  EXPECT_THROW(tas.reset(1), ContractViolation);
  tas.reset(0);  // the winner may
}

TEST(RtDerived, UniversalCounterLinearizable) {
  RtUniversal universal(Nanos{2000}, 3,
                        [] { return std::make_unique<derived::CounterReplica>(); });
  spec::History history;
  const auto t0 = std::chrono::steady_clock::now();
  const auto now_ns = [&t0] {
    return std::chrono::duration_cast<Nanos>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      for (int k = 0; k < 3; ++k) {
        const auto token = history.invoke(i, "add", 1, now_ns());
        const auto r =
            universal.invoke(i, derived::CounterReplica::kAdd, 1);
        history.respond(token, r, now_ns());
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto ops = history.completed();
  ASSERT_EQ(ops.size(), 9u);
  const auto verdict = spec::check_linearizable(ops, spec::CounterModel{});
  EXPECT_TRUE(verdict.linearizable);
  EXPECT_EQ(universal.log_length(), 9u);
}

TEST(RtDerived, UniversalQueueSemantics) {
  RtUniversal universal(Nanos{2000}, 2,
                        [] { return std::make_unique<derived::QueueReplica>(); });
  // Thread 0 enqueues 1..5; thread 1 dequeues until it has five values.
  std::vector<std::int64_t> dequeued;
  std::thread producer([&universal] {
    for (int v = 1; v <= 5; ++v)
      universal.invoke(0, derived::QueueReplica::kEnqueue, v);
  });
  std::thread consumer([&universal, &dequeued] {
    while (dequeued.size() < 5) {
      const auto v = universal.invoke(1, derived::QueueReplica::kDequeue, 0);
      if (v >= 0) {
        dequeued.push_back(v);
      } else {
        // Empty: yield rather than burning log slots in a tight loop.
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(dequeued, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace tfr::rt
