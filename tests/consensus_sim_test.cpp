// Tests for Algorithm 1 (time-resilient consensus), simulator edition:
// every claim of Theorems 2.1-2.4 plus property sweeps over schedules,
// inputs, failure patterns and crash patterns.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::core {
namespace {

using sim::Duration;
using sim::FailureInjector;
using sim::make_fixed_timing;
using sim::make_uniform_timing;

constexpr Duration kDelta = 100;

std::vector<int> split_inputs(std::size_t n) {
  std::vector<int> inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<int>(i % 2);
  return inputs;
}

// --- Theorem 2.2 (validity) -------------------------------------------------

TEST(Consensus, ValidityAllZeros) {
  const auto out = run_consensus({0, 0, 0}, kDelta, make_fixed_timing(kDelta));
  EXPECT_TRUE(out.all_decided);
  EXPECT_EQ(out.value, 0);
}

TEST(Consensus, ValidityAllOnes) {
  const auto out = run_consensus({1, 1, 1, 1}, kDelta, make_fixed_timing(kDelta));
  EXPECT_TRUE(out.all_decided);
  EXPECT_EQ(out.value, 1);
}

TEST(Consensus, SplitInputsDecideSomeInput) {
  const auto out =
      run_consensus(split_inputs(6), kDelta, make_uniform_timing(1, kDelta), 3);
  EXPECT_TRUE(out.all_decided);
  EXPECT_TRUE(out.value == 0 || out.value == 1);
}

// --- Theorem 2.1, bullet 1: decide within 15 Delta without failures ---------

TEST(Consensus, DecidesWithin15DeltaLockstep) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 16u, 32u}) {
    const auto out =
        run_consensus(split_inputs(n), kDelta, make_fixed_timing(kDelta));
    EXPECT_TRUE(out.all_decided) << "n=" << n;
    EXPECT_LE(out.last_decision, 15 * kDelta) << "n=" << n;
  }
}

TEST(Consensus, DecidesWithin15DeltaRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto out = run_consensus(split_inputs(5), kDelta,
                                   make_uniform_timing(1, kDelta), seed);
    ASSERT_TRUE(out.all_decided) << "seed=" << seed;
    EXPECT_LE(out.last_decision, 15 * kDelta) << "seed=" << seed;
  }
}

// --- Theorem 2.1, bullet 4: fast path = 7 steps, no delay --------------------

TEST(Consensus, SoloProcessDecidesInExactly7Steps) {
  for (int input : {0, 1}) {
    const auto out = run_consensus({input}, kDelta, make_fixed_timing(kDelta));
    EXPECT_TRUE(out.all_decided);
    EXPECT_EQ(out.value, input);
    EXPECT_EQ(out.steps[0], 7u);
    EXPECT_EQ(out.delays[0], 0u);
  }
}

TEST(Consensus, FastPathHoldsEvenDuringTimingFailures) {
  // "regardless of timing failures": a contention-free process still takes
  // exactly 7 steps when every one of its accesses outlasts Delta.
  const auto out = run_consensus({1}, kDelta, make_fixed_timing(50 * kDelta));
  EXPECT_TRUE(out.all_decided);
  EXPECT_EQ(out.steps[0], 7u);
  EXPECT_EQ(out.delays[0], 0u);
}

TEST(Consensus, SequentialArrivalsAlsoFast) {
  // A process arriving after the decision reads `decide` set and needs just
  // one step.
  sim::Simulation s(make_fixed_timing(kDelta));
  SimConsensus consensus(s.space(), kDelta);
  consensus.monitor().set_input(0, 1);
  consensus.monitor().set_input(1, 0);
  s.spawn([&](sim::Env env) { return consensus.participant(env, 1); });
  s.spawn([&](sim::Env env) { return consensus.participant(env, 0); },
          /*start=*/2000);  // well after the first decided
  s.run();
  EXPECT_TRUE(consensus.monitor().all_decided(2));
  EXPECT_EQ(consensus.decided_value(), 1);
  EXPECT_EQ(s.stats(1).accesses(), 1u);  // one read of decide
}

// --- Theorem 2.3 (agreement) under adversarial timing ------------------------

TEST(Consensus, AgreementHoldsUnderRandomFailures) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    auto injector = std::make_unique<FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    injector->set_random_failures(0.25, 12 * kDelta);
    const auto out = run_consensus(split_inputs(4), kDelta,
                                   std::move(injector), seed, 4'000'000);
    // Liveness may be delayed arbitrarily by failures (bounded run), but
    // whatever was decided must satisfy agreement & validity — enforced by
    // the monitor (throws on violation), so reaching here means safety held.
    if (out.all_decided) {
      EXPECT_TRUE(out.value == 0 || out.value == 1);
    }
  }
}

TEST(Consensus, AgreementHoldsUnderTargetedWindows) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto injector = std::make_unique<FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    // One victim process is stretched through the whole first ten rounds.
    injector->add_window(
        {.begin = 0, .end = 70 * kDelta, .victims = {0}, .stretched = 9 * kDelta});
    const auto out = run_consensus(split_inputs(3), kDelta,
                                   std::move(injector), seed, 4'000'000);
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
  }
}

// --- Theorem 2.1, bullet 2: decide by end of round r+1 after failures stop ---

TEST(Consensus, ConvergesOneRoundAfterFailuresStop) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const sim::Time failure_end = 23 * kDelta;
    auto injector = std::make_unique<FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    injector->add_window(
        {.begin = 0, .end = failure_end, .stretched = 3 * kDelta});
    auto* injector_ptr = injector.get();

    sim::Simulation s(std::move(injector), {.seed = seed});
    SimConsensus consensus(s.space(), kDelta);
    const auto inputs = split_inputs(4);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
      s.spawn([&, input = inputs[i]](sim::Env env) {
        return consensus.participant(env, input);
      });
    }
    // Run until the last failed access has completed, snapshot the round.
    s.run(failure_end + 3 * kDelta);
    const std::size_t round_at_stop = consensus.max_round();
    s.run();
    ASSERT_TRUE(consensus.monitor().all_decided(inputs.size()));
    // Theorem 2.1 promises decisions by round r + 1 when no failures occur
    // from the *beginning* of round r.  Our snapshot is taken mid-round
    // (the instant the last stretched access completes), which can bleed
    // one poisoned round into the count — hence the r + 2 bound here.  The
    // exact distribution is reported by bench E3.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_LE(consensus.decision_round(static_cast<sim::Pid>(i)),
                round_at_stop + 2)
          << "seed=" << seed;
    }
    EXPECT_GE(injector_ptr->failures_injected(), 1u);
  }
}

// --- Theorem 2.4 (wait-freedom) ----------------------------------------------

TEST(Consensus, DecidesDespiteCrashes) {
  for (std::size_t crashes = 1; crashes < 4; ++crashes) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
      SimConsensus consensus(s.space(), kDelta);
      const auto inputs = split_inputs(4);
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        consensus.monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
        s.spawn([&, input = inputs[i]](sim::Env env) {
          return consensus.participant(env, input);
        });
      }
      // Crash the first `crashes` processes at staggered step counts.
      for (std::size_t c = 0; c < crashes; ++c)
        s.crash_after_accesses(static_cast<sim::Pid>(c), 2 + c + seed % 3);
      s.run(4'000'000);
      // All survivors decide.
      for (std::size_t i = crashes; i < inputs.size(); ++i) {
        EXPECT_TRUE(consensus.monitor().has_decided(static_cast<sim::Pid>(i)))
            << "crashes=" << crashes << " seed=" << seed << " pid=" << i;
      }
    }
  }
}

TEST(Consensus, LoneSurvivorDecides) {
  sim::Simulation s(make_fixed_timing(kDelta));
  SimConsensus consensus(s.space(), kDelta);
  for (int i = 0; i < 5; ++i) {
    consensus.monitor().set_input(i, i % 2);
    s.spawn([&, input = i % 2](sim::Env env) {
      return consensus.participant(env, input);
    });
  }
  for (int i = 0; i < 4; ++i) s.crash_after_accesses(i, 3);
  s.run();
  EXPECT_TRUE(consensus.monitor().has_decided(4));
}

// --- Theorem 2.1, bullet 5: unbounded participation --------------------------

TEST(Consensus, ManyParticipants) {
  const auto out = run_consensus(split_inputs(128), kDelta,
                                 make_uniform_timing(1, kDelta), 5);
  EXPECT_TRUE(out.all_decided);
  EXPECT_LE(out.last_decision, 15 * kDelta);
}

TEST(Consensus, LateArrivalsJoinFreely) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 11});
  SimConsensus consensus(s.space(), kDelta);
  for (int i = 0; i < 10; ++i) {
    consensus.monitor().set_input(i, i % 2);
    s.spawn(
        [&, input = i % 2](sim::Env env) {
          return consensus.participant(env, input);
        },
        /*start=*/static_cast<sim::Time>(i) * 40);
  }
  s.run();
  EXPECT_TRUE(consensus.monitor().all_decided(10));
}

// --- Resource accounting ------------------------------------------------------

TEST(Consensus, FailureFreeRunsUseConstantRegisters) {
  // Two rounds worst case without failures: x0/x1/y for rounds 0..1 plus
  // decide = at most 7 registers.
  const auto out =
      run_consensus(split_inputs(8), kDelta, make_fixed_timing(kDelta));
  EXPECT_LE(out.registers_allocated, 7u);
  EXPECT_LE(out.max_round, 1u);
}

TEST(Consensus, RegistersGrowOnlyWithRounds) {
  auto injector = std::make_unique<FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(0.3, 10 * kDelta);
  const auto out = run_consensus(split_inputs(4), kDelta, std::move(injector),
                                 17, 4'000'000);
  // 3 registers per allocated round + decide; rounds tracked 0-based.
  EXPECT_LE(out.registers_allocated, 3 * (out.max_round + 2) + 1);
}

// --- Optimistic Delta ----------------------------------------------------------

TEST(Consensus, SafeWithTooSmallDelta) {
  // Algorithm assumes Delta = 10 but real steps take up to 100: permanent
  // timing failures.  Safety must hold; progress arrives eventually under
  // random (non-adversarial) timing.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto out = run_consensus(split_inputs(4), /*algorithm_delta=*/10,
                                   make_uniform_timing(1, 100), seed,
                                   10'000'000);
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
    EXPECT_TRUE(out.value == 0 || out.value == 1);
  }
}

TEST(Consensus, OverestimatedDeltaStillCorrectJustSlower) {
  const auto out = run_consensus(split_inputs(4), /*algorithm_delta=*/5000,
                                 make_uniform_timing(1, 100), 3);
  EXPECT_TRUE(out.all_decided);
  EXPECT_LE(out.max_round, 2u);
}

// --- Property sweep: (n, schedule, failure rate) matrix -----------------------

class ConsensusSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConsensusSweep, SafetyAndTermination) {
  const int n = std::get<0>(GetParam());
  const int schedule = std::get<1>(GetParam());      // 0 sync, 1 random
  const int failure_pct = std::get<2>(GetParam());   // 0, 10, 30

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::unique_ptr<sim::TimingModel> timing =
        schedule == 0 ? make_fixed_timing(kDelta)
                      : make_uniform_timing(1, kDelta);
    if (failure_pct > 0) {
      auto injector =
          std::make_unique<FailureInjector>(std::move(timing), kDelta);
      injector->set_random_failures(failure_pct / 100.0, 8 * kDelta);
      timing = std::move(injector);
    }
    const auto out =
        run_consensus(split_inputs(static_cast<std::size_t>(n)), kDelta,
                      std::move(timing), seed, 8'000'000);
    ASSERT_TRUE(out.all_decided)
        << "n=" << n << " schedule=" << schedule << " fail%=" << failure_pct
        << " seed=" << seed;
    EXPECT_TRUE(out.value == 0 || out.value == 1);
    if (failure_pct == 0) {
      EXPECT_LE(out.last_decision, 15 * kDelta);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConsensusSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 9, 17),
                       ::testing::Values(0, 1),
                       ::testing::Values(0, 10, 30)));

}  // namespace
}  // namespace tfr::core
