// Tests for the benchkit experiment harness: the JSON value/parser/emitter
// (golden dumps and round trips), the Recorder, the experiment registry
// (lookup by id and tier selection), glob matching, and the baseline diff
// verdicts (pass / warn / fail / missing / new / ungated).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "tfr/benchkit/baseline.hpp"
#include "tfr/benchkit/json.hpp"
#include "tfr/benchkit/recorder.hpp"
#include "tfr/benchkit/registry.hpp"

namespace tfr::benchkit {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, GoldenDump) {
  Json doc = Json::object();
  doc.set("schema", "tfr-bench-v1");
  doc.set("count", 3);
  doc.set("ratio", 2.5);
  doc.set("ok", true);
  doc.set("none", Json());
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc.set("items", arr);
  Json inner = Json::object();
  inner.set("name", "decide_time.worst");
  doc.set("inner", inner);

  const std::string expected =
      "{\n"
      "  \"schema\": \"tfr-bench-v1\",\n"
      "  \"count\": 3,\n"
      "  \"ratio\": 2.5,\n"
      "  \"ok\": true,\n"
      "  \"none\": null,\n"
      "  \"items\": [\n"
      "    1,\n"
      "    \"two\"\n"
      "  ],\n"
      "  \"inner\": {\n"
      "    \"name\": \"decide_time.worst\"\n"
      "  }\n"
      "}";
  EXPECT_EQ(doc.dump(), expected);
}

TEST(Json, DumpIsByteStableAcrossRoundTrips) {
  Json doc = Json::object();
  doc.set("b", 1);
  doc.set("a", 2);  // insertion order, not sorted
  Json arr = Json::array();
  arr.push_back(0.125);
  arr.push_back(-7);
  doc.set("xs", arr);
  const std::string once = doc.dump();
  const std::string twice = Json::parse(once).dump();
  EXPECT_EQ(once, twice);
}

TEST(Json, ParsesStandardDocument) {
  const Json doc = Json::parse(
      R"({"name": "E1", "pass": true, "vals": [1, 2.5, -3e2], )"
      R"("nested": {"x": null}, "s": "a\"b\\c\n"})");
  EXPECT_EQ(doc.find("name")->str(), "E1");
  EXPECT_TRUE(doc.find("pass")->bool_or(false));
  ASSERT_EQ(doc.find("vals")->size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("vals")->items()[2].number_or(0), -300.0);
  EXPECT_TRUE(doc.find("nested")->find("x")->is_null());
  EXPECT_EQ(doc.find("s")->str(), "a\"b\\c\n");
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\": 1} extra"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("true").str(), std::runtime_error);
}

TEST(Json, SetReplacesExistingKeyInPlace) {
  Json doc = Json::object();
  doc.set("a", 1);
  doc.set("b", 2);
  doc.set("a", 3);
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "a");
  EXPECT_DOUBLE_EQ(doc.find("a")->number_or(0), 3.0);
}

// ------------------------------------------------------------ Recorder --

TEST(Recorder, CollectsExpectsMetricsAndText) {
  Recorder rec;
  rec.out() << "table line\n";
  rec.expect(true, "shape holds");
  rec.expect(false, "shape broken");
  rec.metric("decide_time.worst", 14, "delta");
  rec.metric("rounds.worst", 2);

  EXPECT_EQ(rec.failures(), 1);
  ASSERT_EQ(rec.expects().size(), 2u);
  EXPECT_TRUE(rec.expects()[0].pass);
  EXPECT_FALSE(rec.expects()[1].pass);
  ASSERT_EQ(rec.metrics().size(), 2u);
  EXPECT_EQ(rec.metrics()[0].unit, "delta");
  EXPECT_EQ(rec.metrics()[1].unit, "");

  const std::string text = rec.text();
  EXPECT_NE(text.find("table line"), std::string::npos);
  EXPECT_NE(text.find("EXPECT shape holds: PASS"), std::string::npos);
  EXPECT_NE(text.find("EXPECT shape broken: FAIL"), std::string::npos);
  EXPECT_NE(text.find("METRIC decide_time.worst"), std::string::npos);
}

TEST(Recorder, ToJsonCarriesTheSchemaFragment) {
  Recorder rec;
  rec.expect(true, "ok");
  rec.metric("m", 1.5, "x");
  const Json j = rec.to_json(/*include_text=*/false);
  ASSERT_NE(j.find("expects"), nullptr);
  ASSERT_NE(j.find("metrics"), nullptr);
  EXPECT_EQ(j.find("text"), nullptr);
  const Json& metric = j.find("metrics")->items()[0];
  EXPECT_EQ(metric.find("name")->str(), "m");
  EXPECT_DOUBLE_EQ(metric.find("value")->number_or(0), 1.5);
  EXPECT_EQ(metric.find("unit")->str(), "x");
}

// ------------------------------------------------------------ Registry --

// Register two fake experiments well clear of the real E1..E18 range.
TFR_BENCH_EXPERIMENT(E97, "test claim", Tier::kSmoke, "fake smoke") {
  rec.expect(true, "always");
}
TFR_BENCH_EXPERIMENT(E98, "test claim", Tier::kFull, "fake full") {
  rec.metric("nothing", 0);
}

TEST(Registry, FindsById) {
  const Experiment* e = Registry::instance().find("E97");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->title, "fake smoke");
  EXPECT_EQ(e->claim, "test claim");
  EXPECT_EQ(e->tier, Tier::kSmoke);
  EXPECT_EQ(Registry::instance().find("E999"), nullptr);
}

TEST(Registry, TierSelectionAndOrdering) {
  const auto smoke = Registry::instance().select(Tier::kSmoke);
  const auto full = Registry::instance().select(Tier::kFull);
  bool smoke_has_97 = false, smoke_has_98 = false;
  for (const auto* e : smoke) {
    smoke_has_97 |= (e->id == "E97");
    smoke_has_98 |= (e->id == "E98");
  }
  EXPECT_TRUE(smoke_has_97);
  EXPECT_FALSE(smoke_has_98) << "full-tier experiment leaked into smoke";
  bool full_has_98 = false;
  for (const auto* e : full) full_has_98 |= (e->id == "E98");
  EXPECT_TRUE(full_has_98) << "--tier full selects everything";
  // Numeric ordering: E97 before E98, and ids ascend numerically.
  int prev = 0;
  for (const auto* e : full) {
    const int num = std::stoi(e->id.substr(1));
    EXPECT_GT(num, prev) << "ids not in ascending numeric order";
    prev = num;
  }
}

TEST(Registry, RunningAnExperimentFillsItsRecorder) {
  const Experiment* e = Registry::instance().find("E97");
  ASSERT_NE(e, nullptr);
  Recorder rec;
  e->run(rec);
  EXPECT_EQ(rec.failures(), 0);
  EXPECT_EQ(rec.expects().size(), 1u);
}

// ------------------------------------------------------------ Baseline --

TEST(Baseline, GlobMatch) {
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("*.exec_per_sec", "E18.consensus.exec_per_sec"));
  EXPECT_FALSE(glob_match("*.exec_per_sec", "E18.consensus.executions"));
  EXPECT_TRUE(glob_match("E7.*", "E7.tfr.contended.worst"));
  EXPECT_FALSE(glob_match("E7.*", "E17.tfr.contended.worst"));
  EXPECT_TRUE(glob_match("E?.x", "E7.x"));
  EXPECT_FALSE(glob_match("E?.x", "E17.x"));
  EXPECT_TRUE(glob_match("a*b*c", "a__b__c"));
  EXPECT_FALSE(glob_match("a*b*c", "a__c"));
}

TEST(Baseline, FirstMatchingRuleWins) {
  std::vector<ToleranceRule> rules;
  rules.push_back({"E1.*", Tolerance{0.5, 0.0, true}});
  rules.push_back({"*", Tolerance{0.05, 1e-9, true}});
  EXPECT_DOUBLE_EQ(tolerance_for(rules, "E1.rounds").rel, 0.5);
  EXPECT_DOUBLE_EQ(tolerance_for(rules, "E2.rounds").rel, 0.05);
}

Json report_with_metric(const std::string& id, const std::string& name,
                        double value) {
  Json metric = Json::object();
  metric.set("name", name);
  metric.set("value", value);
  Json metrics = Json::array();
  metrics.push_back(metric);
  Json experiment = Json::object();
  experiment.set("id", id);
  experiment.set("metrics", metrics);
  Json experiments = Json::array();
  experiments.push_back(experiment);
  Json doc = Json::object();
  doc.set("experiments", experiments);
  return doc;
}

TEST(Baseline, DiffVerdicts) {
  const auto rules = default_tolerance_rules();  // "*" -> rel 5%
  const Json base = report_with_metric("E1", "m", 100.0);

  // Within the band: pass.
  {
    const auto r =
        diff_reports(base, report_with_metric("E1", "m", 104.0), rules);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.warnings, 0);
    ASSERT_EQ(r.entries.size(), 1u);
    EXPECT_EQ(r.entries[0].verdict, DiffVerdict::kPass);
  }
  // Between one and two bands: warn, still ok().
  {
    const auto r =
        diff_reports(base, report_with_metric("E1", "m", 108.0), rules);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.warnings, 1);
    EXPECT_EQ(r.entries[0].verdict, DiffVerdict::kWarn);
  }
  // Beyond two bands: fail.
  {
    const auto r =
        diff_reports(base, report_with_metric("E1", "m", 120.0), rules);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.failures, 1);
    EXPECT_EQ(r.entries[0].verdict, DiffVerdict::kFail);
  }
  // Metric lost from the current run of the same experiment: fail.
  {
    const auto r =
        diff_reports(base, report_with_metric("E1", "other", 1.0), rules);
    EXPECT_FALSE(r.ok());
    bool missing = false, is_new = false;
    for (const auto& e : r.entries) {
      missing |= (e.verdict == DiffVerdict::kMissing && e.key == "E1.m");
      is_new |= (e.verdict == DiffVerdict::kNew && e.key == "E1.other");
    }
    EXPECT_TRUE(missing);
    EXPECT_TRUE(is_new) << "new metrics are informational, not fatal";
  }
  // A whole experiment absent from the baseline is skipped entirely.
  {
    const auto r =
        diff_reports(base, report_with_metric("E2", "m", 9999.0), rules);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.entries.empty());
  }
}

TEST(Baseline, ExecPerSecIsUngatedByDefault) {
  const auto rules = default_tolerance_rules();
  const Json base = report_with_metric("E18", "consensus.exec_per_sec", 1e6);
  const auto r = diff_reports(
      base, report_with_metric("E18", "consensus.exec_per_sec", 5e6), rules);
  EXPECT_TRUE(r.ok()) << "wall-clock throughput must never gate";
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].verdict, DiffVerdict::kUngated);
}

TEST(Baseline, DocumentRulesPrecedeDefaults) {
  Json doc = report_with_metric("E1", "m", 100.0);
  Json rule = Json::object();
  rule.set("pattern", "E1.m");
  rule.set("rel", 0.5);
  rule.set("abs", 0.0);
  Json tolerances = Json::array();
  tolerances.push_back(rule);
  doc.set("tolerances", tolerances);

  const auto rules = tolerance_rules(doc);
  // 40% drift passes under the document's 50% band (defaults say 5%).
  const auto r = diff_reports(doc, report_with_metric("E1", "m", 140.0), rules);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.entries[0].verdict, DiffVerdict::kPass);
}

}  // namespace
}  // namespace tfr::benchkit
