// Tests for the unknown-bound (Alur-Attiya-Taubenfeld style) consensus
// baseline: correctness, and the estimate-doubling behaviour that E5
// contrasts against the paper's known-bound Algorithm 1.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tfr/baseline/unknown_bound_sim.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::baseline {
namespace {

using sim::Duration;
using sim::make_fixed_timing;
using sim::make_uniform_timing;

std::vector<int> split_inputs(std::size_t n) {
  std::vector<int> inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<int>(i % 2);
  return inputs;
}

TEST(UnknownBound, ValidityAndAgreement) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto out = run_unknown_bound_consensus(
        split_inputs(4), /*initial_estimate=*/1, make_uniform_timing(1, 100),
        seed, 10'000'000);
    ASSERT_TRUE(out.all_decided) << "seed=" << seed;
    EXPECT_TRUE(out.value == 0 || out.value == 1);
  }
}

TEST(UnknownBound, SoloProcessFastPath) {
  const auto out = run_unknown_bound_consensus({1}, 1, make_fixed_timing(100));
  EXPECT_TRUE(out.all_decided);
  EXPECT_EQ(out.value, 1);
  EXPECT_EQ(out.steps[0], 7u);  // same fast path as Algorithm 1
}

TEST(UnknownBound, RoundDelayDoubles) {
  sim::RegisterSpace space;
  SimUnknownBoundConsensus consensus(space, 3);
  EXPECT_EQ(consensus.round_delay(0), 3);
  EXPECT_EQ(consensus.round_delay(1), 6);
  EXPECT_EQ(consensus.round_delay(4), 48);
}

TEST(UnknownBound, RoundDelaySaturatesInsteadOfOverflowing) {
  sim::RegisterSpace space;
  SimUnknownBoundConsensus consensus(space, 1);
  EXPECT_EQ(consensus.round_delay(60), sim::Duration{1} << 40);
  EXPECT_EQ(consensus.round_delay(200), sim::Duration{1} << 40);
}

TEST(UnknownBound, TerminatesOnceEstimateReachesTrueBound) {
  // True bound 128, initial estimate 1: under a lockstep schedule the
  // protocol must decide deterministically once 2^r >= 128, i.e. within a
  // bounded number of rounds.
  const auto out = run_unknown_bound_consensus(
      split_inputs(3), 1, make_fixed_timing(128), 1, 1'000'000'000);
  ASSERT_TRUE(out.all_decided);
  EXPECT_LE(out.max_round, 9u);
}

TEST(UnknownBound, PaysMoreRoundsThanKnownBoundAlgorithm) {
  // The quantitative point of E5: with the true bound Delta known,
  // Algorithm 1 always finishes within two rounds when no step exceeds
  // Delta.  The unknown-bound algorithm's early rounds delay far less than
  // Delta, so a straggler's y-write regularly lands after the others'
  // post-delay reads — a round behaves as if a timing failure occurred —
  // and it burns extra rounds ramping its estimate.  (Lockstep schedules
  // hide the effect; a jittery schedule within the bound exposes it.)
  const Duration true_bound = 512;
  std::size_t known_total = 0;
  std::size_t unknown_total = 0;
  const std::uint64_t trials = 30;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const auto known =
        core::run_consensus(split_inputs(4), true_bound,
                            make_uniform_timing(1, true_bound), seed);
    const auto unknown = run_unknown_bound_consensus(
        split_inputs(4), 1, make_uniform_timing(1, true_bound), seed,
        1'000'000'000);
    ASSERT_TRUE(known.all_decided);
    ASSERT_TRUE(unknown.all_decided);
    EXPECT_LE(known.max_round, 1u) << "seed=" << seed;  // Theorem 2.1
    known_total += known.max_round;
    unknown_total += unknown.max_round;
  }
  EXPECT_GT(unknown_total, known_total);
}

}  // namespace
}  // namespace tfr::baseline
