// Tests for the message-passing substrate (§4 extension): SPSC channels,
// the ABD majority-quorum register emulation (atomicity, crash minority
// tolerance), and Algorithm 1 running over the emulated registers.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/consensus_msg.hpp"
#include "tfr/msg/election_msg.hpp"
#include "tfr/msg/network.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::msg {
namespace {

using sim::Duration;
using sim::make_fixed_timing;
using sim::make_uniform_timing;

constexpr Duration kDelta = 50;

std::unique_ptr<sim::TimingModel> faulty(double p, Duration stretch) {
  auto injector = std::make_unique<sim::FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(p, stretch);
  return injector;
}

// --- Channels -------------------------------------------------------------------

sim::Process chat_sender(sim::Env env, Network& net, int self, int to,
                         int count) {
  for (int k = 0; k < count; ++k) {
    Message m;
    m.type = 7;
    m.value = self * 1000 + k;
    co_await net.send(env, self, to, m);
    co_await env.delay(env.rng().uniform(0, 30));
  }
}

sim::Process chat_receiver(sim::Env env, Network& net, int self, int expect,
                           std::vector<std::int64_t>& got) {
  for (int k = 0; k < expect; ++k) {
    const Message m = co_await net.recv(env, self);
    got.push_back(m.value);
  }
}

TEST(Channels, PerSenderFifoAndNoLoss) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    Network net(s.space(), 3);
    std::vector<std::int64_t> got;
    s.spawn([&net, &got](sim::Env env) {
      return chat_receiver(env, net, 2, 10, got);
    });
    s.spawn([&net](sim::Env env) { return chat_sender(env, net, 0, 2, 5); });
    s.spawn([&net](sim::Env env) { return chat_sender(env, net, 1, 2, 5); });
    s.run(1'000'000);
    ASSERT_EQ(got.size(), 10u) << "seed=" << seed;
    // Per-sender FIFO: each sender's values appear in increasing order.
    std::int64_t last0 = -1, last1 = -1;
    for (auto v : got) {
      if (v < 1000) {
        EXPECT_GT(v, last0);
        last0 = v;
      } else {
        EXPECT_GT(v, last1);
        last1 = v;
      }
    }
  }
}

sim::Process try_recv_once(sim::Env env, Network& net, bool* empty_seen) {
  const auto m = co_await net.try_recv(env, 0);
  *empty_seen = !m.has_value();
}

TEST(Channels, TryRecvEmptyReturnsNothing) {
  sim::Simulation s(make_fixed_timing(5));
  Network net(s.space(), 2);
  bool empty_seen = false;
  s.spawn([&net, &empty_seen](sim::Env env) {
    return try_recv_once(env, net, &empty_seen);
  });
  s.run();
  EXPECT_TRUE(empty_seen);
}

// --- ABD registers ----------------------------------------------------------------

sim::Process abd_writer_reader(sim::Env env, Network& net, int node, int n,
                               std::vector<std::int64_t>& reads) {
  AbdClient client(net, node, n);
  co_await client.write(env, /*reg=*/1, 100 + node);
  const auto v = co_await client.read(env, 1);
  reads[static_cast<std::size_t>(node)] = v;
}

void spawn_servers(sim::Simulation& s, Network& net, int n) {
  // Endpoints: clients use [0, n), servers [n, 2n).  Spawn order must put
  // the server of node i at a KNOWN sim pid so tests can crash it; we
  // return nothing but keep the convention: clients first, then servers,
  // so server(i) has sim pid n + i when clients are spawned first.
  for (int i = 0; i < n; ++i) {
    s.spawn([&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
  }
}

TEST(Abd, WriteThenReadReturnsLatest) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    std::vector<std::int64_t> reads(n, -1);
    for (int i = 0; i < n; ++i) {
      s.spawn([&net, &reads, i, n](sim::Env env) {
        return abd_writer_reader(env, net, i, n, reads);
      });
    }
    spawn_servers(s, net, n);
    s.run(10'000'000, [&] {
      return std::all_of(reads.begin(), reads.end(),
                         [](std::int64_t v) { return v >= 0; });
    });
    for (int i = 0; i < n; ++i) {
      // Own read sees own write or a concurrent later one.
      EXPECT_GE(reads[static_cast<std::size_t>(i)], 100) << "seed=" << seed;
      EXPECT_LT(reads[static_cast<std::size_t>(i)], 100 + n);
    }
  }
}

sim::Process abd_single_op(sim::Env env, Network& net, int node, int n,
                           bool write_first, std::int64_t* out) {
  AbdClient client(net, node, n);
  if (write_first) {
    co_await client.write(env, 5, 42);
    *out = 1;
  } else {
    *out = co_await client.read(env, 5);
  }
}

TEST(Abd, ToleratesMinorityServerCrashes) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 3});
  const int n = 5;
  Network net(s.space(), 2 * n);
  std::int64_t wrote = 0, read_back = -1;
  s.spawn([&net, &wrote](sim::Env env) {
    return abd_single_op(env, net, 0, 5, true, &wrote);
  });
  s.spawn([&net, &read_back](sim::Env env) {
    return abd_single_op(env, net, 1, 5, false, &read_back);
  });
  // Fill client pid slots 2..4 with idle clients so servers start at pid 5.
  for (int i = 2; i < n; ++i) {
    s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  spawn_servers(s, net, n);
  // Crash two of five servers (pids n..2n-1 by spawn order) immediately.
  s.crash_at(5 + 3, 1);
  s.crash_at(5 + 4, 1);
  s.run(10'000'000, [&] { return wrote == 1 && read_back >= 0; });
  EXPECT_EQ(wrote, 1);
  // read may have linearized before or after the write: 0 (default) or 42.
  EXPECT_TRUE(read_back == 0 || read_back == 42) << read_back;
}

sim::Process abd_sequential_check(sim::Env env, Network& net, int n,
                                  bool* ok) {
  AbdClient client(net, 0, n);
  co_await client.write(env, 9, 7);
  const auto a = co_await client.read(env, 9);
  co_await client.write(env, 9, 8);
  const auto b = co_await client.read(env, 9);
  *ok = (a == 7 && b == 8);
}

TEST(Abd, SequentialSemanticsOnOneClient) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 1});
  const int n = 3;
  Network net(s.space(), 2 * n);
  bool ok = false;
  s.spawn([&net, &ok](sim::Env env) {
    return abd_sequential_check(env, net, 3, &ok);
  });
  for (int i = 1; i < n; ++i) {
    s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  spawn_servers(s, net, n);
  s.run(10'000'000, [&] { return ok; });
  EXPECT_TRUE(ok);
}

// --- Consensus over messages --------------------------------------------------------

struct MsgConsensusRun {
  bool all_decided = false;
  std::uint64_t violations = 0;
  sim::Time last_decision = -1;
};

MsgConsensusRun run_msg_consensus(int n, std::vector<int> inputs,
                                  std::unique_ptr<sim::TimingModel> timing,
                                  std::uint64_t seed, sim::Time limit,
                                  int crash_servers = 0) {
  sim::Simulation s(std::move(timing), {.seed = seed});
  Network net(s.space(), 2 * n);
  MsgConsensus consensus(net, n, 60 * kDelta);
  consensus.monitor().throw_on_violation(false);
  for (int i = 0; i < n; ++i) {
    consensus.monitor().set_input(i, inputs[static_cast<std::size_t>(i)]);
    s.spawn([&consensus, i, input = inputs[static_cast<std::size_t>(i)]](
                sim::Env env) { return consensus.participant(env, i, input); });
  }
  for (int i = 0; i < n; ++i) {
    s.spawn([&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
  }
  for (int c = 0; c < crash_servers; ++c) s.crash_at(n + c, 1);

  s.run(limit, [&] {
    return consensus.monitor().decided_count() ==
           static_cast<std::size_t>(n - crash_servers);
  });
  MsgConsensusRun result;
  result.all_decided = consensus.monitor().all_decided(
      static_cast<std::size_t>(n - crash_servers));
  result.violations = consensus.monitor().agreement_violations() +
                      consensus.monitor().validity_violations();
  result.last_decision = consensus.monitor().last_decision_time();
  return result;
}

TEST(MsgConsensusTest, AgreementAndTermination) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto out = run_msg_consensus(3, {0, 1, 0},
                                       make_uniform_timing(1, kDelta), seed,
                                       50'000'000);
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
    EXPECT_EQ(out.violations, 0u) << "seed=" << seed;
  }
}

TEST(MsgConsensusTest, SafeUnderMessageTimingFailures) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto out = run_msg_consensus(3, {1, 0, 1},
                                       faulty(0.05, 20 * kDelta), seed,
                                       400'000'000);
    EXPECT_EQ(out.violations, 0u) << "seed=" << seed;
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
  }
}

// --- Elections over messages ---------------------------------------------------

struct ElectionRun {
  std::size_t decided = 0;
  std::uint64_t violations = 0;
};

ElectionRun run_timed_election(int n, sim::Duration wait,
                               std::unique_ptr<sim::TimingModel> timing,
                               std::uint64_t seed) {
  sim::Simulation s(std::move(timing), {.seed = seed});
  Network net(s.space(), n);
  TimedElection election(net, n, wait);
  for (int i = 0; i < n; ++i) {
    s.spawn([&election, i](sim::Env env) {
      return election.participant(env, i);
    });
  }
  s.run(100'000'000);
  return ElectionRun{election.monitor().decided_count(),
                     election.monitor().agreement_violations()};
}

TEST(TimedElectionTest, CorrectWhenMessagesAreOnTime) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    // W covers the worst send chain: n multicast legs x 2 accesses x Delta
    // plus our own sending time.
    const auto out = run_timed_election(
        4, /*wait=*/20 * kDelta, make_uniform_timing(1, kDelta), seed);
    EXPECT_EQ(out.decided, 4u) << "seed=" << seed;
    EXPECT_EQ(out.violations, 0u) << "seed=" << seed;
  }
}

TEST(TimedElectionTest, LateMessagesSplitLeadership) {
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 0; seed < 60 && violations == 0; ++seed) {
    auto injector = std::make_unique<sim::FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    injector->set_random_failures(0.3, 100 * kDelta);
    violations +=
        run_timed_election(4, 20 * kDelta, std::move(injector), seed)
            .violations;
  }
  EXPECT_GT(violations, 0u)
      << "a late HELLO should have produced two leaders";
}

TEST(MsgElectionTest, SingleLeaderAlways) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    MsgElection election(net, n, 60 * kDelta);
    for (int i = 0; i < n; ++i) {
      s.spawn([&election, i](sim::Env env) {
        return election.participant(env, i);
      });
    }
    for (int i = 0; i < n; ++i) {
      s.spawn(
          [&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
    }
    s.run(1'000'000'000, [&] {
      return election.monitor().decided_count() == static_cast<std::size_t>(n);
    });
    EXPECT_TRUE(election.monitor().all_decided(n)) << "seed=" << seed;
    EXPECT_EQ(election.monitor().agreement_violations(), 0u)
        << "seed=" << seed;
  }
}

TEST(MsgElectionTest, SingleLeaderUnderLateMessages) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Simulation s(faulty(0.05, 20 * kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    MsgElection election(net, n, 60 * kDelta);
    for (int i = 0; i < n; ++i) {
      s.spawn([&election, i](sim::Env env) {
        return election.participant(env, i);
      });
    }
    for (int i = 0; i < n; ++i) {
      s.spawn(
          [&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
    }
    s.run(8'000'000'000, [&] {
      return election.monitor().decided_count() == static_cast<std::size_t>(n);
    });
    EXPECT_TRUE(election.monitor().all_decided(n)) << "seed=" << seed;
    EXPECT_EQ(election.monitor().agreement_violations(), 0u)
        << "seed=" << seed;
  }
}

// Property sweep: (n, failure%) matrix for message-passing consensus.
class MsgConsensusSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MsgConsensusSweep, SafetyAndTermination) {
  const int n = std::get<0>(GetParam());
  const int failure_pct = std::get<1>(GetParam());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    std::vector<int> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
    std::unique_ptr<sim::TimingModel> timing =
        make_uniform_timing(1, kDelta);
    if (failure_pct > 0) {
      auto injector = std::make_unique<sim::FailureInjector>(
          std::move(timing), kDelta);
      injector->set_random_failures(failure_pct / 100.0, 25 * kDelta);
      timing = std::move(injector);
    }
    const auto out = run_msg_consensus(n, inputs, std::move(timing), seed,
                                       4'000'000'000);
    EXPECT_TRUE(out.all_decided)
        << "n=" << n << " fail%=" << failure_pct << " seed=" << seed;
    EXPECT_EQ(out.violations, 0u)
        << "n=" << n << " fail%=" << failure_pct << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, MsgConsensusSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(0, 5, 15)));

TEST(MsgConsensusTest, SurvivesCrashOfOneNodeServerOfFive) {
  // Note: crashing a *server* endpoint removes that replica; a majority
  // (3 of 5... here 4 alive of 5) still answers, and the crashed node's
  // client is also counted out of the deciders.
  const auto out = run_msg_consensus(5, {0, 1, 0, 1, 1},
                                     make_uniform_timing(1, kDelta), 2,
                                     100'000'000, /*crash_servers=*/1);
  EXPECT_EQ(out.violations, 0u);
}

}  // namespace
}  // namespace tfr::msg
