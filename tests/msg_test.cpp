// Tests for the message-passing substrate (§4 extension): SPSC channels,
// the ABD majority-quorum register emulation (atomicity, crash minority
// tolerance), and Algorithm 1 running over the emulated registers.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/msg/abd.hpp"
#include "tfr/msg/adversary.hpp"
#include "tfr/msg/consensus_msg.hpp"
#include "tfr/msg/convergence.hpp"
#include "tfr/msg/election_msg.hpp"
#include "tfr/msg/network.hpp"
#include "tfr/obs/replay.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr::msg {
namespace {

using sim::Duration;
using sim::make_fixed_timing;
using sim::make_uniform_timing;

constexpr Duration kDelta = 50;

std::unique_ptr<sim::TimingModel> faulty(double p, Duration stretch) {
  auto injector = std::make_unique<sim::FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(p, stretch);
  return injector;
}

// --- Channels -------------------------------------------------------------------

sim::Process chat_sender(sim::Env env, Network& net, int self, int to,
                         int count) {
  for (int k = 0; k < count; ++k) {
    Message m;
    m.type = 7;
    m.value = self * 1000 + k;
    co_await net.send(env, self, to, m);
    co_await env.delay(env.rng().uniform(0, 30));
  }
}

sim::Process chat_receiver(sim::Env env, Network& net, int self, int expect,
                           std::vector<std::int64_t>& got) {
  for (int k = 0; k < expect; ++k) {
    const Message m = co_await net.recv(env, self);
    got.push_back(m.value);
  }
}

TEST(Channels, PerSenderFifoAndNoLoss) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    Network net(s.space(), 3);
    std::vector<std::int64_t> got;
    s.spawn([&net, &got](sim::Env env) {
      return chat_receiver(env, net, 2, 10, got);
    });
    s.spawn([&net](sim::Env env) { return chat_sender(env, net, 0, 2, 5); });
    s.spawn([&net](sim::Env env) { return chat_sender(env, net, 1, 2, 5); });
    s.run(1'000'000);
    ASSERT_EQ(got.size(), 10u) << "seed=" << seed;
    // Per-sender FIFO: each sender's values appear in increasing order.
    std::int64_t last0 = -1, last1 = -1;
    for (auto v : got) {
      if (v < 1000) {
        EXPECT_GT(v, last0);
        last0 = v;
      } else {
        EXPECT_GT(v, last1);
        last1 = v;
      }
    }
  }
}

sim::Process try_recv_once(sim::Env env, Network& net, bool* empty_seen) {
  const auto m = co_await net.try_recv(env, 0);
  *empty_seen = !m.has_value();
}

TEST(Channels, TryRecvEmptyReturnsNothing) {
  sim::Simulation s(make_fixed_timing(5));
  Network net(s.space(), 2);
  bool empty_seen = false;
  s.spawn([&net, &empty_seen](sim::Env env) {
    return try_recv_once(env, net, &empty_seen);
  });
  s.run();
  EXPECT_TRUE(empty_seen);
}

// --- ABD registers ----------------------------------------------------------------

sim::Process abd_writer_reader(sim::Env env, Network& net, int node, int n,
                               std::vector<std::int64_t>& reads) {
  AbdClient client(net, node, n);
  co_await client.write(env, /*reg=*/1, 100 + node);
  const auto v = co_await client.read(env, 1);
  reads[static_cast<std::size_t>(node)] = v;
}

void spawn_servers(sim::Simulation& s, Network& net, int n) {
  // Endpoints: clients use [0, n), servers [n, 2n).  Spawn order must put
  // the server of node i at a KNOWN sim pid so tests can crash it; we
  // return nothing but keep the convention: clients first, then servers,
  // so server(i) has sim pid n + i when clients are spawned first.
  for (int i = 0; i < n; ++i) {
    s.spawn([&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
  }
}

TEST(Abd, WriteThenReadReturnsLatest) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    std::vector<std::int64_t> reads(n, -1);
    for (int i = 0; i < n; ++i) {
      s.spawn([&net, &reads, i, n](sim::Env env) {
        return abd_writer_reader(env, net, i, n, reads);
      });
    }
    spawn_servers(s, net, n);
    s.run(10'000'000, [&] {
      return std::all_of(reads.begin(), reads.end(),
                         [](std::int64_t v) { return v >= 0; });
    });
    for (int i = 0; i < n; ++i) {
      // Own read sees own write or a concurrent later one.
      EXPECT_GE(reads[static_cast<std::size_t>(i)], 100) << "seed=" << seed;
      EXPECT_LT(reads[static_cast<std::size_t>(i)], 100 + n);
    }
  }
}

sim::Process abd_single_op(sim::Env env, Network& net, int node, int n,
                           bool write_first, std::int64_t* out) {
  AbdClient client(net, node, n);
  if (write_first) {
    co_await client.write(env, 5, 42);
    *out = 1;
  } else {
    *out = co_await client.read(env, 5);
  }
}

TEST(Abd, ToleratesMinorityServerCrashes) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 3});
  const int n = 5;
  Network net(s.space(), 2 * n);
  std::int64_t wrote = 0, read_back = -1;
  s.spawn([&net, &wrote](sim::Env env) {
    return abd_single_op(env, net, 0, 5, true, &wrote);
  });
  s.spawn([&net, &read_back](sim::Env env) {
    return abd_single_op(env, net, 1, 5, false, &read_back);
  });
  // Fill client pid slots 2..4 with idle clients so servers start at pid 5.
  for (int i = 2; i < n; ++i) {
    s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  spawn_servers(s, net, n);
  // Crash two of five servers (pids n..2n-1 by spawn order) immediately.
  s.crash_at(5 + 3, 1);
  s.crash_at(5 + 4, 1);
  s.run(10'000'000, [&] { return wrote == 1 && read_back >= 0; });
  EXPECT_EQ(wrote, 1);
  // read may have linearized before or after the write: 0 (default) or 42.
  EXPECT_TRUE(read_back == 0 || read_back == 42) << read_back;
}

sim::Process abd_sequential_check(sim::Env env, Network& net, int n,
                                  bool* ok) {
  AbdClient client(net, 0, n);
  co_await client.write(env, 9, 7);
  const auto a = co_await client.read(env, 9);
  co_await client.write(env, 9, 8);
  const auto b = co_await client.read(env, 9);
  *ok = (a == 7 && b == 8);
}

TEST(Abd, SequentialSemanticsOnOneClient) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 1});
  const int n = 3;
  Network net(s.space(), 2 * n);
  bool ok = false;
  s.spawn([&net, &ok](sim::Env env) {
    return abd_sequential_check(env, net, 3, &ok);
  });
  for (int i = 1; i < n; ++i) {
    s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  spawn_servers(s, net, n);
  s.run(10'000'000, [&] { return ok; });
  EXPECT_TRUE(ok);
}

// --- Consensus over messages --------------------------------------------------------

struct MsgConsensusRun {
  bool all_decided = false;
  std::uint64_t violations = 0;
  sim::Time last_decision = -1;
};

MsgConsensusRun run_msg_consensus(int n, std::vector<int> inputs,
                                  std::unique_ptr<sim::TimingModel> timing,
                                  std::uint64_t seed, sim::Time limit,
                                  int crash_servers = 0) {
  sim::Simulation s(std::move(timing), {.seed = seed});
  Network net(s.space(), 2 * n);
  MsgConsensus consensus(net, n, 60 * kDelta);
  consensus.monitor().throw_on_violation(false);
  for (int i = 0; i < n; ++i) {
    consensus.monitor().set_input(i, inputs[static_cast<std::size_t>(i)]);
    s.spawn([&consensus, i, input = inputs[static_cast<std::size_t>(i)]](
                sim::Env env) { return consensus.participant(env, i, input); });
  }
  for (int i = 0; i < n; ++i) {
    s.spawn([&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
  }
  for (int c = 0; c < crash_servers; ++c) s.crash_at(n + c, 1);

  s.run(limit, [&] {
    return consensus.monitor().decided_count() ==
           static_cast<std::size_t>(n - crash_servers);
  });
  MsgConsensusRun result;
  result.all_decided = consensus.monitor().all_decided(
      static_cast<std::size_t>(n - crash_servers));
  result.violations = consensus.monitor().agreement_violations() +
                      consensus.monitor().validity_violations();
  result.last_decision = consensus.monitor().last_decision_time();
  return result;
}

TEST(MsgConsensusTest, AgreementAndTermination) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto out = run_msg_consensus(3, {0, 1, 0},
                                       make_uniform_timing(1, kDelta), seed,
                                       50'000'000);
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
    EXPECT_EQ(out.violations, 0u) << "seed=" << seed;
  }
}

TEST(MsgConsensusTest, SafeUnderMessageTimingFailures) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto out = run_msg_consensus(3, {1, 0, 1},
                                       faulty(0.05, 20 * kDelta), seed,
                                       400'000'000);
    EXPECT_EQ(out.violations, 0u) << "seed=" << seed;
    EXPECT_TRUE(out.all_decided) << "seed=" << seed;
  }
}

// --- Elections over messages ---------------------------------------------------

struct ElectionRun {
  std::size_t decided = 0;
  std::uint64_t violations = 0;
};

ElectionRun run_timed_election(int n, sim::Duration wait,
                               std::unique_ptr<sim::TimingModel> timing,
                               std::uint64_t seed) {
  sim::Simulation s(std::move(timing), {.seed = seed});
  Network net(s.space(), n);
  TimedElection election(net, n, wait);
  for (int i = 0; i < n; ++i) {
    s.spawn([&election, i](sim::Env env) {
      return election.participant(env, i);
    });
  }
  s.run(100'000'000);
  return ElectionRun{election.monitor().decided_count(),
                     election.monitor().agreement_violations()};
}

TEST(TimedElectionTest, CorrectWhenMessagesAreOnTime) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    // W covers the worst send chain: n multicast legs x 2 accesses x Delta
    // plus our own sending time.
    const auto out = run_timed_election(
        4, /*wait=*/20 * kDelta, make_uniform_timing(1, kDelta), seed);
    EXPECT_EQ(out.decided, 4u) << "seed=" << seed;
    EXPECT_EQ(out.violations, 0u) << "seed=" << seed;
  }
}

TEST(TimedElectionTest, LateMessagesSplitLeadership) {
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 0; seed < 60 && violations == 0; ++seed) {
    auto injector = std::make_unique<sim::FailureInjector>(
        make_uniform_timing(1, kDelta), kDelta);
    injector->set_random_failures(0.3, 100 * kDelta);
    violations +=
        run_timed_election(4, 20 * kDelta, std::move(injector), seed)
            .violations;
  }
  EXPECT_GT(violations, 0u)
      << "a late HELLO should have produced two leaders";
}

TEST(MsgElectionTest, SingleLeaderAlways) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    MsgElection election(net, n, 60 * kDelta);
    for (int i = 0; i < n; ++i) {
      s.spawn([&election, i](sim::Env env) {
        return election.participant(env, i);
      });
    }
    for (int i = 0; i < n; ++i) {
      s.spawn(
          [&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
    }
    s.run(1'000'000'000, [&] {
      return election.monitor().decided_count() == static_cast<std::size_t>(n);
    });
    EXPECT_TRUE(election.monitor().all_decided(n)) << "seed=" << seed;
    EXPECT_EQ(election.monitor().agreement_violations(), 0u)
        << "seed=" << seed;
  }
}

TEST(MsgElectionTest, SingleLeaderUnderLateMessages) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Simulation s(faulty(0.05, 20 * kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    MsgElection election(net, n, 60 * kDelta);
    for (int i = 0; i < n; ++i) {
      s.spawn([&election, i](sim::Env env) {
        return election.participant(env, i);
      });
    }
    for (int i = 0; i < n; ++i) {
      s.spawn(
          [&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
    }
    s.run(8'000'000'000, [&] {
      return election.monitor().decided_count() == static_cast<std::size_t>(n);
    });
    EXPECT_TRUE(election.monitor().all_decided(n)) << "seed=" << seed;
    EXPECT_EQ(election.monitor().agreement_violations(), 0u)
        << "seed=" << seed;
  }
}

// Property sweep: (n, failure%) matrix for message-passing consensus.
class MsgConsensusSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MsgConsensusSweep, SafetyAndTermination) {
  const int n = std::get<0>(GetParam());
  const int failure_pct = std::get<1>(GetParam());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    std::vector<int> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
    std::unique_ptr<sim::TimingModel> timing =
        make_uniform_timing(1, kDelta);
    if (failure_pct > 0) {
      auto injector = std::make_unique<sim::FailureInjector>(
          std::move(timing), kDelta);
      injector->set_random_failures(failure_pct / 100.0, 25 * kDelta);
      timing = std::move(injector);
    }
    const auto out = run_msg_consensus(n, inputs, std::move(timing), seed,
                                       4'000'000'000);
    EXPECT_TRUE(out.all_decided)
        << "n=" << n << " fail%=" << failure_pct << " seed=" << seed;
    EXPECT_EQ(out.violations, 0u)
        << "n=" << n << " fail%=" << failure_pct << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, MsgConsensusSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(0, 5, 15)));

TEST(MsgConsensusTest, SurvivesCrashOfOneNodeServerOfFive) {
  // Note: crashing a *server* endpoint removes that replica; a majority
  // (3 of 5... here 4 alive of 5) still answers, and the crashed node's
  // client is also counted out of the deciders.
  const auto out = run_msg_consensus(5, {0, 1, 0, 1, 1},
                                     make_uniform_timing(1, kDelta), 2,
                                     100'000'000, /*crash_servers=*/1);
  EXPECT_EQ(out.violations, 0u);
}

// --- Network adversary + hardened clients ------------------------------------------

/// Retry discipline sized for kDelta-scale channels: one phase round trip
/// (multicast + server turnaround + ack) fits comfortably inside the
/// first window; the cap keeps long partitions from inflating waits
/// unboundedly.
RetryPolicy test_policy() {
  RetryPolicy policy;
  policy.timeout = 40 * kDelta;
  policy.timeout_growth = 2.0;
  policy.max_timeout = 320 * kDelta;
  policy.backoff = 2 * kDelta;
  policy.backoff_growth = 2.0;
  policy.max_backoff = 40 * kDelta;
  policy.jitter = kDelta;
  policy.poll_every = 5;
  return policy;
}

/// The acceptance-criterion fault mix: 20% drop, 5% duplicate, reorder on.
ChannelFaults acceptance_faults() {
  ChannelFaults faults;
  faults.drop = 0.20;
  faults.duplicate = 0.05;
  faults.reorder = 0.25;
  faults.reorder_hold = 4 * kDelta;
  return faults;
}

sim::Process flood_sender(sim::Env env, Network& net, int self, int to) {
  for (;;) {
    Message m;
    m.type = 7;
    m.value = self * 1000;
    co_await net.send(env, self, to, m);
  }
}

sim::Process counting_receiver(sim::Env env, Network& net, int self,
                               int count, std::vector<std::int64_t>& got) {
  for (int k = 0; k < count; ++k) {
    const Message m = co_await net.recv(env, self);
    got.push_back(m.value);
  }
}

TEST(NetAdversaryTest, RotatingPollPreventsStarvation) {
  // Sender 0 floods channel 0->2 so it is never empty; under a sweep that
  // always restarted at sender 0, sender 1's messages were starved
  // indefinitely.  The rotating start must interleave both senders.
  sim::Simulation s(make_fixed_timing(1));
  Network net(s.space(), 3);
  std::vector<std::int64_t> got;
  s.spawn([&net, &got](sim::Env env) {
    return counting_receiver(env, net, 2, 12, got);
  });
  s.spawn([&net](sim::Env env) { return flood_sender(env, net, 0, 2); });
  s.spawn([&net](sim::Env env) { return flood_sender(env, net, 1, 2); });
  s.run(10'000, [&] { return got.size() >= 12; });
  ASSERT_EQ(got.size(), 12u);
  const auto from1 =
      std::count_if(got.begin(), got.end(),
                    [](std::int64_t v) { return v == 1000; });
  EXPECT_GE(from1, 3) << "high-index channel starved by the flood on 0->2";
  EXPECT_GE(got.size() - static_cast<std::size_t>(from1), 3u);
}

/// One hardened client's workload: write then read one register, then
/// bump the completion counter.  (A free coroutine, not a coroutine
/// lambda: lambda captures do not survive into a coroutine frame.)
sim::Process hardened_write_read(sim::Env env, AbdClient& client, int reg,
                                 std::int64_t value, int* done) {
  co_await client.write(env, reg, value);
  co_await client.read(env, reg);
  ++*done;
}

sim::Process hardened_write_only(sim::Env env, AbdClient& client, int reg,
                                 std::int64_t value, int* done) {
  co_await client.write(env, reg, value);
  ++*done;
}

/// Hardened two-client ABD workload under `faults`; reports the monitor
/// verdict and whether every operation completed.
struct AdversaryRun {
  bool all_done = false;
  ConvergenceMonitor::Report report;
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t duplicate_acks = 0;
};

AdversaryRun run_adversarial_abd(const ChannelFaults& faults,
                                 std::uint64_t net_seed, std::uint64_t seed,
                                 sim::Duration bound = 0) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
  const int n = 3;
  Network net(s.space(), 2 * n);
  NetAdversary adversary(net_seed);
  adversary.set_default_faults(faults);
  net.set_adversary(&adversary);
  ConvergenceMonitor monitor;
  monitor.set_adversary(&adversary);
  if (bound > 0) monitor.set_bound(bound);

  int done = 0;
  std::vector<std::unique_ptr<AbdClient>> clients;
  for (int i = 0; i < n; ++i) {
    clients.push_back(
        std::make_unique<AbdClient>(net, i, n, test_policy()));
    clients.back()->set_monitor(&monitor);
  }
  for (int i = 0; i < n; ++i) {
    s.spawn([&clients, &done, i](sim::Env env) {
      return hardened_write_read(env, *clients[static_cast<std::size_t>(i)],
                                 1, 100 + i, &done);
    });
  }
  spawn_servers(s, net, n);
  s.run(4'000'000'000, [&] { return done == n; });

  AdversaryRun out;
  out.all_done = done == n;
  out.report = monitor.check();
  out.injected = adversary.drops() + adversary.duplicates() +
                 adversary.delays() + adversary.reorders();
  for (const auto& c : clients) {
    out.retries += c->retries();
    out.duplicate_acks += c->duplicate_acks();
  }
  return out;
}

TEST(NetAdversaryTest, HardenedAbdCompletesUnderAcceptanceFaultMix) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const AdversaryRun out =
        run_adversarial_abd(acceptance_faults(), /*net_seed=*/7 + seed, seed);
    EXPECT_TRUE(out.all_done) << "seed=" << seed;
    EXPECT_GT(out.injected, 0u) << "seed=" << seed;
    EXPECT_TRUE(out.report.linearizable) << "seed=" << seed;
    EXPECT_EQ(out.report.unfinished, 0u) << "seed=" << seed;
  }
}

TEST(NetAdversaryTest, DuplicatedAcksNeverFakeAQuorum) {
  // Every message duplicated: a non-deduplicating client would count one
  // server's ack twice and proceed on a fake majority.  Every run must
  // both complete and linearize; across the seeds some duplicate must
  // arrive while its phase is still open and hit the suppression (late
  // duplicates are absorbed by the stale-rid filter instead).
  ChannelFaults faults;
  faults.duplicate = 1.0;
  std::uint64_t suppressed = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const AdversaryRun out = run_adversarial_abd(faults, 11, seed);
    EXPECT_TRUE(out.all_done) << "seed=" << seed;
    EXPECT_TRUE(out.report.linearizable) << "seed=" << seed;
    suppressed += out.duplicate_acks;
  }
  EXPECT_GT(suppressed, 0u);
}

TEST(NetAdversaryTest, AdversarialRunsAreDeterministic) {
  // Same adversary seed + fault schedule => byte-identical traces through
  // obs::record/replay, for each of the drop / duplicate / reorder mixes.
  ChannelFaults drop_heavy;
  drop_heavy.drop = 0.3;
  ChannelFaults dup_heavy;
  dup_heavy.duplicate = 0.4;
  ChannelFaults reorder_heavy;
  reorder_heavy.reorder = 0.5;
  reorder_heavy.reorder_hold = 6 * kDelta;
  for (const ChannelFaults& faults :
       {drop_heavy, dup_heavy, reorder_heavy, acceptance_faults()}) {
    const obs::Scenario scenario = [faults](sim::Simulation& s) {
      const int n = 3;
      Network net(s.space(), 2 * n);
      NetAdversary adversary(99);
      adversary.set_default_faults(faults);
      adversary.add_partition({/*begin=*/50 * kDelta,
                               /*heal=*/120 * kDelta,
                               /*group=*/{0, n + 0}});
      adversary.arm(s);
      net.set_adversary(&adversary);
      std::vector<std::unique_ptr<AbdClient>> clients;
      for (int i = 0; i < n; ++i)
        clients.push_back(
            std::make_unique<AbdClient>(net, i, n, test_policy()));
      int done = 0;
      for (int i = 0; i < n; ++i) {
        s.spawn([&clients, &done, i](sim::Env env) {
          return hardened_write_read(
              env, *clients[static_cast<std::size_t>(i)], 1, 100 + i, &done);
        });
      }
      spawn_servers(s, net, n);
      s.run(4'000'000'000, [&done] { return done == 3; });
    };
    obs::TimingSpec spec;
    spec.kind = obs::TimingSpec::Kind::kUniform;
    spec.lo = 1;
    spec.hi = kDelta;
    const obs::RecordedRun run = obs::record(5, spec, scenario);
    const obs::ReplayResult replayed = obs::replay(run, scenario);
    EXPECT_TRUE(replayed.identical)
        << "diverged at event " << replayed.first_divergence
        << " (drop=" << faults.drop << " dup=" << faults.duplicate
        << " reorder=" << faults.reorder << ")";
  }
}

TEST(NetAdversaryTest, ConvergesWithinBoundAfterPartitionHeal) {
  // Node 0 (client + server endpoints) is cut off from t=0 until the heal;
  // its operations stall, retry, and must complete within the monitor's
  // bound once the partition heals.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    NetAdversary adversary(21);
    const sim::Time heal = 2'000 * kDelta;
    adversary.add_partition({/*begin=*/0, heal, /*group=*/{0, n + 0}});
    adversary.arm(s);
    net.set_adversary(&adversary);
    ConvergenceMonitor monitor;
    monitor.set_adversary(&adversary);
    monitor.set_simulation(&s);
    monitor.set_bound(1'000 * kDelta);

    int done = 0;
    std::vector<std::unique_ptr<AbdClient>> clients;
    for (int i = 0; i < n; ++i) {
      clients.push_back(
          std::make_unique<AbdClient>(net, i, n, test_policy()));
      clients.back()->set_monitor(&monitor);
    }
    for (int i = 0; i < n; ++i) {
      s.spawn([&clients, &done, i](sim::Env env) {
        return hardened_write_read(env, *clients[static_cast<std::size_t>(i)],
                                   2, 10 + i, &done);
      });
    }
    spawn_servers(s, net, n);
    s.run(4'000'000'000, [&] { return done == n; });
    ASSERT_EQ(done, n) << "seed=" << seed;

    const auto report = monitor.check();
    EXPECT_TRUE(report.ok()) << "seed=" << seed;
    EXPECT_TRUE(report.linearizable) << "seed=" << seed;
    EXPECT_TRUE(report.converged)
        << "seed=" << seed << " worst lag " << report.worst_lag
        << " exceeded bound " << monitor.bound();
    EXPECT_EQ(monitor.safety_violations(), 0u) << "seed=" << seed;
    EXPECT_GE(report.anchor, heal) << "seed=" << seed;
    EXPECT_GT(clients[0]->retries(), 0u)
        << "the partitioned client should have had to retry";
  }
}

TEST(NetAdversaryTest, MsgConsensusCompletesUnderAcceptanceFaultMix) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    const int n = 3;
    Network net(s.space(), 2 * n);
    NetAdversary adversary(31 + seed);
    adversary.set_default_faults(acceptance_faults());
    net.set_adversary(&adversary);
    MsgConsensus consensus(net, n, 60 * kDelta, /*reg_base=*/0,
                           test_policy());
    consensus.monitor().throw_on_violation(false);
    const std::vector<int> inputs{0, 1, 1};
    for (int i = 0; i < n; ++i) {
      consensus.monitor().set_input(i, inputs[static_cast<std::size_t>(i)]);
      s.spawn([&consensus, i, input = inputs[static_cast<std::size_t>(i)]](
                  sim::Env env) {
        return consensus.participant(env, i, input);
      });
    }
    for (int i = 0; i < n; ++i) {
      s.spawn(
          [&net, i, n](sim::Env env) { return abd_server(env, net, i, n); });
    }
    s.run(8'000'000'000, [&] {
      return consensus.monitor().decided_count() == static_cast<std::size_t>(n);
    });
    EXPECT_TRUE(consensus.monitor().all_decided(n)) << "seed=" << seed;
    EXPECT_EQ(consensus.monitor().agreement_violations() +
                  consensus.monitor().validity_violations(),
              0u)
        << "seed=" << seed;
    EXPECT_GT(adversary.drops(), 0u) << "seed=" << seed;
  }
}

// --- Register variants: per-peer windows + the fast read ---------------------

adapt::TimelinessEstimator::Config variant_estimator_config() {
  return {.initial = 2 * kDelta,
          .floor = kDelta,
          .ceiling = 320 * kDelta,
          .window = 32,
          .quantile = 0.9,
          .headroom = 2.0,
          .grow_factor = 2.0,
          .decay_step = kDelta,
          .clean_threshold = 2,
          .boost_cap = 2.0};
}

TEST(AbdVariants, PerPeerWindowIsTheMajorityThSmallest) {
  adapt::TimelinessEstimator est({.initial = 4,
                                  .floor = 1,
                                  .ceiling = 1000,
                                  .window = 4,
                                  .quantile = 1.0,
                                  .headroom = 2.0,
                                  .grow_factor = 2.0,
                                  .decay_step = 1,
                                  .clean_threshold = 2});
  est.observe(0, 5);    // margined estimate 10
  est.observe(1, 8);    // 16
  est.observe(2, 100);  // 200: the straggler
  std::vector<Duration> scratch;
  // n=3 needs 2 acks: wait the 2nd-smallest window, never the straggler's.
  EXPECT_EQ(per_peer_window(est, 3, 1.0, 0, scratch), 16);
  EXPECT_EQ(per_peer_window(est, 3, 2.0, 0, scratch), 32);  // scaled per w_s
  EXPECT_EQ(per_peer_window(est, 3, 2.0, 20, scratch), 20);  // cap clamps
  // A lone server: its own window, nothing to take a majority over.
  EXPECT_EQ(per_peer_window(est, 1, 1.0, 0, scratch), 10);
}

sim::Process variant_write_then_reads(sim::Env env, AbdClient& client,
                                      int reads,
                                      std::vector<std::int64_t>& got,
                                      int* done) {
  co_await client.write(env, /*reg=*/3, 7);
  for (int i = 0; i < reads; ++i) got.push_back(co_await client.read(env, 3));
  ++*done;
}

TEST(AbdVariants, FastReadSkipsTheWriteBackOnACleanNetwork) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 2});
  const int n = 3;
  Network net(s.space(), 2 * n);
  ConvergenceMonitor monitor;
  AbdClient client(net, 0, n);
  client.set_monitor(&monitor);
  client.set_variant(RegisterVariant::kPerPeerFastRead);
  std::vector<std::int64_t> got;
  int done = 0;
  s.spawn([&client, &got, &done](sim::Env env) {
    return variant_write_then_reads(env, client, 10, got, &done);
  });
  for (int i = 1; i < n; ++i) {
    s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  spawn_servers(s, net, n);
  s.run(10'000'000, [&] { return done == 1; });
  ASSERT_EQ(done, 1);
  for (std::int64_t v : got) EXPECT_EQ(v, 7);
  // Every fast-variant read is accounted one way or the other, and the
  // clean network makes the one-round path the common case.
  EXPECT_EQ(client.fast_reads() + client.fast_read_misses(), 10u);
  EXPECT_GE(client.fast_reads(), 5u);
  EXPECT_TRUE(monitor.check().linearizable);
}

TEST(AbdVariants, StockClientNeverCountsFastReads) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 2});
  const int n = 3;
  Network net(s.space(), 2 * n);
  AbdClient client(net, 0, n);  // default kStock
  std::vector<std::int64_t> got;
  int done = 0;
  s.spawn([&client, &got, &done](sim::Env env) {
    return variant_write_then_reads(env, client, 5, got, &done);
  });
  for (int i = 1; i < n; ++i) {
    s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  spawn_servers(s, net, n);
  s.run(10'000'000, [&] { return done == 1; });
  ASSERT_EQ(done, 1);
  EXPECT_EQ(client.fast_reads(), 0u);
  EXPECT_EQ(client.fast_read_misses(), 0u);
}

/// Plants a higher-tagged value at ONE replica — the footprint of a
/// writer that crashed mid-store.  Tag layout per the header: counter
/// << 16 | writer.
sim::Process plant_partial_write(sim::Env env, Network& net, int from,
                                 int server, int reg, std::int64_t tag,
                                 std::int64_t value, const bool* wrote,
                                 bool* planted) {
  while (!*wrote) co_await env.delay(5);  // outrank the finished write
  Message m;
  m.type = kWriteReq;
  m.reg = reg;
  m.rid = 0;
  m.tag = tag;
  m.value = value;
  co_await net.send(env, from, server, m);
  *planted = true;
}

sim::Process disagreement_reads(sim::Env env, AbdClient& client, bool* wrote,
                                const bool* planted,
                                std::vector<std::int64_t>& got, int* done) {
  co_await client.write(env, /*reg=*/4, 10);
  *wrote = true;
  while (!*planted) co_await env.delay(5);
  co_await env.delay(20 * kDelta);  // let the planted store land
  got.push_back(co_await client.read(env, 4));
  got.push_back(co_await client.read(env, 4));
  ++*done;
}

TEST(AbdVariants, DisagreeingTagsForceTheTwoRoundFallback) {
  // The adversarial read path: server 0 holds a higher tag the rest of
  // the quorum has never seen (a crashed writer's partial store).  The
  // first read's quorum {0, 1} disagrees -> the fast path must NOT fire;
  // its write-back installs the tag at the majority, so the second read
  // sees uniform tags and takes the one-round path.  Server 2 is crashed
  // to pin the quorum to {0, 1}.
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 6});
  const int n = 3;
  Network net(s.space(), 2 * n);
  AbdClient client(net, 0, n);
  client.set_variant(RegisterVariant::kPerPeerFastRead);
  std::vector<std::int64_t> got;
  bool wrote = false;
  bool planted = false;
  int done = 0;
  s.spawn([&client, &wrote, &planted, &got, &done](sim::Env env) {
    return disagreement_reads(env, client, &wrote, &planted, got, &done);
  });
  s.spawn([&net, &wrote, &planted, n](sim::Env env) {
    // Writer id 5, counter 2: beats the client's (1 << 16 | 0) tag.
    return plant_partial_write(env, net, /*from=*/1, /*server=*/n + 0,
                               /*reg=*/4, (std::int64_t{2} << 16) | 5, 99,
                               &wrote, &planted);
  });
  s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  spawn_servers(s, net, n);
  s.crash_at(n + 2, 1);  // server 2 never answers: quorums are {0, 1}
  s.run(100'000'000, [&] { return done == 1; });
  ASSERT_EQ(done, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 99);  // the read adopted and propagated the high tag
  EXPECT_EQ(got[1], 99);
  EXPECT_EQ(client.fast_read_misses(), 1u);  // read 1: disagreement
  EXPECT_EQ(client.fast_reads(), 1u);        // read 2: uniform again
}

sim::Process variant_rw_loop(sim::Env env, AbdClient& client, int ops,
                             int* done) {
  for (int i = 0; i < ops; ++i) {
    co_await client.write(env, /*reg=*/2, i);
    co_await client.read(env, 2);
  }
  ++*done;
}

TEST(AbdVariants, LateAcksTeachTheStragglersChannel) {
  // The slow replica rarely makes a quorum, so its channel would starve
  // without the late-ack ring: acks arriving after the phase closed must
  // still feed observe() and give the straggler an honest (large)
  // estimate, while the timely replicas keep small ones.
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 9});
  const int n = 3;
  Network net(s.space(), 2 * n);
  NetAdversary adversary(17);
  ChannelFaults slow;
  slow.delay = 1.0;
  slow.delay_min = 40 * kDelta;
  slow.delay_max = 60 * kDelta;
  ChannelFaults lossy;
  lossy.drop = 0.30;
  // The lossy box stretches phases (expiry + retry), which is what keeps
  // the straggler's acks within the late-ack ring's reach — with every
  // phase quorum-on-first-try the ring would recycle before they land.
  for (int other = 0; other < 2 * n; ++other) {
    if (other != n + 1) {
      adversary.set_channel_faults(n + 1, other, slow);
      adversary.set_channel_faults(other, n + 1, slow);
    }
    if (other != n + 2) {
      adversary.set_channel_faults(n + 2, other, lossy);
      adversary.set_channel_faults(other, n + 2, lossy);
    }
  }
  adversary.arm(s);
  net.set_adversary(&adversary);
  adapt::TimelinessEstimator est(variant_estimator_config());
  RetryPolicy policy = test_policy();
  policy.timeout_per_delta = 2.0;
  AbdClient client(net, 0, n, policy);
  client.set_delta_controller(&est);
  client.set_variant(RegisterVariant::kPerPeer);
  int done = 0;
  s.spawn([&client, &done](sim::Env env) {
    return variant_rw_loop(env, client, 20, &done);
  });
  for (int i = 1; i < n; ++i) {
    s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
  }
  spawn_servers(s, net, n);
  s.run(4'000'000'000, [&] { return done == 1; });
  ASSERT_EQ(done, 1);
  EXPECT_GT(client.late_observations(), 0u);
  // The straggler's channel carries a quantile an order beyond the timely
  // replicas' — the raw material the timeliness graph classifies.
  EXPECT_GT(est.channel_quantile(1), 4 * est.channel_quantile(0));
  EXPECT_GT(est.channel_quantile(1), 4 * est.channel_quantile(2));
  EXPECT_GT(est.estimate_for(1), est.estimate_for(0));
}

TEST(AbdVariants, EveryVariantReplaysByteIdentical) {
  // Same-seed record/replay determinism, per variant, under the
  // heterogeneous mix (slow box + lossy box) with a shared estimator —
  // per-peer windows, late-ack observations and fast reads are all pure
  // functions of the run.
  for (const RegisterVariant variant :
       {RegisterVariant::kStock, RegisterVariant::kPerPeer,
        RegisterVariant::kPerPeerFastRead}) {
    const obs::Scenario scenario = [variant](sim::Simulation& s) {
      const int n = 3;
      Network net(s.space(), 2 * n);
      NetAdversary adversary(23);
      ChannelFaults slow;
      slow.delay = 1.0;
      slow.delay_min = 40 * kDelta;
      slow.delay_max = 60 * kDelta;
      ChannelFaults lossy;
      lossy.drop = 0.30;
      for (int other = 0; other < 2 * n; ++other) {
        if (other != n + 1) {
          adversary.set_channel_faults(n + 1, other, slow);
          adversary.set_channel_faults(other, n + 1, slow);
        }
        if (other != n + 2) {
          adversary.set_channel_faults(n + 2, other, lossy);
          adversary.set_channel_faults(other, n + 2, lossy);
        }
      }
      adversary.arm(s);
      net.set_adversary(&adversary);
      adapt::TimelinessEstimator est(variant_estimator_config());
      RetryPolicy policy = test_policy();
      policy.timeout_per_delta = 2.0;
      std::vector<std::unique_ptr<AbdClient>> clients;
      int done = 0;
      for (int i = 0; i < 2; ++i) {
        clients.push_back(std::make_unique<AbdClient>(net, i, n, policy));
        clients.back()->set_delta_controller(&est);
        clients.back()->set_variant(variant);
        s.spawn([&clients, &done, i](sim::Env env) {
          return variant_rw_loop(env,
                                 *clients[static_cast<std::size_t>(i)], 10,
                                 &done);
        });
      }
      s.spawn([](sim::Env env) -> sim::Process { co_await env.delay(1); });
      spawn_servers(s, net, n);
      s.run(4'000'000'000, [&done] { return done == 2; });
    };
    obs::TimingSpec spec;
    spec.kind = obs::TimingSpec::Kind::kUniform;
    spec.lo = 1;
    spec.hi = kDelta;
    const obs::RecordedRun run = obs::record(41, spec, scenario);
    EXPECT_FALSE(run.trace.empty());
    const obs::ReplayResult replayed = obs::replay(run, scenario);
    EXPECT_TRUE(replayed.identical)
        << register_variant_name(variant) << " diverged at event "
        << replayed.first_divergence;
  }
}

TEST(NetAdversaryTest, FaultEventsLandInTheTrace) {
  obs::TraceSink sink;
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 4, .sink = &sink});
  const int n = 3;
  Network net(s.space(), 2 * n);
  NetAdversary adversary(55);
  adversary.set_default_faults(acceptance_faults());
  adversary.add_partition({10 * kDelta, 40 * kDelta, {0, n + 0}});
  adversary.arm(s);
  net.set_adversary(&adversary);
  int done = 0;
  std::vector<std::unique_ptr<AbdClient>> clients;
  for (int i = 0; i < n; ++i)
    clients.push_back(std::make_unique<AbdClient>(net, i, n, test_policy()));
  for (int i = 0; i < n; ++i) {
    s.spawn([&clients, &done, i](sim::Env env) {
      return hardened_write_only(env, *clients[static_cast<std::size_t>(i)],
                                 1, i, &done);
    });
  }
  spawn_servers(s, net, n);
  s.run(4'000'000'000, [&] { return done == 3; });
  ASSERT_EQ(done, 3);

  std::size_t drops = 0, partitions = 0, recovery = 0;
  for (std::size_t i = 0; i < sink.size(); ++i) {
    switch (sink[i].kind) {
      case obs::EventKind::kNetDrop:
        ++drops;
        break;
      case obs::EventKind::kNetPartition:
        ++partitions;
        break;
      case obs::EventKind::kRetry:
      case obs::EventKind::kTimeout:
      case obs::EventKind::kBackoff:
        ++recovery;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(drops, adversary.drops());
  EXPECT_EQ(partitions, 2u) << "begin + heal markers";
  if (adversary.drops() > 0) EXPECT_GT(recovery, 0u);
}

}  // namespace
}  // namespace tfr::msg
