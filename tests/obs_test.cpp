// Tests for the observability layer (src/obs/): TraceSink semantics,
// golden traces (same seed => byte-identical JSON and binary), the binary
// round-trip, deterministic replay of a consensus run with injected
// timing failures, monitor violations appearing in the trace, derived
// metrics, and the deterministic rt fault injector.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tfr/core/consensus_sim.hpp"
#include "tfr/mutex/mutex_sim.hpp"
#include "tfr/mutex/workload_sim.hpp"
#include "tfr/obs/export.hpp"
#include "tfr/obs/metrics.hpp"
#include "tfr/obs/replay.hpp"
#include "tfr/obs/trace.hpp"
#include "tfr/registers/fault_injector.hpp"
#include "tfr/sim/timing.hpp"

namespace tfr {
namespace {

constexpr sim::Duration kDelta = 100;

// A consensus run with windowed + random timing failures, fully described
// by a TimingSpec so it can be recorded and replayed.
obs::TimingSpec failing_spec() {
  obs::TimingSpec spec;
  spec.kind = obs::TimingSpec::Kind::kUniform;
  spec.lo = 1;
  spec.hi = kDelta;
  spec.delta = kDelta;
  spec.windows.push_back({.begin = 0,
                          .end = 5 * kDelta,
                          .victims = {0, 2},
                          .stretched = 7 * kDelta});
  spec.random_p = 0.05;
  spec.random_stretch_max = 4 * kDelta;
  return spec;
}

// Forwards access costs to a timing model the caller keeps alive.  Lets a
// test hand run_consensus (which takes ownership and destroys its timing
// model with the Simulation) a view of an injector whose counters the test
// still wants to read after the run.
class BorrowedTiming final : public sim::TimingModel {
 public:
  explicit BorrowedTiming(sim::TimingModel* inner) : inner_(inner) {}
  sim::Duration access_cost(sim::Pid pid, sim::Time now, Rng& rng) override {
    return inner_->access_cost(pid, now, rng);
  }

 private:
  sim::TimingModel* inner_;
};

// Scenario body shared by the record/replay tests: 4 participants with
// split inputs; captures the decision for outcome checks.
struct ConsensusCapture {
  int value = sim::kBot;
  std::size_t max_round = 0;
  std::size_t decided = 0;
};

obs::Scenario consensus_scenario(ConsensusCapture* capture) {
  return [capture](sim::Simulation& simulation) {
    auto consensus = std::make_shared<core::SimConsensus>(simulation.space(),
                                                          kDelta);
    consensus->monitor().set_trace_sink(simulation.trace_sink());
    const std::vector<int> inputs = {0, 1, 1, 0};
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      consensus->monitor().set_input(static_cast<sim::Pid>(i), inputs[i]);
      simulation.spawn([consensus, input = inputs[i]](sim::Env env) {
        return consensus->participant(env, input);
      });
    }
    simulation.run();
    if (capture != nullptr) {
      capture->value = consensus->decided_value();
      capture->max_round = consensus->max_round();
      capture->decided = consensus->monitor().decided_count();
    }
  };
}

TEST(TraceSink, AppendInternAndOverflow) {
  obs::TraceSink sink(2);
  const std::uint32_t a = sink.intern("x");
  EXPECT_EQ(sink.intern("x"), a);
  const std::uint32_t b = sink.intern("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.label(a), "x");
  EXPECT_EQ(sink.label(0), "");

  sink.append({1, 0, obs::EventKind::kRead, 3, 0, a});
  sink.append({2, 1, obs::EventKind::kWrite, 4, 7, b});
  sink.append({3, 0, obs::EventKind::kDelay, 5, 0, 0});  // over capacity
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);

  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.label(a), "x");  // labels survive clear()
}

TEST(TraceExport, BinaryRoundTrip) {
  obs::TraceSink sink;
  const std::uint32_t reg = sink.intern("decide");
  sink.append({10, 0, obs::EventKind::kWrite, 5, 1, reg});
  sink.append({15, 1, obs::EventKind::kDecide, 1, 0, 0});
  sink.append({-3, -1, obs::EventKind::kStall, 123456, 2, reg});

  const std::string bytes = obs::encode_binary(sink);
  obs::TraceSink decoded;
  ASSERT_TRUE(obs::decode_binary(bytes, decoded));
  ASSERT_EQ(decoded.size(), sink.size());
  for (std::size_t i = 0; i < sink.size(); ++i)
    EXPECT_EQ(decoded[i], sink[i]) << "event " << i;
  EXPECT_EQ(obs::encode_binary(decoded), bytes);
  EXPECT_EQ(decoded.hash(), sink.hash());

  obs::TraceSink garbage;
  EXPECT_FALSE(obs::decode_binary("not a trace", garbage));
}

// Golden trace: the same (seed, model, scenario) yields byte-identical
// JSON and binary encodings across runs.
TEST(TraceExport, GoldenTraceIsByteIdentical) {
  auto run_once = [](std::string* json) {
    obs::TraceSink sink;
    auto timing = obs::make_timing(failing_spec(), &sink);
    core::ConsensusOutcome outcome = core::run_consensus(
        {0, 1, 1, 0}, kDelta, std::move(timing), /*seed=*/7, sim::kTimeNever,
        &sink);
    EXPECT_TRUE(outcome.all_decided);
    *json = obs::to_chrome_json(sink);
    return obs::encode_binary(sink);
  };

  std::string json_a, json_b;
  const std::string binary_a = run_once(&json_a);
  const std::string binary_b = run_once(&json_b);
  EXPECT_EQ(binary_a, binary_b);
  EXPECT_EQ(json_a, json_b);
  EXPECT_FALSE(json_a.empty());

  // Shape of the Chrome trace_event "JSON Object Format".
  EXPECT_EQ(json_a.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json_a.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json_a.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json_a.find("timing-failure"), std::string::npos);
  EXPECT_NE(json_a.find("decide"), std::string::npos);
  EXPECT_EQ(json_a.back(), '}');

  // A different seed produces a different execution (and so a different
  // trace) under this randomized model.
  obs::TraceSink other;
  auto timing = obs::make_timing(failing_spec(), &other);
  core::run_consensus({0, 1, 1, 0}, kDelta, std::move(timing), /*seed=*/8,
                      sim::kTimeNever, &other);
  EXPECT_NE(obs::encode_binary(other), binary_a);
}

TEST(Replay, ConsensusWithInjectedFailuresRoundTrips) {
  ConsensusCapture recorded;
  const obs::RecordedRun run =
      obs::record(/*seed=*/21, failing_spec(), consensus_scenario(&recorded));
  ASSERT_EQ(recorded.decided, 4u);
  ASSERT_NE(recorded.value, sim::kBot);

  ConsensusCapture replayed;
  const obs::ReplayResult result =
      obs::replay(run, consensus_scenario(&replayed));
  EXPECT_TRUE(result.identical) << "first divergence at event "
                                << result.first_divergence;
  EXPECT_EQ(result.trace, run.trace);
  // Identical decision value, decision round, and event sequence.
  EXPECT_EQ(replayed.value, recorded.value);
  EXPECT_EQ(replayed.max_round, recorded.max_round);
  EXPECT_EQ(replayed.decided, recorded.decided);

  // The artifact survives serialization: save/load and replay again.
  const std::string bytes = run.to_bytes();
  const auto loaded = obs::RecordedRun::from_bytes(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seed, run.seed);
  EXPECT_EQ(loaded->trace, run.trace);
  EXPECT_EQ(loaded->timing.windows.size(), run.timing.windows.size());
  const obs::ReplayResult again = obs::replay(*loaded,
                                              consensus_scenario(nullptr));
  EXPECT_TRUE(again.identical);

  // A divergent scenario (different inputs) is detected, not silently
  // accepted.
  const obs::Scenario different = [](sim::Simulation& simulation) {
    auto consensus = std::make_shared<core::SimConsensus>(simulation.space(),
                                                          kDelta);
    consensus->monitor().set_trace_sink(simulation.trace_sink());
    for (int input : {1, 1, 1, 1}) {
      simulation.spawn([consensus, input](sim::Env env) {
        return consensus->participant(env, input);
      });
    }
    simulation.run();
  };
  EXPECT_FALSE(obs::replay(run, different).identical);
}

// The §3.1 scripted Fischer violation, now with a sink attached: the ME
// violation must be visible in the trace, labelled, alongside the gate's
// accesses.
TEST(TraceMonitor, FischerViolationAppearsInTrace) {
  obs::TraceSink sink;
  auto script = std::make_unique<sim::ScriptedTiming>(
      sim::make_fixed_timing(1));
  script->push(0, 1);     // p0: read x = 0
  script->push(0, 1000);  // p0: write x := 1 stalls past Delta (preemption)
  script->push(1, 2);     // p1: runs the whole gate meanwhile
  script->push(1, 1);
  script->push(1, 1);

  const auto result = mutex::run_mutex_workload(
      [](sim::RegisterSpace& sp) {
        return std::make_unique<mutex::FischerMutex>(sp, kDelta);
      },
      mutex::WorkloadConfig{.processes = 2,
                            .sessions = 1,
                            .cs_time = 5000,
                            .ncs_time = 0,
                            .tolerate_violations = true},
      std::move(script), /*seed=*/1, 1'000'000, &sink);
  ASSERT_GE(result.violations, 1u);

  std::size_t violations_in_trace = 0;
  std::size_t cs_enters = 0;
  bool saw_labelled_violation = false;
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const obs::Event& e = sink[i];
    if (e.kind == obs::EventKind::kViolation) {
      ++violations_in_trace;
      saw_labelled_violation |=
          sink.label(e.label) == "mutual-exclusion";
    }
    cs_enters += e.kind == obs::EventKind::kCsEnter;
  }
  EXPECT_EQ(violations_in_trace, result.violations);
  EXPECT_TRUE(saw_labelled_violation);
  EXPECT_EQ(cs_enters, 2u);  // both processes entered — that is the bug

  const obs::TraceMetrics metrics = obs::compute_metrics(sink);
  EXPECT_EQ(metrics.violations, result.violations);
  const std::string json = obs::to_chrome_json(sink);
  EXPECT_NE(json.find("mutual-exclusion violation"), std::string::npos);
}

TEST(TraceMetrics, ConsensusRunMetricsMatchOutcome) {
  obs::TraceSink sink;
  auto injector = std::make_unique<sim::FailureInjector>(
      sim::make_uniform_timing(1, kDelta), kDelta);
  injector->add_window(
      {.begin = 0, .end = 3 * kDelta, .victims = {0}, .stretched = 5 * kDelta});
  injector->set_trace_sink(&sink);

  const core::ConsensusOutcome outcome = core::run_consensus(
      {0, 1}, kDelta, std::make_unique<BorrowedTiming>(injector.get()),
      /*seed=*/3, sim::kTimeNever, &sink);
  ASSERT_TRUE(outcome.all_decided);

  const obs::TraceMetrics metrics = obs::compute_metrics(sink);
  std::uint64_t steps = 0, delays = 0;
  for (std::uint64_t s : outcome.steps) steps += s;
  for (std::uint64_t d : outcome.delays) delays += d;
  EXPECT_EQ(metrics.reads + metrics.writes, steps);
  EXPECT_EQ(metrics.delays, delays);
  EXPECT_EQ(metrics.decides, 2u);
  EXPECT_EQ(metrics.max_round, outcome.max_round);
  EXPECT_EQ(metrics.timing_failures, injector->failures_injected());
  EXPECT_EQ(metrics.last_failure_completion,
            injector->last_failure_completion());
  EXPECT_EQ(metrics.last_decision, outcome.last_decision);
  EXPECT_GE(metrics.rmr, metrics.writes);
  // Convergence in Delta units: the exact (last decide − last failure
  // completion) / Delta for this run — the last decide may coincide with
  // the failed access's completion, so only the arithmetic is asserted.
  EXPECT_DOUBLE_EQ(
      metrics.convergence_after_failures_in_delta(kDelta),
      static_cast<double>(outcome.last_decision -
                          injector->last_failure_completion()) /
          static_cast<double>(kDelta));

  // Solo fast path: one proposer decides in round 0 with no delay.
  obs::TraceSink solo;
  core::run_consensus({1}, kDelta, sim::make_fixed_timing(kDelta), 1,
                      sim::kTimeNever, &solo);
  const obs::TraceMetrics solo_metrics = obs::compute_metrics(solo);
  EXPECT_EQ(solo_metrics.decides, 1u);
  EXPECT_EQ(solo_metrics.fast_path_decides, 1u);
  EXPECT_DOUBLE_EQ(solo_metrics.fast_path_hit_rate(), 1.0);
  EXPECT_EQ(solo_metrics.delays, 0u);
  EXPECT_EQ(solo_metrics.reads + solo_metrics.writes, 7u);
}

// Satellite bugfix: rt::FaultInjector must fire identically for identical
// (seed, per-point visit sequence) — and distinct points must own distinct
// streams (the old hashed-counter scheme gave every point the same one).
TEST(RtFaultInjector, DeterministicPerPointStreams) {
  constexpr int kVisits = 200;
  auto pattern = [](std::uint64_t seed, const char* point) {
    rt::FaultInjector faults(seed);
    faults.configure("a", {.probability = 0.5, .stall = rt::Nanos{0}});
    faults.configure("b", {.probability = 0.5, .stall = rt::Nanos{0}});
    std::vector<bool> fired;
    for (int i = 0; i < kVisits; ++i) fired.push_back(faults.maybe_stall(point));
    return fired;
  };

  // Identical (seed, visit sequence) => identical firing.
  EXPECT_EQ(pattern(42, "a"), pattern(42, "a"));
  EXPECT_EQ(pattern(42, "b"), pattern(42, "b"));
  // Distinct points draw from decorrelated streams.
  EXPECT_NE(pattern(42, "a"), pattern(42, "b"));
  // Distinct seeds differ.
  EXPECT_NE(pattern(42, "a"), pattern(43, "a"));

  // Interleaving visits to other points does not disturb a point's stream.
  rt::FaultInjector faults(42);
  faults.configure("a", {.probability = 0.5, .stall = rt::Nanos{0}});
  faults.configure("b", {.probability = 0.5, .stall = rt::Nanos{0}});
  std::vector<bool> fired_a;
  for (int i = 0; i < kVisits; ++i) {
    fired_a.push_back(faults.maybe_stall("a"));
    faults.maybe_stall("b");
    faults.maybe_stall("b");
  }
  EXPECT_EQ(fired_a, pattern(42, "a"));
}

TEST(RtFaultInjector, StallsAppearInTrace) {
  obs::TraceSink sink;
  rt::FaultInjector faults(1);
  faults.set_trace_sink(&sink);
  faults.configure("gate", {.stall = rt::Nanos{0}, .always_on_visit = 2});
  EXPECT_FALSE(faults.maybe_stall("gate"));
  EXPECT_TRUE(faults.maybe_stall("gate"));
  EXPECT_FALSE(faults.maybe_stall("gate"));
  // Each stall emits the kStall instant plus a kCounter sample carrying
  // the point's running totals (fired count, stalled ns).
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0].kind, obs::EventKind::kStall);
  EXPECT_EQ(sink[0].b, 2);  // the firing visit index
  EXPECT_EQ(sink.label(sink[0].label), "gate");
  EXPECT_EQ(sink[1].kind, obs::EventKind::kCounter);
  EXPECT_EQ(sink[1].a, 1);  // first stall at this point
  EXPECT_EQ(sink[1].b, 0);  // zero-length stall: no ns accumulated
  EXPECT_EQ(sink.label(sink[1].label), "gate");
  EXPECT_EQ(faults.point_stalls("gate"), 1u);
  EXPECT_EQ(faults.point_stalled_ns("gate"), 0u);
}

}  // namespace
}  // namespace tfr
