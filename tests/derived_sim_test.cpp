// Tests for the derived wait-free objects (§1.4): multi-valued consensus,
// leader election, test-and-set, n-renaming and the universal construction
// — simulator edition, including linearizability checks on recorded
// histories.
//
// Note: processes are spawned via *plain* lambdas that immediately call a
// free coroutine function — never via coroutine lambdas, whose captured
// closure would dangle once spawn() returns.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "tfr/common/contracts.hpp"
#include "tfr/derived/election_sim.hpp"
#include "tfr/derived/multivalue_sim.hpp"
#include "tfr/derived/renaming_sim.hpp"
#include "tfr/derived/test_and_set_sim.hpp"
#include "tfr/derived/universal_sim.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"
#include "tfr/spec/history.hpp"
#include "tfr/spec/linearizability.hpp"

namespace tfr::derived {
namespace {

using sim::Duration;
using sim::FailureInjector;
using sim::make_fixed_timing;
using sim::make_uniform_timing;

constexpr Duration kDelta = 100;

std::unique_ptr<sim::TimingModel> faulty_timing(double p) {
  auto injector = std::make_unique<FailureInjector>(
      make_uniform_timing(1, kDelta), kDelta);
  injector->set_random_failures(p, 8 * kDelta);
  return injector;
}

// --- Process bodies (free coroutine functions; see header note) -------------

sim::Process propose_mv(sim::Env env, SimMultiConsensus& mc,
                        std::int64_t input, std::int64_t* out) {
  *out = co_await mc.propose(env, input);
}

sim::Process propose_mv_expect_throw(sim::Env env, SimMultiConsensus& mc,
                                     std::int64_t input, bool* threw) {
  try {
    co_await mc.propose(env, input);
  } catch (const ContractViolation&) {
    *threw = true;
  }
}

sim::Process elect_into(sim::Env env, SimElection& election, int* out) {
  *out = co_await election.elect(env);
}

sim::Process tas_into(sim::Env env, SimTestAndSet& tas, int* out) {
  *out = co_await tas.test_and_set(env);
}

sim::Process tas_with_history(sim::Env env, SimTestAndSet& tas,
                              spec::History& history) {
  const auto token = history.invoke(env.pid(), "tas", 0, env.now());
  const int r = co_await tas.test_and_set(env);
  history.respond(token, r, env.now());
}

sim::Process rename_into(sim::Env env, SimRenaming& renaming, int* out) {
  *out = co_await renaming.acquire(env);
}

sim::Process counter_adds(sim::Env env, SimUniversal& universal, int count,
                          int amount, std::int64_t* last) {
  for (int k = 0; k < count; ++k)
    *last = co_await universal.invoke(env, CounterReplica::kAdd, amount);
}

sim::Process counter_add_add_get(sim::Env env, SimUniversal& universal,
                                 std::int64_t* got) {
  co_await universal.invoke(env, CounterReplica::kAdd, 5);
  co_await universal.invoke(env, CounterReplica::kAdd, 7);
  *got = co_await universal.invoke(env, CounterReplica::kGet, 0);
}

sim::Process queue_sessions(sim::Env env, SimUniversal& universal,
                            spec::History& history, int rounds) {
  for (int k = 0; k < rounds; ++k) {
    const int arg = env.pid() * 10 + k;
    auto token = history.invoke(env.pid(), "enqueue", arg, env.now());
    const auto r = co_await universal.invoke(env, QueueReplica::kEnqueue, arg);
    history.respond(token, r, env.now());
    token = history.invoke(env.pid(), "dequeue", 0, env.now());
    const auto d = co_await universal.invoke(env, QueueReplica::kDequeue, 0);
    history.respond(token, d, env.now());
  }
}

// --- Multi-valued consensus ---------------------------------------------------

std::vector<std::int64_t> run_multivalue(
    const std::vector<std::int64_t>& inputs,
    std::unique_ptr<sim::TimingModel> timing, std::uint64_t seed, int bits) {
  sim::Simulation s(std::move(timing), {.seed = seed});
  SimMultiConsensus mc(s.space(), kDelta, bits);
  std::vector<std::int64_t> out(inputs.size(), -1);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    s.spawn([&mc, input = inputs[i], slot = &out[i]](sim::Env env) {
      return propose_mv(env, mc, input, slot);
    });
  }
  s.run(50'000'000);
  return out;
}

TEST(MultiValue, AgreementAndValidity) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::vector<std::int64_t> inputs{1000001, 999, 31337, 4};
    const auto out = run_multivalue(inputs, make_uniform_timing(1, kDelta),
                                    seed, 31);
    for (auto v : out) {
      EXPECT_EQ(v, out[0]) << "seed=" << seed;
      EXPECT_TRUE(std::count(inputs.begin(), inputs.end(), v) > 0)
          << "decided " << v;
    }
  }
}

TEST(MultiValue, SingleProposerGetsOwnValue) {
  const auto out = run_multivalue({123456}, make_fixed_timing(kDelta), 1, 31);
  EXPECT_EQ(out[0], 123456);
}

TEST(MultiValue, AgreementUnderTimingFailures) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const std::vector<std::int64_t> inputs{7, 7777, 123, 900000, 1};
    const auto out = run_multivalue(inputs, faulty_timing(0.15), seed, 31);
    for (auto v : out) {
      EXPECT_EQ(v, out[0]) << "seed=" << seed;
      EXPECT_TRUE(std::count(inputs.begin(), inputs.end(), v) > 0);
    }
  }
}

TEST(MultiValue, ZeroAndMaxValues) {
  const std::vector<std::int64_t> inputs{0, (std::int64_t{1} << 31) - 1};
  const auto out =
      run_multivalue(inputs, make_uniform_timing(1, kDelta), 3, 31);
  EXPECT_EQ(out[0], out[1]);
  EXPECT_TRUE(out[0] == inputs[0] || out[0] == inputs[1]);
}

TEST(MultiValue, RejectsOutOfRange) {
  sim::Simulation s(make_fixed_timing(1));
  SimMultiConsensus mc(s.space(), kDelta, 4);
  bool threw = false;
  s.spawn([&mc, &threw](sim::Env env) {
    return propose_mv_expect_throw(env, mc, 16, &threw);  // needs 5 bits
  });
  s.run();
  EXPECT_TRUE(threw);
}

// --- Election -------------------------------------------------------------------

TEST(Election, ExactlyOneLeaderAmongParticipants) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    SimElection election(s.space(), kDelta);
    std::vector<int> winner(6, -1);
    for (int i = 0; i < 6; ++i) {
      s.spawn([&election, slot = &winner[static_cast<std::size_t>(i)]](
                  sim::Env env) { return elect_into(env, election, slot); });
    }
    s.run(50'000'000);
    for (int w : winner) {
      EXPECT_EQ(w, winner[0]) << "seed=" << seed;
      EXPECT_GE(w, 0);
      EXPECT_LT(w, 6);
    }
    EXPECT_EQ(election.leader(), winner[0]);
  }
}

TEST(Election, SoloElectsItself) {
  sim::Simulation s(make_fixed_timing(kDelta));
  SimElection election(s.space(), kDelta);
  int winner = -1;
  s.spawn([&election, &winner](sim::Env env) {
    return elect_into(env, election, &winner);
  });
  s.run();
  EXPECT_EQ(winner, 0);
}

TEST(Election, LeaderSurvivesTimingFailures) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Simulation s(faulty_timing(0.2), {.seed = seed});
    SimElection election(s.space(), kDelta);
    std::vector<int> winner(4, -1);
    for (int i = 0; i < 4; ++i) {
      s.spawn([&election, slot = &winner[static_cast<std::size_t>(i)]](
                  sim::Env env) { return elect_into(env, election, slot); });
    }
    s.run(100'000'000);
    for (int w : winner) EXPECT_EQ(w, winner[0]) << "seed=" << seed;
  }
}

TEST(Election, WaitFreeUnderCrashes) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 4});
  SimElection election(s.space(), kDelta);
  std::vector<int> winner(4, -1);
  for (int i = 0; i < 4; ++i) {
    s.spawn([&election, slot = &winner[static_cast<std::size_t>(i)]](
                sim::Env env) { return elect_into(env, election, slot); });
  }
  s.crash_after_accesses(0, 10);
  s.crash_after_accesses(1, 25);
  s.run(100'000'000);
  EXPECT_GE(winner[2], 0);
  EXPECT_EQ(winner[2], winner[3]);
}

// --- Test-and-set ----------------------------------------------------------------

TEST(TestAndSet, ExactlyOneWinner) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    SimTestAndSet tas(s.space(), kDelta);
    std::vector<int> got(5, -1);
    for (int i = 0; i < 5; ++i) {
      s.spawn([&tas, slot = &got[static_cast<std::size_t>(i)]](sim::Env env) {
        return tas_into(env, tas, slot);
      });
    }
    s.run(50'000'000);
    EXPECT_EQ(std::count(got.begin(), got.end(), 0), 1) << "seed=" << seed;
    EXPECT_EQ(std::count(got.begin(), got.end(), 1), 4) << "seed=" << seed;
    EXPECT_EQ(tas.peek(), 1);
  }
}

TEST(TestAndSet, HistoryIsLinearizable) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    SimTestAndSet tas(s.space(), kDelta);
    spec::History history;
    for (int i = 0; i < 4; ++i) {
      s.spawn([&tas, &history](sim::Env env) {
        return tas_with_history(env, tas, history);
      });
    }
    s.run(50'000'000);
    const auto ops = history.completed();
    ASSERT_EQ(ops.size(), 4u);
    const auto verdict = spec::check_linearizable(ops, spec::TasModel{});
    EXPECT_TRUE(verdict.linearizable) << "seed=" << seed;
  }
}

// --- Renaming ---------------------------------------------------------------------

TEST(Renaming, NamesAreUniqueAndTight) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const int n = 6;
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    SimRenaming renaming(s.space(), kDelta, n);
    std::vector<int> name(n, -1);
    for (int i = 0; i < n; ++i) {
      s.spawn([&renaming, slot = &name[static_cast<std::size_t>(i)]](
                  sim::Env env) { return rename_into(env, renaming, slot); });
    }
    s.run(100'000'000);
    std::set<int> unique(name.begin(), name.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(n)) << "seed=" << seed;
    for (int v : name) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

TEST(Renaming, SubsetOfParticipantsUsesPrefixOfNames) {
  // Three participants in a namespace sized for six: tight renaming means
  // they still end up with names 0..2 (a slot is only skipped by losing it
  // to a distinct winner).
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 2});
  SimRenaming renaming(s.space(), kDelta, 6);
  std::vector<int> name(3, -1);
  for (int i = 0; i < 3; ++i) {
    s.spawn([&renaming, slot = &name[static_cast<std::size_t>(i)]](
                sim::Env env) { return rename_into(env, renaming, slot); });
  }
  s.run(50'000'000);
  std::set<int> unique(name.begin(), name.end());
  EXPECT_EQ(unique, (std::set<int>{0, 1, 2}));
}

TEST(Renaming, OwnersMatchAcquiredNames) {
  sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = 8});
  const int n = 4;
  SimRenaming renaming(s.space(), kDelta, n);
  std::vector<int> name(n, -1);
  for (int i = 0; i < n; ++i) {
    s.spawn([&renaming, slot = &name[static_cast<std::size_t>(i)]](
                sim::Env env) { return rename_into(env, renaming, slot); });
  }
  s.run(100'000'000);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(renaming.owner(name[static_cast<std::size_t>(i)]), i);
}

// --- Universal construction ----------------------------------------------------------

TEST(Universal, CounterSumsAllIncrements) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    SimUniversal universal(s.space(), kDelta, 4, [] {
      return std::make_unique<CounterReplica>();
    });
    std::vector<std::int64_t> last(4, -1);
    for (int i = 0; i < 4; ++i) {
      s.spawn([&universal, slot = &last[static_cast<std::size_t>(i)]](
                  sim::Env env) {
        return counter_adds(env, universal, 3, 10, slot);
      });
    }
    s.run(500'000'000);
    // 12 increments of 10: some caller observed the final value 120.
    std::int64_t max_seen = 0;
    for (auto v : last) max_seen = std::max(max_seen, v);
    EXPECT_EQ(max_seen, 120) << "seed=" << seed;
    EXPECT_EQ(universal.log_length(), 12u) << "seed=" << seed;
  }
}

TEST(Universal, QueueHistoryIsLinearizable) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Simulation s(make_uniform_timing(1, kDelta), {.seed = seed});
    SimUniversal universal(s.space(), kDelta, 3, [] {
      return std::make_unique<QueueReplica>();
    });
    spec::History history;
    for (int i = 0; i < 3; ++i) {
      s.spawn([&universal, &history](sim::Env env) {
        return queue_sessions(env, universal, history, 2);
      });
    }
    s.run(500'000'000);
    const auto ops = history.completed();
    ASSERT_EQ(ops.size(), 12u);
    const auto verdict = spec::check_linearizable(ops, spec::QueueModel{});
    EXPECT_TRUE(verdict.linearizable) << "seed=" << seed;
  }
}

TEST(Universal, ResultsComeFromOwnOperations) {
  sim::Simulation s(make_fixed_timing(kDelta));
  SimUniversal universal(s.space(), kDelta, 2, [] {
    return std::make_unique<CounterReplica>();
  });
  std::int64_t got = -1;
  s.spawn([&universal, &got](sim::Env env) {
    return counter_add_add_get(env, universal, &got);
  });
  s.run(100'000'000);
  EXPECT_EQ(got, 12);
}

TEST(Universal, SafeUnderTimingFailures) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Simulation s(faulty_timing(0.1), {.seed = seed});
    SimUniversal universal(s.space(), kDelta, 3, [] {
      return std::make_unique<CounterReplica>();
    });
    std::vector<std::int64_t> last(3, -1);
    for (int i = 0; i < 3; ++i) {
      s.spawn([&universal, slot = &last[static_cast<std::size_t>(i)]](
                  sim::Env env) {
        return counter_adds(env, universal, 2, 1, slot);
      });
    }
    s.run(2'000'000'000);
    std::int64_t max_seen = 0;
    for (auto v : last) max_seen = std::max(max_seen, v);
    EXPECT_EQ(max_seen, 6) << "seed=" << seed;
  }
}

TEST(OpCodecTest, RoundTripsFields) {
  const auto op = OpCodec::encode(37, 1234, 7, 99);
  EXPECT_EQ(OpCodec::pid(op), 37);
  EXPECT_EQ(OpCodec::seq(op), 1234);
  EXPECT_EQ(OpCodec::opcode(op), 7);
  EXPECT_EQ(OpCodec::arg(op), 99);
  EXPECT_THROW(OpCodec::encode(-1, 1, 1, 1), ContractViolation);
  EXPECT_THROW(OpCodec::encode(1, 0, 1, 1), ContractViolation);
}

}  // namespace
}  // namespace tfr::derived
