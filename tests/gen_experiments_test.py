#!/usr/bin/env python3
"""Round-trip test for scripts/gen_experiments.py on fixture files.

Checks, against tests/fixtures/:
  1. regenerating the stale fixture doc reproduces the expected doc byte
     for byte;
  2. the emitter is deterministic (a second run changes nothing);
  3. --check exits 0 on an up-to-date doc and 1 on a stale one;
  4. a report experiment without a marker block in the doc is an error.

Run by ctest as GenExperimentsRoundTrip; also runnable by hand:
    python3 tests/gen_experiments_test.py \
        --script scripts/gen_experiments.py --fixtures tests/fixtures
"""

import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path


def run(script, json_path, doc_path, *extra):
    return subprocess.run(
        [sys.executable, str(script), "--json", str(json_path),
         "--doc", str(doc_path), *extra],
        capture_output=True, text=True, check=False)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--script", required=True, type=Path)
    parser.add_argument("--fixtures", required=True, type=Path)
    args = parser.parse_args()

    fixture_json = args.fixtures / "bench_fixture.json"
    fixture_md = args.fixtures / "experiments_fixture.md"
    expected_md = args.fixtures / "experiments_fixture.expected.md"
    failures = []

    with tempfile.TemporaryDirectory() as tmp:
        doc = Path(tmp) / "doc.md"

        # 1. Regeneration reproduces the expected bytes.
        shutil.copy(fixture_md, doc)
        result = run(args.script, fixture_json, doc)
        if result.returncode != 0:
            failures.append(f"regeneration failed: {result.stderr}")
        got = doc.read_text(encoding="utf-8")
        want = expected_md.read_text(encoding="utf-8")
        if got != want:
            failures.append(
                "regenerated doc differs from expected fixture:\n"
                f"--- got ---\n{got}\n--- want ---\n{want}")

        # 2. Deterministic: a second run is a no-op.
        before = doc.read_bytes()
        result = run(args.script, fixture_json, doc)
        if result.returncode != 0 or doc.read_bytes() != before:
            failures.append("second regeneration was not a no-op")

        # 3. --check: clean on fresh, failing on stale.
        result = run(args.script, fixture_json, doc, "--check")
        if result.returncode != 0:
            failures.append(f"--check failed on an up-to-date doc: "
                            f"{result.stderr}")
        shutil.copy(fixture_md, doc)
        result = run(args.script, fixture_json, doc, "--check")
        if result.returncode == 0:
            failures.append("--check passed on a stale doc")

        # 4. Missing marker block is an error.
        doc.write_text("no markers here\n", encoding="utf-8")
        result = run(args.script, fixture_json, doc)
        if result.returncode == 0:
            failures.append("missing marker block was not reported")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gen_experiments round-trip: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
