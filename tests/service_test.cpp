// Unit tests for the shard-scale service scenario (src/service/): the
// bounded queue's reject/retry-after contract, the batcher's
// size-or-deadline flush policy, the load generator's retry-storm
// amplification bound, the end-to-end scenario (steady / saturated /
// partial outage), and same-seed byte-identical trace replay of an
// E20-smoke-shaped run.

#include <gtest/gtest.h>

#include "tfr/adapt/controller.hpp"
#include "tfr/obs/trace.hpp"
#include "tfr/service/batcher.hpp"
#include "tfr/service/loadgen.hpp"
#include "tfr/service/queue.hpp"
#include "tfr/service/service.hpp"

namespace tfr {
namespace {

// --- BoundedQueue -----------------------------------------------------

TEST(ServiceQueue, AdmitsUntilCapacityThenRejectsWithRetryAfter) {
  service::BoundedQueue queue(3, /*drain_hint=*/10);
  for (std::uint64_t i = 0; i < 3; ++i) {
    service::Request request;
    request.session = i;
    EXPECT_FALSE(queue.try_push(request, /*now=*/100 + sim::Time(i)));
  }
  EXPECT_EQ(queue.size(), 3u);

  service::Request overflow;
  overflow.session = 99;
  const auto verdict = queue.try_push(overflow, 200);
  ASSERT_TRUE(verdict.has_value());
  // Retry-after scales with the backlog the client would queue behind.
  EXPECT_EQ(verdict->retry_after, 10 * 3);

  EXPECT_EQ(queue.offered(), 4u);
  EXPECT_EQ(queue.admitted(), 3u);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.max_depth(), 3u);
}

TEST(ServiceQueue, PopPreservesFifoOrderAndAdmissionStamps) {
  service::BoundedQueue queue(8, 1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    service::Request request;
    request.session = i;
    request.first_offered = 7;
    queue.try_push(request, /*now=*/sim::Time(10 + i));
  }
  EXPECT_EQ(queue.oldest_admitted(), 10);

  std::vector<service::Request> out;
  EXPECT_EQ(queue.pop_into(out, 3), 3u);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].session, i);
    EXPECT_EQ(out[i].admitted, sim::Time(10 + i));
    EXPECT_EQ(out[i].first_offered, 7);  // latency anchor survives
  }
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.oldest_admitted(), 13);
  EXPECT_EQ(queue.pop_into(out, 10), 2u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.oldest_admitted(), -1);
}

// --- Batcher ----------------------------------------------------------

TEST(ServiceBatcher, FlushesOnSize) {
  service::BoundedQueue queue(16, 1);
  service::Batcher batcher({.max_batch = 4, .max_wait = 1'000});
  for (std::uint64_t i = 0; i < 6; ++i) {
    service::Request request;
    request.session = i;
    queue.try_push(request, 0);
  }
  batcher.fill_from(queue);
  EXPECT_EQ(batcher.size(), 4u);  // capped at max_batch
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(batcher.should_flush(/*now=*/0));  // full: no deadline needed

  const auto batch = batcher.take();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batcher.size_flushes(), 1u);
  EXPECT_EQ(batcher.deadline_flushes(), 0u);

  batcher.fill_from(queue);
  EXPECT_EQ(batcher.size(), 2u);
  EXPECT_FALSE(batcher.should_flush(0));  // partial and fresh: hold
}

TEST(ServiceBatcher, FlushesPartialBatchOnDeadline) {
  service::BoundedQueue queue(16, 1);
  service::Batcher batcher({.max_batch = 4, .max_wait = 100});
  service::Request request;
  queue.try_push(request, /*now=*/50);
  batcher.fill_from(queue);

  EXPECT_FALSE(batcher.should_flush(149));  // oldest admitted at 50
  EXPECT_TRUE(batcher.should_flush(150));   // 100 ticks waited: flush
  EXPECT_EQ(batcher.oldest_admitted(), 50);

  const auto batch = batcher.take();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batcher.size_flushes(), 0u);
  EXPECT_EQ(batcher.deadline_flushes(), 1u);
  EXPECT_TRUE(batcher.empty());
  EXPECT_FALSE(batcher.should_flush(1'000));  // empty never flushes
}

// --- LoadGen (driven inside a real simulation) ------------------------

service::LoadConfig storm_load(std::uint64_t sessions, double rate,
                               int max_attempts) {
  service::LoadConfig load;
  load.sessions = sessions;
  load.arrivals_per_tick = rate;
  load.tick = 10;
  load.retry.backoff = 20;
  load.retry.backoff_growth = 2.0;
  load.retry.max_backoff = 200;
  load.retry.jitter = 5;
  load.max_attempts = max_attempts;
  load.route_seed = 3;
  return load;
}

TEST(ServiceLoadGen, AmplificationStaysWithinMaxAttemptsBound) {
  // Nobody drains the queue: every session is offered, bounced, retried
  // and finally shed — the worst-case retry storm.  Amplification must
  // saturate at exactly max_attempts offers per session.
  sim::Simulation s(sim::make_uniform_timing(1, 10), {.seed = 5});
  service::BoundedQueue queue(4, 10);  // fills instantly, never drained
  service::LoadGen gen(storm_load(500, 2.0, 4), {&queue});
  s.spawn([&gen](sim::Env env) { return gen.run(env); });
  s.run(100'000'000, [&gen] { return gen.finished(); });

  ASSERT_TRUE(gen.finished());
  EXPECT_EQ(gen.sessions_started(), 500u);
  EXPECT_EQ(gen.admitted(), 4u);          // the queue's capacity, once
  EXPECT_EQ(gen.shed(), 496u);            // everyone else is shed...
  EXPECT_EQ(gen.offered_pushes(), 4u + 496u * 4u);  // ...after 4 offers
  EXPECT_DOUBLE_EQ(gen.amplification(),
                   static_cast<double>(gen.offered_pushes()) / 500.0);
  EXPECT_LE(gen.amplification(), 4.0);    // the bound, by construction
  EXPECT_GT(gen.amplification(), 1.0);    // and the storm was real
}

TEST(ServiceLoadGen, AdmitsEverythingWhenQueueHasRoom) {
  sim::Simulation s(sim::make_uniform_timing(1, 10), {.seed = 5});
  service::BoundedQueue queue(1'000, 10);
  service::LoadGen gen(storm_load(600, 1.5, 4), {&queue});
  s.spawn([&gen](sim::Env env) { return gen.run(env); });
  s.run(100'000'000, [&gen] { return gen.finished(); });

  ASSERT_TRUE(gen.finished());
  EXPECT_EQ(gen.admitted(), 600u);
  EXPECT_EQ(gen.rejected(), 0u);
  EXPECT_EQ(gen.shed(), 0u);
  EXPECT_DOUBLE_EQ(gen.amplification(), 1.0);
  EXPECT_EQ(queue.size(), 600u);
}

// --- End-to-end scenario ----------------------------------------------

msg::RetryPolicy test_retry() {
  msg::RetryPolicy policy;
  policy.timeout = 2'000;
  policy.timeout_growth = 2.0;
  policy.max_timeout = 16'000;
  policy.backoff = 100;
  policy.backoff_growth = 2.0;
  policy.max_backoff = 2'000;
  policy.jitter = 50;
  policy.poll_every = 5;
  return policy;
}

/// A scaled-down E20-smoke-shaped config: 2 shards x 3 replicas.
service::ServiceConfig small_config(std::uint64_t sessions) {
  service::ServiceConfig config;
  config.shards = 2;
  config.step = 50;
  config.sim_seed = 9;
  config.shard.replicas = 3;
  config.shard.delta = 50;
  config.shard.abd_retry = test_retry();
  config.shard.batch.max_batch = 64;
  config.shard.batch.max_wait = 200;
  config.shard.queue_capacity = 256;
  config.shard.drain_hint = 8;
  config.shard.poll_every = 50;
  config.load.sessions = sessions;
  // One batch costs ~1000 ticks of quorum time, so 2 shards x 64-request
  // batches give ~0.128 sessions/tick of capacity; 0.08 is ~60% load.
  config.load.arrivals_per_tick = 0.08;
  config.load.tick = 50;
  config.load.retry = test_retry();
  config.load.max_attempts = 6;
  config.load.route_seed = 11;
  return config;
}

TEST(ServiceScenario, ServesEverySessionBelowSaturation) {
  const service::ServiceReport report =
      service::run_service(small_config(5'000));
  EXPECT_TRUE(report.all_elected);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.served, 5'000u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_DOUBLE_EQ(report.amplification, 1.0);
  EXPECT_TRUE(report.linearizable);
  EXPECT_EQ(report.safety_violations, 0u);
  EXPECT_EQ(report.readback_mismatches, 0u);
  EXPECT_EQ(report.unfinished, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(report.latency.count()), 5'000u);
  // Batching amortises: far fewer quorum ops than sessions.
  EXPECT_LT(report.abd_operations, report.served / 4);
}

TEST(ServiceScenario, OutageBacksUpThenDrainsWithinBound) {
  service::ServiceConfig config = small_config(4'000);
  config.shard.queue_capacity = 64;
  config.outage.shards = {1};
  config.outage.begin = 2'000;
  config.outage.heal = 30'000;
  config.convergence_bound = 50'000;
  const service::ServiceReport report = service::run_service(config);

  EXPECT_TRUE(report.all_elected);
  EXPECT_TRUE(report.complete());
  EXPECT_GT(report.rejected, 0u);       // the cut shard pushed back
  EXPECT_GT(report.served, 0u);
  EXPECT_TRUE(report.linearizable);     // safety holds through the cut
  EXPECT_EQ(report.safety_violations, 0u);
  EXPECT_TRUE(report.converged);        // stalled ops finish within bound
  EXPECT_EQ(report.unfinished, 0u);
  EXPECT_GE(report.heal_drain, 0);      // the backlog was worked off...
  EXPECT_LE(report.heal_drain, config.convergence_bound);  // ...in time
}

TEST(ServiceScenario, RegisterVariantSeamSwitchesTheEmulation) {
  service::ServiceConfig config = small_config(2'000);
  const service::ServiceReport stock = service::run_service(config);
  EXPECT_TRUE(stock.complete());
  EXPECT_EQ(stock.abd_fast_reads, 0u);  // stock never takes the fast path
  EXPECT_EQ(stock.abd_fast_read_misses, 0u);

  config.shard.register_variant = msg::RegisterVariant::kPerPeerFastRead;
  const service::ServiceReport fast = service::run_service(config);
  EXPECT_TRUE(fast.complete());
  EXPECT_EQ(fast.served, 2'000u);
  EXPECT_TRUE(fast.linearizable);
  EXPECT_EQ(fast.safety_violations, 0u);
  EXPECT_EQ(fast.readback_mismatches, 0u);
  EXPECT_GT(fast.abd_fast_reads, 0u);  // the seam switched the emulation
}

TEST(ServiceScenario, ReplicaFaultsAndPerPeerWindowsBehindTheSeam) {
  // One slow replica box behind shard 0 and 1; the shards share a
  // timeliness estimator, so per-replica RTT observations (including the
  // straggler's late acks) must flow through the Shard seam into it.
  service::ServiceConfig config = small_config(2'000);
  adapt::TimelinessEstimator estimator({.initial = 100,
                                        .floor = 50,
                                        .ceiling = 16'000,
                                        .window = 32,
                                        .quantile = 0.9,
                                        .headroom = 2.0,
                                        .grow_factor = 2.0,
                                        .decay_step = 50,
                                        .clean_threshold = 2,
                                        .boost_cap = 2.0});
  config.shard.controller = &estimator;
  config.shard.abd_retry.timeout_per_delta = 2.0;
  config.shard.register_variant = msg::RegisterVariant::kPerPeerFastRead;
  msg::ChannelFaults slow;
  slow.delay = 1.0;
  slow.delay_min = 2'000;
  slow.delay_max = 3'000;
  config.shard.replica_faults.push_back({.replica = 1, .faults = slow});
  const service::ServiceReport report = service::run_service(config);
  EXPECT_TRUE(report.complete());
  EXPECT_TRUE(report.linearizable);
  EXPECT_EQ(report.safety_violations, 0u);
  EXPECT_GT(report.abd_fast_reads, 0u);
  EXPECT_GT(estimator.observations(), 0u);  // per-replica RTTs arrived
  EXPECT_GT(estimator.channels(), 1u);      // ...keyed by replica index
}

// --- Determinism ------------------------------------------------------

TEST(ServiceDeterminism, SameSeedReplaysByteIdentical) {
  std::vector<obs::Event> first;
  std::vector<std::string> first_labels;
  for (int run = 0; run < 2; ++run) {
    obs::TraceSink sink;
    service::ServiceConfig config = small_config(2'000);
    config.sink = &sink;
    const service::ServiceReport report = service::run_service(config);
    EXPECT_TRUE(report.complete());
    EXPECT_GT(sink.size(), 0u);
    if (run == 0) {
      first = sink.snapshot();
      first_labels = sink.labels();
    } else {
      EXPECT_EQ(first, sink.snapshot());  // byte-identical event stream
      EXPECT_EQ(first_labels, sink.labels());
    }
  }
}

TEST(ServiceDeterminism, DifferentSeedsDiverge) {
  obs::TraceSink sink_a;
  obs::TraceSink sink_b;
  service::ServiceConfig config = small_config(2'000);
  config.sink = &sink_a;
  service::run_service(config);
  config.sim_seed = 10;
  config.sink = &sink_b;
  service::run_service(config);
  EXPECT_NE(sink_a.snapshot(), sink_b.snapshot());
}

}  // namespace
}  // namespace tfr
