// A replicated, linearizable log on real threads via the universal
// construction (§1.4 + Herlihy's universality of consensus): any object
// with a sequential specification gets a wait-free, timing-failure-
// resilient implementation from atomic registers.
//
//   $ ./replicated_log
//
// Three "nodes" (threads) append their own entries concurrently; each
// append is agreed through a consensus log slot, so every node's replica
// applies exactly the same sequence.  A reader node then drains the log
// and prints the single agreed order.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "tfr/derived/derived_rt.hpp"

namespace {

using tfr::derived::QueueReplica;

int encode_entry(int node, int k) { return node * 100 + k; }

}  // namespace

int main() {
  constexpr int kNodes = 3;
  constexpr int kAppendsPerNode = 4;

  tfr::rt::RtUniversal log(std::chrono::microseconds(50), kNodes + 1, [] {
    return std::make_unique<QueueReplica>();
  });

  std::vector<std::thread> nodes;
  for (int node = 0; node < kNodes; ++node) {
    nodes.emplace_back([&log, node] {
      for (int k = 0; k < kAppendsPerNode; ++k) {
        const auto size = log.invoke(node, QueueReplica::kEnqueue,
                                     encode_entry(node, k));
        std::printf("node %d appended %d (log size observed: %lld)\n", node,
                    encode_entry(node, k), static_cast<long long>(size));
      }
    });
  }
  for (auto& t : nodes) t.join();

  std::printf("\nreader drains the agreed order:\n  ");
  int drained = 0;
  while (drained < kNodes * kAppendsPerNode) {
    const auto v = log.invoke(kNodes, QueueReplica::kDequeue, 0);
    if (v < 0) {
      std::this_thread::yield();
      continue;
    }
    std::printf("%lld ", static_cast<long long>(v));
    ++drained;
  }
  std::printf("\n\nevery replica applied this same order — the log is "
              "linearizable and wait-free,\nand remains safe even when "
              "steps outlast the assumed bound.\n");
  return 0;
}
