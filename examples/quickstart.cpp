// Quickstart: wait-free consensus among real threads using only atomic
// registers (Algorithm 1 of "Computing in the Presence of Timing
// Failures", Taubenfeld, ICDCS 2006).
//
//   $ ./quickstart
//
// Four threads propose conflicting values; all of them decide the same
// one.  The `delta` below is an *optimistic* bound on a shared-memory
// step: if the machine violates it (preemption, page fault), the protocol
// simply takes another round — agreement can never be violated.

#include <cstdio>
#include <thread>
#include <vector>

#include "tfr/core/consensus_rt.hpp"

int main() {
  tfr::rt::RtConsensus consensus({.delta = std::chrono::microseconds(50)});

  std::vector<std::thread> threads;
  std::vector<tfr::rt::RtConsensus::Result> results(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&consensus, &results, i] {
      results[static_cast<std::size_t>(i)] = consensus.propose(i % 2);
    });
  }
  for (auto& t : threads) t.join();

  std::printf("thread  proposed  decided  rounds  steps\n");
  for (int i = 0; i < 4; ++i) {
    const auto& r = results[static_cast<std::size_t>(i)];
    std::printf("%6d  %8d  %7d  %6llu  %5llu\n", i, i % 2, r.value,
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.steps));
  }

  const int agreed = results[0].value;
  for (const auto& r : results) {
    if (r.value != agreed) {
      std::printf("AGREEMENT VIOLATED (impossible)\n");
      return 1;
    }
  }
  std::printf("agreement reached on %d\n", agreed);
  return 0;
}
