// Quickstart: wait-free consensus among real threads using only atomic
// registers (Algorithm 1 of "Computing in the Presence of Timing
// Failures", Taubenfeld, ICDCS 2006).
//
//   $ ./quickstart
//   $ ./quickstart --trace [out.json]
//
// Four threads propose conflicting values; all of them decide the same
// one.  The `delta` below is an *optimistic* bound on a shared-memory
// step: if the machine violates it (preemption, page fault), the protocol
// simply takes another round — agreement can never be violated.
//
// With --trace, the same contest is additionally run in the discrete-event
// simulator with injected timing failures, and the structured event trace
// (register access spans, delay(Δ) spans, injected failures, round
// transitions, decisions) is exported as Chrome trace_event JSON — open it
// at https://ui.perfetto.dev.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tfr/core/consensus_rt.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/obs/export.hpp"
#include "tfr/obs/metrics.hpp"
#include "tfr/obs/replay.hpp"

namespace {

// Simulated replica of the demo, with a burst of timing failures against
// half the processes, exported for Perfetto.
int export_trace(const std::string& path) {
  constexpr tfr::sim::Duration kDelta = 100;
  tfr::obs::TimingSpec spec;
  spec.kind = tfr::obs::TimingSpec::Kind::kUniform;
  spec.lo = 1;
  spec.hi = kDelta;
  spec.delta = kDelta;
  spec.windows.push_back(
      {.begin = 0, .end = 5 * kDelta, .victims = {0, 2},
       .stretched = 7 * kDelta});

  tfr::obs::TraceSink sink;
  auto timing = tfr::obs::make_timing(spec, &sink);
  const auto outcome = tfr::core::run_consensus(
      {0, 1, 1, 0}, kDelta, std::move(timing), /*seed=*/7,
      tfr::sim::kTimeNever, &sink);
  if (!tfr::obs::write_chrome_json(sink, path)) {
    std::printf("failed to write %s\n", path.c_str());
    return 1;
  }
  const auto metrics = tfr::obs::compute_metrics(sink);
  std::printf(
      "wrote %s (%zu events): decided %d, %llu timing failures injected, "
      "max round %zu — open it at https://ui.perfetto.dev\n",
      path.c_str(), sink.size(), outcome.value,
      static_cast<unsigned long long>(metrics.timing_failures),
      metrics.max_round);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--trace") == 0) {
    return export_trace(argc > 2 ? argv[2] : "quickstart_trace.json");
  }
  tfr::rt::RtConsensus consensus({.delta = std::chrono::microseconds(50)});

  std::vector<std::thread> threads;
  std::vector<tfr::rt::RtConsensus::Result> results(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&consensus, &results, i] {
      results[static_cast<std::size_t>(i)] = consensus.propose(i % 2);
    });
  }
  for (auto& t : threads) t.join();

  std::printf("thread  proposed  decided  rounds  steps\n");
  for (int i = 0; i < 4; ++i) {
    const auto& r = results[static_cast<std::size_t>(i)];
    std::printf("%6d  %8d  %7d  %6llu  %5llu\n", i, i % 2, r.value,
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.steps));
  }

  const int agreed = results[0].value;
  for (const auto& r : results) {
    if (r.value != agreed) {
      std::printf("AGREEMENT VIOLATED (impossible)\n");
      return 1;
    }
  }
  std::printf("agreement reached on %d\n", agreed);
  return 0;
}
