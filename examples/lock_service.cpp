// A tiny ledger protected by the time-resilient mutex (Algorithm 3), on
// real threads — and a demonstration of why plain Fischer is not enough.
//
//   $ ./lock_service
//
// Phase 1 guards a non-atomic ledger with Fischer's timing-based lock
// while a fault injector stalls threads inside the lock's vulnerable
// window (emulating preemption): lost updates appear.  Phase 2 runs the
// identical workload under Algorithm 3 (Fischer filter + starvation-free
// asynchronous core) with the same injected stalls: the ledger stays
// consistent, and the lock is still O(Δ) when timing behaves.

#include <cstdio>
#include <thread>
#include <vector>

#include "tfr/mutex/mutex_rt.hpp"

namespace {

using tfr::rt::Nanos;

struct Ledger {
  // Deliberately non-atomic: correctness depends entirely on the lock.
  long long balance = 0;
  void deposit(long long amount) {
    const long long before = balance;
    // A read-modify-write wide enough for a preempted peer to interleave.
    tfr::rt::spin_for(Nanos{10'000'000});
    balance = before + amount;
  }
};

long long run_phase(tfr::rt::RtMutex& lock, tfr::rt::FaultInjector& faults,
                    int threads, int deposits) {
  Ledger ledger;
  std::vector<std::thread> workers;
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&lock, &ledger, deposits, i] {
      for (int k = 0; k < deposits; ++k) {
        lock.lock(i);
        ledger.deposit(1);
        lock.unlock(i);
      }
    });
  }
  for (auto& t : workers) t.join();
  std::printf("  %-24s stalls injected: %llu, final balance: %lld\n",
              lock.name().c_str(),
              static_cast<unsigned long long>(faults.stalls()),
              ledger.balance);
  return ledger.balance;
}

}  // namespace

int main() {
  constexpr int kThreads = 2;
  constexpr int kDeposits = 20;
  constexpr long long kExpected = kThreads * kDeposits;
  const Nanos optimistic_delta{20'000};  // 20 us
  const Nanos stall{30'000'000};         // a 30 ms "preemption"

  std::printf("expected balance: %lld\n", kExpected);

  std::printf("phase 1: Fischer's lock under injected preemption\n");
  tfr::rt::FaultInjector fischer_faults(1);
  fischer_faults.configure("fischer.gate",
                           {.probability = 0.2, .stall = stall});
  tfr::rt::FischerRt fischer(optimistic_delta, &fischer_faults);
  const long long fischer_balance =
      run_phase(fischer, fischer_faults, kThreads, kDeposits);

  std::printf("phase 2: Algorithm 3 under the same preemption\n");
  tfr::rt::FaultInjector tfr_faults(1);
  tfr_faults.configure("fischer.gate", {.probability = 0.2, .stall = stall});
  auto resilient =
      tfr::rt::make_tfr_mutex_rt(kThreads, optimistic_delta, &tfr_faults);
  const long long tfr_balance =
      run_phase(*resilient, tfr_faults, kThreads, kDeposits);

  if (tfr_balance != kExpected) {
    std::printf("Algorithm 3 lost updates — impossible\n");
    return 1;
  }
  if (fischer_balance != kExpected) {
    std::printf("Fischer lost %lld update(s); Algorithm 3 lost none.\n",
                kExpected - fischer_balance);
  } else {
    std::printf("Fischer survived this run by luck; Algorithm 3 is safe "
                "by construction.\n");
  }
  return 0;
}
