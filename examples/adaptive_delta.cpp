// Tuning optimistic(Δ) online, exactly as §3.3 of the paper suggests:
// "start with a small estimated value and change it over time … using a
// technique similar to the one used in TCP congestion control".
//
//   $ ./adaptive_delta
//
// The environment: shared-memory steps usually cost 1..25 time units, but
// 3% of them spike to as much as 2000 (preemption, page faults).  The
// pessimistic bound Δ = 2000 makes every delay(Δ) painfully slow; the
// estimator discovers a delay near the common-case cost instead.  Safety
// never depends on the estimate — a too-small value only costs retries.

#include <cstdio>
#include <memory>

#include "tfr/adapt/controller.hpp"
#include "tfr/core/consensus_sim.hpp"
#include "tfr/sim/timing.hpp"

namespace {

constexpr tfr::sim::Duration kPessimistic = 2000;
constexpr tfr::sim::Duration kCommon = 25;

std::unique_ptr<tfr::sim::TimingModel> environment() {
  auto injector = std::make_unique<tfr::sim::FailureInjector>(
      tfr::sim::make_uniform_timing(1, kCommon), kCommon);
  injector->set_random_failures(0.03, kPessimistic);
  return injector;
}

double mean_decide_time(tfr::sim::Duration assumed_delta) {
  double total = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto out = tfr::core::run_consensus(
        {0, 1, 0, 1}, assumed_delta, environment(),
        static_cast<std::uint64_t>(t), 100'000'000);
    total += static_cast<double>(out.last_decision);
  }
  return total / trials;
}

}  // namespace

int main() {
  std::printf("environment: steps 1..%lld, 3%% spikes up to %lld\n\n",
              static_cast<long long>(kCommon),
              static_cast<long long>(kPessimistic));

  std::printf("fixed settings first:\n");
  std::printf("  delta = %4lld (pessimistic): mean decide time %8.0f\n",
              static_cast<long long>(kPessimistic),
              mean_decide_time(kPessimistic));
  std::printf("  delta = %4lld (hand-tuned):  mean decide time %8.0f\n\n",
              static_cast<long long>(kCommon), mean_decide_time(kCommon));

  tfr::adapt::Aimd estimator({.initial = 1,
                              .floor = 1,
                              .ceiling = kPessimistic,
                              .grow_factor = 2.0,
                              .decay_step = 2,
                              .clean_threshold = 4});
  std::printf("adaptive run (one consensus instance per line):\n");
  std::printf("instance  estimate  rounds  decide-time  signal\n");
  for (int instance = 0; instance < 24; ++instance) {
    const auto estimate = estimator.current();
    const auto out = tfr::core::run_consensus(
        {0, 1, 0, 1}, estimate, environment(),
        static_cast<std::uint64_t>(instance) + 555, 100'000'000);
    const bool clean = out.max_round <= 1;
    std::printf("%8d  %8lld  %6zu  %11lld  %s\n", instance,
                static_cast<long long>(estimate), out.max_round + 1,
                static_cast<long long>(out.last_decision),
                clean ? "progress (maybe shrink)" : "retry (grow)");
    if (clean) {
      estimator.on_clean();
    } else {
      for (std::size_t r = 1; r < out.max_round; ++r) estimator.on_failure();
      estimator.on_failure();
    }
  }
  std::printf("\nfinal estimate: %lld (pessimistic bound was %lld)\n",
              static_cast<long long>(estimator.current()),
              static_cast<long long>(kPessimistic));
  return 0;
}
