// Leader election under timing failures (simulator).
//
//   $ ./leader_election
//
// Six replicas of a coordination service elect a coordinator using the
// wait-free election built on time-resilient consensus (§1.4 of the
// paper).  The run begins inside a storm of timing failures — every
// shared-memory step of every process is stretched far beyond the assumed
// Δ — and two replicas crash outright.  The election nevertheless
// completes with a single agreed leader as soon as the storm passes,
// illustrating the paper's motto: safety always, liveness as soon as the
// timing constraints are met.

#include <cstdio>
#include <memory>
#include <vector>

#include "tfr/derived/election_sim.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace {

constexpr tfr::sim::Duration kDelta = 100;

tfr::sim::Process replica(tfr::sim::Env env,
                          tfr::derived::SimElection& election,
                          std::vector<int>& winners) {
  std::printf("[t=%6lld] replica %d joins the election\n",
              static_cast<long long>(env.now()), env.pid());
  const int leader = co_await election.elect(env);
  winners[static_cast<std::size_t>(env.pid())] = leader;
  std::printf("[t=%6lld] replica %d learns the leader: replica %d\n",
              static_cast<long long>(env.now()), env.pid(), leader);
}

}  // namespace

int main() {
  // Timing model: normally 1..Δ per step, but a failure window stretches
  // every access to 6Δ for the first 40Δ of the run.
  auto injector = std::make_unique<tfr::sim::FailureInjector>(
      tfr::sim::make_uniform_timing(1, kDelta), kDelta);
  injector->add_window(
      {.begin = 0, .end = 40 * kDelta, .stretched = 6 * kDelta});

  tfr::sim::Simulation sim(std::move(injector), {.seed = 2026});
  tfr::derived::SimElection election(sim.space(), kDelta);

  const int replicas = 6;
  std::vector<int> winners(replicas, -1);
  for (int i = 0; i < replicas; ++i) {
    sim.spawn([&election, &winners](tfr::sim::Env env) {
      return replica(env, election, winners);
    });
  }
  // Two replicas die mid-protocol; the others must not block on them.
  sim.crash_after_accesses(1, 40);
  sim.crash_after_accesses(4, 90);
  std::printf("(replicas 1 and 4 will crash; timing failures until t=%lld)\n",
              static_cast<long long>(40 * kDelta));

  sim.run();

  int leader = -1;
  for (int i = 0; i < replicas; ++i) {
    if (i == 1 || i == 4) continue;  // crashed
    if (winners[static_cast<std::size_t>(i)] < 0) {
      std::printf("replica %d never decided (impossible once timing holds)\n",
                  i);
      return 1;
    }
    if (leader < 0) leader = winners[static_cast<std::size_t>(i)];
    if (winners[static_cast<std::size_t>(i)] != leader) {
      std::printf("SPLIT BRAIN (impossible)\n");
      return 1;
    }
  }
  std::printf("all surviving replicas agree: leader = replica %d\n", leader);
  return 0;
}
