// A replicated configuration service over message passing (simulator):
// the paper's consensus, carried across the network boundary (§4).
//
//   $ ./config_service
//
// Five nodes must agree whether to roll out config version A (0) or B (1).
// Their votes are split.  The network is misbehaving: 10% of channel
// operations take 30x longer than the assumed bound (late messages), and
// two of the five replicas crash outright.  Agreement is reached anyway —
// exactly one version wins everywhere — because Algorithm 1 runs over
// ABD majority-quorum registers: late messages only delay, a crashed
// minority is absorbed by quorums, and safety never rested on timing in
// the first place.

#include <cstdio>
#include <memory>

#include "tfr/msg/abd.hpp"
#include "tfr/msg/consensus_msg.hpp"
#include "tfr/sim/simulation.hpp"
#include "tfr/sim/timing.hpp"

namespace {

constexpr tfr::sim::Duration kStep = 50;   // per-channel-access bound
constexpr int kNodes = 5;

}  // namespace

int main() {
  auto injector = std::make_unique<tfr::sim::FailureInjector>(
      tfr::sim::make_uniform_timing(1, kStep), kStep);
  injector->set_random_failures(0.10, 30 * kStep);

  tfr::sim::Simulation sim(std::move(injector), {.seed = 7});
  tfr::msg::Network net(sim.space(), 2 * kNodes);
  tfr::msg::MsgConsensus rollout(net, kNodes, /*delta=*/60 * kStep);

  std::printf("five replicas vote on the next config (A=0, B=1):\n");
  for (int node = 0; node < kNodes; ++node) {
    const int vote = node % 2;
    rollout.monitor().set_input(node, vote);
    std::printf("  node %d votes %c\n", node, vote == 0 ? 'A' : 'B');
    sim.spawn([&rollout, node, vote](tfr::sim::Env env) {
      return rollout.participant(env, node, vote);
    });
  }
  for (int node = 0; node < kNodes; ++node) {
    sim.spawn([&net, node](tfr::sim::Env env) {
      return tfr::msg::abd_server(env, net, node, kNodes);
    });
  }
  // Nodes 3 and 4 die early: their replicas stop answering and their
  // clients never report.  Three of five replicas remain — a majority.
  sim.crash_at(3, 400);              // client of node 3
  sim.crash_at(kNodes + 3, 400);     // replica of node 3
  sim.crash_at(4, 400);
  sim.crash_at(kNodes + 4, 400);
  std::printf("(nodes 3 and 4 crash at t=400; 10%% of messages are late)\n\n");

  sim.run(4'000'000'000, [&] { return rollout.monitor().decided_count() >= 3; });

  if (!rollout.monitor().all_decided(3)) {
    std::printf("survivors failed to decide (impossible with a live "
                "majority once timing settles)\n");
    return 1;
  }
  int version = -1;
  for (int node = 0; node < 3; ++node) {
    const int v = rollout.monitor().decision(node);
    std::printf("node %d rolls out config %c (decided at t=%lld)\n", node,
                v == 0 ? 'A' : 'B',
                static_cast<long long>(rollout.monitor().last_decision_time()));
    if (version < 0) version = v;
    if (v != version) {
      std::printf("SPLIT ROLLOUT (impossible)\n");
      return 1;
    }
  }
  std::printf("\nall surviving replicas agree on config %c; %llu messages "
              "were exchanged.\n",
              version == 0 ? 'A' : 'B',
              static_cast<unsigned long long>(net.messages_sent()));
  return 0;
}
